/**
 * @file
 * gencheck: the static invariant checker CLI.
 *
 * Loads one or more workloads, runs every analysis pass over the
 * resulting system state, and prints a diagnostic report. Subjects:
 *
 *  - live:generational / live:unified — a deterministic synthetic
 *    guest program executed to completion under the dynamic optimizer
 *    runtime, then checked whole-system (CFG, superblocks, link
 *    graph, cache state);
 *  - sim:<profile> — a statistical benchmark workload replayed
 *    through the trace-driven simulator against a generational cache,
 *    then checked at the storage level;
 *  - batched:<profile>:tN — the same workload compiled once
 *    (tracelog::CompiledLog) and streamed through the batched replay
 *    driver against one lane per standard sweep threshold; every
 *    lane's end state is checked like a sim subject. This keeps the
 *    fast replay path honest: the dense-id residency indices must
 *    leave the same self-consistent storage state the legacy loop
 *    does.
 *  - tier:<topology>:<profile> — the workload replayed against a
 *    named non-legacy tier topology (cache::namedTierTopologies: a
 *    2-tier filter, a 4-tier pipeline, a temperature-policy 3-tier),
 *    then checked at the storage level with the tier-indexed passes;
 *  - live:tier:<topology> — a synthetic guest executed under the
 *    runtime on top of a named topology pipeline, checked
 *    whole-system.
 *
 * Exit status is 1 when any error-severity diagnostic was reported,
 * 0 otherwise (warnings and notes do not fail the run).
 *
 * Usage:
 *   gencheck [--json FILE] [--profile NAME]... [--tier NAME]...
 *            [--seed N] [--quiet]
 *
 * --profile may be given multiple times; the default set is gzip
 * (SPEC) and mpeg (interactive, exercises DLL unloads). --tier
 * selects topologies from the named catalog (default: all of them).
 * --seed varies the synthetic guest program of the live subjects.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "analysis/pass.h"
#include "codecache/generational_cache.h"
#include "codecache/unified_cache.h"
#include "guest/synthetic_program.h"
#include "runtime/runtime.h"
#include "sim/batched_replay.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "tracelog/compiled_log.h"
#include "support/format.h"
#include "support/units.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace gencache;

struct SubjectReport
{
    std::string name;
    analysis::DiagnosticEngine engine;
};

guest::SyntheticProgram
makeGuestProgram(std::uint64_t seed)
{
    guest::SyntheticProgramConfig config;
    config.seed = seed;
    config.phases = 3;
    config.phaseIterations = 60;
    config.innerIterations = 30;
    config.dllCount = 2;
    return guest::generateSyntheticProgram(config);
}

/** Execute a synthetic guest to completion and check everything. */
SubjectReport
checkLiveSubject(const std::string &name, cache::CacheManager &manager,
                 std::uint64_t seed)
{
    guest::SyntheticProgram synthetic = makeGuestProgram(seed);
    guest::AddressSpace space;
    for (const auto &module : synthetic.program.modules()) {
        space.map(*module);
    }
    runtime::Runtime runtime(space, manager, /*trace_threshold=*/20);
    runtime.start(synthetic.program.entry());
    runtime.run();

    SubjectReport report;
    report.name = name;
    report.engine =
        analysis::checkRuntime(synthetic.program, runtime);
    return report;
}

/** Replay a benchmark profile and check the cache storage state. */
SubjectReport
checkSimSubject(const workload::BenchmarkProfile &profile)
{
    tracelog::AccessLog log = workload::generateWorkload(profile);

    // The paper sizes the simulated cache at half the benchmark's
    // unbounded-cache footprint; same here so evictions, probation
    // rejections, and promotions all occur.
    auto total = static_cast<std::uint64_t>(
        profile.finalCacheKb * static_cast<double>(kKiB) / 2.0);
    cache::GenerationalConfig config =
        cache::GenerationalConfig::fromProportions(
            total, /*nursery_frac=*/0.45, /*probation_frac=*/0.10,
            /*threshold=*/1);
    cache::GenerationalCacheManager manager(config);
    sim::CacheSimulator simulator(manager);
    simulator.run(log);

    SubjectReport report;
    report.name = "sim:" + profile.name;
    report.engine = analysis::checkManager(manager);
    return report;
}

/** Replay a benchmark profile against a named tier topology and
 *  check the storage state through the tier-indexed passes. */
SubjectReport
checkTierSubject(const cache::TierTopology &topology,
                 const workload::BenchmarkProfile &profile)
{
    tracelog::AccessLog log = workload::generateWorkload(profile);
    auto total = static_cast<std::uint64_t>(
        profile.finalCacheKb * static_cast<double>(kKiB) / 2.0);
    std::unique_ptr<cache::TierPipeline> manager =
        topology.build(total);
    sim::CacheSimulator simulator(*manager);
    simulator.run(log);

    SubjectReport report;
    report.name = format("tier:{}:{}", topology.name, profile.name);
    report.engine = analysis::checkManager(*manager);
    return report;
}

/** Stream one compiled workload through the batched replay driver —
 *  one lane per standard sweep threshold — and check every lane's
 *  end state. */
std::vector<SubjectReport>
checkBatchedSubjects(const workload::BenchmarkProfile &profile)
{
    tracelog::AccessLog log = workload::generateWorkload(profile);
    tracelog::CompiledLog compiled = tracelog::CompiledLog::compile(log);

    auto total = static_cast<std::uint64_t>(
        profile.finalCacheKb * static_cast<double>(kKiB) / 2.0);
    std::vector<std::uint32_t> thresholds =
        sim::defaultSweepThresholds();

    std::vector<std::unique_ptr<cache::GenerationalCacheManager>>
        managers;
    sim::BatchedReplay replay(compiled);
    for (std::uint32_t threshold : thresholds) {
        managers.push_back(
            std::make_unique<cache::GenerationalCacheManager>(
                cache::GenerationalConfig::fromProportions(
                    total, /*nursery_frac=*/0.45,
                    /*probation_frac=*/0.10, threshold)));
        replay.addLane(*managers.back());
    }
    replay.run();

    std::vector<SubjectReport> reports;
    for (std::size_t i = 0; i < managers.size(); ++i) {
        SubjectReport report;
        report.name = format("batched:{}:t{}", profile.name,
                             thresholds[i]);
        report.engine = analysis::checkManager(*managers[i]);
        reports.push_back(std::move(report));
    }
    return reports;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--json FILE] [--profile NAME]... "
                 "[--tier NAME]... [--seed N] [--quiet]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::vector<std::string> profile_names;
    std::vector<std::string> tier_names;
    std::uint64_t seed = 2003;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--profile" && i + 1 < argc) {
            profile_names.push_back(argv[++i]);
        } else if (arg == "--tier" && i + 1 < argc) {
            tier_names.push_back(argv[++i]);
        } else if (arg == "--seed" && i + 1 < argc) {
            const char *text = argv[++i];
            char *end = nullptr;
            seed = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0') {
                std::fprintf(stderr,
                             "gencheck: --seed wants a number, got "
                             "'%s'\n",
                             text);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (profile_names.empty()) {
        profile_names = {"gzip", "mpeg"};
    }

    // Reject unknown profiles (and an unwritable report path) before
    // spending a second simulating anything; a usage error must exit
    // 2, not findProfile's fatal() mid-run.
    std::vector<workload::BenchmarkProfile> profiles;
    for (const std::string &name : profile_names) {
        bool found = false;
        for (workload::BenchmarkProfile &profile :
             workload::allProfiles()) {
            if (profile.name == name) {
                profiles.push_back(std::move(profile));
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "gencheck: unknown benchmark profile '%s'\n",
                         name.c_str());
            return 2;
        }
    }
    std::vector<cache::TierTopology> topologies;
    if (tier_names.empty()) {
        topologies = cache::namedTierTopologies();
    } else {
        for (const std::string &name : tier_names) {
            const cache::TierTopology *topology =
                cache::findTierTopology(name);
            if (topology == nullptr) {
                std::fprintf(stderr,
                             "gencheck: unknown tier topology '%s'\n",
                             name.c_str());
                return 2;
            }
            topologies.push_back(*topology);
        }
    }
    std::ofstream json_out;
    if (!json_path.empty()) {
        json_out.open(json_path);
        if (!json_out) {
            std::fprintf(stderr, "gencheck: cannot write %s\n",
                         json_path.c_str());
            return 2;
        }
    }

    std::vector<SubjectReport> reports;
    {
        cache::GenerationalConfig config =
            cache::GenerationalConfig::fromProportions(
                /*total=*/4 * kKiB, /*nursery_frac=*/0.40,
                /*probation_frac=*/0.20, /*threshold=*/1);
        cache::GenerationalCacheManager manager(config);
        reports.push_back(
            checkLiveSubject("live:generational", manager, seed));
    }
    {
        cache::UnifiedCacheManager manager(/*capacity=*/2 * kKiB);
        reports.push_back(
            checkLiveSubject("live:unified", manager, seed));
    }
    for (const cache::TierTopology &topology : topologies) {
        // The runtime constructs its manager through the topology
        // catalog too — the live path must work on any pipeline, not
        // just the two legacy adapters.
        std::unique_ptr<cache::TierPipeline> manager =
            topology.build(4 * kKiB);
        reports.push_back(checkLiveSubject(
            format("live:tier:{}", topology.name), *manager, seed));
    }
    for (const workload::BenchmarkProfile &profile : profiles) {
        reports.push_back(checkSimSubject(profile));
        for (SubjectReport &report : checkBatchedSubjects(profile)) {
            reports.push_back(std::move(report));
        }
        for (const cache::TierTopology &topology : topologies) {
            reports.push_back(checkTierSubject(topology, profile));
        }
    }

    std::size_t errors = 0;
    std::size_t total = 0;
    for (const SubjectReport &report : reports) {
        errors += report.engine.errorCount();
        total += report.engine.size();
        if (!quiet) {
            std::printf("== %s ==\n%s\n", report.name.c_str(),
                        report.engine.textReport().c_str());
        }
    }
    std::printf("gencheck: %zu subject%s, %zu diagnostic%s, %zu "
                "error%s\n",
                reports.size(), reports.size() == 1 ? "" : "s", total,
                total == 1 ? "" : "s", errors,
                errors == 1 ? "" : "s");

    if (json_out.is_open()) {
        json_out << "{\"subjects\": [";
        for (std::size_t i = 0; i < reports.size(); ++i) {
            if (i > 0) {
                json_out << ", ";
            }
            json_out << "{\"name\": \""
                     << analysis::jsonEscape(reports[i].name)
                     << "\", \"report\": "
                     << reports[i].engine.jsonReport() << "}";
        }
        json_out << "], \"errors\": " << errors << "}\n";
    }
    return errors > 0 ? 1 : 0;
}
