/**
 * @file
 * gencheck: the static invariant checker CLI.
 *
 * Loads one or more workloads, runs every analysis pass over the
 * resulting system state, and prints a diagnostic report. Subjects:
 *
 *  - live:generational / live:unified — a deterministic synthetic
 *    guest program executed to completion under the dynamic optimizer
 *    runtime, then checked whole-system (CFG, superblocks, link
 *    graph, cache state);
 *  - sim:<profile> — a statistical benchmark workload replayed
 *    through the trace-driven simulator against a generational cache,
 *    then checked at the storage level;
 *  - batched:<profile>:tN — the same workload compiled once
 *    (tracelog::CompiledLog) and streamed through the batched replay
 *    driver against one lane per standard sweep threshold; every
 *    lane's end state is checked like a sim subject. This keeps the
 *    fast replay path honest: the dense-id residency indices must
 *    leave the same self-consistent storage state the legacy loop
 *    does.
 *  - tier:<topology>:<profile> — the workload replayed against a
 *    named non-legacy tier topology (cache::namedTierTopologies: a
 *    2-tier filter, a 4-tier pipeline, a temperature-policy 3-tier),
 *    then checked at the storage level with the tier-indexed passes;
 *  - live:tier:<topology> — a synthetic guest executed under the
 *    runtime on top of a named topology pipeline, checked
 *    whole-system;
 *  - topo:<topology> — the named topology linted statically
 *    (analysis::lintTopology), no cache ever built;
 *  - fleet:store / fleet:p<N> — a small shared-DLL fleet (with one
 *    unmap storm) round-robined through sim::FleetSimulator against
 *    one SharedCodeStore; the store's end state is checked by the
 *    shr-* passes and every process's private pipeline by the
 *    storage passes;
 *  - journal:<file>:<manager> — a recorded gclog journal
 *    (--journal) replayed against the legacy generational config and
 *    every selected topology with the temporal invariant engine
 *    attached, then snapshot-checked. This is the offline temporal
 *    mode: the event stream of the whole replay is validated, not
 *    just the end state.
 *
 * The sim: and tier: subjects also run the temporal engine online
 * while they replay.
 *
 * Exit status: 0 clean (warnings and notes do not fail the run),
 * 1 when any error-severity diagnostic was reported, 2 on usage
 * errors, 3 when a subject failed to load (unreadable or malformed
 * --journal file).
 *
 * Usage:
 *   gencheck [--json FILE] [--profile NAME]... [--tier NAME]...
 *            [--journal FILE]... [--seed N] [--quiet]
 *   gencheck --list-checks
 *   gencheck --explain-fast-path [--tier NAME]...
 *
 * --profile may be given multiple times; the default set is gzip
 * (SPEC) and mpeg (interactive, exercises DLL unloads). --tier
 * selects topologies from the named catalog (default: all of them).
 * --journal switches to offline journal checking (the live/sim
 * subjects are skipped). --seed varies the synthetic guest program of
 * the live subjects. --list-checks dumps the full check-ID registry
 * as JSON and exits. --explain-fast-path explains hot-slot fast-path
 * eligibility of the selected topologies and exits.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "analysis/pass.h"
#include "analysis/temporal_passes.h"
#include "analysis/topology_passes.h"
#include "codecache/generational_cache.h"
#include "codecache/unified_cache.h"
#include "guest/synthetic_program.h"
#include "runtime/runtime.h"
#include "sim/batched_replay.h"
#include "sim/fleet.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "tracelog/compiled_log.h"
#include "tracelog/serialize.h"
#include "support/format.h"
#include "support/units.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace gencache;

struct SubjectReport
{
    std::string name;
    analysis::DiagnosticEngine engine;
};

guest::SyntheticProgram
makeGuestProgram(std::uint64_t seed)
{
    guest::SyntheticProgramConfig config;
    config.seed = seed;
    config.phases = 3;
    config.phaseIterations = 60;
    config.innerIterations = 30;
    config.dllCount = 2;
    return guest::generateSyntheticProgram(config);
}

/** Execute a synthetic guest to completion and check everything. */
SubjectReport
checkLiveSubject(const std::string &name, cache::CacheManager &manager,
                 std::uint64_t seed)
{
    guest::SyntheticProgram synthetic = makeGuestProgram(seed);
    guest::AddressSpace space;
    for (const auto &module : synthetic.program.modules()) {
        space.map(*module);
    }
    runtime::Runtime runtime(space, manager, /*trace_threshold=*/20);
    runtime.start(synthetic.program.entry());
    runtime.run();

    SubjectReport report;
    report.name = name;
    report.engine =
        analysis::checkRuntime(synthetic.program, runtime);
    return report;
}

/** Replay @p log against @p manager with the temporal invariant
 *  engine observing every cache event, then run the snapshot passes
 *  over the end state. Everything lands in one engine. */
analysis::DiagnosticEngine
replayWithTemporal(const tracelog::AccessLog &log,
                   cache::CacheManager &manager)
{
    analysis::DiagnosticEngine engine;
    analysis::runTemporalReplay(log, manager, engine);
    analysis::runPasses(analysis::AnalysisInput::forManager(manager),
                        engine);
    return engine;
}

/** Replay a benchmark profile and check the cache storage state. */
SubjectReport
checkSimSubject(const workload::BenchmarkProfile &profile)
{
    tracelog::AccessLog log = workload::generateWorkload(profile);

    // The paper sizes the simulated cache at half the benchmark's
    // unbounded-cache footprint; same here so evictions, probation
    // rejections, and promotions all occur.
    auto total = static_cast<std::uint64_t>(
        profile.finalCacheKb * static_cast<double>(kKiB) / 2.0);
    cache::GenerationalConfig config =
        cache::GenerationalConfig::fromProportions(
            total, /*nursery_frac=*/0.45, /*probation_frac=*/0.10,
            /*threshold=*/1);
    cache::GenerationalCacheManager manager(config);

    SubjectReport report;
    report.name = "sim:" + profile.name;
    report.engine = replayWithTemporal(log, manager);
    return report;
}

/** Replay a benchmark profile against a named tier topology and
 *  check the storage state through the tier-indexed passes. */
SubjectReport
checkTierSubject(const cache::TierTopology &topology,
                 const workload::BenchmarkProfile &profile)
{
    tracelog::AccessLog log = workload::generateWorkload(profile);
    auto total = static_cast<std::uint64_t>(
        profile.finalCacheKb * static_cast<double>(kKiB) / 2.0);
    std::unique_ptr<cache::TierPipeline> manager =
        topology.build(total);

    SubjectReport report;
    report.name = format("tier:{}:{}", topology.name, profile.name);
    report.engine = replayWithTemporal(log, *manager);
    return report;
}

/** Lint a named topology statically — no cache is ever built. */
SubjectReport
lintTopologySubject(const cache::TierTopology &topology)
{
    SubjectReport report;
    report.name = format("topo:{}", topology.name);
    analysis::lintTopology(topology, report.engine);
    return report;
}

/** Offline temporal mode: replay a loaded journal against the legacy
 *  generational config and every selected topology. */
std::vector<SubjectReport>
checkJournalSubjects(const std::string &label,
                     const tracelog::AccessLog &log,
                     const std::vector<cache::TierTopology> &topologies)
{
    // Half the recorded footprint keeps the caches under pressure;
    // hand-written journals without footprint metadata get a small
    // fixed budget instead of a degenerate zero-byte cache.
    std::uint64_t total = log.footprintBytes() / 2;
    if (total < 4 * kKiB) {
        total = 4 * kKiB;
    }

    std::vector<SubjectReport> reports;
    {
        cache::GenerationalCacheManager manager(
            cache::GenerationalConfig::fromProportions(
                total, /*nursery_frac=*/0.45,
                /*probation_frac=*/0.10, /*threshold=*/1));
        SubjectReport report;
        report.name = format("journal:{}:generational", label);
        report.engine = replayWithTemporal(log, manager);
        reports.push_back(std::move(report));
    }
    for (const cache::TierTopology &topology : topologies) {
        std::unique_ptr<cache::TierPipeline> manager =
            topology.build(total);
        SubjectReport report;
        report.name = format("journal:{}:{}", label, topology.name);
        report.engine = replayWithTemporal(log, *manager);
        reports.push_back(std::move(report));
    }
    return reports;
}

/** Stream one compiled workload through the batched replay driver —
 *  one lane per standard sweep threshold — and check every lane's
 *  end state. */
std::vector<SubjectReport>
checkBatchedSubjects(const workload::BenchmarkProfile &profile)
{
    tracelog::AccessLog log = workload::generateWorkload(profile);
    tracelog::CompiledLog compiled = tracelog::CompiledLog::compile(log);

    auto total = static_cast<std::uint64_t>(
        profile.finalCacheKb * static_cast<double>(kKiB) / 2.0);
    std::vector<std::uint32_t> thresholds =
        sim::defaultSweepThresholds();

    std::vector<std::unique_ptr<cache::GenerationalCacheManager>>
        managers;
    sim::BatchedReplay replay(compiled);
    for (std::uint32_t threshold : thresholds) {
        managers.push_back(
            std::make_unique<cache::GenerationalCacheManager>(
                cache::GenerationalConfig::fromProportions(
                    total, /*nursery_frac=*/0.45,
                    /*probation_frac=*/0.10, threshold)));
        replay.addLane(*managers.back());
    }
    replay.run();

    std::vector<SubjectReport> reports;
    for (std::size_t i = 0; i < managers.size(); ++i) {
        SubjectReport report;
        report.name = format("batched:{}:t{}", profile.name,
                             thresholds[i]);
        report.engine = analysis::checkManager(*managers[i]);
        reports.push_back(std::move(report));
    }
    return reports;
}

/** Round-robin a small shared-DLL fleet over one shared store, then
 *  check the store (shr-* passes) and every process's pipeline. */
std::vector<SubjectReport>
checkFleetSubjects(std::uint64_t seed)
{
    workload::FleetWorkloadConfig config;
    config.processes = 4;
    config.sharedDlls = 2;
    config.sharedLibKb = 48.0;
    config.privateKb = 48.0;
    config.durationSec = 8.0;
    config.unmapStorms = 1;
    config.seed = seed;
    std::vector<tracelog::AccessLog> logs =
        workload::generateFleetWorkload(config);

    std::vector<tracelog::CompiledLog> compiled;
    compiled.reserve(logs.size());
    for (const tracelog::AccessLog &log : logs) {
        compiled.push_back(tracelog::CompiledLog::compile(log));
    }

    sim::FleetOptions options;
    options.budgetBytes = 32 * kKiB;
    options.store.shards = 4;
    options.store.capacityBytes = 256 * kKiB;
    sim::FleetSimulator fleet(compiled, options);
    fleet.run();

    std::vector<SubjectReport> reports;
    {
        SubjectReport report;
        report.name = "fleet:store";
        analysis::runPasses(
            analysis::AnalysisInput::forSharedStore(
                *fleet.store(), fleet.processCount()),
            report.engine);
        reports.push_back(std::move(report));
    }
    for (unsigned p = 0; p < fleet.processCount(); ++p) {
        SubjectReport report;
        report.name = format("fleet:p{}", p);
        report.engine = analysis::checkManager(fleet.pipeline(p));
        reports.push_back(std::move(report));
    }
    return reports;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--json FILE] [--profile NAME]... "
                 "[--tier NAME]... [--journal FILE]... [--seed N] "
                 "[--quiet]\n"
                 "       %s --list-checks\n"
                 "       %s --explain-fast-path [--tier NAME]...\n",
                 argv0, argv0, argv0);
}

/** Last path component of @p path (journal subject labels). */
std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path
                                      : path.substr(slash + 1);
}

/** The JSON schema identifier written to --json reports. Bump when
 *  the report shape changes so consumers can dispatch on it. */
constexpr const char *kJsonSchema = "gencheck/2";

/** Print every report, emit the JSON document, and map the findings
 *  to the exit status (0 clean, 1 errors). */
int
reportAndExit(const std::vector<SubjectReport> &reports,
              std::ofstream &json_out, bool quiet)
{
    std::size_t errors = 0;
    std::size_t total = 0;
    for (const SubjectReport &report : reports) {
        errors += report.engine.errorCount();
        total += report.engine.size();
        if (!quiet) {
            std::printf("== %s ==\n%s\n", report.name.c_str(),
                        report.engine.textReport().c_str());
        }
    }
    std::printf("gencheck: %zu subject%s, %zu diagnostic%s, %zu "
                "error%s\n",
                reports.size(), reports.size() == 1 ? "" : "s", total,
                total == 1 ? "" : "s", errors,
                errors == 1 ? "" : "s");

    if (json_out.is_open()) {
        json_out << "{\"schema\": \"" << kJsonSchema
                 << "\", \"subjects\": [";
        for (std::size_t i = 0; i < reports.size(); ++i) {
            if (i > 0) {
                json_out << ", ";
            }
            json_out << "{\"name\": \""
                     << analysis::jsonEscape(reports[i].name)
                     << "\", \"report\": "
                     << reports[i].engine.jsonReport() << "}";
        }
        json_out << "], \"errors\": " << errors << "}\n";
    }
    return errors > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::vector<std::string> profile_names;
    std::vector<std::string> tier_names;
    std::vector<std::string> journal_paths;
    std::uint64_t seed = 2003;
    bool quiet = false;
    bool list_checks = false;
    bool explain_fast_path = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--profile" && i + 1 < argc) {
            profile_names.push_back(argv[++i]);
        } else if (arg == "--tier" && i + 1 < argc) {
            tier_names.push_back(argv[++i]);
        } else if (arg == "--journal" && i + 1 < argc) {
            journal_paths.push_back(argv[++i]);
        } else if (arg == "--list-checks") {
            list_checks = true;
        } else if (arg == "--explain-fast-path") {
            explain_fast_path = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            const char *text = argv[++i];
            char *end = nullptr;
            seed = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0') {
                std::fprintf(stderr,
                             "gencheck: --seed wants a number, got "
                             "'%s'\n",
                             text);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (list_checks) {
        std::printf("%s\n", analysis::checkRegistryJson().c_str());
        return 0;
    }
    if (profile_names.empty()) {
        profile_names = {"gzip", "mpeg"};
    }

    // Reject unknown profiles (and an unwritable report path) before
    // spending a second simulating anything; a usage error must exit
    // 2, not findProfile's fatal() mid-run.
    std::vector<workload::BenchmarkProfile> profiles;
    for (const std::string &name : profile_names) {
        bool found = false;
        for (workload::BenchmarkProfile &profile :
             workload::allProfiles()) {
            if (profile.name == name) {
                profiles.push_back(std::move(profile));
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "gencheck: unknown benchmark profile '%s'\n",
                         name.c_str());
            return 2;
        }
    }
    std::vector<cache::TierTopology> topologies;
    if (tier_names.empty()) {
        topologies = cache::namedTierTopologies();
    } else {
        for (const std::string &name : tier_names) {
            const cache::TierTopology *topology =
                cache::findTierTopology(name);
            if (topology == nullptr) {
                std::fprintf(stderr,
                             "gencheck: unknown tier topology '%s'\n",
                             name.c_str());
                return 2;
            }
            topologies.push_back(*topology);
        }
    }
    std::ofstream json_out;
    if (!json_path.empty()) {
        json_out.open(json_path);
        if (!json_out) {
            std::fprintf(stderr, "gencheck: cannot write %s\n",
                         json_path.c_str());
            return 2;
        }
    }

    if (explain_fast_path) {
        for (const cache::TierTopology &topology : topologies) {
            analysis::FastPathExplanation answer =
                analysis::explainFastReplay(topology);
            std::printf("%s: %s\n", topology.name.c_str(),
                        answer.eligible ? "eligible" : "ineligible");
            for (const std::string &blocker : answer.blockers) {
                std::printf("  - %s\n", blocker.c_str());
            }
            if (answer.eligible) {
                std::printf("  (provided %s)\n",
                            answer.listenerCaveat.c_str());
            }
        }
        return 0;
    }

    // Journals must all load before anything is checked: a missing or
    // malformed subject is a distinct failure (exit 3), not a finding.
    std::vector<tracelog::AccessLog> journals;
    for (const std::string &path : journal_paths) {
        tracelog::AccessLog log;
        std::string error;
        if (!tracelog::tryLoadLog(path, log, error)) {
            std::fprintf(stderr, "gencheck: %s\n", error.c_str());
            return 3;
        }
        journals.push_back(std::move(log));
    }

    std::vector<SubjectReport> reports;
    for (const cache::TierTopology &topology : topologies) {
        reports.push_back(lintTopologySubject(topology));
    }
    if (!journals.empty()) {
        // Offline temporal mode: check the recorded event streams
        // only; the synthetic live/sim subjects are skipped.
        for (std::size_t j = 0; j < journals.size(); ++j) {
            for (SubjectReport &report : checkJournalSubjects(
                     baseName(journal_paths[j]), journals[j],
                     topologies)) {
                reports.push_back(std::move(report));
            }
        }
        return reportAndExit(reports, json_out, quiet);
    }
    {
        cache::GenerationalConfig config =
            cache::GenerationalConfig::fromProportions(
                /*total=*/4 * kKiB, /*nursery_frac=*/0.40,
                /*probation_frac=*/0.20, /*threshold=*/1);
        cache::GenerationalCacheManager manager(config);
        reports.push_back(
            checkLiveSubject("live:generational", manager, seed));
    }
    {
        cache::UnifiedCacheManager manager(/*capacity=*/2 * kKiB);
        reports.push_back(
            checkLiveSubject("live:unified", manager, seed));
    }
    for (const cache::TierTopology &topology : topologies) {
        // The runtime constructs its manager through the topology
        // catalog too — the live path must work on any pipeline, not
        // just the two legacy adapters.
        std::unique_ptr<cache::TierPipeline> manager =
            topology.build(4 * kKiB);
        reports.push_back(checkLiveSubject(
            format("live:tier:{}", topology.name), *manager, seed));
    }
    for (const workload::BenchmarkProfile &profile : profiles) {
        reports.push_back(checkSimSubject(profile));
        for (SubjectReport &report : checkBatchedSubjects(profile)) {
            reports.push_back(std::move(report));
        }
        for (const cache::TierTopology &topology : topologies) {
            reports.push_back(checkTierSubject(topology, profile));
        }
    }
    for (SubjectReport &report : checkFleetSubjects(seed)) {
        reports.push_back(std::move(report));
    }

    return reportAndExit(reports, json_out, quiet);
}
