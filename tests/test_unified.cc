/**
 * @file
 * Unit tests for the unified cache manager: lookup/insert protocol,
 * module invalidation, listener events, and statistics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "codecache/unified_cache.h"

namespace gencache::cache {
namespace {

/** Records every listener callback for assertions. */
class RecordingListener : public CacheEventListener
{
  public:
    struct Record
    {
        std::string kind;
        TraceId trace;
        Generation gen;
        EvictReason reason;
    };

    void onMiss(TraceId id, TimeUs) override
    {
        records.push_back({"miss", id, Generation::Unified,
                           EvictReason::Capacity});
    }
    void onHit(TraceId id, Generation gen, TimeUs) override
    {
        records.push_back({"hit", id, gen, EvictReason::Capacity});
    }
    void onInsert(const Fragment &frag, Generation gen,
                  TimeUs) override
    {
        records.push_back({"insert", frag.id, gen,
                           EvictReason::Capacity});
    }
    void onEvict(const Fragment &frag, Generation gen,
                 EvictReason reason, TimeUs) override
    {
        records.push_back({"evict", frag.id, gen, reason});
    }
    void onPromote(const Fragment &frag, Generation from, Generation,
                   TimeUs) override
    {
        records.push_back({"promote", frag.id, from,
                           EvictReason::PromotionMove});
    }

    std::size_t count(const std::string &kind) const
    {
        std::size_t n = 0;
        for (const Record &record : records) {
            if (record.kind == kind) {
                ++n;
            }
        }
        return n;
    }

    std::vector<Record> records;
};

TEST(UnifiedCache, MissThenInsertThenHit)
{
    UnifiedCacheManager manager(1024);
    EXPECT_FALSE(manager.lookup(1, 0));
    EXPECT_TRUE(manager.insert(1, 100, 0, 1));
    EXPECT_TRUE(manager.lookup(1, 2));
    EXPECT_TRUE(manager.contains(1));

    const ManagerStats &stats = manager.stats();
    EXPECT_EQ(stats.lookups, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.inserts, 1u);
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.5);
}

TEST(UnifiedCache, CapacityEvictionFlowsToListener)
{
    UnifiedCacheManager manager(100);
    RecordingListener listener;
    manager.setListener(&listener);
    manager.insert(1, 60, 0, 0);
    manager.insert(2, 60, 0, 1);
    EXPECT_EQ(listener.count("insert"), 2u);
    EXPECT_EQ(listener.count("evict"), 1u);
    EXPECT_EQ(listener.records[1].trace, 1u);
    EXPECT_EQ(listener.records[1].reason, EvictReason::Capacity);
    EXPECT_EQ(manager.stats().deletions, 1u);
}

TEST(UnifiedCache, InvalidateModuleRemovesOnlyThatModule)
{
    UnifiedCacheManager manager(10'000);
    manager.insert(1, 100, /*module=*/7, 0);
    manager.insert(2, 100, /*module=*/8, 0);
    manager.insert(3, 100, /*module=*/7, 0);
    manager.invalidateModule(7, 1);
    EXPECT_FALSE(manager.contains(1));
    EXPECT_TRUE(manager.contains(2));
    EXPECT_FALSE(manager.contains(3));
    EXPECT_EQ(manager.stats().unmapDeletions, 2u);
    EXPECT_EQ(manager.stats().unmapDeletedBytes, 200u);
}

TEST(UnifiedCache, UnmapEventsHaveUnmapReason)
{
    UnifiedCacheManager manager(10'000);
    RecordingListener listener;
    manager.setListener(&listener);
    manager.insert(1, 100, 3, 0);
    manager.invalidateModule(3, 1);
    ASSERT_EQ(listener.count("evict"), 1u);
    EXPECT_EQ(listener.records.back().reason, EvictReason::Unmap);
}

TEST(UnifiedCache, PinnedTraceSurvivesPressure)
{
    UnifiedCacheManager manager(100);
    manager.insert(1, 50, 0, 0);
    ASSERT_TRUE(manager.setPinned(1, true));
    for (TraceId id = 2; id < 12; ++id) {
        manager.insert(id, 50, 0, id);
    }
    EXPECT_TRUE(manager.contains(1));
}

TEST(UnifiedCache, SetPinnedOnAbsentTrace)
{
    UnifiedCacheManager manager(100);
    EXPECT_FALSE(manager.setPinned(5, true));
}

TEST(UnifiedCache, UnboundedTracksPeak)
{
    UnifiedCacheManager manager(0);
    for (TraceId id = 1; id <= 10; ++id) {
        manager.insert(id, 1000, 0, id);
    }
    manager.invalidateModule(0, 11);
    EXPECT_EQ(manager.usedBytes(), 0u);
    EXPECT_EQ(manager.peakBytes(), 10'000u);
    EXPECT_EQ(manager.name(), "unified/unbounded");
}

TEST(UnifiedCache, NameDescribesPolicyAndSize)
{
    UnifiedCacheManager manager(2048);
    EXPECT_EQ(manager.name(), "unified/pseudo-circular (2.00 KB)");
}

TEST(UnifiedCacheDeath, DoubleInsertPanics)
{
    UnifiedCacheManager manager(1024);
    manager.insert(1, 100, 0, 0);
    EXPECT_DEATH(manager.insert(1, 100, 0, 1), "resident");
}

TEST(UnifiedCache, PlacementFailureReported)
{
    UnifiedCacheManager manager(64);
    EXPECT_FALSE(manager.insert(1, 100, 0, 0));
    EXPECT_EQ(manager.stats().placementFailures, 1u);
    EXPECT_FALSE(manager.contains(1));
}

} // namespace
} // namespace gencache::cache
