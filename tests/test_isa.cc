/**
 * @file
 * Unit tests for the synthetic ISA: encodings, classification, basic
 * blocks, and disassembly.
 */

#include <gtest/gtest.h>

#include "isa/basic_block.h"
#include "isa/instruction.h"

namespace gencache::isa {
namespace {

TEST(Instruction, SizesAreVariableLength)
{
    EXPECT_EQ(makeNop().sizeBytes(), 1u);
    EXPECT_EQ(makeMov(0, 1).sizeBytes(), 2u);
    EXPECT_EQ(makeAdd(0, 1, 2).sizeBytes(), 3u);
    EXPECT_EQ(makeMovImm(0, 7).sizeBytes(), 6u);
    EXPECT_EQ(makeBranchNz(1, 100).sizeBytes(), 6u);
    EXPECT_EQ(makeReturn().sizeBytes(), 1u);
}

TEST(Instruction, ControlFlowClassification)
{
    EXPECT_TRUE(isControlFlow(Opcode::Jump));
    EXPECT_TRUE(isControlFlow(Opcode::BranchNz));
    EXPECT_TRUE(isControlFlow(Opcode::Call));
    EXPECT_TRUE(isControlFlow(Opcode::Return));
    EXPECT_TRUE(isControlFlow(Opcode::Halt));
    EXPECT_FALSE(isControlFlow(Opcode::Add));
    EXPECT_FALSE(isControlFlow(Opcode::Load));
}

TEST(Instruction, ConditionalBranchClassification)
{
    EXPECT_TRUE(isConditionalBranch(Opcode::BranchNz));
    EXPECT_TRUE(isConditionalBranch(Opcode::BranchZ));
    EXPECT_FALSE(isConditionalBranch(Opcode::Jump));
    EXPECT_FALSE(isConditionalBranch(Opcode::Call));
}

TEST(Instruction, IndirectClassification)
{
    EXPECT_TRUE(isIndirect(Opcode::JumpReg));
    EXPECT_TRUE(isIndirect(Opcode::CallReg));
    EXPECT_TRUE(isIndirect(Opcode::Return));
    EXPECT_FALSE(isIndirect(Opcode::Jump));
    EXPECT_FALSE(isIndirect(Opcode::BranchNz));
}

TEST(Instruction, Disassembly)
{
    EXPECT_EQ(makeAdd(1, 2, 3).toString(), "add r1, r2, r3");
    EXPECT_EQ(makeMovImm(4, -9).toString(), "movi r4, -9");
    EXPECT_EQ(makeBranchZ(5, 4096).toString(), "bz r5, 4096");
    EXPECT_EQ(makeReturn().toString(), "ret");
}

TEST(InstructionDeath, RegisterOutOfRange)
{
    EXPECT_DEATH(makeAdd(16, 0, 0), "out of range");
}

TEST(BasicBlock, AccumulatesSize)
{
    BasicBlock block(1000);
    block.append(makeMovImm(0, 1)); // 6
    block.append(makeAdd(0, 0, 0)); // 3
    block.append(makeJump(2000));   // 5
    EXPECT_EQ(block.sizeBytes(), 14u);
    EXPECT_EQ(block.startAddr(), 1000u);
    EXPECT_EQ(block.endAddr(), 1014u);
    EXPECT_EQ(block.instructionCount(), 3u);
}

TEST(BasicBlock, TerminatorDetection)
{
    BasicBlock block(0);
    block.append(makeNop());
    EXPECT_FALSE(block.isTerminated());
    block.append(makeHalt());
    EXPECT_TRUE(block.isTerminated());
    EXPECT_EQ(block.terminator().opcode, Opcode::Halt);
}

TEST(BasicBlockDeath, AppendAfterTerminator)
{
    BasicBlock block(0);
    block.append(makeJump(8));
    EXPECT_DEATH(block.append(makeNop()), "terminated");
}

TEST(BasicBlockDeath, TerminatorOfOpenBlock)
{
    BasicBlock block(0);
    block.append(makeNop());
    EXPECT_DEATH(block.terminator(), "terminator");
}

TEST(BasicBlock, FallThroughAddr)
{
    BasicBlock block(100);
    block.append(makeBranchNz(0, 50)); // 6 bytes
    EXPECT_EQ(block.fallThroughAddr(), 106u);
}

TEST(BasicBlock, DisassemblyListsInstructions)
{
    BasicBlock block(64);
    block.append(makeMovImm(1, 5));
    block.append(makeHalt());
    std::string text = block.toString();
    EXPECT_NE(text.find("movi r1, 5"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

} // namespace
} // namespace gencache::isa
