#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/thread_pool.h"

namespace {

using namespace gencache;

/** Scoped GENCACHE_THREADS override that restores the prior value. */
class ScopedThreadsEnv
{
  public:
    explicit ScopedThreadsEnv(const char *value)
    {
        const char *old = std::getenv("GENCACHE_THREADS");
        had_ = old != nullptr;
        if (had_) {
            saved_ = old;
        }
        if (value != nullptr) {
            ::setenv("GENCACHE_THREADS", value, 1);
        } else {
            ::unsetenv("GENCACHE_THREADS");
        }
    }

    ~ScopedThreadsEnv()
    {
        if (had_) {
            ::setenv("GENCACHE_THREADS", saved_.c_str(), 1);
        } else {
            ::unsetenv("GENCACHE_THREADS");
        }
    }

  private:
    bool had_ = false;
    std::string saved_;
};

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([i]() { return i * i; }));
    }
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
    }
}

TEST(ThreadPool, SingleWorkerDispatchesFifo)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i) {
        futures.push_back(
            pool.submit([&order, i]() { order.push_back(i); }));
    }
    for (auto &future : futures) {
        future.get();
    }
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    }
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    std::future<int> bad = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    std::future<int> good = pool.submit([]() { return 7; });

    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not take the pool down with it.
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; ++i) {
            pool.submit([&completed]() {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
                completed.fetch_add(1);
            });
        }
        // Futures intentionally discarded: destruction alone must
        // finish the queue.
    }
    EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPool, DefaultThreadCountHonoursEnvironment)
{
    {
        ScopedThreadsEnv env("3");
        EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
        ThreadPool pool; // count 0 -> environment
        EXPECT_EQ(pool.size(), 3u);
    }
    {
        ScopedThreadsEnv env("0"); // nonsense clamps to 1
        EXPECT_EQ(ThreadPool::defaultThreadCount(), 1u);
    }
    {
        ScopedThreadsEnv env("9999"); // clamped to 256
        EXPECT_EQ(ThreadPool::defaultThreadCount(), 256u);
    }
    {
        ScopedThreadsEnv env(nullptr);
        EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    }
}

TEST(ThreadPool, MalformedEnvironmentFallsBackToHardware)
{
    std::size_t hardware;
    {
        ScopedThreadsEnv env(nullptr);
        hardware = ThreadPool::defaultThreadCount();
    }
    // A value that is not a complete decimal number must not silently
    // become 0 -> 1 thread (it used to serialize every experiment);
    // it is rejected and the hardware default used instead.
    for (const char *bad : {"abc", "8x", "", " ", "2.5", "0x4"}) {
        ScopedThreadsEnv env(bad);
        EXPECT_EQ(ThreadPool::defaultThreadCount(), hardware)
            << "GENCACHE_THREADS='" << bad << "'";
    }
    {
        ScopedThreadsEnv env("99999999999999999999"); // ERANGE
        EXPECT_EQ(ThreadPool::defaultThreadCount(), hardware);
    }
    {
        ScopedThreadsEnv env("-2"); // numeric but nonsense: clamp to 1
        EXPECT_EQ(ThreadPool::defaultThreadCount(), 1u);
    }
}

TEST(ThreadPool, ParallelTasksShareWork)
{
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::future<void>> futures;
    for (std::uint64_t i = 1; i <= 1000; ++i) {
        futures.push_back(
            pool.submit([&sum, i]() { sum.fetch_add(i); }));
    }
    for (auto &future : futures) {
        future.get();
    }
    EXPECT_EQ(sum.load(), 1000u * 1001u / 2);
}

} // namespace
