/**
 * @file
 * Unit tests for the support library: formatting, RNG determinism,
 * distribution sanity, and samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "support/format.h"
#include "support/rng.h"
#include "support/simd.h"
#include "support/units.h"

namespace gencache {
namespace {

TEST(Format, SubstitutesPlaceholdersInOrder)
{
    EXPECT_EQ(format("a={} b={}", 1, "two"), "a=1 b=two");
}

TEST(Format, KeepsUnmatchedPlaceholders)
{
    EXPECT_EQ(format("x={} y={}", 7), "x=7 y={}");
}

TEST(Format, AppendsNothingForNoArgs)
{
    EXPECT_EQ(format("plain text"), "plain text");
}

TEST(Format, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
    EXPECT_EQ(withCommas(-1234567), "-1,234,567");
}

TEST(Format, Fixed)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(1.0, 0), "1");
}

TEST(Format, Percent)
{
    EXPECT_EQ(percent(0.182), "18.2%");
    EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Format, HumanBytes)
{
    EXPECT_EQ(humanBytes(512), "512 B");
    EXPECT_EQ(humanBytes(4 * kKiB), "4.00 KB");
    EXPECT_EQ(humanBytes(34 * kMiB + 200 * kKiB), "34.2 MB");
}

TEST(Format, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(Units, SecondsRoundTrip)
{
    EXPECT_EQ(secondsToUs(2.5), 2'500'000ULL);
    EXPECT_DOUBLE_EQ(usToSeconds(secondsToUs(123.0)), 123.0);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.bits(), b.bits());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.bits() == b.bits()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 4);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(7);
    Rng child = a.fork();
    EXPECT_NE(a.bits(), child.bits());
}

TEST(Rng, Uniform01InRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double value = rng.uniform01();
        ASSERT_GE(value, 0.0);
        ASSERT_LT(value, 1.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t value = rng.uniformInt(-2, 3);
        ASSERT_GE(value, -2);
        ASSERT_LE(value, 3);
        seen.insert(value);
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, NormalMeanAndSpread)
{
    Rng rng(5);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double value = rng.normal();
        sum += value;
        sq += value * value;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(9);
    std::vector<double> values;
    const int n = 20001;
    values.reserve(n);
    for (int i = 0; i < n; ++i) {
        values.push_back(rng.lognormal(std::log(242.0), 0.5));
    }
    std::sort(values.begin(), values.end());
    // Median of exp(N(mu, s)) is exp(mu) = 242.
    EXPECT_NEAR(values[n / 2], 242.0, 20.0);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += rng.exponential(5.0);
    }
    EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        hits += rng.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(DiscreteSampler, MatchesWeights)
{
    Rng rng(23);
    DiscreteSampler sampler({1.0, 3.0, 6.0});
    std::array<int, 3> counts{};
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        ++counts[sampler.sample(rng)];
    }
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(DiscreteSampler, NormalizedProbabilities)
{
    DiscreteSampler sampler({2.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(sampler.probability(0), 0.25);
    EXPECT_DOUBLE_EQ(sampler.probability(2), 0.5);
}

TEST(ZipfSampler, RankOneDominates)
{
    Rng rng(29);
    ZipfSampler zipf(100, 1.0);
    std::uint64_t first = 0;
    std::uint64_t tail = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        std::size_t rank = zipf.sample(rng);
        ASSERT_GE(rank, 1u);
        ASSERT_LE(rank, 100u);
        if (rank == 1) {
            ++first;
        } else if (rank > 50) {
            ++tail;
        }
    }
    EXPECT_GT(first, tail);
    EXPECT_GT(zipf.probability(1), zipf.probability(2));
}

TEST(Simd, ByteOccurrenceMaskMatchesScalarReference)
{
    // Exercise every length around the 32-byte vector width so both
    // the SIMD body and the scalar tail are covered, whichever kernel
    // the dispatcher picked.
    Rng rng(99);
    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          std::size_t{31}, std::size_t{32},
                          std::size_t{33}, std::size_t{64},
                          std::size_t{1000}}) {
        std::vector<std::uint8_t> data(n);
        std::uint8_t expected = 0;
        for (std::size_t i = 0; i < n; ++i) {
            data[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(rng.uniformInt(0, 5)));
            expected |= static_cast<std::uint8_t>(1u << data[i]);
        }
        EXPECT_EQ(simd::byteOccurrenceMask(data.data(), n), expected)
            << "n=" << n;
    }
}

TEST(Simd, ByteEqMaskMatchesScalarReference)
{
    Rng rng(7);
    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          std::size_t{32}, std::size_t{33},
                          std::size_t{64}}) {
        std::vector<std::uint8_t> data(n);
        std::uint64_t expected = 0;
        for (std::size_t i = 0; i < n; ++i) {
            data[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(rng.uniformInt(0, 2)));
            expected |=
                static_cast<std::uint64_t>(data[i] == 1) << i;
        }
        EXPECT_EQ(simd::byteEqMask(data.data(), n, 1), expected)
            << "n=" << n;
    }
}

TEST(Simd, ActiveModeIsNamed)
{
    const std::string mode = simd::activeSimdMode();
    EXPECT_TRUE(mode == "avx2" || mode == "scalar" ||
                mode == "scalar (simd disabled)");
}

} // namespace
} // namespace gencache
