// Bit-identity of the compiled/batched replay fast paths against the
// legacy per-event CacheSimulator. The CompiledLog relabels traces to
// dense ids and BatchedReplay hoists event decode out of the lane
// loop; neither may change a single counter of any SimResult.

#include <gtest/gtest.h>

#include <algorithm>

#include "codecache/generational_cache.h"
#include "codecache/unified_cache.h"
#include "sim/batched_replay.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "workload/profile.h"

namespace {

using namespace gencache;

void
expectIdentical(const sim::SimResult &a, const sim::SimResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.benchmark, b.benchmark) << what;
    EXPECT_EQ(a.lookups, b.lookups) << what;
    EXPECT_EQ(a.hits, b.hits) << what;
    EXPECT_EQ(a.misses, b.misses) << what;
    EXPECT_EQ(a.regenerations, b.regenerations) << what;
    EXPECT_EQ(a.peakBytes, b.peakBytes) << what;
    EXPECT_EQ(a.createdTraces, b.createdTraces) << what;
    EXPECT_EQ(a.createdBytes, b.createdBytes) << what;

    const cache::ManagerStats &x = a.managerStats;
    const cache::ManagerStats &y = b.managerStats;
    EXPECT_EQ(x.lookups, y.lookups) << what;
    EXPECT_EQ(x.hits, y.hits) << what;
    EXPECT_EQ(x.misses, y.misses) << what;
    EXPECT_EQ(x.inserts, y.inserts) << what;
    EXPECT_EQ(x.insertedBytes, y.insertedBytes) << what;
    EXPECT_EQ(x.deletions, y.deletions) << what;
    EXPECT_EQ(x.deletedBytes, y.deletedBytes) << what;
    EXPECT_EQ(x.unmapDeletions, y.unmapDeletions) << what;
    EXPECT_EQ(x.unmapDeletedBytes, y.unmapDeletedBytes) << what;
    EXPECT_EQ(x.promotions, y.promotions) << what;
    EXPECT_EQ(x.promotedBytes, y.promotedBytes) << what;
    EXPECT_EQ(x.probationRejections, y.probationRejections) << what;
    EXPECT_EQ(x.placementFailures, y.placementFailures) << what;

    EXPECT_EQ(a.overhead.traceGeneration, b.overhead.traceGeneration)
        << what;
    EXPECT_EQ(a.overhead.contextSwitches, b.overhead.contextSwitches)
        << what;
    EXPECT_EQ(a.overhead.evictions, b.overhead.evictions) << what;
    EXPECT_EQ(a.overhead.promotions, b.overhead.promotions) << what;
    EXPECT_EQ(a.overhead.copies, b.overhead.copies) << what;
}

std::uint64_t
managedCapacity(const sim::ExperimentRunner &runner)
{
    std::uint64_t peak = runner.runUnbounded().peakBytes;
    std::uint64_t capacity = static_cast<std::uint64_t>(
        static_cast<double>(peak) * sim::kCachePressureFactor);
    return capacity < 4096 ? 4096 : capacity;
}

// Every example workload, every sweep threshold: one batched pass
// must reproduce the legacy per-layout replays exactly.
TEST(ReplayIdentity, BatchedMatchesLegacyOnAllWorkloads)
{
    for (const workload::BenchmarkProfile &profile :
         workload::allProfiles()) {
        sim::ExperimentRunner runner(profile);
        std::uint64_t capacity = managedCapacity(runner);

        std::vector<sim::GenerationalLayout> layouts;
        for (std::uint32_t threshold : sim::defaultSweepThresholds()) {
            sim::GenerationalLayout layout;
            layout.label = "45-10-45";
            layout.nurseryFrac = 0.45;
            layout.probationFrac = 0.10;
            layout.promotionThreshold = threshold;
            layouts.push_back(layout);
        }

        std::vector<sim::SimResult> batched =
            runner.runGenerationalBatch(capacity, layouts);
        ASSERT_EQ(batched.size(), layouts.size());
        for (std::size_t i = 0; i < layouts.size(); ++i) {
            sim::SimResult legacy =
                runner.runGenerational(capacity, layouts[i]);
            expectIdentical(legacy, batched[i],
                            profile.name + " thr " +
                                std::to_string(
                                    layouts[i].promotionThreshold));
        }
    }
}

// The blocked (chunk x lane-block, table-priced, SIMD-classified)
// kernel against the per-event reference kernel: every profile, lane
// counts straddling the lane-block size (1, a partial block, exactly
// one block, one block plus a straggler). Every SimResult field —
// counters, manager stats, and the overhead breakdown priced by the
// precomputed cost tables — must be bit-identical.
TEST(ReplayIdentity, BlockedKernelMatchesReferenceAcrossLaneCounts)
{
    const std::size_t block = sim::BatchedReplay::kLaneBlock;
    const std::size_t laneCounts[] = {1, 3, block, block + 1};
    const std::uint32_t thresholds[] = {1, 5, 10, 50};

    for (const workload::BenchmarkProfile &profile :
         workload::allProfiles()) {
        sim::ExperimentRunner runner(profile);
        // Cheap capacity proxy (both kernels see the same value, so
        // the exact pressure point is immaterial here).
        std::uint64_t capacity = std::max<std::uint64_t>(
            4096, static_cast<std::uint64_t>(profile.finalCacheKb) *
                      512);

        for (std::size_t lanes : laneCounts) {
            std::vector<sim::GenerationalLayout> layouts;
            for (std::size_t i = 0; i < lanes; ++i) {
                sim::GenerationalLayout layout;
                layout.label = "45-10-45 thr " +
                               std::to_string(thresholds[i % 4]);
                layout.nurseryFrac = 0.45;
                layout.probationFrac = 0.10;
                layout.promotionThreshold = thresholds[i % 4];
                layouts.push_back(std::move(layout));
            }
            std::vector<sim::SimResult> reference =
                runner.runGenerationalBatch(
                    capacity, layouts, sim::ReplayKernel::Reference);
            std::vector<sim::SimResult> blocked =
                runner.runGenerationalBatch(
                    capacity, layouts, sim::ReplayKernel::Blocked);
            ASSERT_EQ(reference.size(), lanes);
            ASSERT_EQ(blocked.size(), lanes);
            for (std::size_t i = 0; i < lanes; ++i) {
                expectIdentical(reference[i], blocked[i],
                                profile.name + " lanes " +
                                    std::to_string(lanes) + " lane " +
                                    std::to_string(i));
            }
        }
    }
}

// The single-manager compiled fast path (CacheSimulator overload).
TEST(ReplayIdentity, CompiledSimulatorMatchesLegacyUnified)
{
    sim::ExperimentRunner runner(workload::findProfile("vortex"));
    std::uint64_t capacity = managedCapacity(runner);

    cache::UnifiedCacheManager legacyManager(capacity);
    sim::CacheSimulator legacySim(legacyManager);
    sim::SimResult legacy = legacySim.run(runner.log());

    cache::UnifiedCacheManager fastManager(capacity);
    sim::CacheSimulator fastSim(fastManager);
    sim::SimResult fast = fastSim.run(runner.compiled());

    expectIdentical(legacy, fast, "unified compiled fast path");
}

TEST(ReplayIdentity, CompiledSimulatorMatchesLegacyGenerational)
{
    sim::ExperimentRunner runner(workload::findProfile("crafty"));
    std::uint64_t capacity = managedCapacity(runner);
    cache::GenerationalConfig config =
        cache::GenerationalConfig::fromProportions(capacity, 0.45,
                                                   0.10, 1);

    cache::GenerationalCacheManager legacyManager(config);
    sim::CacheSimulator legacySim(legacyManager);
    sim::SimResult legacy = legacySim.run(runner.log());

    cache::GenerationalCacheManager fastManager(config);
    sim::CacheSimulator fastSim(fastManager);
    sim::SimResult fast = fastSim.run(runner.compiled());

    expectIdentical(legacy, fast, "generational compiled fast path");
}

// Whole-sweep equivalence of the two engines, serial and threaded.
TEST(ReplayIdentity, SweepEnginesProduceIdenticalCells)
{
    workload::BenchmarkProfile profile = workload::findProfile("gcc");
    auto points = sim::defaultSweepPoints();
    auto thresholds = sim::defaultSweepThresholds();

    sim::SweepResult legacy = sim::runSweep(
        profile, points, thresholds, 1, sim::ReplayEngine::Legacy);
    sim::SweepResult batchedSerial =
        sim::runSweep(profile, points, thresholds, 1,
                      sim::ReplayEngine::BatchedCompiled);
    sim::SweepResult batchedThreaded =
        sim::runSweep(profile, points, thresholds, 4,
                      sim::ReplayEngine::BatchedCompiled);

    auto expect_cells = [&](const sim::SweepResult &a,
                            const sim::SweepResult &b) {
        EXPECT_EQ(a.benchmark, b.benchmark);
        EXPECT_EQ(a.capacityBytes, b.capacityBytes);
        EXPECT_EQ(a.unifiedMissRate, b.unifiedMissRate);
        ASSERT_EQ(a.cells.size(), b.cells.size());
        for (std::size_t i = 0; i < a.cells.size(); ++i) {
            EXPECT_EQ(a.cells[i].threshold, b.cells[i].threshold)
                << "cell " << i;
            EXPECT_EQ(a.cells[i].missRate, b.cells[i].missRate)
                << "cell " << i;
            EXPECT_EQ(a.cells[i].promotions, b.cells[i].promotions)
                << "cell " << i;
            EXPECT_EQ(a.cells[i].missRateReductionPct,
                      b.cells[i].missRateReductionPct)
                << "cell " << i;
        }
    };
    expect_cells(legacy, batchedSerial);
    expect_cells(legacy, batchedThreaded);
}

} // namespace
