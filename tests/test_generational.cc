/**
 * @file
 * Unit tests for the generational cache manager: the Figure 8
 * algorithm (nursery -> probation -> persistent cascade), promotion
 * thresholds, eager promotion, unmap handling, and invariants.
 */

#include <gtest/gtest.h>

#include "codecache/generational_cache.h"

namespace gencache::cache {
namespace {

GenerationalConfig
smallConfig(std::uint32_t threshold = 1, bool eager = false)
{
    GenerationalConfig config;
    config.nurseryBytes = 100;
    config.probationBytes = 100;
    config.persistentBytes = 100;
    config.promotionThreshold = threshold;
    config.eagerPromotion = eager;
    return config;
}

TEST(GenerationalConfig, FromProportionsSumsExactly)
{
    GenerationalConfig config = GenerationalConfig::fromProportions(
        1'000'000, 0.45, 0.10, 1);
    EXPECT_EQ(config.nurseryBytes, 450'000u);
    EXPECT_EQ(config.probationBytes, 100'000u);
    EXPECT_EQ(config.persistentBytes, 450'000u);
    EXPECT_EQ(config.totalBytes(), 1'000'000u);
}

TEST(GenerationalConfig, FromProportionsOddTotal)
{
    GenerationalConfig config = GenerationalConfig::fromProportions(
        999'999, 1.0 / 3.0, 1.0 / 3.0, 10);
    EXPECT_EQ(config.totalBytes(), 999'999u);
}

TEST(Generational, NewTracesEnterNursery)
{
    GenerationalCacheManager manager(smallConfig());
    ASSERT_TRUE(manager.insert(1, 40, 0, 0));
    EXPECT_EQ(manager.generationOf(1), Generation::Nursery);
    EXPECT_TRUE(manager.lookup(1, 1));
    manager.validate();
}

TEST(Generational, NurseryEvictionPromotesToProbation)
{
    GenerationalCacheManager manager(smallConfig());
    manager.insert(1, 60, 0, 0);
    manager.insert(2, 60, 0, 1); // evicts 1 from the nursery
    EXPECT_EQ(manager.generationOf(1), Generation::Probation);
    EXPECT_EQ(manager.generationOf(2), Generation::Nursery);
    EXPECT_EQ(manager.stats().promotions, 1u);
    EXPECT_TRUE(manager.lookup(1, 2)); // still a hit: it lives on
    manager.validate();
}

TEST(Generational, ColdProbationVictimIsDeleted)
{
    // Threshold 1: a probation victim with zero hits is rejected.
    GenerationalCacheManager manager(smallConfig(1));
    manager.insert(1, 60, 0, 0);
    manager.insert(2, 60, 0, 1); // 1 -> probation (0 hits there)
    manager.insert(3, 60, 0, 2); // 2 -> probation, 1 evicted: rejected
    EXPECT_FALSE(manager.contains(1));
    EXPECT_EQ(manager.stats().probationRejections, 1u);
    manager.validate();
}

TEST(Generational, HotProbationVictimIsPromoted)
{
    GenerationalCacheManager manager(smallConfig(1));
    manager.insert(1, 60, 0, 0);
    manager.insert(2, 60, 0, 1); // 1 -> probation
    EXPECT_TRUE(manager.lookup(1, 2)); // one probation hit
    manager.insert(3, 60, 0, 3); // probation eviction: 1 promoted
    EXPECT_EQ(manager.generationOf(1), Generation::Persistent);
    EXPECT_TRUE(manager.contains(1));
    EXPECT_EQ(manager.stats().promotions, 3u); // 1->P twice, 2->prob
    manager.validate();
}

TEST(Generational, ThresholdGatesPromotion)
{
    GenerationalCacheManager manager(smallConfig(3));
    manager.insert(1, 60, 0, 0);
    manager.insert(2, 60, 0, 1); // 1 -> probation
    manager.lookup(1, 2);
    manager.lookup(1, 3); // two hits < threshold 3
    manager.insert(3, 60, 0, 4);
    EXPECT_FALSE(manager.contains(1)); // rejected
    manager.validate();
}

TEST(Generational, EagerPromotionOnHit)
{
    GenerationalCacheManager manager(smallConfig(1, /*eager=*/true));
    manager.insert(1, 60, 0, 0);
    manager.insert(2, 60, 0, 1); // 1 -> probation
    EXPECT_TRUE(manager.lookup(1, 2)); // single hit promotes at once
    EXPECT_EQ(manager.generationOf(1), Generation::Persistent);
    manager.validate();
}

TEST(Generational, PersistentEvictionDeletes)
{
    GenerationalCacheManager manager(smallConfig(1, true));
    // Fill the persistent cache through eager promotion.
    TimeUs t = 0;
    for (TraceId id = 1; id <= 3; ++id) {
        manager.insert(id, 60, 0, ++t);
        manager.insert(id + 100, 60, 0, ++t); // push id to probation
        manager.lookup(id, ++t);              // promote id
    }
    // Persistent holds 100 bytes: only one 60-byte trace fits; the
    // earlier ones were deleted on eviction.
    std::size_t persistent = 0;
    for (TraceId id = 1; id <= 3; ++id) {
        if (manager.contains(id) &&
            manager.generationOf(id) == Generation::Persistent) {
            ++persistent;
        }
    }
    EXPECT_EQ(persistent, 1u);
    EXPECT_GT(manager.stats().deletions, 0u);
    manager.validate();
}

TEST(Generational, LookupMissReported)
{
    GenerationalCacheManager manager(smallConfig());
    EXPECT_FALSE(manager.lookup(42, 0));
    EXPECT_EQ(manager.stats().misses, 1u);
}

TEST(Generational, InvalidateModuleSweepsAllGenerations)
{
    GenerationalCacheManager manager(smallConfig(1));
    manager.insert(1, 60, /*module=*/5, 0);
    manager.insert(2, 60, /*module=*/5, 1); // 1 -> probation
    manager.lookup(1, 2);
    manager.insert(3, 60, /*module=*/5, 3); // 1 -> persistent
    ASSERT_EQ(manager.generationOf(1), Generation::Persistent);
    ASSERT_EQ(manager.generationOf(2), Generation::Probation);
    ASSERT_EQ(manager.generationOf(3), Generation::Nursery);

    manager.invalidateModule(5, 4);
    EXPECT_FALSE(manager.contains(1));
    EXPECT_FALSE(manager.contains(2));
    EXPECT_FALSE(manager.contains(3));
    EXPECT_EQ(manager.stats().unmapDeletions, 3u);
    EXPECT_EQ(manager.usedBytes(), 0u);
    manager.validate();
}

TEST(Generational, AccessCountResetsOnProbationEntry)
{
    GenerationalCacheManager manager(smallConfig(2));
    manager.insert(1, 60, 0, 0);
    manager.lookup(1, 1); // nursery hits do not count (no counters)
    manager.lookup(1, 2);
    manager.insert(2, 60, 0, 3); // 1 -> probation with count 0
    manager.insert(3, 60, 0, 4); // 1 evicted: count 0 < 2 -> rejected
    EXPECT_FALSE(manager.contains(1));
    manager.validate();
}

TEST(Generational, PinnedTraceNotEvictedFromNursery)
{
    GenerationalCacheManager manager(smallConfig());
    manager.insert(1, 60, 0, 0);
    ASSERT_TRUE(manager.setPinned(1, true));
    manager.insert(2, 30, 0, 1);
    manager.insert(3, 30, 0, 2);
    manager.insert(4, 30, 0, 3);
    EXPECT_EQ(manager.generationOf(1), Generation::Nursery);
    manager.validate();
}

TEST(Generational, GenerationStatsTrackFlows)
{
    GenerationalCacheManager manager(smallConfig(1));
    manager.insert(1, 60, 0, 0);
    manager.insert(2, 60, 0, 1);
    manager.lookup(1, 2);
    manager.insert(3, 60, 0, 3);
    const GenerationStats &nursery =
        manager.generationStats(Generation::Nursery);
    const GenerationStats &probation =
        manager.generationStats(Generation::Probation);
    const GenerationStats &persistent =
        manager.generationStats(Generation::Persistent);
    EXPECT_EQ(nursery.promotionsOut, 2u);
    EXPECT_EQ(probation.promotionsIn, 2u);
    EXPECT_EQ(probation.promotionsOut, 1u);
    EXPECT_EQ(persistent.promotionsIn, 1u);
    EXPECT_EQ(probation.hits, 1u);
}

TEST(Generational, UsedBytesSumsGenerations)
{
    GenerationalCacheManager manager(smallConfig());
    manager.insert(1, 60, 0, 0);
    manager.insert(2, 60, 0, 1);
    EXPECT_EQ(manager.usedBytes(), 120u);
    EXPECT_EQ(manager.totalCapacity(), 300u);
}

TEST(Generational, NameEncodesLayout)
{
    GenerationalConfig config = GenerationalConfig::fromProportions(
        1'000'000, 0.45, 0.10, 1);
    GenerationalCacheManager manager(config);
    EXPECT_EQ(manager.name(), "generational 45-10-45 thr=1");
    GenerationalConfig eager_config =
        GenerationalConfig::fromProportions(1'000'000, 0.45, 0.10, 1,
                                            true);
    GenerationalCacheManager eager_manager(eager_config);
    EXPECT_EQ(eager_manager.name(), "generational 45-10-45 thr=1 eager");
}

TEST(GenerationalDeath, GenerationOfAbsentTrace)
{
    GenerationalCacheManager manager(smallConfig());
    EXPECT_DEATH(manager.generationOf(9), "not resident");
}

TEST(GenerationalDeath, DoubleInsert)
{
    GenerationalCacheManager manager(smallConfig());
    manager.insert(1, 10, 0, 0);
    EXPECT_DEATH(manager.insert(1, 10, 0, 1), "resident");
}

TEST(Generational, OversizedTraceFailsPlacement)
{
    GenerationalCacheManager manager(smallConfig());
    EXPECT_FALSE(manager.insert(1, 150, 0, 0)); // > nursery capacity
    EXPECT_EQ(manager.stats().placementFailures, 1u);
    manager.validate();
}

} // namespace
} // namespace gencache::cache
