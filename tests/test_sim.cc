/**
 * @file
 * Unit tests for the trace-driven simulator and the experiment runner
 * (§6 methodology).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/checker.h"
#include "codecache/generational_cache.h"
#include "sim/sweep.h"
#include "codecache/unified_cache.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace gencache::sim {
namespace {

using tracelog::AccessLog;
using tracelog::Event;

AccessLog
hotColdLog()
{
    // One hot trace (1) executed throughout; a stream of cold traces
    // creating pressure.
    AccessLog log;
    log.setBenchmark("hot-cold");
    log.setDuration(100'000);
    log.append(Event::moduleLoad(0, 0));
    log.append(Event::traceCreate(1, 1, 100, 0));
    TimeUs t = 2;
    cache::TraceId next = 2;
    for (int round = 0; round < 200; ++round) {
        log.append(Event::traceExec(t++, 1));
        log.append(Event::traceCreate(t++, next, 100, 0));
        log.append(Event::traceExec(t++, next));
        ++next;
    }
    return log;
}

TEST(CacheSimulator, UnboundedHasOnlyCompulsoryBehaviour)
{
    cache::UnifiedCacheManager manager(0);
    CacheSimulator simulator(manager);
    SimResult result = simulator.run(hotColdLog());
    EXPECT_EQ(result.misses, 0u);
    EXPECT_EQ(result.regenerations, 0u);
    EXPECT_EQ(result.createdTraces, 201u);
    EXPECT_EQ(result.peakBytes, 201u * 100u);
}

TEST(CacheSimulator, PressuredUnifiedCacheMisses)
{
    cache::UnifiedCacheManager manager(1'000); // holds 10 traces
    CacheSimulator simulator(manager);
    SimResult result = simulator.run(hotColdLog());
    EXPECT_GT(result.misses, 0u);
    EXPECT_GT(result.missRate(), 0.0);
    EXPECT_GT(result.regenerations, 0u);
    EXPECT_GT(result.overhead.total(), 0u);
}

TEST(CacheSimulator, GenerationalProtectsHotTrace)
{
    // The hot trace earns promotion and stops missing; the unified
    // FIFO keeps evicting it. Same total capacity for both.
    std::uint64_t total = 1'000;

    cache::UnifiedCacheManager unified(total);
    CacheSimulator unified_sim(unified);
    SimResult unified_result = unified_sim.run(hotColdLog());

    cache::GenerationalConfig config =
        cache::GenerationalConfig::fromProportions(total, 0.45, 0.10,
                                                   1);
    cache::GenerationalCacheManager generational(config);
    CacheSimulator generational_sim(generational);
    analysis::attachPhaseChecks(generational_sim);
    SimResult generational_result = generational_sim.run(hotColdLog());

    EXPECT_LT(generational_result.misses, unified_result.misses);
}

TEST(CacheSimulator, ModuleUnloadForcesEvictions)
{
    AccessLog log;
    log.setBenchmark("unload");
    log.setDuration(1000);
    log.append(Event::moduleLoad(0, 0));
    log.append(Event::moduleLoad(0, 1));
    log.append(Event::traceCreate(1, 1, 100, 1));
    log.append(Event::traceExec(2, 1));
    log.append(Event::moduleUnload(3, 1));

    cache::UnifiedCacheManager manager(0);
    CacheSimulator simulator(manager);
    // Under GENCACHE_CHECK=1 the cheap analysis passes re-verify the
    // cache storage after every module load/unload replayed here.
    analysis::attachPhaseChecks(simulator);
    SimResult result = simulator.run(log);
    EXPECT_EQ(result.managerStats.unmapDeletions, 1u);
    EXPECT_FALSE(manager.contains(1));
}

TEST(CacheSimulator, PinPreventsEviction)
{
    AccessLog log;
    log.setBenchmark("pin");
    log.setDuration(1000);
    log.append(Event::moduleLoad(0, 0));
    log.append(Event::traceCreate(1, 1, 60, 0));
    log.append(Event::pin(2, 1));
    // Pressure that would otherwise evict trace 1 (cache holds 100B).
    log.append(Event::traceCreate(3, 2, 30, 0));
    log.append(Event::traceCreate(4, 3, 30, 0));
    log.append(Event::traceCreate(5, 4, 30, 0));
    log.append(Event::unpin(6, 1));
    log.append(Event::traceExec(7, 1));

    cache::UnifiedCacheManager manager(100);
    CacheSimulator simulator(manager);
    SimResult result = simulator.run(log);
    EXPECT_EQ(result.misses, 0u); // pinned trace survived
}

TEST(CacheSimulator, MissRegenerationRestoresPinState)
{
    AccessLog log;
    log.setBenchmark("repin");
    log.setDuration(1000);
    log.append(Event::moduleLoad(0, 0));
    log.append(Event::traceCreate(1, 1, 60, 0));
    // Evict trace 1 with pressure, pin it while absent, then execute:
    // the regeneration must re-apply the pin.
    log.append(Event::traceCreate(2, 2, 60, 0));
    log.append(Event::pin(3, 1));
    log.append(Event::traceExec(4, 1)); // miss + regenerate + pin
    log.append(Event::traceCreate(5, 3, 30, 0));
    log.append(Event::traceCreate(6, 4, 30, 0));
    log.append(Event::traceExec(7, 1)); // must still be resident

    cache::UnifiedCacheManager manager(100);
    CacheSimulator simulator(manager);
    SimResult result = simulator.run(log);
    EXPECT_EQ(result.misses, 1u);
}

TEST(ExperimentRunner, PipelineProducesConsistentComparison)
{
    workload::BenchmarkProfile profile;
    profile.name = "exp-tiny";
    profile.durationSec = 2.0;
    profile.finalCacheKb = 96.0;
    profile.execsPerTraceMean = 20.0;
    profile.seed = 13;

    ExperimentRunner runner(profile);
    BenchmarkComparison comparison = runner.compare(paperLayouts());

    EXPECT_GT(comparison.maxCacheBytes, 0u);
    EXPECT_EQ(comparison.capacityBytes,
              std::max<std::uint64_t>(
                  4096, static_cast<std::uint64_t>(std::llround(
                            comparison.maxCacheBytes * 0.5))));
    EXPECT_EQ(comparison.unbounded.misses, 0u);
    EXPECT_GT(comparison.unified.misses, 0u);
    ASSERT_EQ(comparison.generational.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_GT(comparison.generational[i].lookups, 0u);
        // Total capacity is conserved across layouts.
        EXPECT_EQ(comparison.generational[i].managerStats.lookups,
                  comparison.unified.managerStats.lookups);
    }
}

TEST(ExperimentRunner, MissesEliminatedMatchesDifference)
{
    workload::BenchmarkProfile profile;
    profile.name = "exp-diff";
    profile.durationSec = 2.0;
    profile.finalCacheKb = 96.0;
    profile.execsPerTraceMean = 20.0;
    profile.seed = 14;

    ExperimentRunner runner(profile);
    BenchmarkComparison comparison = runner.compare(paperLayouts());
    for (std::size_t i = 0; i < comparison.generational.size(); ++i) {
        EXPECT_EQ(comparison.missesEliminated(i),
                  static_cast<std::int64_t>(comparison.unified.misses) -
                      static_cast<std::int64_t>(
                          comparison.generational[i].misses));
    }
}

TEST(ExperimentRunner, LayoutConfigSplitsTotalExactly)
{
    for (const GenerationalLayout &layout : paperLayouts()) {
        cache::GenerationalConfig config = layout.toConfig(1'000'000);
        EXPECT_EQ(config.totalBytes(), 1'000'000u) << layout.label;
    }
}

TEST(CacheSimulator, RegenerationsNeverExceedMisses)
{
    cache::UnifiedCacheManager manager(1'000);
    CacheSimulator simulator(manager);
    SimResult result = simulator.run(hotColdLog());
    EXPECT_LE(result.regenerations, result.misses);
    EXPECT_EQ(result.lookups, result.hits + result.misses);
}

TEST(ExperimentRunner, EagerPromotesAtLeastAsManyTraces)
{
    // Eager promotion upgrades on the hit itself; the lazy variant
    // only upgrades survivors at eviction time. Same workload, same
    // layout: eager can only promote at least as often.
    workload::BenchmarkProfile profile;
    profile.name = "eager-prop";
    profile.durationSec = 2.0;
    profile.finalCacheKb = 96.0;
    profile.execsPerTraceMean = 30.0;
    profile.seed = 31;
    ExperimentRunner runner(profile);
    SimResult unbounded = runner.runUnbounded();
    std::uint64_t capacity =
        std::max<std::uint64_t>(4096, unbounded.peakBytes / 2);

    GenerationalLayout lazy;
    lazy.label = "lazy";
    lazy.nurseryFrac = 0.45;
    lazy.probationFrac = 0.10;
    lazy.promotionThreshold = 1;
    GenerationalLayout eager = lazy;
    eager.label = "eager";
    eager.eagerPromotion = true;

    SimResult lazy_result = runner.runGenerational(capacity, lazy);
    SimResult eager_result = runner.runGenerational(capacity, eager);
    EXPECT_GE(eager_result.managerStats.promotions,
              lazy_result.managerStats.promotions);
}

TEST(Sweep, GridShapeAndBest)
{
    workload::BenchmarkProfile profile;
    profile.name = "sweep-tiny";
    profile.durationSec = 2.0;
    profile.finalCacheKb = 96.0;
    profile.execsPerTraceMean = 25.0;
    profile.seed = 41;

    std::vector<SweepPoint> points = {{0.45, 0.10}, {1.0 / 3, 1.0 / 3}};
    std::vector<std::uint32_t> thresholds = {1, 10};
    SweepResult sweep = runSweep(profile, points, thresholds);

    EXPECT_EQ(sweep.benchmark, "sweep-tiny");
    ASSERT_EQ(sweep.cells.size(), 4u);
    EXPECT_GT(sweep.unifiedMissRate, 0.0);
    for (std::size_t p = 0; p < points.size(); ++p) {
        for (std::size_t t = 0; t < thresholds.size(); ++t) {
            const SweepCell &cell = sweep.at(p, t, thresholds.size());
            EXPECT_EQ(cell.threshold, thresholds[t]);
            EXPECT_GE(cell.missRate, 0.0);
        }
    }
    const SweepCell &best = sweep.best();
    for (const SweepCell &cell : sweep.cells) {
        EXPECT_GE(best.missRateReductionPct,
                  cell.missRateReductionPct);
    }
}

TEST(Sweep, PointLabels)
{
    SweepPoint point{0.45, 0.10};
    EXPECT_EQ(point.label(), "45-10-45");
    SweepPoint even{1.0 / 3.0, 1.0 / 3.0};
    EXPECT_EQ(even.label(), "33-33-34");
}

TEST(Sweep, DefaultGridMatchesPaperSpace)
{
    std::vector<SweepPoint> points = defaultSweepPoints();
    std::vector<std::uint32_t> thresholds = defaultSweepThresholds();
    EXPECT_EQ(points.size(), 6u);
    EXPECT_EQ(thresholds.size(), 4u);
    bool has_winner = false;
    for (const SweepPoint &point : points) {
        if (point.label() == "45-10-45") {
            has_winner = true;
        }
        EXPECT_GT(1.0 - point.nurseryFrac - point.probationFrac, 0.0);
    }
    EXPECT_TRUE(has_winner);
}

TEST(ExperimentRunner, PaperLayoutsMatchFigure9)
{
    std::vector<GenerationalLayout> layouts = paperLayouts();
    ASSERT_EQ(layouts.size(), 3u);
    EXPECT_EQ(layouts[0].label, "33-33-33 thr 10");
    EXPECT_EQ(layouts[0].promotionThreshold, 10u);
    EXPECT_EQ(layouts[2].label, "45-10-45 thr 1");
    EXPECT_EQ(layouts[2].promotionThreshold, 1u);
    EXPECT_NEAR(layouts[2].nurseryFrac, 0.45, 1e-12);
    EXPECT_NEAR(layouts[2].probationFrac, 0.10, 1e-12);
}

} // namespace
} // namespace gencache::sim
