// Fleet simulation and the cross-process shared store.
//
// The two load-bearing promises of the shared tier:
//
//  1. Sharing OFF is free: an N-process fleet with no shared store is
//     bit-identical — SimResult counters, cost-model overhead (which
//     aggregates every cache event), manager/tier statistics, and
//     end-state residency — to N independent single-process replays.
//     Mounting the tier changes nothing until it is actually used.
//  2. Cross-process invalidation is complete: unmapping a shared DLL
//     anywhere drops the module's traces from EVERY shard, and any
//     entry that survives a storm postdates the invalidation tick
//     (the shr-* passes re-derive this from the end state).

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "analysis/shared_passes.h"
#include "codecache/shared_store.h"
#include "codecache/tier_pipeline.h"
#include "sim/batched_replay.h"
#include "sim/fleet.h"
#include "tracelog/compiled_log.h"
#include "workload/generator.h"

namespace {

using namespace gencache;
using cache::SharedCodeStore;

workload::FleetWorkloadConfig
smallFleet(unsigned storms, std::uint64_t seed,
           const std::string &prefix)
{
    workload::FleetWorkloadConfig config;
    config.processes = 8;
    config.sharedDlls = 3;
    config.sharedLibKb = 40.0;
    config.privateKb = 24.0;
    config.durationSec = 6.0;
    config.unmapStorms = storms;
    config.seed = seed;
    config.namePrefix = prefix;
    return config;
}

std::vector<tracelog::CompiledLog>
compileFleet(const workload::FleetWorkloadConfig &config)
{
    std::vector<tracelog::CompiledLog> compiled;
    for (const tracelog::AccessLog &log :
         workload::generateFleetWorkload(config)) {
        compiled.push_back(tracelog::CompiledLog::compile(log));
    }
    return compiled;
}

/** Sorted (tier, id, size, pinned) tuples: the pipeline's end-state
 *  residency, comparable across independently-built pipelines. */
std::vector<std::tuple<std::size_t, cache::TraceId, std::uint32_t, bool>>
residencyFingerprint(const cache::TierPipeline &pipeline)
{
    std::vector<
        std::tuple<std::size_t, cache::TraceId, std::uint32_t, bool>>
        out;
    for (std::size_t tier = 0; tier < pipeline.tierCount(); ++tier) {
        pipeline.tierCache(tier).forEach(
            [&out, tier](const cache::Fragment &frag) {
                out.emplace_back(tier, frag.id, frag.sizeBytes,
                                 frag.pinned);
            });
    }
    std::sort(out.begin(), out.end());
    return out;
}

void
expectSameSim(const sim::SimResult &fleet, const sim::SimResult &solo)
{
    EXPECT_EQ(fleet.lookups, solo.lookups);
    EXPECT_EQ(fleet.hits, solo.hits);
    EXPECT_EQ(fleet.misses, solo.misses);
    EXPECT_EQ(fleet.regenerations, solo.regenerations);
    EXPECT_EQ(fleet.peakBytes, solo.peakBytes);
    EXPECT_EQ(fleet.createdTraces, solo.createdTraces);
    EXPECT_EQ(fleet.createdBytes, solo.createdBytes);

    const cache::ManagerStats &a = fleet.managerStats;
    const cache::ManagerStats &b = solo.managerStats;
    EXPECT_EQ(a.lookups, b.lookups);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.inserts, b.inserts);
    EXPECT_EQ(a.insertedBytes, b.insertedBytes);
    EXPECT_EQ(a.deletions, b.deletions);
    EXPECT_EQ(a.deletedBytes, b.deletedBytes);
    EXPECT_EQ(a.unmapDeletions, b.unmapDeletions);
    EXPECT_EQ(a.unmapDeletedBytes, b.unmapDeletedBytes);
    EXPECT_EQ(a.promotions, b.promotions);
    EXPECT_EQ(a.promotedBytes, b.promotedBytes);
    EXPECT_EQ(a.probationRejections, b.probationRejections);
    EXPECT_EQ(a.placementFailures, b.placementFailures);

    // The overhead breakdown aggregates a cost per cache EVENT, so
    // equality here means the two replays emitted equivalent event
    // streams, not just matching end counters.
    EXPECT_EQ(fleet.overhead.traceGeneration,
              solo.overhead.traceGeneration);
    EXPECT_EQ(fleet.overhead.contextSwitches,
              solo.overhead.contextSwitches);
    EXPECT_EQ(fleet.overhead.evictions, solo.overhead.evictions);
    EXPECT_EQ(fleet.overhead.promotions, solo.overhead.promotions);
    EXPECT_EQ(fleet.overhead.copies, solo.overhead.copies);
}

TEST(FleetSharingOff, BitIdenticalToIndependentReplays)
{
    // Two fleets x eight per-process logs = sixteen distinct
    // workload profiles compared against their solo replays.
    for (unsigned storms : {0u, 2u}) {
        workload::FleetWorkloadConfig config = smallFleet(
            storms, /*seed=*/41 + storms,
            storms == 0 ? "calm" : "churn");
        std::vector<tracelog::CompiledLog> compiled =
            compileFleet(config);

        sim::FleetOptions options;
        options.sharing = false;
        sim::FleetSimulator fleet(compiled, options);
        sim::FleetResult result = fleet.run();
        ASSERT_EQ(result.processes.size(), compiled.size());
        EXPECT_FALSE(result.sharing);
        EXPECT_EQ(result.storeEntries, 0u);

        const cache::TierTopology *topology =
            cache::findTierTopology(options.topology);
        ASSERT_NE(topology, nullptr);
        for (std::size_t p = 0; p < compiled.size(); ++p) {
            std::unique_ptr<cache::TierPipeline> solo =
                topology->build(options.budgetBytes);
            sim::BatchedReplay replay(compiled[p]);
            replay.addLane(*solo, options.model);
            std::vector<sim::SimResult> solo_results = replay.run();
            ASSERT_EQ(solo_results.size(), 1u);

            SCOPED_TRACE("process " + std::to_string(p) +
                         " storms " + std::to_string(storms));
            expectSameSim(result.processes[p].sim, solo_results[0]);
            EXPECT_EQ(residencyFingerprint(fleet.pipeline(
                          static_cast<unsigned>(p))),
                      residencyFingerprint(*solo));
        }
    }
}

TEST(FleetSharingOn, RoundRobinIsDeterministic)
{
    workload::FleetWorkloadConfig config =
        smallFleet(/*storms=*/1, /*seed=*/7, "det");
    std::vector<tracelog::CompiledLog> compiled = compileFleet(config);

    sim::FleetOptions options;
    options.budgetBytes = 32 * 1024;
    options.store.shards = 4;
    options.store.capacityBytes = 256 * 1024;

    sim::FleetSimulator first(compiled, options);
    sim::FleetResult a = first.run();
    sim::FleetSimulator second(compiled, options);
    sim::FleetResult b = second.run();

    ASSERT_EQ(a.processes.size(), b.processes.size());
    for (std::size_t p = 0; p < a.processes.size(); ++p) {
        SCOPED_TRACE("process " + std::to_string(p));
        expectSameSim(a.processes[p].sim, b.processes[p].sim);
        EXPECT_EQ(a.processes[p].sharedTier.probes,
                  b.processes[p].sharedTier.probes);
        EXPECT_EQ(a.processes[p].sharedTier.hits,
                  b.processes[p].sharedTier.hits);
        EXPECT_EQ(a.processes[p].sharedTier.publishes,
                  b.processes[p].sharedTier.publishes);
    }
    EXPECT_EQ(a.storePeakUsedBytes, b.storePeakUsedBytes);
    EXPECT_EQ(a.storePeakClaimedBytes, b.storePeakClaimedBytes);
    EXPECT_EQ(a.storeEntries, b.storeEntries);
    EXPECT_EQ(a.storeStats.inserts, b.storeStats.inserts);
    EXPECT_EQ(a.storeStats.attaches, b.storeStats.attaches);
}

TEST(FleetSharingOn, FleetActuallyDeduplicates)
{
    workload::FleetWorkloadConfig config =
        smallFleet(/*storms=*/0, /*seed=*/11, "dedup");
    std::vector<tracelog::CompiledLog> compiled = compileFleet(config);

    sim::FleetOptions options;
    // Half the per-process footprint: capacity evictions from the
    // last private tier are what publish into the store.
    options.budgetBytes = 32 * 1024;
    options.store.capacityBytes = 1024 * 1024;
    sim::FleetSimulator fleet(compiled, options);
    sim::FleetResult result = fleet.run();

    EXPECT_GT(result.dedupSavedBytes(), 0u);
    // Every process after the first publisher attaches instead of
    // inserting: well over one dedup attach per process.
    EXPECT_GT(result.storeStats.attaches - result.storeStats.inserts,
              result.processes.size());

    analysis::DiagnosticEngine engine;
    analysis::checkSharedStore(*fleet.store(), fleet.processCount(),
                               engine);
    EXPECT_EQ(engine.textReport(), "no diagnostics\n");
}

TEST(SharedStoreUnmap, InvalidationSweepsEveryShard)
{
    cache::SharedStoreConfig config;
    config.shards = 8;
    config.capacityBytes = 8u << 20;
    SharedCodeStore store(config);

    const cache::ModuleUid doomed = cache::moduleUidOfName("doomed.dll");
    const cache::ModuleUid kept = cache::moduleUidOfName("kept.dll");
    // Enough keys that every shard holds entries of both modules.
    for (std::uint32_t i = 0; i < 128; ++i) {
        store.publish(cache::canonicalTraceId(doomed, i * 64), 64,
                      /*process=*/i % 4);
        store.publish(cache::canonicalTraceId(kept, i * 64), 64,
                      /*process=*/i % 4);
    }
    ASSERT_TRUE(store.containsModule(doomed));
    ASSERT_TRUE(store.containsModule(kept));

    store.invalidateModule(doomed);

    EXPECT_FALSE(store.containsModule(doomed));
    EXPECT_TRUE(store.containsModule(kept));
    store.forEachEntry([doomed](unsigned, const SharedCodeStore::Entry
                                             &entry) {
        EXPECT_NE(cache::traceIdUid(entry.key), doomed);
    });
    EXPECT_EQ(store.stats().unmapEvictions, 128u);
    EXPECT_EQ(store.stats().invalidations, 1u);
    EXPECT_GT(store.lastInvalidationTick(doomed), 0u);
    store.validate();

    // A post-invalidation republish is legitimately newer than the
    // invalidation tick — the shr-unmap-stale pass must stay quiet.
    store.publish(cache::canonicalTraceId(doomed, 0), 64, 0);
    analysis::DiagnosticEngine engine;
    analysis::checkSharedStore(store, 4, engine);
    EXPECT_EQ(engine.textReport(), "no diagnostics\n");
}

TEST(FleetStorm, StormFleetLeavesNoStaleEntries)
{
    workload::FleetWorkloadConfig config =
        smallFleet(/*storms=*/3, /*seed=*/23, "storm");
    std::vector<tracelog::CompiledLog> compiled = compileFleet(config);

    sim::FleetOptions options;
    options.budgetBytes = 32 * 1024;
    options.store.shards = 8;
    options.store.capacityBytes = 1024 * 1024;
    sim::FleetSimulator fleet(compiled, options);
    sim::FleetResult result = fleet.run();

    // Every process forwards every storm's unload to the store.
    EXPECT_EQ(result.storeStats.invalidations,
              3u * config.processes);
    EXPECT_GT(result.storeStats.unmapEvictions, 0u);

    // shr-unmap-stale (among the rest) over the end state: any entry
    // of a stormed DLL that survived must postdate the invalidation.
    analysis::DiagnosticEngine engine;
    analysis::checkSharedStore(*fleet.store(), fleet.processCount(),
                               engine);
    EXPECT_EQ(engine.textReport(), "no diagnostics\n");
}

TEST(SharedPasses, AttachOutsideFleetIsReported)
{
    SharedCodeStore store(cache::SharedStoreConfig{});
    const cache::ModuleUid uid = cache::moduleUidOfName("lib.dll");
    store.publish(cache::canonicalTraceId(uid, 0), 128,
                  /*process=*/5);

    // Claiming the fleet only had two processes makes process 5's
    // attach an out-of-fleet bit.
    analysis::DiagnosticEngine engine;
    analysis::checkSharedStore(store, /*fleet_processes=*/2, engine);
    EXPECT_TRUE(engine.hasCheck("shr-attach-bounds"));
    EXPECT_FALSE(engine.hasCheck("shr-orphan"));
}

TEST(FleetThreaded, RacingProcessesLeaveConsistentStore)
{
    workload::FleetWorkloadConfig config =
        smallFleet(/*storms=*/2, /*seed=*/99, "race");
    std::vector<tracelog::CompiledLog> compiled = compileFleet(config);

    sim::FleetOptions options;
    options.budgetBytes = 32 * 1024;
    options.store.shards = 4; // fewer stripes -> more contention
    options.store.capacityBytes = 512 * 1024;
    sim::FleetSimulator fleet(compiled, options);
    sim::FleetResult result = fleet.runThreaded();

    // Whatever the interleaving, the store's structural invariants
    // hold (collect() already ran validate(); re-derive via the
    // shr-* passes too) and the fleet-wide conservation identity
    // survives: the store's publish count is exactly the sum of the
    // publish outcomes the pipelines observed.
    std::uint64_t pipeline_publishes = 0;
    for (const sim::FleetProcessResult &process : result.processes) {
        pipeline_publishes += process.sharedTier.publishes;
        EXPECT_EQ(process.sharedTier.publishes,
                  process.sharedTier.publishedInserts +
                      process.sharedTier.publishedAttaches +
                      process.sharedTier.publishedDuplicates +
                      process.sharedTier.publishedRejects);
    }
    EXPECT_EQ(result.storeStats.publishes, pipeline_publishes);
    EXPECT_EQ(result.storeStats.invalidations,
              2u * config.processes);

    analysis::DiagnosticEngine engine;
    analysis::checkSharedStore(*fleet.store(), fleet.processCount(),
                               engine);
    EXPECT_EQ(engine.textReport(), "no diagnostics\n");
}

} // namespace
