/**
 * @file
 * Unit tests for guest modules, the address space, the program
 * builder, and the synthetic program generator.
 */

#include <gtest/gtest.h>

#include "guest/address_space.h"
#include "guest/program.h"
#include "guest/program_builder.h"
#include "guest/synthetic_program.h"

namespace gencache::guest {
namespace {

isa::BasicBlock
makeBlock(isa::GuestAddr start, isa::GuestAddr target)
{
    isa::BasicBlock block(start);
    block.append(isa::makeNop());
    block.append(isa::makeJump(target));
    return block;
}

TEST(GuestModule, TracksBlocksAndExtent)
{
    GuestModule module(0, "main.exe", 0x1000);
    module.addBlock(makeBlock(0x1000, 0x2000)); // 6 bytes
    module.addBlock(makeBlock(0x1010, 0x2000));
    EXPECT_EQ(module.blockCount(), 2u);
    EXPECT_EQ(module.sizeBytes(), 0x16u);
    EXPECT_NE(module.findBlock(0x1000), nullptr);
    EXPECT_EQ(module.findBlock(0x1001), nullptr);
    EXPECT_TRUE(module.containsAddr(0x1015));
    EXPECT_FALSE(module.containsAddr(0x1016));
}

TEST(GuestModuleDeath, RejectsOverlappingBlocks)
{
    GuestModule module(0, "main.exe", 0x1000);
    module.addBlock(makeBlock(0x1000, 0));
    EXPECT_DEATH(module.addBlock(makeBlock(0x1003, 0)), "overlaps");
}

TEST(GuestModuleDeath, RejectsBlockBeforeBase)
{
    GuestModule module(0, "main.exe", 0x1000);
    EXPECT_DEATH(module.addBlock(makeBlock(0x500, 0)), "precedes");
}

TEST(GuestProgram, ModuleLookup)
{
    GuestProgram program;
    GuestModule &main = program.addModule("main.exe", 0x1000);
    GuestModule &dll = program.addModule("a.dll", 0x8000, true);
    EXPECT_EQ(program.moduleCount(), 2u);
    EXPECT_EQ(program.findModule(main.id()), &main);
    EXPECT_EQ(program.findModule("a.dll"), &dll);
    EXPECT_EQ(program.findModule(99u), nullptr);
    EXPECT_TRUE(dll.transient());
    EXPECT_FALSE(main.transient());
}

TEST(GuestProgram, FootprintSumsModules)
{
    GuestProgram program;
    GuestModule &main = program.addModule("main.exe", 0x1000);
    main.addBlock(makeBlock(0x1000, 0));
    GuestModule &dll = program.addModule("a.dll", 0x8000);
    dll.addBlock(makeBlock(0x8000, 0));
    EXPECT_EQ(program.codeFootprintBytes(),
              main.sizeBytes() + dll.sizeBytes());
}

TEST(AddressSpace, MapUnmapLookup)
{
    GuestProgram program;
    GuestModule &main = program.addModule("main.exe", 0x1000);
    main.addBlock(makeBlock(0x1000, 0));

    AddressSpace space;
    space.map(main);
    EXPECT_TRUE(space.isMapped(main.id()));
    EXPECT_EQ(space.moduleAt(0x1001), &main);
    EXPECT_NE(space.blockAt(0x1000), nullptr);
    EXPECT_EQ(space.blockAt(0x9999), nullptr);

    space.unmap(main.id());
    EXPECT_FALSE(space.isMapped(main.id()));
    EXPECT_EQ(space.blockAt(0x1000), nullptr);
}

TEST(AddressSpace, NotifiesObservers)
{
    GuestProgram program;
    GuestModule &main = program.addModule("main.exe", 0x1000);
    main.addBlock(makeBlock(0x1000, 0));

    AddressSpace space;
    int loads = 0;
    int unloads = 0;
    space.addObserver([&](const GuestModule &module, bool mapped) {
        EXPECT_EQ(module.id(), main.id());
        mapped ? ++loads : ++unloads;
    });
    space.map(main);
    space.unmap(main.id());
    EXPECT_EQ(loads, 1);
    EXPECT_EQ(unloads, 1);
}

TEST(AddressSpaceDeath, RejectsOverlappingMappings)
{
    GuestProgram program;
    GuestModule &a = program.addModule("a", 0x1000);
    a.addBlock(makeBlock(0x1000, 0));
    GuestModule &b = program.addModule("b", 0x1004);
    b.addBlock(makeBlock(0x1004, 0));

    AddressSpace space;
    space.map(a);
    EXPECT_DEATH(space.map(b), "overlaps");
}

TEST(ModuleBuilder, ResolvesLabelTargets)
{
    GuestProgram program;
    GuestModule &main = program.addModule("main.exe", 0x400);
    ModuleBuilder builder(main);
    BlockLabel first = builder.createBlock();
    BlockLabel second = builder.createBlock();
    builder.at(first).movi(0, 3).jump(second);
    builder.at(second).addi(0, 0, -1).branchNz(0, second);
    builder.finalize();

    const isa::BasicBlock *block = main.findBlock(builder.addrOf(first));
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(block->terminator().target, builder.addrOf(second));

    const isa::BasicBlock *loop =
        main.findBlock(builder.addrOf(second));
    ASSERT_NE(loop, nullptr);
    EXPECT_EQ(loop->terminator().target, builder.addrOf(second));
}

TEST(ModuleBuilder, LaysOutBlocksContiguously)
{
    GuestProgram program;
    GuestModule &main = program.addModule("main.exe", 0x400);
    ModuleBuilder builder(main);
    BlockLabel a = builder.createBlock();
    BlockLabel b = builder.createBlock();
    builder.at(a).nop().jump(b);
    builder.at(b).halt();
    std::vector<isa::GuestAddr> addrs = builder.finalize();
    ASSERT_EQ(addrs.size(), 2u);
    EXPECT_EQ(addrs[0], 0x400u);
    const isa::BasicBlock *first = main.findBlock(addrs[0]);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(addrs[1], first->endAddr());
}

TEST(ModuleBuilderDeath, UnterminatedBlock)
{
    GuestProgram program;
    GuestModule &main = program.addModule("main.exe", 0x400);
    ModuleBuilder builder(main);
    BlockLabel open = builder.createBlock();
    builder.at(open).nop();
    EXPECT_DEATH(builder.finalize(), "unterminated");
}

TEST(SyntheticProgram, DeterministicForSeed)
{
    SyntheticProgramConfig config;
    config.seed = 99;
    SyntheticProgram a = generateSyntheticProgram(config);
    SyntheticProgram b = generateSyntheticProgram(config);
    EXPECT_EQ(a.program.codeFootprintBytes(),
              b.program.codeFootprintBytes());
    EXPECT_EQ(a.program.entry(), b.program.entry());
    EXPECT_EQ(a.dllLastPhase, b.dllLastPhase);
}

TEST(SyntheticProgram, HasTransientDlls)
{
    SyntheticProgramConfig config;
    config.dllCount = 3;
    SyntheticProgram result = generateSyntheticProgram(config);
    unsigned transient = 0;
    for (const auto &module : result.program.modules()) {
        if (module->transient()) {
            ++transient;
        }
    }
    EXPECT_EQ(transient, 3u);
    EXPECT_FALSE(result.dllLastPhase.empty());
}

TEST(SyntheticProgram, EntryIsInMainModule)
{
    SyntheticProgramConfig config;
    SyntheticProgram result = generateSyntheticProgram(config);
    GuestModule *main = result.program.findModule("main.exe");
    ASSERT_NE(main, nullptr);
    EXPECT_TRUE(main->containsAddr(result.program.entry()));
    EXPECT_NE(main->findBlock(result.program.entry()), nullptr);
}

} // namespace
} // namespace gencache::guest
