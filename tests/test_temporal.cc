// The temporal invariant engine (analysis/temporal_passes): every
// injected fault class must fire its specific tmp-* check, and clean
// event streams — synthetic, recorded, or journal round-tripped, for
// every benchmark profile against every manager family — must produce
// zero findings, online and offline.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <sstream>
#include <vector>

#include "analysis/checker.h"
#include "analysis/temporal_passes.h"
#include "codecache/generational_cache.h"
#include "codecache/tier_pipeline.h"
#include "codecache/unified_cache.h"
#include "sim/simulator.h"
#include "support/units.h"
#include "tracelog/serialize.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace gencache;
using analysis::DiagnosticEngine;
using analysis::TemporalChecker;
using analysis::TemporalOptions;
using cache::EvictReason;
using cache::Fragment;
using cache::Generation;

Fragment
frag(cache::TraceId id, std::uint32_t size = 100,
     cache::ModuleId module = 1)
{
    Fragment fragment;
    fragment.id = id;
    fragment.sizeBytes = size;
    fragment.module = module;
    return fragment;
}

// ---------------------------------------------------------------
// Stream-local lifecycle checks (no subject bound): one synthetic
// stream per fault class, asserting the exact tmp-* ID.
// ---------------------------------------------------------------

TEST(Temporal, CleanSyntheticStreamHasNoFindings)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onMiss(1, 10);
    checker.onInsert(frag(1), Generation::Nursery, 10);
    checker.onHit(1, Generation::Nursery, 20);
    checker.onEvict(frag(1), Generation::Nursery,
                    EvictReason::PromotionMove, 30);
    checker.onPromote(frag(1), Generation::Nursery,
                      Generation::Probation, 30);
    checker.onEvict(frag(1), Generation::Probation,
                    EvictReason::Capacity, 40);
    checker.finish();
    EXPECT_TRUE(engine.empty()) << engine.textReport();
    EXPECT_EQ(checker.eventCount(), 6u);
    EXPECT_EQ(checker.trackedResidents(), 0u);
}

TEST(Temporal, HitAfterEvictFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1), Generation::Nursery, 10);
    checker.onEvict(frag(1), Generation::Nursery, EvictReason::Capacity,
                    20);
    checker.onHit(1, Generation::Nursery, 30);
    EXPECT_TRUE(engine.hasCheck("tmp-use-after-evict"))
        << engine.textReport();
    EXPECT_EQ(engine.size(), 1u);
}

TEST(Temporal, MissWhileResidentFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1), Generation::Nursery, 10);
    checker.onMiss(1, 20);
    EXPECT_TRUE(engine.hasCheck("tmp-miss-resident"))
        << engine.textReport();
    EXPECT_EQ(engine.size(), 1u);
}

TEST(Temporal, HitTierMismatchFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1), Generation::Nursery, 10);
    checker.onHit(1, Generation::Probation, 20);
    EXPECT_TRUE(engine.hasCheck("tmp-hit-tier-mismatch"))
        << engine.textReport();
}

TEST(Temporal, DoubleResidencyFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1), Generation::Nursery, 10);
    checker.onInsert(frag(1), Generation::Nursery, 20);
    EXPECT_TRUE(engine.hasCheck("tmp-double-residency"))
        << engine.textReport();
}

TEST(Temporal, EntryTierDriftFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1), Generation::Nursery, 10);
    checker.onInsert(frag(2), Generation::Probation, 20);
    EXPECT_TRUE(engine.hasCheck("tmp-insert-tier"))
        << engine.textReport();
}

TEST(Temporal, EvictOfAbsentTraceFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onEvict(frag(1), Generation::Nursery, EvictReason::Capacity,
                    10);
    EXPECT_TRUE(engine.hasCheck("tmp-evict-absent"))
        << engine.textReport();
}

TEST(Temporal, EvictTierMismatchFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1), Generation::Nursery, 10);
    checker.onEvict(frag(1), Generation::Probation,
                    EvictReason::Capacity, 20);
    EXPECT_TRUE(engine.hasCheck("tmp-evict-tier-mismatch"))
        << engine.textReport();
}

TEST(Temporal, BrokenPromotionPairFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1), Generation::Nursery, 10);
    checker.onEvict(frag(1), Generation::Nursery,
                    EvictReason::PromotionMove, 20);
    checker.onHit(1, Generation::Nursery, 30); // pair interrupted
    EXPECT_TRUE(engine.hasCheck("tmp-promote-protocol"))
        << engine.textReport();
}

TEST(Temporal, PromoteWithoutEvictionFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1), Generation::Nursery, 10);
    checker.onPromote(frag(1), Generation::Nursery,
                      Generation::Probation, 20);
    EXPECT_TRUE(engine.hasCheck("tmp-promote-protocol"))
        << engine.textReport();
}

TEST(Temporal, DanglingPromotionHalfFiresAtFinish)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1), Generation::Nursery, 10);
    checker.onEvict(frag(1), Generation::Nursery,
                    EvictReason::PromotionMove, 20);
    checker.finish();
    EXPECT_TRUE(engine.hasCheck("tmp-promote-protocol"))
        << engine.textReport();
}

TEST(Temporal, PromotionAgainstCascadeOrderFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1), Generation::Probation, 10);
    checker.onEvict(frag(1), Generation::Probation,
                    EvictReason::PromotionMove, 20);
    checker.onPromote(frag(1), Generation::Probation,
                      Generation::Nursery, 20);
    EXPECT_TRUE(engine.hasCheck("tmp-promote-order"))
        << engine.textReport();
}

TEST(Temporal, UnloadLeavingResidentsFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1, 100, /*module=*/7), Generation::Nursery,
                     10);
    checker.onModuleUnload(7, 20);
    EXPECT_TRUE(engine.hasCheck("tmp-unload-incomplete"))
        << engine.textReport();
}

TEST(Temporal, UnclaimedUnmapEvictionFiresAtFinish)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onInsert(frag(1, 100, /*module=*/7), Generation::Nursery,
                     10);
    checker.onModuleUnload(8, 15); // marker protocol is in use
    checker.onEvict(frag(1, 100, 7), Generation::Nursery,
                    EvictReason::Unmap, 20);
    checker.finish();
    EXPECT_TRUE(engine.hasCheck("tmp-unload-window"))
        << engine.textReport();
}

TEST(Temporal, UnmapMarkerOutsideWindowFires)
{
    TemporalOptions options;
    options.unloadWindowEvents = 3;
    DiagnosticEngine engine;
    TemporalChecker checker(engine, options);
    checker.onInsert(frag(1, 100, /*module=*/7), Generation::Nursery,
                     10);
    checker.onModuleUnload(8, 15);
    checker.onEvict(frag(1, 100, 7), Generation::Nursery,
                    EvictReason::Unmap, 20);
    for (int i = 0; i < 4; ++i) {
        checker.onMiss(99, 30 + i); // filler events age the window
    }
    EXPECT_TRUE(engine.hasCheck("tmp-unload-window"))
        << engine.textReport();
    // The late marker must not also claim completeness violations.
    checker.onModuleUnload(7, 50);
    EXPECT_FALSE(engine.hasCheck("tmp-unload-incomplete"))
        << engine.textReport();
}

TEST(Temporal, TimestampRegressionFires)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.onMiss(1, 100);
    checker.onMiss(2, 50);
    EXPECT_TRUE(engine.hasCheck("tmp-time-regression"))
        << engine.textReport();
}

TEST(Temporal, PerCheckCapLimitsMaterializedFindings)
{
    TemporalOptions options;
    options.maxPerCheck = 2;
    DiagnosticEngine engine;
    TemporalChecker checker(engine, options);
    for (int i = 0; i < 10; ++i) {
        checker.onEvict(frag(100 + i), Generation::Nursery,
                        EvictReason::Capacity, 10 + i);
    }
    EXPECT_EQ(engine.findingsOf("tmp-evict-absent").size(), 2u);
}

// ---------------------------------------------------------------
// Corruption of real recorded streams: replay a benchmark against a
// real generational pipeline, record the event stream, mutate it, and
// feed a checker bound to the final pipeline state. Each corruption
// class must surface through its specific check.
// ---------------------------------------------------------------

struct Rec
{
    enum class Kind { Miss, Hit, Insert, Evict, Promote, Unload };
    Kind kind = Kind::Miss;
    Fragment fragment;
    cache::TraceId id = 0;
    Generation gen = Generation::Unified;
    Generation to = Generation::Unified;
    EvictReason reason = EvictReason::Capacity;
    cache::ModuleId module = 0;
    TimeUs time = 0;
};

class RecordingListener : public cache::CacheEventListener
{
  public:
    RecordingListener() : cache::CacheEventListener(true, true) {}

    void onMiss(cache::TraceId id, TimeUs now) override
    {
        events.push_back(
            Rec{Rec::Kind::Miss, {}, id, {}, {}, {}, 0, now});
    }
    void onHit(cache::TraceId id, Generation gen, TimeUs now) override
    {
        events.push_back(
            Rec{Rec::Kind::Hit, {}, id, gen, {}, {}, 0, now});
    }
    void onInsert(const Fragment &fragment, Generation gen,
                  TimeUs now) override
    {
        events.push_back(
            Rec{Rec::Kind::Insert, fragment, 0, gen, {}, {}, 0, now});
    }
    void onEvict(const Fragment &fragment, Generation gen,
                 EvictReason reason, TimeUs now) override
    {
        events.push_back(Rec{Rec::Kind::Evict, fragment, 0, gen, {},
                             reason, 0, now});
    }
    void onPromote(const Fragment &fragment, Generation from,
                   Generation to, TimeUs now) override
    {
        events.push_back(Rec{Rec::Kind::Promote, fragment, 0, from, to,
                             {}, 0, now});
    }
    void onModuleUnload(cache::ModuleId module, TimeUs now) override
    {
        events.push_back(
            Rec{Rec::Kind::Unload, {}, 0, {}, {}, {}, module, now});
    }

    std::vector<Rec> events;
};

void
feed(TemporalChecker &checker, const Rec &rec)
{
    switch (rec.kind) {
      case Rec::Kind::Miss:
        checker.onMiss(rec.id, rec.time);
        break;
      case Rec::Kind::Hit:
        checker.onHit(rec.id, rec.gen, rec.time);
        break;
      case Rec::Kind::Insert:
        checker.onInsert(rec.fragment, rec.gen, rec.time);
        break;
      case Rec::Kind::Evict:
        checker.onEvict(rec.fragment, rec.gen, rec.reason, rec.time);
        break;
      case Rec::Kind::Promote:
        checker.onPromote(rec.fragment, rec.gen, rec.to, rec.time);
        break;
      case Rec::Kind::Unload:
        checker.onModuleUnload(rec.module, rec.time);
        break;
    }
}

workload::BenchmarkProfile
smallProfile(const char *name)
{
    workload::BenchmarkProfile profile = workload::findProfile(name);
    profile.finalCacheKb *= 0.1;
    profile.durationSec *= 0.1;
    if (profile.finalCacheKb < 16.0) {
        profile.finalCacheKb = 16.0;
    }
    if (profile.durationSec < 0.25) {
        profile.durationSec = 0.25;
    }
    return profile;
}

/** Replay mpeg (has module unloads) against a generational pipeline,
 *  recording both the event stream and the final pipeline. */
struct RecordedRun
{
    RecordedRun()
        : manager(cache::GenerationalConfig::fromProportions(
              64 * kKiB, 0.45, 0.10, /*threshold=*/1))
    {
        tracelog::AccessLog log =
            workload::generateWorkload(smallProfile("mpeg"));
        sim::CacheSimulator simulator(manager);
        simulator.setProbeListener(&recorder);
        simulator.run(log);
        simulator.setProbeListener(nullptr);
    }

    cache::GenerationalCacheManager manager;
    RecordingListener recorder;
};

const RecordedRun &
recordedRun()
{
    static const RecordedRun run;
    return run;
}

/** Feed @p events (post-mutation) to a fresh checker bound to the
 *  recorded run's final pipeline and return the findings. */
DiagnosticEngine
replayMutated(const std::vector<Rec> &events)
{
    DiagnosticEngine engine;
    TemporalChecker checker(engine);
    checker.bindSubject(&recordedRun().manager);
    for (const Rec &rec : events) {
        feed(checker, rec);
    }
    checker.finish();
    return engine;
}

std::size_t
findIndex(const std::vector<Rec> &events,
          const std::function<bool(const Rec &)> &want)
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (want(events[i])) {
            return i;
        }
    }
    ADD_FAILURE() << "recorded stream lacks the wanted event";
    return events.size();
}

TEST(TemporalRecorded, StreamIsInterestingEnoughToCorrupt)
{
    const std::vector<Rec> &events = recordedRun().recorder.events;
    ASSERT_GT(events.size(), 1000u);
    std::size_t promotes = 0;
    std::size_t unloads = 0;
    std::size_t unmaps = 0;
    for (const Rec &rec : events) {
        promotes += rec.kind == Rec::Kind::Promote;
        unloads += rec.kind == Rec::Kind::Unload;
        unmaps += rec.kind == Rec::Kind::Evict &&
                  rec.reason == EvictReason::Unmap;
    }
    EXPECT_GT(promotes, 0u);
    EXPECT_GT(unloads, 0u);
    EXPECT_GT(unmaps, 0u);
}

TEST(TemporalRecorded, UncorruptedStreamIsClean)
{
    DiagnosticEngine engine =
        replayMutated(recordedRun().recorder.events);
    EXPECT_TRUE(engine.empty()) << engine.textReport();
}

TEST(TemporalRecorded, DroppedDestructiveEvictDetected)
{
    std::vector<Rec> events = recordedRun().recorder.events;
    // Pick an eviction whose trace never comes back; dropping it
    // leaves the checker believing the trace resident to the end.
    const std::size_t victim =
        findIndex(events, [&events](const Rec &rec) {
            if (rec.kind != Rec::Kind::Evict ||
                rec.reason != EvictReason::Capacity) {
                return false;
            }
            for (const Rec &later : events) {
                if (later.kind == Rec::Kind::Insert &&
                    later.fragment.id == rec.fragment.id &&
                    later.time >= rec.time) {
                    return false;
                }
            }
            return true;
        });
    ASSERT_LT(victim, events.size());
    events.erase(events.begin() +
                 static_cast<std::ptrdiff_t>(victim));
    DiagnosticEngine engine = replayMutated(events);
    // The checker still believes the trace resident: the end-state
    // reconciliation and the flow conservation both break.
    EXPECT_TRUE(engine.hasCheck("tmp-leak")) << engine.textReport();
    EXPECT_TRUE(engine.hasCheck("tmp-flow")) << engine.textReport();
}

TEST(TemporalRecorded, DroppedInsertDetected)
{
    std::vector<Rec> events = recordedRun().recorder.events;
    // Drop the insert of a trace that is later evicted, so the stream
    // evicts a trace it never admitted.
    const std::size_t insert =
        findIndex(events, [&events](const Rec &rec) {
            if (rec.kind != Rec::Kind::Insert) {
                return false;
            }
            for (const Rec &later : events) {
                if (later.kind == Rec::Kind::Evict &&
                    later.fragment.id == rec.fragment.id &&
                    later.time >= rec.time) {
                    return true;
                }
            }
            return false;
        });
    ASSERT_LT(insert, events.size());
    events.erase(events.begin() +
                 static_cast<std::ptrdiff_t>(insert));
    DiagnosticEngine engine = replayMutated(events);
    EXPECT_FALSE(engine.empty());
    EXPECT_TRUE(engine.hasCheck("tmp-evict-absent") ||
                engine.hasCheck("tmp-use-after-evict") ||
                engine.hasCheck("tmp-miss-resident"))
        << engine.textReport();
    EXPECT_TRUE(engine.hasCheck("tmp-flow")) << engine.textReport();
}

TEST(TemporalRecorded, DuplicatedInsertDetected)
{
    std::vector<Rec> events = recordedRun().recorder.events;
    const std::size_t insert =
        findIndex(events, [](const Rec &rec) {
            return rec.kind == Rec::Kind::Insert;
        });
    ASSERT_LT(insert, events.size());
    events.insert(events.begin() +
                      static_cast<std::ptrdiff_t>(insert),
                  events[insert]);
    DiagnosticEngine engine = replayMutated(events);
    EXPECT_TRUE(engine.hasCheck("tmp-double-residency"))
        << engine.textReport();
}

TEST(TemporalRecorded, DuplicatedEvictDetected)
{
    std::vector<Rec> events = recordedRun().recorder.events;
    const std::size_t evict =
        findIndex(events, [](const Rec &rec) {
            return rec.kind == Rec::Kind::Evict &&
                   rec.reason == EvictReason::Capacity;
        });
    ASSERT_LT(evict, events.size());
    events.insert(events.begin() +
                      static_cast<std::ptrdiff_t>(evict) + 1,
                  events[evict]);
    DiagnosticEngine engine = replayMutated(events);
    EXPECT_TRUE(engine.hasCheck("tmp-evict-absent"))
        << engine.textReport();
}

TEST(TemporalRecorded, ReorderedPromotionPairDetected)
{
    std::vector<Rec> events = recordedRun().recorder.events;
    const std::size_t promote =
        findIndex(events, [](const Rec &rec) {
            return rec.kind == Rec::Kind::Promote;
        });
    ASSERT_LT(promote, events.size());
    ASSERT_GT(promote, 0u);
    std::swap(events[promote - 1], events[promote]);
    DiagnosticEngine engine = replayMutated(events);
    EXPECT_TRUE(engine.hasCheck("tmp-promote-protocol"))
        << engine.textReport();
}

TEST(TemporalRecorded, DroppedUnloadMarkerDetected)
{
    std::vector<Rec> events = recordedRun().recorder.events;
    const std::size_t unload =
        findIndex(events, [](const Rec &rec) {
            return rec.kind == Rec::Kind::Unload;
        });
    ASSERT_LT(unload, events.size());
    events.erase(events.begin() +
                 static_cast<std::ptrdiff_t>(unload));
    DiagnosticEngine engine = replayMutated(events);
    EXPECT_TRUE(engine.hasCheck("tmp-unload-window"))
        << engine.textReport();
}

// ---------------------------------------------------------------
// Fast-replay sidecar reconciliation.
// ---------------------------------------------------------------

TEST(TemporalSidecar, CleanFastReplayRunIsClean)
{
    std::unique_ptr<cache::TierPipeline> pipeline =
        cache::findTierTopology("2tier")->build(2 * kKiB);

    TemporalOptions options;
    options.observeHitsMisses = false; // stay fast-path eligible
    DiagnosticEngine engine;
    TemporalChecker checker(engine, options);
    checker.bindSubject(pipeline.get());
    pipeline->setListener(&checker);
    ASSERT_TRUE(pipeline->enableFastReplay(/*id_bound=*/256));

    TimeUs now = 1;
    for (cache::TraceId id = 0; id < 64; ++id) {
        pipeline->insert(id, 100, /*module=*/id % 3, now++);
        if (id % 2 == 0) {
            pipeline->fastProbe(id);
        }
    }
    pipeline->flushFastCounts();
    pipeline->invalidateModule(1, now++);
    checker.finish();
    EXPECT_TRUE(engine.empty()) << engine.textReport();
}

TEST(TemporalSidecar, DesyncDetectedOnFabricatedInsert)
{
    std::unique_ptr<cache::TierPipeline> pipeline =
        cache::findTierTopology("2tier")->build(2 * kKiB);

    TemporalOptions options;
    options.observeHitsMisses = false;
    DiagnosticEngine engine;
    TemporalChecker checker(engine, options);
    checker.bindSubject(pipeline.get());
    pipeline->setListener(&checker);
    ASSERT_TRUE(pipeline->enableFastReplay(/*id_bound=*/256));

    pipeline->insert(1, 100, 0, 1);
    // A fabricated insert event for a trace the pipeline never
    // admitted: its sidecar slot stays empty, which is exactly the
    // desync the delta reconciliation must catch.
    checker.onInsert(frag(7), pipeline->tierLabel(0), 2);
    EXPECT_TRUE(engine.hasCheck("tmp-sidecar-desync"))
        << engine.textReport();
}

// ---------------------------------------------------------------
// Golden sweeps: every profile x every manager family, with the
// journal serialization round-trip in the loop (offline mode), must
// be finding-free. The gencheck CLI layers the same engine onto live
// replays (online mode); test_sim covers the GENCACHE_CHECK hook.
// ---------------------------------------------------------------

TEST(TemporalGolden, AllProfilesAllManagersCleanOffline)
{
    for (const workload::BenchmarkProfile &profile :
         workload::allProfiles()) {
        workload::BenchmarkProfile small = profile;
        small.finalCacheKb *= 0.25;
        small.durationSec *= 0.1;
        if (small.finalCacheKb < 16.0) {
            small.finalCacheKb = 16.0;
        }
        if (small.durationSec < 0.25) {
            small.durationSec = 0.25;
        }
        tracelog::AccessLog generated =
            workload::generateWorkload(small);

        // Journal round-trip: what gencheck --journal consumes.
        std::stringstream buffer;
        tracelog::writeBinary(generated, buffer);
        tracelog::AccessLog log = tracelog::readBinary(buffer);

        const std::uint64_t total = static_cast<std::uint64_t>(
            small.finalCacheKb * static_cast<double>(kKiB) / 2.0);

        std::vector<std::unique_ptr<cache::CacheManager>> managers;
        managers.push_back(
            std::make_unique<cache::GenerationalCacheManager>(
                cache::GenerationalConfig::fromProportions(
                    total, 0.45, 0.10, /*threshold=*/1)));
        managers.push_back(
            std::make_unique<cache::UnifiedCacheManager>(total));
        for (const char *name : {"2tier", "4tier", "temp3"}) {
            managers.push_back(
                cache::findTierTopology(name)->build(total));
        }

        for (std::unique_ptr<cache::CacheManager> &manager :
             managers) {
            DiagnosticEngine engine;
            const std::uint64_t events = analysis::runTemporalReplay(
                log, *manager, engine);
            EXPECT_GT(events, 0u);
            EXPECT_TRUE(engine.empty())
                << profile.name << " x " << manager->name() << "\n"
                << engine.textReport();
        }
    }
}

TEST(TemporalGolden, OnlinePhaseHookRunsCleanUnderGencacheCheck)
{
    ::setenv("GENCACHE_CHECK", "1", /*overwrite=*/1);
    tracelog::AccessLog log =
        workload::generateWorkload(smallProfile("gzip"));
    cache::GenerationalCacheManager manager(
        cache::GenerationalConfig::fromProportions(32 * kKiB, 0.45,
                                                   0.10, 1));
    sim::CacheSimulator simulator(manager);
    ASSERT_TRUE(analysis::attachPhaseChecks(simulator));
    sim::SimResult result = simulator.run(log); // panics on violation
    EXPECT_GT(result.lookups, 0u);
    ::unsetenv("GENCACHE_CHECK");
}

} // namespace
