/**
 * @file
 * Determinism tests for the parallel experiment engine: fanning the
 * sweep grid or the per-layout comparison runs across a ThreadPool
 * must be invisible in the results — every miss rate and promotion
 * count identical to the serial replay, cell for cell.
 *
 * These tests carry the "tsan" ctest label; a thread-sanitized build
 * (-DGENCACHE_SANITIZE=thread) runs them with `ctest -L tsan`.
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/sweep.h"
#include "support/thread_pool.h"

namespace gencache::sim {
namespace {

workload::BenchmarkProfile
tinyProfile(const char *name, std::uint64_t seed)
{
    workload::BenchmarkProfile profile;
    profile.name = name;
    profile.durationSec = 2.0;
    profile.finalCacheKb = 96.0;
    profile.execsPerTraceMean = 20.0;
    profile.seed = seed;
    return profile;
}

void
expectCellsEqual(const SweepResult &serial,
                 const SweepResult &parallel)
{
    EXPECT_EQ(serial.benchmark, parallel.benchmark);
    EXPECT_EQ(serial.capacityBytes, parallel.capacityBytes);
    EXPECT_EQ(serial.unifiedMissRate, parallel.unifiedMissRate);
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        const SweepCell &a = serial.cells[i];
        const SweepCell &b = parallel.cells[i];
        EXPECT_EQ(a.threshold, b.threshold) << "cell " << i;
        EXPECT_EQ(a.missRate, b.missRate) << "cell " << i;
        EXPECT_EQ(a.promotions, b.promotions) << "cell " << i;
        EXPECT_EQ(a.missRateReductionPct, b.missRateReductionPct)
            << "cell " << i;
        EXPECT_EQ(a.point.nurseryFrac, b.point.nurseryFrac)
            << "cell " << i;
        EXPECT_EQ(a.point.probationFrac, b.point.probationFrac)
            << "cell " << i;
    }
}

TEST(ParallelSweep, FourWorkersMatchSerialExactly)
{
    workload::BenchmarkProfile profile =
        tinyProfile("parallel-sweep", 47);
    std::vector<SweepPoint> points = {
        {0.45, 0.10}, {1.0 / 3, 1.0 / 3}, {0.25, 0.50}};
    std::vector<std::uint32_t> thresholds = {1, 5, 10};

    SweepResult serial = runSweep(profile, points, thresholds, 1);
    SweepResult parallel = runSweep(profile, points, thresholds, 4);
    expectCellsEqual(serial, parallel);
}

TEST(ParallelSweep, OversubscribedWorkersMatchSerialExactly)
{
    // More workers than cells: the pool clamps, order still holds.
    workload::BenchmarkProfile profile =
        tinyProfile("parallel-sweep-over", 48);
    std::vector<SweepPoint> points = {{0.45, 0.10}, {0.40, 0.20}};
    std::vector<std::uint32_t> thresholds = {1, 10};

    SweepResult serial = runSweep(profile, points, thresholds, 1);
    SweepResult parallel = runSweep(profile, points, thresholds, 16);
    expectCellsEqual(serial, parallel);
}

TEST(ParallelSweep, CompareWithPoolMatchesSerial)
{
    workload::BenchmarkProfile profile =
        tinyProfile("parallel-compare", 49);
    ExperimentRunner runner(profile);
    std::vector<GenerationalLayout> layouts = paperLayouts();

    ThreadPool serial_pool(1);
    ThreadPool wide_pool(4);
    BenchmarkComparison a = runner.compare(layouts, &serial_pool);
    BenchmarkComparison b = runner.compare(layouts, &wide_pool);

    EXPECT_EQ(a.maxCacheBytes, b.maxCacheBytes);
    EXPECT_EQ(a.capacityBytes, b.capacityBytes);
    EXPECT_EQ(a.unified.misses, b.unified.misses);
    EXPECT_EQ(a.unified.hits, b.unified.hits);
    ASSERT_EQ(a.generational.size(), b.generational.size());
    for (std::size_t i = 0; i < a.generational.size(); ++i) {
        const SimResult &x = a.generational[i];
        const SimResult &y = b.generational[i];
        EXPECT_EQ(x.lookups, y.lookups) << layouts[i].label;
        EXPECT_EQ(x.hits, y.hits) << layouts[i].label;
        EXPECT_EQ(x.misses, y.misses) << layouts[i].label;
        EXPECT_EQ(x.regenerations, y.regenerations)
            << layouts[i].label;
        EXPECT_EQ(x.managerStats.promotions,
                  y.managerStats.promotions)
            << layouts[i].label;
        EXPECT_EQ(x.overhead.total(), y.overhead.total())
            << layouts[i].label;
    }
}

TEST(ParallelSweep, ConcurrentReplaysShareMemoizedBaselines)
{
    // Hammer the memoized entry points from many threads at once; the
    // unbounded pre-pass and the unified baseline must come out
    // identical every time (and TSan must stay quiet).
    workload::BenchmarkProfile profile =
        tinyProfile("parallel-memo", 50);
    ExperimentRunner runner(profile);

    ThreadPool pool(8);
    std::vector<std::future<std::uint64_t>> peaks;
    std::vector<std::future<std::uint64_t>> misses;
    for (int i = 0; i < 8; ++i) {
        peaks.push_back(pool.submit(
            [&runner]() { return runner.runUnbounded().peakBytes; }));
        misses.push_back(pool.submit([&runner]() {
            return runner.runUnified(64 * 1024).misses;
        }));
    }
    std::uint64_t peak = peaks.front().get();
    std::uint64_t miss = misses.front().get();
    EXPECT_GT(peak, 0u);
    for (auto &future : peaks) {
        if (future.valid()) {
            EXPECT_EQ(future.get(), peak);
        }
    }
    for (auto &future : misses) {
        if (future.valid()) {
            EXPECT_EQ(future.get(), miss);
        }
    }
}

} // namespace
} // namespace gencache::sim
