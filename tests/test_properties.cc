/**
 * @file
 * Property-based tests: parameterized sweeps asserting invariants of
 * the cache layer under randomized churn, across policies, capacities,
 * generational layouts, and promotion thresholds.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "codecache/generational_cache.h"
#include "codecache/list_cache.h"
#include "codecache/local_cache.h"
#include "codecache/pseudo_circular_cache.h"
#include "codecache/unified_cache.h"
#include "support/rng.h"

namespace gencache::cache {
namespace {

// ---------------------------------------------------------------
// Property: every local cache policy respects its byte budget, never
// loses track of fragments, and survives arbitrary interleavings of
// insert / remove / pin / flush.
// ---------------------------------------------------------------

using PolicyCapacity = std::tuple<LocalPolicy, std::uint64_t>;

class LocalCacheProperty
    : public ::testing::TestWithParam<PolicyCapacity>
{
};

TEST_P(LocalCacheProperty, ChurnKeepsInvariants)
{
    auto [policy, capacity] = GetParam();
    std::unique_ptr<LocalCache> cache =
        makeLocalCache(policy, capacity);
    Rng rng(capacity * 31 + static_cast<std::uint64_t>(policy));

    std::vector<TraceId> live;
    std::vector<TraceId> pinned;
    TraceId next = 1;
    std::vector<Fragment> evicted;

    for (int step = 0; step < 2000; ++step) {
        evicted.clear();
        double action = rng.uniform01();
        if (action < 0.6) {
            Fragment frag;
            frag.id = next++;
            frag.sizeBytes = static_cast<std::uint32_t>(
                rng.uniformInt(16, 512));
            frag.module = static_cast<ModuleId>(rng.uniformInt(0, 3));
            if (cache->insert(frag, evicted)) {
                live.push_back(frag.id);
            }
        } else if (action < 0.75 && !live.empty()) {
            TraceId victim = live[static_cast<std::size_t>(
                rng.uniformInt(0,
                    static_cast<std::int64_t>(live.size()) - 1))];
            cache->remove(victim);
        } else if (action < 0.9 && !live.empty()) {
            TraceId target = live[static_cast<std::size_t>(
                rng.uniformInt(0,
                    static_cast<std::int64_t>(live.size()) - 1))];
            if (cache->setPinned(target, true)) {
                pinned.push_back(target);
            }
            // Unpin an earlier one so pins do not accumulate forever.
            if (pinned.size() > 2) {
                cache->setPinned(pinned.front(), false);
                pinned.erase(pinned.begin());
            }
        } else if (action < 0.92) {
            cache->flush(evicted);
        }

        // Invariants.
        if (cache->capacity() != 0) {
            ASSERT_LE(cache->usedBytes(), cache->capacity());
        }
        std::uint64_t bytes = 0;
        std::size_t count = 0;
        cache->forEach([&](const Fragment &frag) {
            bytes += frag.sizeBytes;
            ++count;
            ASSERT_TRUE(cache->contains(frag.id));
        });
        ASSERT_EQ(bytes, cache->usedBytes());
        ASSERT_EQ(count, cache->fragmentCount());

        // Evicted fragments are really gone.
        for (const Fragment &gone : evicted) {
            ASSERT_FALSE(cache->contains(gone.id)) << gone.id;
        }

        // Keep the live list in sync (drop stale ids lazily).
        if (live.size() > 400) {
            std::vector<TraceId> still;
            for (TraceId id : live) {
                if (cache->contains(id)) {
                    still.push_back(id);
                }
            }
            live.swap(still);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndCapacities, LocalCacheProperty,
    ::testing::Combine(
        ::testing::Values(LocalPolicy::PseudoCircular,
                          LocalPolicy::Fifo, LocalPolicy::Lru,
                          LocalPolicy::PreemptiveFlush),
        ::testing::Values(1024ULL, 4096ULL, 65536ULL)),
    [](const ::testing::TestParamInfo<PolicyCapacity> &param_info) {
        std::string name =
            localPolicyName(std::get<0>(param_info.param));
        for (char &c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name + "_" +
               std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------
// Property: the pseudo-circular region never overlaps fragments and
// never exceeds capacity, under every capacity in a sweep.
// ---------------------------------------------------------------

class RegionProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RegionProperty, RandomChurnValidates)
{
    std::uint64_t capacity = GetParam();
    CacheRegion region(capacity);
    Rng rng(capacity);
    TraceId next = 1;
    std::vector<Fragment> evicted;
    for (int step = 0; step < 3000; ++step) {
        evicted.clear();
        Fragment frag;
        frag.id = next++;
        frag.sizeBytes =
            static_cast<std::uint32_t>(rng.uniformInt(8, 300));
        region.place(frag, evicted);
        if (step % 5 == 0 && next > 4) {
            region.remove(static_cast<TraceId>(
                rng.uniformInt(1, static_cast<std::int64_t>(next) - 1)));
        }
        region.validate();
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RegionProperty,
                         ::testing::Values(512ULL, 1000ULL, 4096ULL,
                                           10000ULL, 262144ULL));

// ---------------------------------------------------------------
// Property: under any layout and threshold, the generational manager
// keeps each trace in exactly one cache, conserves capacity, and its
// promotion/deletion accounting balances.
// ---------------------------------------------------------------

struct GenerationalParam
{
    double nurseryFrac;
    double probationFrac;
    std::uint32_t threshold;
    bool eager;
};

class GenerationalProperty
    : public ::testing::TestWithParam<GenerationalParam>
{
};

TEST_P(GenerationalProperty, RandomWorkloadKeepsInvariants)
{
    GenerationalParam param = GetParam();
    GenerationalConfig config = GenerationalConfig::fromProportions(
        64 * 1024, param.nurseryFrac, param.probationFrac,
        param.threshold, param.eager);
    GenerationalCacheManager manager(config);
    Rng rng(param.threshold * 977 + (param.eager ? 1 : 0));

    TraceId next = 1;
    std::vector<TraceId> known;
    for (int step = 0; step < 4000; ++step) {
        double action = rng.uniform01();
        TimeUs now = static_cast<TimeUs>(step);
        if (action < 0.35 || known.empty()) {
            TraceId id = next++;
            std::uint32_t size = static_cast<std::uint32_t>(
                rng.uniformInt(32, 1024));
            ModuleId module =
                static_cast<ModuleId>(rng.uniformInt(0, 4));
            if (!manager.contains(id)) {
                if (manager.insert(id, size, module, now)) {
                    known.push_back(id);
                }
            }
        } else if (action < 0.85) {
            TraceId id = known[static_cast<std::size_t>(
                rng.uniformInt(0,
                    static_cast<std::int64_t>(known.size()) - 1))];
            manager.lookup(id, now);
        } else if (action < 0.95) {
            manager.lookup(next + 1'000'000, now); // guaranteed miss
        } else {
            ModuleId module =
                static_cast<ModuleId>(rng.uniformInt(0, 4));
            manager.invalidateModule(module, now);
        }

        if (step % 64 == 0) {
            manager.validate();
            ASSERT_LE(manager.usedBytes(), manager.totalCapacity());
        }
    }
    manager.validate();

    const ManagerStats &stats = manager.stats();
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
    // Conservation: everything inserted either still resides in a
    // cache, was deleted, was unmapped, or is gone forever.
    std::uint64_t resident = 0;
    for (Generation gen : {Generation::Nursery, Generation::Probation,
                           Generation::Persistent}) {
        resident += manager.localCache(gen).fragmentCount();
    }
    EXPECT_EQ(stats.inserts,
              resident + stats.deletions + stats.unmapDeletions);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndThresholds, GenerationalProperty,
    ::testing::Values(
        GenerationalParam{1.0 / 3.0, 1.0 / 3.0, 10, false},
        GenerationalParam{0.45, 0.10, 1, false},
        GenerationalParam{0.45, 0.10, 1, true},
        GenerationalParam{0.40, 0.20, 5, false},
        GenerationalParam{0.25, 0.50, 3, false},
        GenerationalParam{0.60, 0.10, 2, true},
        GenerationalParam{0.10, 0.10, 1, false}),
    [](const ::testing::TestParamInfo<GenerationalParam> &param_info) {
        const GenerationalParam &param = param_info.param;
        return "n" +
               std::to_string(
                   static_cast<int>(param.nurseryFrac * 100)) +
               "_p" +
               std::to_string(
                   static_cast<int>(param.probationFrac * 100)) +
               "_t" + std::to_string(param.threshold) +
               (param.eager ? "_eager" : "");
    });

// ---------------------------------------------------------------
// Property: with uniform fragment sizes that divide the capacity
// evenly (no wrap waste, no holes, no pins), the address-accurate
// pseudo-circular cache IS a FIFO: it evicts the identical victim
// sequence as the idealized FIFO queue. Cross-validates the layout
// model against the abstract policy.
// ---------------------------------------------------------------

class CircularFifoEquivalence
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CircularFifoEquivalence, IdenticalVictimSequences)
{
    std::uint32_t size = GetParam();
    std::uint64_t capacity = 8ULL * size;
    PseudoCircularCache circular(capacity);
    FifoCache fifo(capacity);

    Fragment frag;
    frag.sizeBytes = size;
    std::vector<Fragment> evicted_a;
    std::vector<Fragment> evicted_b;
    for (TraceId id = 1; id <= 200; ++id) {
        frag.id = id;
        evicted_a.clear();
        evicted_b.clear();
        ASSERT_TRUE(circular.insert(frag, evicted_a));
        ASSERT_TRUE(fifo.insert(frag, evicted_b));
        ASSERT_EQ(evicted_a.size(), evicted_b.size()) << id;
        for (std::size_t i = 0; i < evicted_a.size(); ++i) {
            EXPECT_EQ(evicted_a[i].id, evicted_b[i].id) << id;
        }
        EXPECT_EQ(circular.usedBytes(), fifo.usedBytes());
    }
    EXPECT_EQ(circular.region().wrapWasteBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(UniformSizes, CircularFifoEquivalence,
                         ::testing::Values(32u, 100u, 256u, 4096u));

// ---------------------------------------------------------------
// Property: the unified manager's miss accounting is exact for every
// capacity in a sweep (misses == lookups - hits, inserts >= creates).
// ---------------------------------------------------------------

class UnifiedProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UnifiedProperty, AccountingBalances)
{
    UnifiedCacheManager manager(GetParam());
    Rng rng(GetParam() * 3);
    TraceId next = 1;
    for (int step = 0; step < 3000; ++step) {
        TimeUs now = static_cast<TimeUs>(step);
        if (rng.uniform01() < 0.4) {
            TraceId id = next++;
            manager.insert(id,
                           static_cast<std::uint32_t>(
                               rng.uniformInt(16, 700)),
                           0, now);
        } else if (next > 1) {
            manager.lookup(static_cast<TraceId>(rng.uniformInt(
                               1, static_cast<std::int64_t>(next) - 1)),
                           now);
        }
    }
    const ManagerStats &stats = manager.stats();
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
    EXPECT_LE(manager.usedBytes(), manager.totalCapacity());
}

INSTANTIATE_TEST_SUITE_P(Capacities, UnifiedProperty,
                         ::testing::Values(2048ULL, 16384ULL,
                                           131072ULL));

} // namespace
} // namespace gencache::cache
