/**
 * @file
 * Integration tests across the whole stack: synthetic guest programs
 * executed by the runtime, logs replayed by the simulator, and the
 * full experiment pipeline on real profiles.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/checker.h"
#include "codecache/generational_cache.h"
#include "codecache/unified_cache.h"
#include "guest/synthetic_program.h"
#include "runtime/runtime.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "tracelog/lifetime.h"
#include "tracelog/serialize.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace gencache {
namespace {

/** Run a synthetic program under the runtime and return its log. */
tracelog::AccessLog
runLiveProgram(cache::CacheManager &manager, std::uint64_t seed)
{
    guest::SyntheticProgramConfig config;
    config.seed = seed;
    config.phases = 3;
    config.phaseIterations = 40;
    config.innerIterations = 25;
    config.dllCount = 2;
    guest::SyntheticProgram synthetic =
        guest::generateSyntheticProgram(config);

    guest::AddressSpace space;
    for (const auto &module : synthetic.program.modules()) {
        space.map(*module);
    }
    runtime::Runtime runtime(space, manager, 10);
    // Under GENCACHE_CHECK=1 the cheap analysis passes re-verify the
    // link graph and cache storage at every phase boundary.
    analysis::attachPhaseChecks(runtime);
    runtime.start(synthetic.program.entry());
    runtime.run();
    EXPECT_TRUE(runtime.finished());
    return runtime.log();
}

TEST(Integration, LiveLogReplaysWithConsistentBehaviour)
{
    // Execute live with an unbounded cache, then replay the log
    // against the same configuration: the replay sees one lookup per
    // trace execution and never misses (nothing was ever evicted).
    cache::UnifiedCacheManager live_manager(0);
    tracelog::AccessLog log = runLiveProgram(live_manager, 51);
    log.validate();

    cache::UnifiedCacheManager replay_manager(0);
    sim::CacheSimulator simulator(replay_manager);
    sim::SimResult result = simulator.run(log);
    EXPECT_EQ(result.misses, 0u);
    EXPECT_EQ(result.createdTraces, log.createdTraceCount());
}

TEST(Integration, LiveLogSurvivesSerializationRoundTrip)
{
    cache::UnifiedCacheManager manager(0);
    tracelog::AccessLog log = runLiveProgram(manager, 52);

    std::stringstream stream;
    tracelog::writeBinary(log, stream);
    tracelog::AccessLog loaded = tracelog::readBinary(stream);
    loaded.validate();

    cache::UnifiedCacheManager replay_a(64 * kKiB);
    sim::CacheSimulator sim_a(replay_a);
    sim::SimResult result_a = sim_a.run(log);

    cache::UnifiedCacheManager replay_b(64 * kKiB);
    sim::CacheSimulator sim_b(replay_b);
    sim::SimResult result_b = sim_b.run(loaded);

    EXPECT_EQ(result_a.misses, result_b.misses);
    EXPECT_EQ(result_a.lookups, result_b.lookups);
    EXPECT_EQ(result_a.overhead.total(), result_b.overhead.total());
}

TEST(Integration, GenerationalBeatsUnifiedOnGeneratedWorkload)
{
    // End-to-end §6 methodology on a real (scaled-down) profile.
    workload::BenchmarkProfile profile = workload::findProfile("gzip");
    profile.durationSec = 4.0;
    profile.finalCacheKb = 128.0;
    profile.execsPerTraceMean = 40.0;

    sim::ExperimentRunner runner(profile);
    sim::BenchmarkComparison comparison =
        runner.compare(sim::paperLayouts());

    // 45-10-45 with single-hit promotion (index 2) should beat the
    // unified baseline on this strongly U-shaped workload.
    EXPECT_GT(comparison.missRateReductionPct(2), 0.0);
    EXPECT_GT(comparison.missesEliminated(2), 0);
    EXPECT_LT(comparison.overheadRatioPct(2), 100.0);
}

TEST(Integration, GeneratedLifetimesAreUShaped)
{
    workload::BenchmarkProfile profile = workload::findProfile("word");
    profile.durationSec = 3.0;
    profile.finalCacheKb = 256.0;

    tracelog::AccessLog log = workload::generateWorkload(profile);
    log.validate();
    tracelog::LifetimeAnalyzer analyzer(log);
    Histogram histogram = analyzer.lifetimeHistogram();
    double extremes =
        histogram.binFraction(0) + histogram.binFraction(4);
    EXPECT_GT(extremes, 0.55);
}

TEST(Integration, UnmappedBytesTrackProfileFraction)
{
    workload::BenchmarkProfile profile =
        workload::findProfile("iexplore");
    profile.durationSec = 3.0;
    profile.finalCacheKb = 256.0;

    sim::ExperimentRunner runner(profile);
    sim::SimResult unbounded = runner.runUnbounded();
    double unmap_frac =
        static_cast<double>(
            unbounded.managerStats.unmapDeletedBytes) /
        static_cast<double>(unbounded.createdBytes);
    EXPECT_NEAR(unmap_frac, profile.unmapFrac, 0.06);
}

TEST(Integration, LiveRuntimeUnderPressureStaysConsistent)
{
    // Generational manager with a small total: heavy promotion and
    // eviction churn while the guest is actually executing. The
    // manager's internal index must stay consistent throughout.
    cache::GenerationalConfig config =
        cache::GenerationalConfig::fromProportions(3 * kKiB, 0.40,
                                                   0.30, 1);
    cache::GenerationalCacheManager manager(config);
    tracelog::AccessLog log = runLiveProgram(manager, 53);
    manager.validate();
    EXPECT_GT(manager.stats().promotions, 0u);
    log.validate();
}

TEST(Integration, RuntimeResidencyImprovesWithCacheSize)
{
    std::uint64_t small_cache = 4 * kKiB;
    std::uint64_t large_cache = 512 * kKiB;
    double residency[2];
    int index = 0;
    for (std::uint64_t capacity : {small_cache, large_cache}) {
        guest::SyntheticProgramConfig config;
        config.seed = 54;
        config.phases = 3;
        config.phaseIterations = 40;
        config.innerIterations = 25;
        guest::SyntheticProgram synthetic =
            guest::generateSyntheticProgram(config);
        guest::AddressSpace space;
        for (const auto &module : synthetic.program.modules()) {
            space.map(*module);
        }
        cache::UnifiedCacheManager manager(capacity);
        runtime::Runtime runtime(space, manager, 10);
        analysis::attachPhaseChecks(runtime);
        runtime.start(synthetic.program.entry());
        runtime.run();
        residency[index++] = runtime.stats().cacheResidency();
    }
    EXPECT_GE(residency[1], residency[0]);
}

} // namespace
} // namespace gencache
