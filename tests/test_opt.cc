/**
 * @file
 * Unit and property tests for the trace optimizer: superblock
 * construction (jump straightening), each pass, the pass manager's
 * profitability guard, and semantic preservation on randomized
 * straight-line code.
 */

#include <gtest/gtest.h>

#include "opt/passes.h"
#include "opt/superblock.h"
#include "support/rng.h"

namespace gencache::opt {
namespace {

Superblock
makeSb(std::initializer_list<isa::Instruction> insts)
{
    Superblock sb(0x400);
    for (const isa::Instruction &inst : insts) {
        sb.append(inst, isa::isConditionalBranch(inst.opcode));
    }
    return sb;
}

TEST(Superblock, TracksBytesAndExits)
{
    Superblock sb = makeSb({
        isa::makeMovImm(1, 5),     // 6
        isa::makeBranchNz(1, 0x500), // 6, side exit
        isa::makeAdd(2, 1, 1),     // 3
        isa::makeJump(0x600),      // 5
    });
    EXPECT_EQ(sb.codeBytes(), 20u);
    EXPECT_EQ(sb.sideExitCount(), 1u);
    EXPECT_NE(sb.toString().find("side exit"), std::string::npos);
}

TEST(SuperblockDeath, NonBranchSideExit)
{
    Superblock sb(0);
    EXPECT_DEATH(sb.append(isa::makeNop(), true),
                 "conditional branches");
}

TEST(BuildSuperblock, StraightensJumps)
{
    // Block A ends with jump to B; B follows on the path: the jump
    // disappears. B's conditional continues on-trace as a side exit.
    isa::BasicBlock a(0x400);
    a.append(isa::makeMovImm(1, 3));
    a.append(isa::makeJump(0x500));
    isa::BasicBlock b(0x500);
    b.append(isa::makeAddImm(1, 1, -1));
    b.append(isa::makeBranchNz(1, 0x500)); // loop edge: side exit
    isa::BasicBlock c(0x50B); // fall-through of b
    c.append(isa::makeReturn());

    Superblock sb = buildSuperblock({&a, &b, &c});
    ASSERT_EQ(sb.size(), 4u); // movi, addi, bnz, ret (jump dropped)
    EXPECT_EQ(sb.insts()[0].inst.opcode, isa::Opcode::MovImm);
    EXPECT_EQ(sb.insts()[1].inst.opcode, isa::Opcode::AddImm);
    EXPECT_EQ(sb.insts()[2].inst.opcode, isa::Opcode::BranchNz);
    EXPECT_TRUE(sb.insts()[2].sideExit);
    EXPECT_EQ(sb.insts()[3].inst.opcode, isa::Opcode::Return);
    EXPECT_EQ(sb.entry(), 0x400u);
}

TEST(BuildSuperblock, KeepsNonAdjacentJump)
{
    isa::BasicBlock a(0x400);
    a.append(isa::makeJump(0x900)); // target != next block start
    isa::BasicBlock b(0x900);
    b.append(isa::makeHalt());
    Superblock sb = buildSuperblock({&a, &b});
    // Jump target is the next path block... adjacency is by address,
    // and 0x900 == b.startAddr(), so it IS straightened.
    EXPECT_EQ(sb.size(), 1u);

    isa::BasicBlock c(0x700);
    c.append(isa::makeCall(0x900)); // calls are never dropped
    Superblock sb2 = buildSuperblock({&c, &b});
    EXPECT_EQ(sb2.size(), 2u);
}

TEST(NopElimination, RemovesAllNops)
{
    Superblock sb = makeSb({isa::makeNop(), isa::makeMovImm(1, 2),
                            isa::makeNop(), isa::makeHalt()});
    NopElimination pass;
    EXPECT_TRUE(pass.run(sb));
    EXPECT_EQ(sb.size(), 2u);
    EXPECT_FALSE(pass.run(sb)); // fixpoint
}

TEST(RedundantMoveElimination, DropsSelfMovesAndRemat)
{
    Superblock sb = makeSb({isa::makeMov(3, 3),
                            isa::makeMovImm(1, 7),
                            isa::makeMovImm(1, 7),
                            isa::makeHalt()});
    RedundantMoveElimination pass;
    EXPECT_TRUE(pass.run(sb));
    EXPECT_EQ(sb.size(), 2u);
}

TEST(ConstantFolding, FoldsImmediateChains)
{
    Superblock sb = makeSb({isa::makeMovImm(1, 6),
                            isa::makeMovImm(2, 7),
                            isa::makeMul(3, 1, 2),
                            isa::makeAddImm(4, 3, 8),
                            isa::makeHalt()});
    ConstantFolding pass;
    EXPECT_TRUE(pass.run(sb));
    EXPECT_EQ(sb.insts()[2].inst.opcode, isa::Opcode::MovImm);
    EXPECT_EQ(sb.insts()[2].inst.imm, 42);
    EXPECT_EQ(sb.insts()[3].inst.opcode, isa::Opcode::MovImm);
    EXPECT_EQ(sb.insts()[3].inst.imm, 50);
}

TEST(ConstantFolding, LoadKillsConstant)
{
    Superblock sb = makeSb({isa::makeMovImm(1, 6),
                            isa::makeLoad(1, 2, 0),
                            isa::makeAddImm(3, 1, 1),
                            isa::makeHalt()});
    ConstantFolding pass;
    EXPECT_FALSE(pass.run(sb)); // nothing foldable
    EXPECT_EQ(sb.insts()[2].inst.opcode, isa::Opcode::AddImm);
}

TEST(DeadWriteElimination, RemovesOverwrittenValue)
{
    Superblock sb = makeSb({isa::makeMovImm(1, 6),  // dead
                            isa::makeMovImm(1, 7),
                            isa::makeHalt()});
    DeadWriteElimination pass;
    EXPECT_TRUE(pass.run(sb));
    ASSERT_EQ(sb.size(), 2u);
    EXPECT_EQ(sb.insts()[0].inst.imm, 7);
}

TEST(DeadWriteElimination, SideExitKeepsValueAlive)
{
    Superblock sb = makeSb({isa::makeMovImm(1, 6), // live off-trace!
                            isa::makeBranchNz(2, 0x999),
                            isa::makeMovImm(1, 7),
                            isa::makeHalt()});
    DeadWriteElimination pass;
    EXPECT_FALSE(pass.run(sb));
    EXPECT_EQ(sb.size(), 4u);
}

TEST(DeadWriteElimination, ReadKeepsValueAlive)
{
    Superblock sb = makeSb({isa::makeMovImm(1, 6),
                            isa::makeAdd(2, 1, 1),
                            isa::makeMovImm(1, 7),
                            isa::makeHalt()});
    DeadWriteElimination pass;
    EXPECT_FALSE(pass.run(sb));
}

TEST(DeadWriteElimination, KeepsDeadLoads)
{
    Superblock sb = makeSb({isa::makeLoad(1, 2, 0), // dead but kept
                            isa::makeMovImm(1, 7),
                            isa::makeHalt()});
    DeadWriteElimination pass;
    EXPECT_FALSE(pass.run(sb));
}

TEST(PassManager, PipelineShrinksTypicalTrace)
{
    Superblock sb = makeSb({isa::makeNop(),
                            isa::makeMovImm(1, 10),
                            isa::makeMovImm(2, 32),
                            isa::makeAdd(3, 1, 2),   // foldable: 42
                            isa::makeMov(4, 4),      // self move
                            isa::makeMovImm(1, 0),   // kills 1
                            isa::makeMovImm(2, 0),   // kills 2
                            isa::makeHalt()});
    PassManager pipeline = makeDefaultPipeline();
    std::uint32_t before = sb.codeBytes();
    OptResult result = pipeline.optimize(sb);
    EXPECT_EQ(result.bytesBefore, before);
    EXPECT_LT(result.bytesAfter, before);
    EXPECT_GT(result.bytesSaved(), 0u);
    EXPECT_GE(result.iterations, 1u);

    // Semantics: r3 must still be 42 and r1/r2 zero.
    SbMachineState final_state =
        evaluateStraightLine(sb, SbMachineState{});
    EXPECT_EQ(final_state.regs[3], 42);
    EXPECT_EQ(final_state.regs[1], 0);
    EXPECT_EQ(final_state.regs[2], 0);
}

TEST(PassManager, NeverGrowsCode)
{
    // Folding alone can grow code (movi wider than add); the manager
    // must keep the smallest version.
    Superblock sb = makeSb({isa::makeMovImm(1, 1),
                            isa::makeMovImm(2, 2),
                            isa::makeAdd(3, 1, 2),
                            isa::makeAdd(4, 1, 2),
                            isa::makeStore(5, 0, 3),
                            isa::makeStore(5, 8, 4),
                            isa::makeStore(5, 16, 1),
                            isa::makeStore(5, 24, 2),
                            isa::makeHalt()});
    std::uint32_t before = sb.codeBytes();
    PassManager pipeline = makeDefaultPipeline();
    OptResult result = pipeline.optimize(sb);
    EXPECT_LE(result.bytesAfter, before);
    EXPECT_LE(sb.codeBytes(), before);
}

// ---------------------------------------------------------------
// Property: optimization preserves straight-line semantics on random
// register-only superblocks (final register file and store stream).
// ---------------------------------------------------------------

class OptSemanticsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(OptSemanticsProperty, RandomProgramsUnchanged)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    for (int round = 0; round < 50; ++round) {
        Superblock sb(0x400);
        int length = static_cast<int>(rng.uniformInt(5, 60));
        for (int i = 0; i < length; ++i) {
            unsigned dst =
                static_cast<unsigned>(rng.uniformInt(0, 7));
            unsigned s1 = static_cast<unsigned>(rng.uniformInt(0, 7));
            unsigned s2 = static_cast<unsigned>(rng.uniformInt(0, 7));
            switch (rng.uniformInt(0, 7)) {
              case 0:
                sb.append(isa::makeNop());
                break;
              case 1:
                sb.append(isa::makeMovImm(dst,
                                          rng.uniformInt(-50, 50)));
                break;
              case 2:
                sb.append(isa::makeMov(dst, s1));
                break;
              case 3:
                sb.append(isa::makeAdd(dst, s1, s2));
                break;
              case 4:
                sb.append(isa::makeSub(dst, s1, s2));
                break;
              case 5:
                sb.append(
                    isa::makeAddImm(dst, s1, rng.uniformInt(-9, 9)));
                break;
              case 6:
                sb.append(isa::makeStore(s1,
                                         rng.uniformInt(0, 64), s2));
                break;
              default:
                sb.append(isa::makeBranchNz(
                              s1, 0x900 + static_cast<isa::GuestAddr>(
                                              i)),
                          true);
                break;
            }
        }
        sb.append(isa::makeHalt());

        SbMachineState initial;
        for (auto &reg : initial.regs) {
            reg = rng.uniformInt(-100, 100);
        }

        SbMachineState expected = evaluateStraightLine(sb, initial);
        Superblock optimized = sb;
        PassManager pipeline = makeDefaultPipeline();
        pipeline.optimize(optimized);
        SbMachineState actual =
            evaluateStraightLine(optimized, initial);

        ASSERT_EQ(actual.regs, expected.regs) << sb.toString();
        ASSERT_EQ(actual.stores, expected.stores) << sb.toString();
        ASSERT_LE(optimized.codeBytes(), sb.codeBytes());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptSemanticsProperty,
                         ::testing::Range(1, 9));

} // namespace
} // namespace gencache::opt
