/**
 * @file
 * Frozen pre-pipeline cache managers (test and bench oracle).
 *
 * These are verbatim copies of GenerationalCacheManager and
 * UnifiedCacheManager as they existed before the tier-pipeline
 * refactor, kept so the equivalence suite (test_tier_pipeline.cc) and
 * the dispatch-overhead bench (bench/tier_overhead.cc) can compare
 * the composable TierPipeline against the original monoliths —
 * bit-identical stats and event streams, comparable wall time.
 *
 * Do not "fix" or modernize this file: its value is that it does not
 * change. It is not part of the library build.
 */

#ifndef GENCACHE_TESTS_REFERENCE_MANAGERS_H
#define GENCACHE_TESTS_REFERENCE_MANAGERS_H

#include <cmath>
#include <memory>

#include "codecache/cache_manager.h"
#include "codecache/generational_cache.h"
#include "codecache/list_cache.h"
#include "codecache/trace_index.h"
#include "support/format.h"
#include "support/logging.h"

namespace gencache::cache::reference {

/** The pre-refactor generational monolith (paper §5, Figure 8). */
class ReferenceGenerationalManager : public CacheManager
{
  public:
    explicit ReferenceGenerationalManager(
        const GenerationalConfig &config)
        : config_(config)
    {
        if (config_.nurseryBytes == 0 || config_.probationBytes == 0 ||
            config_.persistentBytes == 0) {
            fatal("generational caches need positive sizes "
                  "({} / {} / {})", config_.nurseryBytes,
                  config_.probationBytes, config_.persistentBytes);
        }
        if (config_.promotionThreshold == 0) {
            fatal("promotion threshold must be at least 1");
        }
        if (config_.policy == LocalPolicy::Unbounded) {
            fatal("generational caches require a bounded local policy");
        }
        nursery_ = makeLocalCache(config_.policy, config_.nurseryBytes);
        probation_ =
            makeLocalCache(config_.policy, config_.probationBytes);
        persistent_ =
            makeLocalCache(config_.policy, config_.persistentBytes);
    }

    std::string name() const override
    {
        double total = static_cast<double>(config_.totalBytes());
        auto pct = [total](std::uint64_t bytes) {
            return static_cast<int>(std::llround(
                100.0 * static_cast<double>(bytes) / total));
        };
        return format("generational {}-{}-{} thr={}{}",
                      pct(config_.nurseryBytes),
                      pct(config_.probationBytes),
                      pct(config_.persistentBytes),
                      config_.promotionThreshold,
                      config_.eagerPromotion ? " eager" : "");
    }

    bool lookup(TraceId id, TimeUs now) override
    {
        ++stats_.lookups;
        const Generation *found = where_.find(id);
        if (found == nullptr) {
            ++stats_.misses;
            if (listener_ != nullptr) {
                listener_->onMiss(id, now);
            }
            return false;
        }

        Generation gen = *found;
        LocalCache &cache = cacheOf(gen);
        Fragment *frag = cache.find(id);
        if (frag == nullptr) {
            GENCACHE_PANIC("trace {} indexed in {} but not resident",
                           id, generationName(gen));
        }
        ++stats_.hits;
        ++statsOf(gen).hits;
        cache.touch(id, now);
        if (listener_ != nullptr) {
            listener_->onHit(id, gen, now);
        }

        if (gen == Generation::Probation) {
            ++frag->accessCount;
            if (config_.eagerPromotion &&
                frag->accessCount >= config_.promotionThreshold) {
                Fragment moving = *frag;
                probation_->remove(id);
                where_.erase(id);
                promoteToPersistent(moving, now);
            }
        }
        return true;
    }

    bool insert(TraceId id, std::uint32_t size_bytes, ModuleId module,
                TimeUs now) override
    {
        if (where_.contains(id)) {
            GENCACHE_PANIC("insert of resident trace {}", id);
        }
        Fragment frag;
        frag.id = id;
        frag.sizeBytes = size_bytes;
        frag.module = module;
        frag.insertTime = now;

        std::vector<Fragment> evicted;
        if (!nursery_->insert(frag, evicted)) {
            ++stats_.placementFailures;
            return false;
        }
        where_.insert(id, Generation::Nursery);
        ++stats_.inserts;
        stats_.insertedBytes += size_bytes;
        if (listener_ != nullptr) {
            listener_->onInsert(frag, Generation::Nursery, now);
        }
        for (Fragment &victim : evicted) {
            cascadeVictim(Generation::Nursery, victim, now);
        }
        return true;
    }

    void invalidateModule(ModuleId module, TimeUs now) override
    {
        const Generation generations[] = {Generation::Nursery,
                                          Generation::Probation,
                                          Generation::Persistent};
        for (Generation gen : generations) {
            LocalCache &cache = cacheOf(gen);
            std::vector<TraceId> victims;
            cache.forEach([&](const Fragment &frag) {
                if (frag.module == module) {
                    victims.push_back(frag.id);
                }
            });
            for (TraceId id : victims) {
                Fragment removed;
                cache.remove(id, &removed);
                where_.erase(id);
                ++stats_.unmapDeletions;
                stats_.unmapDeletedBytes += removed.sizeBytes;
                ++statsOf(gen).deletions;
                if (listener_ != nullptr) {
                    listener_->onEvict(removed, gen,
                                       EvictReason::Unmap, now);
                }
            }
        }
    }

    bool setPinned(TraceId id, bool pinned) override
    {
        const Generation *found = where_.find(id);
        if (found == nullptr) {
            return false;
        }
        return cacheOf(*found).setPinned(id, pinned);
    }

    bool contains(TraceId id) const override
    {
        return where_.contains(id);
    }

    void prepareDenseIds(std::uint64_t id_bound) override
    {
        where_.reserveDense(id_bound);
        nursery_->reserveDenseIds(id_bound);
        probation_->reserveDenseIds(id_bound);
        persistent_->reserveDenseIds(id_bound);
    }

    std::uint64_t totalCapacity() const override
    {
        return config_.totalBytes();
    }

    std::uint64_t usedBytes() const override
    {
        return nursery_->usedBytes() + probation_->usedBytes() +
               persistent_->usedBytes();
    }

  private:
    LocalCache &cacheOf(Generation gen)
    {
        switch (gen) {
          case Generation::Nursery: return *nursery_;
          case Generation::Probation: return *probation_;
          case Generation::Persistent: return *persistent_;
          default:
            break;
        }
        GENCACHE_PANIC("generational manager has no {} cache",
                       generationName(gen));
    }

    GenerationStats &statsOf(Generation gen)
    {
        switch (gen) {
          case Generation::Nursery: return nurseryStats_;
          case Generation::Probation: return probationStats_;
          case Generation::Persistent: return persistentStats_;
          default:
            break;
        }
        GENCACHE_PANIC("generational manager has no {} stats",
                       generationName(gen));
    }

    void cascadeVictim(Generation gen, Fragment victim, TimeUs now)
    {
        if (gen == Generation::Nursery) {
            victim.accessCount = 0;
            victim.insertTime = now;
            std::vector<Fragment> evicted;
            if (!probation_->insert(victim, evicted)) {
                ++stats_.placementFailures;
                destroy(victim, Generation::Nursery,
                        EvictReason::Capacity, now);
                return;
            }
            where_.set(victim.id, Generation::Probation);
            ++stats_.promotions;
            stats_.promotedBytes += victim.sizeBytes;
            ++nurseryStats_.promotionsOut;
            ++probationStats_.promotionsIn;
            if (listener_ != nullptr) {
                listener_->onEvict(victim, Generation::Nursery,
                                   EvictReason::PromotionMove, now);
                listener_->onPromote(victim, Generation::Nursery,
                                     Generation::Probation, now);
            }
            for (Fragment &next : evicted) {
                cascadeVictim(Generation::Probation, next, now);
            }
            return;
        }

        if (gen == Generation::Probation) {
            if (victim.accessCount >= config_.promotionThreshold) {
                promoteToPersistent(victim, now);
            } else {
                ++stats_.probationRejections;
                destroy(victim, Generation::Probation,
                        EvictReason::Rejected, now);
            }
            return;
        }

        destroy(victim, Generation::Persistent, EvictReason::Capacity,
                now);
    }

    void promoteToPersistent(Fragment frag, TimeUs now)
    {
        Generation from = Generation::Probation;
        frag.insertTime = now;
        std::vector<Fragment> evicted;
        if (!persistent_->insert(frag, evicted)) {
            ++stats_.placementFailures;
            destroy(frag, from, EvictReason::Capacity, now);
            return;
        }
        where_.set(frag.id, Generation::Persistent);
        ++stats_.promotions;
        stats_.promotedBytes += frag.sizeBytes;
        ++probationStats_.promotionsOut;
        ++persistentStats_.promotionsIn;
        if (listener_ != nullptr) {
            listener_->onEvict(frag, from, EvictReason::PromotionMove,
                               now);
            listener_->onPromote(frag, from, Generation::Persistent,
                                 now);
        }
        for (Fragment &victim : evicted) {
            cascadeVictim(Generation::Persistent, victim, now);
        }
    }

    void destroy(const Fragment &frag, Generation gen,
                 EvictReason reason, TimeUs now)
    {
        where_.erase(frag.id);
        ++stats_.deletions;
        stats_.deletedBytes += frag.sizeBytes;
        ++statsOf(gen).deletions;
        if (listener_ != nullptr) {
            listener_->onEvict(frag, gen, reason, now);
        }
    }

    GenerationalConfig config_;
    std::unique_ptr<LocalCache> nursery_;
    std::unique_ptr<LocalCache> probation_;
    std::unique_ptr<LocalCache> persistent_;
    GenerationStats nurseryStats_;
    GenerationStats probationStats_;
    GenerationStats persistentStats_;
    TraceIndex<Generation> where_;
};

/** The pre-refactor single-cache baseline manager. */
class ReferenceUnifiedManager : public CacheManager
{
  public:
    explicit ReferenceUnifiedManager(
        std::uint64_t capacity,
        LocalPolicy policy = LocalPolicy::PseudoCircular)
        : policy_(capacity == 0 ? LocalPolicy::Unbounded : policy)
    {
        cache_ = makeLocalCache(policy_, capacity);
    }

    std::string name() const override
    {
        if (policy_ == LocalPolicy::Unbounded) {
            return "unified/unbounded";
        }
        return format("unified/{} ({})", cache_->policyName(),
                      humanBytes(cache_->capacity()));
    }

    bool lookup(TraceId id, TimeUs now) override
    {
        ++stats_.lookups;
        Fragment *frag = cache_->find(id);
        if (frag == nullptr) {
            ++stats_.misses;
            if (listener_ != nullptr) {
                listener_->onMiss(id, now);
            }
            return false;
        }
        ++stats_.hits;
        cache_->touch(id, now);
        if (listener_ != nullptr) {
            listener_->onHit(id, Generation::Unified, now);
        }
        return true;
    }

    bool insert(TraceId id, std::uint32_t size_bytes, ModuleId module,
                TimeUs now) override
    {
        if (cache_->find(id) != nullptr) {
            GENCACHE_PANIC("insert of resident trace {}", id);
        }
        Fragment frag;
        frag.id = id;
        frag.sizeBytes = size_bytes;
        frag.module = module;
        frag.insertTime = now;

        std::vector<Fragment> evicted;
        if (!cache_->insert(frag, evicted)) {
            ++stats_.placementFailures;
            return false;
        }
        ++stats_.inserts;
        stats_.insertedBytes += size_bytes;
        for (const Fragment &victim : evicted) {
            ++stats_.deletions;
            stats_.deletedBytes += victim.sizeBytes;
            if (listener_ != nullptr) {
                listener_->onEvict(victim, Generation::Unified,
                                   EvictReason::Capacity, now);
            }
        }
        if (listener_ != nullptr) {
            listener_->onInsert(*cache_->find(id), Generation::Unified,
                                now);
        }
        return true;
    }

    void invalidateModule(ModuleId module, TimeUs now) override
    {
        std::vector<TraceId> victims;
        cache_->forEach([&](const Fragment &frag) {
            if (frag.module == module) {
                victims.push_back(frag.id);
            }
        });
        for (TraceId id : victims) {
            Fragment removed;
            cache_->remove(id, &removed);
            ++stats_.unmapDeletions;
            stats_.unmapDeletedBytes += removed.sizeBytes;
            if (listener_ != nullptr) {
                listener_->onEvict(removed, Generation::Unified,
                                   EvictReason::Unmap, now);
            }
        }
    }

    bool setPinned(TraceId id, bool pinned) override
    {
        return cache_->setPinned(id, pinned);
    }

    bool contains(TraceId id) const override
    {
        return cache_->contains(id);
    }

    std::uint64_t totalCapacity() const override
    {
        return cache_->capacity();
    }

    std::uint64_t usedBytes() const override
    {
        return cache_->usedBytes();
    }

    void prepareDenseIds(std::uint64_t id_bound) override
    {
        cache_->reserveDenseIds(id_bound);
    }

  private:
    std::unique_ptr<LocalCache> cache_;
    LocalPolicy policy_;
};

} // namespace gencache::cache::reference

#endif // GENCACHE_TESTS_REFERENCE_MANAGERS_H
