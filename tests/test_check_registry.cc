// Drift test between the machine-readable check registry
// (analysis::checkRegistry) and the DESIGN.md §8/§13 inventory
// tables: every registered check must be documented at the same
// severity, every documented check must be registered, the JSON dump
// behind `gencheck --list-checks` must name them all, and reporting
// under an unregistered ID must die.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>

#include "analysis/diagnostics.h"

namespace {

using namespace gencache;
using analysis::Severity;

/** DESIGN.md check rows: ID -> documented severity word. A row reads
 *  `| `check-id` | warn | description |`. */
std::map<std::string, std::string>
documentedChecks()
{
    const std::string path =
        std::string(GENCACHE_SOURCE_ROOT) + "/DESIGN.md";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;

    std::map<std::string, std::string> rows;
    std::string line;
    while (std::getline(in, line)) {
        // "| `id` | sev | ..." — tolerate surrounding spaces only.
        if (line.rfind("| `", 0) != 0) {
            continue;
        }
        const std::size_t idEnd = line.find('`', 3);
        if (idEnd == std::string::npos) {
            continue;
        }
        const std::string id = line.substr(3, idEnd - 3);
        std::size_t sevStart = line.find('|', idEnd);
        if (sevStart == std::string::npos) {
            continue;
        }
        sevStart = line.find_first_not_of(" |", sevStart);
        const std::size_t sevEnd =
            line.find_first_of(" |", sevStart);
        if (sevStart == std::string::npos ||
            sevEnd == std::string::npos) {
            continue;
        }
        const std::string severity =
            line.substr(sevStart, sevEnd - sevStart);
        // Only check-inventory rows: other DESIGN.md tables also
        // start cells with backticked identifiers, but only the
        // inventories put a severity word in column two.
        if (severity != "note" && severity != "warn" &&
            severity != "error") {
            continue;
        }
        rows[id] = severity;
    }
    return rows;
}

const char *
documentedWord(Severity severity)
{
    switch (severity) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warn";
      case Severity::Error:
        return "error";
    }
    return "?";
}

TEST(CheckRegistry, EveryRegisteredCheckIsDocumented)
{
    const std::map<std::string, std::string> documented =
        documentedChecks();
    ASSERT_FALSE(documented.empty());
    for (const analysis::CheckInfo &info :
         analysis::checkRegistry()) {
        const auto row = documented.find(std::string(info.id));
        ASSERT_NE(row, documented.end())
            << "check `" << info.id
            << "` is registered but missing from the DESIGN.md "
               "inventory tables";
        EXPECT_EQ(row->second, documentedWord(info.severity))
            << "check `" << info.id
            << "` is documented at the wrong severity";
    }
}

TEST(CheckRegistry, EveryDocumentedCheckIsRegistered)
{
    for (const auto &[id, severity] : documentedChecks()) {
        const analysis::CheckInfo *info =
            analysis::findCheckInfo(id);
        ASSERT_NE(info, nullptr)
            << "DESIGN.md documents `" << id
            << "` but the registry does not know it";
        EXPECT_EQ(severity, documentedWord(info->severity))
            << "`" << id << "`";
        // The tables list canonical spellings only.
        EXPECT_EQ(analysis::canonicalCheckId(id), id);
    }
}

TEST(CheckRegistry, JsonDumpNamesEveryCheck)
{
    const std::string json = analysis::checkRegistryJson();
    for (const analysis::CheckInfo &info :
         analysis::checkRegistry()) {
        EXPECT_NE(json.find("\"" + std::string(info.id) + "\""),
                  std::string::npos)
            << info.id;
        EXPECT_NE(
            json.find(std::string(severityName(info.severity))),
            std::string::npos);
    }
}

TEST(CheckRegistry, LegacyAliasesResolveToRegisteredChecks)
{
    for (const char *alias :
         {"gen-dup-residency", "gen-index-mismatch", "gen-flow"}) {
        const analysis::CheckInfo *info =
            analysis::findCheckInfo(alias);
        ASSERT_NE(info, nullptr) << alias;
        EXPECT_NE(analysis::canonicalCheckId(alias), alias);
    }
}

TEST(CheckRegistryDeathTest, ReportingUnregisteredIdPanics)
{
    analysis::DiagnosticEngine engine;
    EXPECT_DEATH(engine.report(Severity::Error, "tmp-not-a-check",
                               "nowhere", "bogus"),
                 "tmp-not-a-check");
}

} // namespace
