/**
 * @file
 * Unit tests for benchmark profiles and the statistical workload
 * generator: determinism, structural validity, and that measured log
 * properties track the profile's targets.
 */

#include <gtest/gtest.h>

#include "support/units.h"
#include "tracelog/lifetime.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace gencache::workload {
namespace {

BenchmarkProfile
tinyProfile()
{
    BenchmarkProfile profile;
    profile.name = "tiny";
    profile.suite = Suite::SpecInt;
    profile.durationSec = 2.0;
    profile.finalCacheKb = 64.0;
    profile.codeExpansionPct = 500.0;
    profile.execsPerTraceMean = 10.0;
    profile.seed = 7;
    return profile;
}

BenchmarkProfile
tinyInteractiveProfile()
{
    BenchmarkProfile profile = tinyProfile();
    profile.name = "tiny-gui";
    profile.suite = Suite::Interactive;
    profile.unmapFrac = 0.2;
    profile.dllCount = 2;
    return profile;
}

TEST(Profiles, CatalogsHaveExpectedSizes)
{
    EXPECT_EQ(spec2000Profiles().size(), 26u);
    EXPECT_EQ(interactiveProfiles().size(), 12u);
    EXPECT_EQ(allProfiles().size(), 38u);
}

TEST(Profiles, Table1DurationsMatchPaper)
{
    // Table 1 of the paper.
    EXPECT_DOUBLE_EQ(findProfile("access").durationSec, 202.0);
    EXPECT_DOUBLE_EQ(findProfile("acroread").durationSec, 376.0);
    EXPECT_DOUBLE_EQ(findProfile("defrag").durationSec, 46.0);
    EXPECT_DOUBLE_EQ(findProfile("excel").durationSec, 208.0);
    EXPECT_DOUBLE_EQ(findProfile("iexplore").durationSec, 247.0);
    EXPECT_DOUBLE_EQ(findProfile("mpeg").durationSec, 257.0);
    EXPECT_DOUBLE_EQ(findProfile("outlook").durationSec, 196.0);
    EXPECT_DOUBLE_EQ(findProfile("pinball").durationSec, 372.0);
    EXPECT_DOUBLE_EQ(findProfile("powerpoint").durationSec, 173.0);
    EXPECT_DOUBLE_EQ(findProfile("solitaire").durationSec, 335.0);
    EXPECT_DOUBLE_EQ(findProfile("winzip").durationSec, 92.0);
    EXPECT_DOUBLE_EQ(findProfile("word").durationSec, 212.0);
}

TEST(Profiles, WordIsLargestInteractive)
{
    double word_kb = findProfile("word").finalCacheKb;
    for (const BenchmarkProfile &profile : interactiveProfiles()) {
        EXPECT_LE(profile.finalCacheKb, word_kb) << profile.name;
    }
    EXPECT_NEAR(word_kb, 34.2 * 1024.0, 1.0);
}

TEST(Profiles, GccIsLargestSpec)
{
    double gcc_kb = findProfile("gcc").finalCacheKb;
    for (const BenchmarkProfile &profile : spec2000Profiles()) {
        EXPECT_LE(profile.finalCacheKb, gcc_kb) << profile.name;
    }
    EXPECT_NEAR(gcc_kb, 4300.0, 1.0);
}

TEST(Profiles, MixesSumToOne)
{
    for (const BenchmarkProfile &profile : allProfiles()) {
        double sum = profile.mix.shortFrac + profile.mix.midFrac +
                     profile.mix.longFrac;
        EXPECT_NEAR(sum, 1.0, 1e-9) << profile.name;
    }
}

TEST(ProfilesDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(findProfile("no-such-benchmark"),
                ::testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(TraceSize, MedianNear242)
{
    Rng rng(3);
    TraceSizeModel model;
    std::vector<std::uint32_t> sizes;
    for (int i = 0; i < 10001; ++i) {
        sizes.push_back(sampleTraceSize(rng, model));
    }
    std::sort(sizes.begin(), sizes.end());
    EXPECT_NEAR(static_cast<double>(sizes[sizes.size() / 2]), 242.0,
                25.0);
    EXPECT_GE(sizes.front(), model.minBytes);
    EXPECT_LE(sizes.back(), model.maxBytes);
}

TEST(Generator, DeterministicForSeed)
{
    tracelog::AccessLog a = generateWorkload(tinyProfile());
    tracelog::AccessLog b = generateWorkload(tinyProfile());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 37) {
        EXPECT_EQ(a[i].time, b[i].time) << i;
        EXPECT_EQ(a[i].trace, b[i].trace) << i;
        EXPECT_EQ(a[i].type, b[i].type) << i;
    }
}

TEST(Generator, ProducesStructurallyValidLog)
{
    tracelog::AccessLog log = generateWorkload(tinyProfile());
    log.validate();
    EXPECT_GT(log.createdTraceCount(), 10u);
    EXPECT_EQ(log.duration(), secondsToUs(2.0));
}

TEST(Generator, CreatedBytesNearTarget)
{
    BenchmarkProfile profile = tinyProfile();
    tracelog::AccessLog log = generateWorkload(profile);
    double target = profile.finalCacheKb * 1024.0;
    EXPECT_NEAR(static_cast<double>(log.createdTraceBytes()), target,
                target * 0.15);
}

TEST(Generator, InteractiveLogHasUnloadEvents)
{
    tracelog::AccessLog log =
        generateWorkload(tinyInteractiveProfile());
    log.validate();
    std::size_t unloads = 0;
    std::uint64_t dll_bytes = 0;
    for (const tracelog::Event &event : log.events()) {
        if (event.type == tracelog::EventType::ModuleUnload) {
            ++unloads;
        }
        if (event.type == tracelog::EventType::TraceCreate &&
            event.module != 0) {
            dll_bytes += event.sizeBytes;
        }
    }
    EXPECT_EQ(unloads, 2u);
    double frac = static_cast<double>(dll_bytes) /
                  static_cast<double>(log.createdTraceBytes());
    EXPECT_NEAR(frac, 0.2, 0.06);
}

TEST(Generator, SpecLogHasNoUnloads)
{
    tracelog::AccessLog log = generateWorkload(tinyProfile());
    for (const tracelog::Event &event : log.events()) {
        EXPECT_NE(event.type, tracelog::EventType::ModuleUnload);
    }
}

TEST(Generator, NoExecutionAfterModuleUnload)
{
    tracelog::AccessLog log =
        generateWorkload(tinyInteractiveProfile());
    std::unordered_map<cache::ModuleId, TimeUs> unload_time;
    std::unordered_map<cache::TraceId, cache::ModuleId> module_of;
    for (const tracelog::Event &event : log.events()) {
        if (event.type == tracelog::EventType::ModuleUnload) {
            unload_time[event.module] = event.time;
        }
    }
    for (const tracelog::Event &event : log.events()) {
        if (event.type == tracelog::EventType::TraceCreate) {
            module_of[event.trace] = event.module;
        }
        if (event.type == tracelog::EventType::TraceExec) {
            auto mod = module_of.find(event.trace);
            ASSERT_NE(mod, module_of.end());
            auto unload = unload_time.find(mod->second);
            if (unload != unload_time.end()) {
                EXPECT_LE(event.time, unload->second)
                    << "trace " << event.trace;
            }
        }
    }
}

TEST(Generator, LifetimeShapeTracksMix)
{
    BenchmarkProfile profile = tinyProfile();
    profile.mix = {0.1, 0.1, 0.8};
    profile.seed = 11;
    tracelog::AccessLog log = generateWorkload(profile);
    tracelog::LifetimeAnalyzer analyzer(log);
    EXPECT_GT(analyzer.longLivedFraction(), 0.6);
    EXPECT_LT(analyzer.shortLivedFraction(), 0.3);
}

TEST(Generator, UShapedLifetimesForDefaults)
{
    BenchmarkProfile profile = tinyProfile();
    profile.finalCacheKb = 128.0;
    tracelog::AccessLog log = generateWorkload(profile);
    tracelog::LifetimeAnalyzer analyzer(log);
    Histogram histogram = analyzer.lifetimeHistogram();
    // The extreme buckets dominate the middle ones (Figure 6).
    double extremes =
        histogram.binFraction(0) + histogram.binFraction(4);
    double middle = histogram.binFraction(1) +
                    histogram.binFraction(2) +
                    histogram.binFraction(3);
    EXPECT_GT(extremes, middle);
}

TEST(Generator, PinEventsComeInPairsWithinWindows)
{
    BenchmarkProfile profile = tinyProfile();
    profile.pinFrac = 0.2; // exaggerate to get plenty of pins
    profile.seed = 19;
    tracelog::AccessLog log = generateWorkload(profile);
    log.validate();
    std::size_t pins = 0;
    std::size_t unpins = 0;
    std::unordered_map<cache::TraceId, TimeUs> pinned_at;
    for (const tracelog::Event &event : log.events()) {
        if (event.type == tracelog::EventType::Pin) {
            ++pins;
            pinned_at[event.trace] = event.time;
        } else if (event.type == tracelog::EventType::Unpin) {
            ++unpins;
            auto it = pinned_at.find(event.trace);
            ASSERT_NE(it, pinned_at.end());
            EXPECT_GE(event.time, it->second);
        }
    }
    EXPECT_GT(pins, 0u);
    EXPECT_EQ(pins, unpins);
}

TEST(Generator, PollutingMidProducesTwoPlateaus)
{
    BenchmarkProfile profile = tinyProfile();
    profile.mix = {0.0 + 1e-9, 1.0 - 2e-9, 0.0 + 1e-9};
    profile.pollutingMid = true;
    profile.execsPerTraceMean = 40.0;
    profile.seed = 23;
    tracelog::AccessLog log = generateWorkload(profile);
    tracelog::LifetimeAnalyzer analyzer(log);

    // Collect the execution times of one reasonably hot trace and
    // verify a dead middle third (the inter-phase gap).
    const tracelog::TraceLifetime *victim = nullptr;
    for (const auto &lifetime : analyzer.lifetimes()) {
        if (lifetime.executions > 20 &&
            lifetime.fraction(analyzer.totalTime()) > 0.55) {
            victim = &lifetime;
            break;
        }
    }
    ASSERT_NE(victim, nullptr);
    std::uint64_t middle = 0;
    std::uint64_t total = 0;
    TimeUs window = victim->lastExec - victim->firstExec;
    for (const tracelog::Event &event : log.events()) {
        if (event.type == tracelog::EventType::TraceExec &&
            event.trace == victim->trace) {
            ++total;
            double pos = static_cast<double>(
                             event.time - victim->firstExec) /
                         static_cast<double>(window);
            if (pos > 0.40 && pos < 0.60) {
                ++middle;
            }
        }
    }
    ASSERT_GT(total, 10u);
    // The middle fifth of the window holds (almost) no executions.
    EXPECT_LT(static_cast<double>(middle) /
                  static_cast<double>(total),
              0.05);
}

TEST(Generator, FootprintImpliesCodeExpansion)
{
    BenchmarkProfile profile = tinyProfile();
    tracelog::AccessLog log = generateWorkload(profile);
    double expansion = static_cast<double>(log.createdTraceBytes()) /
                       static_cast<double>(log.footprintBytes()) *
                       100.0;
    EXPECT_NEAR(expansion, profile.codeExpansionPct,
                profile.codeExpansionPct * 0.2);
}

} // namespace
} // namespace gencache::workload
