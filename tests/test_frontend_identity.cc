/**
 * @file
 * Front-end identity tests: the predecoded fast path must be
 * observationally indistinguishable from the legacy reference path.
 *
 * Both front ends run the same synthetic programs under the same
 * cache managers; the emitted AccessLog event streams must be
 * bit-identical (every field of every event), and the runtime,
 * bb-cache, and linker statistics must match exactly. The grid covers
 * the workload profiles the runtime tests exercise — steady loops,
 * phased programs with transient DLLs, wide code footprints — crossed
 * with unbounded, pressured-unified, and generational cache managers,
 * plus a harness that unloads DLLs mid-run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "codecache/generational_cache.h"
#include "codecache/unified_cache.h"
#include "guest/address_space.h"
#include "guest/synthetic_program.h"
#include "runtime/runtime.h"
#include "support/units.h"
#include "tracelog/event.h"

namespace gencache {
namespace {

/** Everything observable from one complete run. */
struct RunObservation
{
    tracelog::AccessLog log;
    runtime::RuntimeStats stats;
    runtime::BbCacheStats bbStats;
    runtime::LinkerStats linkStats;
};

/** The cache-manager shapes each profile is crossed with. */
enum class ManagerShape {
    Unbounded,    ///< UnifiedCacheManager(0): no evictions
    SmallUnified, ///< pressured FIFO: evictions and regenerations
    Generational, ///< small nursery/probation/persistent pipeline
};

std::unique_ptr<cache::CacheManager>
makeManager(ManagerShape shape)
{
    switch (shape) {
    case ManagerShape::Unbounded:
        return std::make_unique<cache::UnifiedCacheManager>(0);
    case ManagerShape::SmallUnified:
        return std::make_unique<cache::UnifiedCacheManager>(3 * kKiB);
    case ManagerShape::Generational:
        return std::make_unique<cache::GenerationalCacheManager>(
            cache::GenerationalConfig::fromProportions(3 * kKiB, 0.40,
                                                       0.30, 1));
    }
    return nullptr;
}

const char *
managerShapeName(ManagerShape shape)
{
    switch (shape) {
    case ManagerShape::Unbounded:
        return "unbounded";
    case ManagerShape::SmallUnified:
        return "small-unified";
    case ManagerShape::Generational:
        return "generational";
    }
    return "?";
}

/** One workload profile of the identity grid. */
struct Profile
{
    const char *name;
    guest::SyntheticProgramConfig config;
    std::uint32_t threshold;
};

std::vector<Profile>
profileGrid()
{
    std::vector<Profile> grid;

    guest::SyntheticProgramConfig small;
    small.seed = 7;
    small.phases = 2;
    small.phaseIterations = 8;
    small.innerIterations = 6;
    small.dllCount = 1;
    grid.push_back({"small", small, 10});

    guest::SyntheticProgramConfig phased;
    phased.seed = 21;
    phased.phases = 4;
    phased.phaseIterations = 12;
    phased.innerIterations = 8;
    phased.dllCount = 2;
    grid.push_back({"phased", phased, 10});

    guest::SyntheticProgramConfig wide;
    wide.seed = 33;
    wide.phases = 3;
    wide.functionsPerPhase = 6;
    wide.blocksPerFunction = 6;
    wide.phaseIterations = 10;
    wide.innerIterations = 8;
    wide.dllCount = 2;
    grid.push_back({"wide", wide, 10});

    guest::SyntheticProgramConfig hot;
    hot.seed = 55;
    hot.phases = 2;
    hot.sharedFunctions = 4;
    hot.phaseIterations = 15;
    hot.innerIterations = 30;
    hot.dllCount = 1;
    grid.push_back({"hot-loop", hot, 20});

    guest::SyntheticProgramConfig churn;
    churn.seed = 77;
    churn.phases = 5;
    churn.phaseIterations = 20;
    churn.innerIterations = 10;
    churn.dllCount = 3;
    grid.push_back({"churn", churn, 10});

    return grid;
}

/**
 * Run @p config to completion under @p mode and capture everything
 * observable. With @p unload_dlls the harness polls the guest's phase
 * register between bounded run() slices and unmaps each transient DLL
 * once its last phase has passed — the mid-run invalidation path.
 */
RunObservation
runProgram(runtime::FrontEnd mode,
           const guest::SyntheticProgramConfig &config,
           std::uint32_t threshold, ManagerShape shape,
           bool unload_dlls)
{
    guest::SyntheticProgram synthetic =
        guest::generateSyntheticProgram(config);
    std::unique_ptr<cache::CacheManager> manager = makeManager(shape);

    guest::AddressSpace space;
    runtime::Runtime runtime(space, *manager, threshold, mode);
    for (const auto &module : synthetic.program.modules()) {
        runtime.loadModule(*module);
    }
    runtime.start(synthetic.program.entry());

    if (!unload_dlls) {
        runtime.run();
    } else {
        std::vector<bool> unloaded(synthetic.dllLastPhase.size(),
                                   false);
        while (!runtime.finished()) {
            runtime.run(512);
            auto phase = static_cast<unsigned>(
                runtime.guestReg(guest::kPhaseRegister));
            for (std::size_t i = 0;
                 i < synthetic.dllLastPhase.size(); ++i) {
                if (!unloaded[i] &&
                    phase > synthetic.dllLastPhase[i].second) {
                    runtime.unloadModule(
                        synthetic.dllLastPhase[i].first);
                    unloaded[i] = true;
                }
            }
        }
    }
    EXPECT_TRUE(runtime.finished());
    runtime.log().validate();

    RunObservation observation;
    observation.log = runtime.log();
    observation.stats = runtime.stats();
    observation.bbStats = runtime.bbCacheStats();
    observation.linkStats = runtime.linker().stats();
    return observation;
}

/** Assert @p fast and @p legacy are field-for-field identical. */
void
expectIdentical(const RunObservation &legacy,
                const RunObservation &fast, const std::string &label)
{
    SCOPED_TRACE(label);

    // The event streams must be bit-identical, record by record.
    const auto &a = legacy.log.events();
    const auto &b = fast.log.events();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("event " + std::to_string(i));
        EXPECT_EQ(a[i].type, b[i].type);
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].trace, b[i].trace);
        EXPECT_EQ(a[i].sizeBytes, b[i].sizeBytes);
        EXPECT_EQ(a[i].module, b[i].module);
    }
    EXPECT_EQ(legacy.log.duration(), fast.log.duration());
    EXPECT_EQ(legacy.log.footprintBytes(), fast.log.footprintBytes());
    EXPECT_EQ(legacy.log.createdTraceBytes(),
              fast.log.createdTraceBytes());
    EXPECT_EQ(legacy.log.createdTraceCount(),
              fast.log.createdTraceCount());

    // Execution statistics: same instructions retired on each path,
    // same dispatcher behaviour, same trace lifecycle.
    EXPECT_EQ(legacy.stats.instructionsInterpreted,
              fast.stats.instructionsInterpreted);
    EXPECT_EQ(legacy.stats.instructionsInTraces,
              fast.stats.instructionsInTraces);
    EXPECT_EQ(legacy.stats.contextSwitches,
              fast.stats.contextSwitches);
    EXPECT_EQ(legacy.stats.tracesBuilt, fast.stats.tracesBuilt);
    EXPECT_EQ(legacy.stats.traceRegenerations,
              fast.stats.traceRegenerations);
    EXPECT_EQ(legacy.stats.traceExecutions,
              fast.stats.traceExecutions);
    EXPECT_EQ(legacy.stats.blocksInterpreted,
              fast.stats.blocksInterpreted);
    EXPECT_EQ(legacy.stats.tracesOptimized,
              fast.stats.tracesOptimized);
    EXPECT_EQ(legacy.stats.optimizerBytesSaved,
              fast.stats.optimizerBytesSaved);
    EXPECT_EQ(legacy.stats.optimizerInstsRemoved,
              fast.stats.optimizerInstsRemoved);

    // The dense bb cache must mirror the hash-map cache stat for stat.
    EXPECT_EQ(legacy.bbStats.copies, fast.bbStats.copies);
    EXPECT_EQ(legacy.bbStats.copiedBytes, fast.bbStats.copiedBytes);
    EXPECT_EQ(legacy.bbStats.hits, fast.bbStats.hits);
    EXPECT_EQ(legacy.bbStats.invalidations,
              fast.bbStats.invalidations);

    // Direct chaining must not change what gets (un)patched.
    EXPECT_EQ(legacy.linkStats.linksPatched,
              fast.linkStats.linksPatched);
    EXPECT_EQ(legacy.linkStats.linksUnpatched,
              fast.linkStats.linksUnpatched);
    EXPECT_EQ(legacy.linkStats.relocations,
              fast.linkStats.relocations);
}

void
runGrid(bool unload_dlls)
{
    const ManagerShape shapes[] = {ManagerShape::Unbounded,
                                   ManagerShape::SmallUnified,
                                   ManagerShape::Generational};
    for (const Profile &profile : profileGrid()) {
        for (ManagerShape shape : shapes) {
            RunObservation legacy = runProgram(
                runtime::FrontEnd::Legacy, profile.config,
                profile.threshold, shape, unload_dlls);
            RunObservation fast = runProgram(
                runtime::FrontEnd::Predecoded, profile.config,
                profile.threshold, shape, unload_dlls);
            expectIdentical(legacy, fast,
                            std::string(profile.name) + " / " +
                                managerShapeName(shape));
        }
    }
}

TEST(FrontendIdentity, AllProfilesAndManagersMatch) { runGrid(false); }

TEST(FrontendIdentity, MidRunDllUnloadsMatch) { runGrid(true); }

TEST(FrontendIdentity, PredecodedIsTheDefaultFrontEnd)
{
    cache::UnifiedCacheManager manager(0);
    guest::AddressSpace space;
    runtime::Runtime runtime(space, manager);
    EXPECT_EQ(runtime.frontend(), runtime::FrontEnd::Predecoded);
}

TEST(FrontendIdentity, ReloadAfterUnloadStaysIdentical)
{
    // Remapping a module assigns fresh dense block ids; the fast path
    // must stay identical to legacy across the id turnover.
    auto runWithReload = [](runtime::FrontEnd mode) {
        guest::SyntheticProgramConfig config;
        config.seed = 33;
        config.phases = 2;
        config.phaseIterations = 10;
        config.innerIterations = 8;
        config.dllCount = 1;
        guest::SyntheticProgram synthetic =
            guest::generateSyntheticProgram(config);

        cache::UnifiedCacheManager manager(0);
        guest::AddressSpace space;
        runtime::Runtime runtime(space, manager, 10, mode);
        for (const auto &module : synthetic.program.modules()) {
            runtime.loadModule(*module);
        }
        runtime.start(synthetic.program.entry());
        runtime.run();
        EXPECT_TRUE(runtime.finished());

        EXPECT_FALSE(synthetic.dllLastPhase.empty());
        guest::ModuleId dll = synthetic.dllLastPhase[0].first;
        runtime.unloadModule(dll);
        for (const auto &module : synthetic.program.modules()) {
            if (module->id() == dll) {
                runtime.loadModule(*module);
            }
        }
        runtime.start(synthetic.program.entry());
        runtime.run();
        EXPECT_TRUE(runtime.finished());
        runtime.log().validate();

        RunObservation observation;
        observation.log = runtime.log();
        observation.stats = runtime.stats();
        observation.bbStats = runtime.bbCacheStats();
        observation.linkStats = runtime.linker().stats();
        return observation;
    };

    RunObservation legacy = runWithReload(runtime::FrontEnd::Legacy);
    RunObservation fast = runWithReload(runtime::FrontEnd::Predecoded);
    expectIdentical(legacy, fast, "reload-after-unload");
}

} // namespace
} // namespace gencache
