/**
 * @file
 * The tier-pipeline equivalence suite.
 *
 * The refactor's contract is that GenerationalCacheManager and
 * UnifiedCacheManager, now thin adapters over TierPipeline, are
 * bit-identical to the pre-refactor monoliths — same SimResult
 * counters AND the same listener event stream, event for event, field
 * for field. tests/reference_managers.h holds verbatim frozen copies
 * of the old managers; every test here replays the same workload
 * through a frozen reference and its pipeline re-expression and
 * demands equality.
 *
 * Also covered: the fromProportions exact-sum guarantee, pin-bit
 * survival across tier moves, the temperature promotion policy, the
 * pipeline's event-order contracts, and the non-legacy topology
 * catalog end-to-end (sweep, static checks, cost model).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "codecache/generational_cache.h"
#include "codecache/list_cache.h"
#include "codecache/tier_pipeline.h"
#include "codecache/unified_cache.h"
#include "reference_managers.h"
#include "sim/batched_replay.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "sim/sweep.h"
#include "support/units.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace gencache;

std::uint64_t
profileCapacity(const workload::BenchmarkProfile &profile)
{
    auto capacity = static_cast<std::uint64_t>(
        profile.finalCacheKb * static_cast<double>(kKiB) / 2.0);
    return capacity < 4096 ? 4096 : capacity;
}

void
expectIdentical(const sim::SimResult &a, const sim::SimResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.benchmark, b.benchmark) << what;
    EXPECT_EQ(a.lookups, b.lookups) << what;
    EXPECT_EQ(a.hits, b.hits) << what;
    EXPECT_EQ(a.misses, b.misses) << what;
    EXPECT_EQ(a.regenerations, b.regenerations) << what;
    EXPECT_EQ(a.peakBytes, b.peakBytes) << what;
    EXPECT_EQ(a.createdTraces, b.createdTraces) << what;
    EXPECT_EQ(a.createdBytes, b.createdBytes) << what;

    const cache::ManagerStats &x = a.managerStats;
    const cache::ManagerStats &y = b.managerStats;
    EXPECT_EQ(x.lookups, y.lookups) << what;
    EXPECT_EQ(x.hits, y.hits) << what;
    EXPECT_EQ(x.misses, y.misses) << what;
    EXPECT_EQ(x.inserts, y.inserts) << what;
    EXPECT_EQ(x.insertedBytes, y.insertedBytes) << what;
    EXPECT_EQ(x.deletions, y.deletions) << what;
    EXPECT_EQ(x.deletedBytes, y.deletedBytes) << what;
    EXPECT_EQ(x.unmapDeletions, y.unmapDeletions) << what;
    EXPECT_EQ(x.unmapDeletedBytes, y.unmapDeletedBytes) << what;
    EXPECT_EQ(x.promotions, y.promotions) << what;
    EXPECT_EQ(x.promotedBytes, y.promotedBytes) << what;
    EXPECT_EQ(x.probationRejections, y.probationRejections) << what;
    EXPECT_EQ(x.placementFailures, y.placementFailures) << what;

    EXPECT_EQ(a.overhead.traceGeneration, b.overhead.traceGeneration)
        << what;
    EXPECT_EQ(a.overhead.contextSwitches, b.overhead.contextSwitches)
        << what;
    EXPECT_EQ(a.overhead.evictions, b.overhead.evictions) << what;
    EXPECT_EQ(a.overhead.promotions, b.overhead.promotions) << what;
    EXPECT_EQ(a.overhead.copies, b.overhead.copies) << what;
}

// Every replay profile, one streaming pass: a frozen reference lane
// and its pipeline re-expression lane must report identical results —
// generational (plain and eager) and unified alike.
TEST(TierEquivalence, SimResultsBitIdenticalOnAllProfiles)
{
    for (const workload::BenchmarkProfile &profile :
         workload::allProfiles()) {
        tracelog::AccessLog log = workload::generateWorkload(profile);
        tracelog::CompiledLog compiled =
            tracelog::CompiledLog::compile(log);
        std::uint64_t capacity = profileCapacity(profile);

        cache::GenerationalConfig plain =
            cache::GenerationalConfig::fromProportions(
                capacity, 0.45, 0.10, /*threshold=*/1);
        cache::GenerationalConfig eager =
            cache::GenerationalConfig::fromProportions(
                capacity, 1.0 / 3.0, 1.0 / 3.0, /*threshold=*/2,
                /*eager=*/true);

        cache::reference::ReferenceGenerationalManager refPlain(plain);
        cache::GenerationalCacheManager newPlain(plain);
        cache::reference::ReferenceGenerationalManager refEager(eager);
        cache::GenerationalCacheManager newEager(eager);
        cache::reference::ReferenceUnifiedManager refUnified(capacity);
        cache::UnifiedCacheManager newUnified(capacity);

        sim::BatchedReplay replay(compiled);
        replay.addLane(refPlain);
        replay.addLane(newPlain);
        replay.addLane(refEager);
        replay.addLane(newEager);
        replay.addLane(refUnified);
        replay.addLane(newUnified);
        std::vector<sim::SimResult> results = replay.run();
        ASSERT_EQ(results.size(), 6u);

        expectIdentical(results[0], results[1],
                        profile.name + " generational 45-10-45");
        expectIdentical(results[2], results[3],
                        profile.name + " generational eager");
        expectIdentical(results[4], results[5],
                        profile.name + " unified");
        EXPECT_EQ(refPlain.name(), newPlain.name()) << profile.name;
        EXPECT_EQ(refUnified.name(), newUnified.name()) << profile.name;
    }
}

/** Records every listener callback with every field that crosses the
 *  listener interface, for exact stream comparison. */
class DetailedListener : public cache::CacheEventListener
{
  public:
    struct Record
    {
        char kind = '?'; ///< m/h/i/e/p
        cache::TraceId trace = cache::kInvalidTrace;
        cache::Generation gen = cache::Generation::Unified;
        cache::Generation to = cache::Generation::Unified;
        cache::EvictReason reason = cache::EvictReason::Capacity;
        TimeUs time = 0;
        std::uint32_t sizeBytes = 0;
        cache::ModuleId module = cache::kNoModule;
        std::uint64_t addr = 0;
        bool pinned = false;

        bool operator==(const Record &o) const
        {
            return kind == o.kind && trace == o.trace &&
                   gen == o.gen && to == o.to && reason == o.reason &&
                   time == o.time && sizeBytes == o.sizeBytes &&
                   module == o.module && addr == o.addr &&
                   pinned == o.pinned;
        }
    };

    void onMiss(cache::TraceId id, TimeUs now) override
    {
        Record r;
        r.kind = 'm';
        r.trace = id;
        r.time = now;
        records.push_back(r);
    }
    void onHit(cache::TraceId id, cache::Generation gen,
               TimeUs now) override
    {
        Record r;
        r.kind = 'h';
        r.trace = id;
        r.gen = gen;
        r.time = now;
        records.push_back(r);
    }
    void onInsert(const cache::Fragment &frag, cache::Generation gen,
                  TimeUs now) override
    {
        records.push_back(fragRecord('i', frag, gen, gen,
                                     cache::EvictReason::Capacity,
                                     now));
    }
    void onEvict(const cache::Fragment &frag, cache::Generation gen,
                 cache::EvictReason reason, TimeUs now) override
    {
        records.push_back(fragRecord('e', frag, gen, gen, reason, now));
    }
    void onPromote(const cache::Fragment &frag, cache::Generation from,
                   cache::Generation to, TimeUs now) override
    {
        records.push_back(fragRecord('p', frag, from, to,
                                     cache::EvictReason::PromotionMove,
                                     now));
    }

    std::vector<Record> records;

  private:
    static Record fragRecord(char kind, const cache::Fragment &frag,
                             cache::Generation gen,
                             cache::Generation to,
                             cache::EvictReason reason, TimeUs now)
    {
        Record r;
        r.kind = kind;
        r.trace = frag.id;
        r.gen = gen;
        r.to = to;
        r.reason = reason;
        r.time = now;
        r.sizeBytes = frag.sizeBytes;
        r.module = frag.module;
        r.addr = frag.addr;
        r.pinned = frag.pinned;
        return r;
    }
};

/** Minimal deterministic replay driver (mirrors the simulator's
 *  protocol: misses regenerate, pin intent survives regeneration).
 *  Both sides of a comparison run through this same loop. */
void
replayWithListener(cache::CacheManager &manager,
                   const tracelog::AccessLog &log)
{
    struct Known
    {
        std::uint32_t sizeBytes = 0;
        cache::ModuleId module = cache::kNoModule;
        bool pinnedWanted = false;
    };
    std::map<cache::TraceId, Known> known;

    for (const tracelog::Event &event : log.events()) {
        switch (event.type) {
          case tracelog::EventType::TraceCreate:
            known[event.trace] = {event.sizeBytes, event.module, false};
            manager.insert(event.trace, event.sizeBytes, event.module,
                           event.time);
            break;
          case tracelog::EventType::TraceExec: {
            if (manager.lookup(event.trace, event.time)) {
                break;
            }
            auto it = known.find(event.trace);
            if (it == known.end()) {
                break;
            }
            if (manager.insert(event.trace, it->second.sizeBytes,
                               it->second.module, event.time) &&
                it->second.pinnedWanted) {
                manager.setPinned(event.trace, true);
            }
            break;
          }
          case tracelog::EventType::ModuleUnload:
            manager.invalidateModule(event.module, event.time);
            break;
          case tracelog::EventType::Pin:
            known[event.trace].pinnedWanted = true;
            manager.setPinned(event.trace, true);
            break;
          case tracelog::EventType::Unpin:
            known[event.trace].pinnedWanted = false;
            manager.setPinned(event.trace, false);
            break;
          case tracelog::EventType::ModuleLoad:
            break;
        }
    }
}

void
expectSameStream(const DetailedListener &a, const DetailedListener &b,
                 const std::string &what)
{
    ASSERT_EQ(a.records.size(), b.records.size()) << what;
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        const DetailedListener::Record &x = a.records[i];
        const DetailedListener::Record &y = b.records[i];
        EXPECT_TRUE(x == y)
            << what << " diverges at event " << i << ": kind " << x.kind
            << "/" << y.kind << " trace " << x.trace << "/" << y.trace
            << " time " << x.time << "/" << y.time;
        if (!(x == y)) {
            break;
        }
    }
}

// The listener event streams — order, reasons, and every fragment
// field crossing the interface — must match the frozen monoliths
// event for event.
TEST(TierEquivalence, EventStreamsBitIdentical)
{
    for (const char *name : {"gzip", "mpeg"}) {
        workload::BenchmarkProfile profile = workload::findProfile(name);
        tracelog::AccessLog log = workload::generateWorkload(profile);
        std::uint64_t capacity = profileCapacity(profile);
        cache::GenerationalConfig config =
            cache::GenerationalConfig::fromProportions(capacity, 0.45,
                                                       0.10, 1);

        cache::reference::ReferenceGenerationalManager refGen(config);
        cache::GenerationalCacheManager newGen(config);
        DetailedListener refGenEvents;
        DetailedListener newGenEvents;
        refGen.setListener(&refGenEvents);
        newGen.setListener(&newGenEvents);
        replayWithListener(refGen, log);
        replayWithListener(newGen, log);
        expectSameStream(refGenEvents, newGenEvents,
                         std::string(name) + " generational");

        cache::reference::ReferenceUnifiedManager refUni(capacity);
        cache::UnifiedCacheManager newUni(capacity);
        DetailedListener refUniEvents;
        DetailedListener newUniEvents;
        refUni.setListener(&refUniEvents);
        newUni.setListener(&newUniEvents);
        replayWithListener(refUni, log);
        replayWithListener(newUni, log);
        expectSameStream(refUniEvents, newUniEvents,
                         std::string(name) + " unified");
    }
}

// --- satellite: fromProportions exact-sum guarantee ---

TEST(FromProportions, AdversarialFractionsSumExactly)
{
    // The classic adversarial case: thirds do not round to a clean
    // split, but the parts must still sum to the total.
    cache::GenerationalConfig thirds =
        cache::GenerationalConfig::fromProportions(
            1'000'000, 1.0 / 3.0, 1.0 / 3.0, 10);
    EXPECT_EQ(thirds.nurseryBytes, 333'333u);
    EXPECT_EQ(thirds.probationBytes, 333'333u);
    EXPECT_EQ(thirds.persistentBytes, 333'334u);
    EXPECT_EQ(thirds.totalBytes(), 1'000'000u);

    cache::GenerationalConfig odd =
        cache::GenerationalConfig::fromProportions(999'999, 0.45, 0.10,
                                                   1);
    EXPECT_EQ(odd.nurseryBytes, 450'000u);
    EXPECT_EQ(odd.probationBytes, 100'000u);
    EXPECT_EQ(odd.persistentBytes, 449'999u);
    EXPECT_EQ(odd.totalBytes(), 999'999u);
}

TEST(FromProportions, TinyTotalsNeverZeroByteTier)
{
    // Every feasible tiny total splits into three positive parts that
    // sum exactly; a fraction rounding to zero bytes is bumped to one.
    for (std::uint64_t total = 3; total <= 64; ++total) {
        cache::GenerationalConfig config =
            cache::GenerationalConfig::fromProportions(
                total, 1.0 / 3.0, 1.0 / 3.0, 1);
        EXPECT_GE(config.nurseryBytes, 1u) << total;
        EXPECT_GE(config.probationBytes, 1u) << total;
        EXPECT_GE(config.persistentBytes, 1u) << total;
        EXPECT_EQ(config.totalBytes(), total) << total;
    }
    for (std::uint64_t total = 3; total <= 64; ++total) {
        cache::GenerationalConfig config =
            cache::GenerationalConfig::fromProportions(total, 0.45,
                                                       0.10, 1);
        EXPECT_GE(config.nurseryBytes, 1u) << total;
        EXPECT_GE(config.probationBytes, 1u) << total;
        EXPECT_GE(config.persistentBytes, 1u) << total;
        EXPECT_EQ(config.totalBytes(), total) << total;
    }

    // A vanishing fraction still yields a one-byte tier, not a
    // zero-byte one (which the manager constructor would reject).
    cache::GenerationalConfig sliver =
        cache::GenerationalConfig::fromProportions(1'000'000, 1e-9,
                                                   1e-9, 1);
    EXPECT_EQ(sliver.nurseryBytes, 1u);
    EXPECT_EQ(sliver.probationBytes, 1u);
    EXPECT_EQ(sliver.persistentBytes, 999'998u);
}

TEST(FromProportionsDeathTest, InfeasibleTotalsStillFatal)
{
    // Two bytes cannot hold three positive tiers.
    EXPECT_DEATH(cache::GenerationalConfig::fromProportions(
                     2, 1.0 / 3.0, 1.0 / 3.0, 1),
                 "persistent");
}

// --- satellite: pin bit survives tier moves ---

TEST(PinnedPromotion, PinBitSurvivesEagerUpgrade)
{
    cache::GenerationalConfig config;
    config.nurseryBytes = 64;
    config.probationBytes = 128;
    config.persistentBytes = 256;
    config.promotionThreshold = 1;
    config.eagerPromotion = true;
    cache::GenerationalCacheManager manager(config);

    ASSERT_TRUE(manager.insert(1, 64, cache::kNoModule, 0));
    ASSERT_TRUE(manager.insert(2, 64, cache::kNoModule, 1));
    ASSERT_EQ(manager.generationOf(1), cache::Generation::Probation);

    ASSERT_TRUE(manager.setPinned(1, true));
    ASSERT_TRUE(manager.lookup(1, 2));
    ASSERT_EQ(manager.generationOf(1), cache::Generation::Persistent);

    bool seen = false;
    manager.localCache(cache::Generation::Persistent)
        .forEach([&](const cache::Fragment &frag) {
            if (frag.id == 1) {
                seen = true;
                EXPECT_TRUE(frag.pinned)
                    << "pin bit lost crossing probation -> persistent";
            }
        });
    EXPECT_TRUE(seen);
}

TEST(PinnedPromotion, ShedHandlingClearsPinOnMove)
{
    cache::TierPipelineInit init;
    init.name = "shed-test";
    init.tiers = {
        {64, cache::LocalPolicy::PseudoCircular,
         cache::PinHandling::Shed},
        {256, cache::LocalPolicy::PseudoCircular,
         cache::PinHandling::Sticky},
    };
    init.edges.push_back(
        std::make_unique<cache::ThresholdPolicy>(1, /*eager=*/true));
    cache::TierPipeline pipeline(std::move(init));

    ASSERT_TRUE(pipeline.insert(1, 64, cache::kNoModule, 0));
    ASSERT_TRUE(pipeline.setPinned(1, true));
    ASSERT_TRUE(pipeline.lookup(1, 1)); // eager upgrade into tier 1
    ASSERT_EQ(pipeline.tierOf(1), 1u);

    pipeline.tierCache(1).forEach([&](const cache::Fragment &frag) {
        if (frag.id == 1) {
            EXPECT_FALSE(frag.pinned) << "Shed tier kept the pin bit";
        }
    });
}

// --- event-order contracts ---

TEST(EventOrder, SingleTierVictimsPrecedeInsert)
{
    cache::TierPipelineInit init;
    init.name = "unified-order";
    init.tiers = {{128, cache::LocalPolicy::PseudoCircular,
                   cache::PinHandling::Sticky}};
    cache::TierPipeline pipeline(std::move(init));
    DetailedListener events;
    pipeline.setListener(&events);

    ASSERT_TRUE(pipeline.insert(1, 100, cache::kNoModule, 0));
    ASSERT_TRUE(pipeline.insert(2, 100, cache::kNoModule, 1));

    ASSERT_EQ(events.records.size(), 3u);
    EXPECT_EQ(events.records[0].kind, 'i');
    EXPECT_EQ(events.records[0].trace, 1u);
    // Unified order: the capacity victim is reported before the
    // insert, and the insert event carries the placed fragment.
    EXPECT_EQ(events.records[1].kind, 'e');
    EXPECT_EQ(events.records[1].trace, 1u);
    EXPECT_EQ(events.records[1].reason, cache::EvictReason::Capacity);
    EXPECT_EQ(events.records[2].kind, 'i');
    EXPECT_EQ(events.records[2].trace, 2u);
    EXPECT_EQ(events.records[2].gen, cache::Generation::Unified);
}

TEST(EventOrder, MultiTierInsertPrecedesCascade)
{
    cache::TierPipelineInit init;
    init.name = "cascade-order";
    init.tiers = {
        {64, cache::LocalPolicy::PseudoCircular,
         cache::PinHandling::Sticky},
        {256, cache::LocalPolicy::PseudoCircular,
         cache::PinHandling::Sticky},
    };
    init.edges.push_back(std::make_unique<cache::AlwaysPromotePolicy>());
    cache::TierPipeline pipeline(std::move(init));
    DetailedListener events;
    pipeline.setListener(&events);

    ASSERT_TRUE(pipeline.insert(1, 64, cache::kNoModule, 0));
    ASSERT_TRUE(pipeline.insert(2, 64, cache::kNoModule, 1));

    // Generational order: the insert is reported first, then the
    // victim cascade (evict-for-promotion + promote).
    ASSERT_EQ(events.records.size(), 4u);
    EXPECT_EQ(events.records[0].kind, 'i');
    EXPECT_EQ(events.records[0].trace, 1u);
    EXPECT_EQ(events.records[1].kind, 'i');
    EXPECT_EQ(events.records[1].trace, 2u);
    EXPECT_EQ(events.records[2].kind, 'e');
    EXPECT_EQ(events.records[2].trace, 1u);
    EXPECT_EQ(events.records[2].reason,
              cache::EvictReason::PromotionMove);
    EXPECT_EQ(events.records[3].kind, 'p');
    EXPECT_EQ(events.records[3].trace, 1u);
    EXPECT_EQ(events.records[3].to, cache::Generation::Persistent);
}

// --- tier labels ---

TEST(TierLabels, PaperVocabularyPreserved)
{
    using cache::Generation;
    EXPECT_EQ(cache::tierLabelFor(0, 1), Generation::Unified);

    EXPECT_EQ(cache::tierLabelFor(0, 3), Generation::Nursery);
    EXPECT_EQ(cache::tierLabelFor(1, 3), Generation::Probation);
    EXPECT_EQ(cache::tierLabelFor(2, 3), Generation::Persistent);

    EXPECT_EQ(cache::tierLabelFor(0, 2), Generation::Nursery);
    EXPECT_EQ(cache::tierLabelFor(1, 2), Generation::Persistent);

    EXPECT_EQ(cache::tierLabelFor(0, 4), Generation::Nursery);
    EXPECT_EQ(cache::tierLabelFor(1, 4), Generation::Tier1);
    EXPECT_EQ(cache::tierLabelFor(2, 4), Generation::Tier2);
    EXPECT_EQ(cache::tierLabelFor(3, 4), Generation::Persistent);
}

// --- temperature policy ---

TEST(TemperaturePolicy, CounterDecaysWithVirtualTime)
{
    cache::TemperaturePolicy policy(/*threshold=*/2,
                                    /*half_life=*/100);
    cache::Fragment frag;

    policy.onEnter(frag, 1000);
    EXPECT_EQ(frag.accessCount, 0u);
    EXPECT_EQ(frag.lastAccess, 1000u);

    // Two quick hits within one half-life: no decay, count reaches
    // the threshold and a prompt eviction admits the fragment.
    EXPECT_FALSE(policy.onHit(frag, 1010));
    EXPECT_FALSE(policy.onHit(frag, 1020));
    EXPECT_EQ(frag.accessCount, 2u);
    EXPECT_TRUE(policy.admitOnEviction(frag, 1090));

    // The same burst long ago no longer earns promotion: two whole
    // half-lives quarter the counter down to zero.
    policy.onEnter(frag, 0);
    policy.onHit(frag, 10);
    policy.onHit(frag, 20);
    cache::Fragment cold = frag;
    EXPECT_FALSE(policy.admitOnEviction(cold, 250));
    EXPECT_EQ(cold.accessCount, 0u);
    // The clock advances by whole half-lives only, so the partial
    // period keeps accumulating toward the next decay step.
    EXPECT_EQ(cold.lastAccess, 200u);

    // Very long idle periods collapse the counter outright instead of
    // shifting by more bits than the counter holds.
    cache::Fragment stale;
    stale.accessCount = 1'000'000;
    stale.lastAccess = 0;
    EXPECT_FALSE(policy.admitOnEviction(stale, 100 * 64));
    EXPECT_EQ(stale.accessCount, 0u);
}

TEST(TemperaturePolicyDeathTest, ZeroHalfLifeRejected)
{
    EXPECT_DEATH(cache::TemperaturePolicy(1, 0), "half-life");
}

// --- non-legacy topologies end-to-end ---

TEST(Topology, CatalogSweepsCleanly)
{
    workload::BenchmarkProfile profile = workload::findProfile("gzip");
    const std::vector<cache::TierTopology> &catalog =
        cache::namedTierTopologies();
    sim::TopologySweepResult sweep =
        sim::runTopologySweep(profile, catalog, /*threads=*/1);

    EXPECT_EQ(sweep.benchmark, profile.name);
    EXPECT_GT(sweep.capacityBytes, 0u);
    EXPECT_GT(sweep.unifiedMissRate, 0.0);
    ASSERT_EQ(sweep.cells.size(), catalog.size());
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
        const sim::TopologyCell &cell = sweep.cells[i];
        EXPECT_EQ(cell.topology, catalog[i].name);
        EXPECT_EQ(cell.tierCount, catalog[i].fractions.size());
        EXPECT_GT(cell.missRate, 0.0) << cell.topology;
        EXPECT_GT(cell.overheadInstrs, 0u) << cell.topology;
    }
    // best() ranks by miss-rate reduction over the unified baseline.
    const sim::TopologyCell &best = sweep.best();
    for (const sim::TopologyCell &cell : sweep.cells) {
        EXPECT_GE(best.missRateReductionPct,
                  cell.missRateReductionPct);
    }
}

TEST(Topology, CatalogPassesStaticChecks)
{
    workload::BenchmarkProfile profile = workload::findProfile("gzip");
    tracelog::AccessLog log = workload::generateWorkload(profile);
    std::uint64_t capacity = profileCapacity(profile);

    for (const cache::TierTopology &topology :
         cache::namedTierTopologies()) {
        std::unique_ptr<cache::TierPipeline> manager =
            topology.build(capacity);
        EXPECT_EQ(manager->totalCapacity(), capacity)
            << topology.name;
        sim::CacheSimulator simulator(*manager);
        sim::SimResult result = simulator.run(log);
        EXPECT_GT(result.managerStats.promotions, 0u) << topology.name;

        manager->validate();
        analysis::DiagnosticEngine engine =
            analysis::checkManager(*manager);
        EXPECT_EQ(engine.errorCount(), 0u)
            << topology.name << ": " << engine.textReport();
    }
}

TEST(Topology, BatchedTopologyReplayMatchesLegacyPath)
{
    sim::ExperimentRunner runner(workload::findProfile("vortex"));
    std::uint64_t capacity = profileCapacity(runner.profile());
    const std::vector<cache::TierTopology> &catalog =
        cache::namedTierTopologies();

    std::vector<sim::SimResult> batched =
        runner.runTopologyBatch(capacity, catalog);
    ASSERT_EQ(batched.size(), catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        sim::SimResult legacy =
            runner.runTopology(capacity, catalog[i]);
        expectIdentical(legacy, batched[i], catalog[i].name);
        EXPECT_EQ(batched[i].manager, catalog[i].name);
    }
}

TEST(Topology, ExactBudgetSplitAcrossTiers)
{
    const cache::TierTopology *four = cache::findTierTopology("4tier");
    ASSERT_NE(four, nullptr);
    for (std::uint64_t total : {7u, 101u, 4096u, 999'999u}) {
        std::vector<cache::TierSpec> specs = four->tierSpecs(total);
        ASSERT_EQ(specs.size(), 4u);
        std::uint64_t sum = 0;
        for (const cache::TierSpec &spec : specs) {
            EXPECT_GE(spec.capacityBytes, 1u) << total;
            sum += spec.capacityBytes;
        }
        EXPECT_EQ(sum, total);
    }
    EXPECT_EQ(cache::findTierTopology("no-such-topology"), nullptr);
}

cache::Fragment
rripFrag(cache::TraceId id, std::uint32_t size)
{
    cache::Fragment frag;
    frag.id = id;
    frag.sizeBytes = size;
    return frag;
}

TEST(RripCache, SrripEvictsDistantBeforeRecentlyTouched)
{
    cache::RripCache srrip(100, /*bimodal=*/false);
    std::vector<cache::Fragment> evicted;
    ASSERT_TRUE(srrip.insert(rripFrag(1, 50), evicted));
    ASSERT_TRUE(srrip.insert(rripFrag(2, 50), evicted));
    EXPECT_TRUE(evicted.empty());

    // A hit predicts a near re-reference; the untouched fragment ages
    // to distant first and is the victim despite being no older.
    srrip.touch(1, 10);
    ASSERT_TRUE(srrip.insert(rripFrag(3, 50), evicted));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].id, 2u);
    EXPECT_TRUE(srrip.contains(1));
    EXPECT_TRUE(srrip.contains(3));
}

TEST(RripCache, SrripTieBreaksInInsertionOrder)
{
    cache::RripCache srrip(100, /*bimodal=*/false);
    std::vector<cache::Fragment> evicted;
    ASSERT_TRUE(srrip.insert(rripFrag(1, 50), evicted));
    ASSERT_TRUE(srrip.insert(rripFrag(2, 50), evicted));
    ASSERT_TRUE(srrip.insert(rripFrag(3, 100), evicted));
    ASSERT_EQ(evicted.size(), 2u);
    EXPECT_EQ(evicted[0].id, 1u);
    EXPECT_EQ(evicted[1].id, 2u);
}

TEST(RripCache, SurvivorsAgeWhenAnInsertNeedsIt)
{
    cache::RripCache srrip(100, /*bimodal=*/false);
    std::vector<cache::Fragment> evicted;
    ASSERT_TRUE(srrip.insert(rripFrag(1, 50), evicted));
    ASSERT_TRUE(srrip.insert(rripFrag(2, 50), evicted));
    srrip.touch(1, 10); // rrpv 0
    ASSERT_TRUE(srrip.insert(rripFrag(3, 50), evicted)); // ages once
    const cache::Fragment *survivor = srrip.find(1);
    ASSERT_NE(survivor, nullptr);
    EXPECT_EQ(survivor->rrpv, 1); // 0 + one aging step
}

TEST(RripCache, BrripPredictsDistantExceptEveryPeriodthInsert)
{
    cache::RripCache brrip(1 << 20, /*bimodal=*/true);
    std::vector<cache::Fragment> evicted;
    for (cache::TraceId id = 0;
         id < cache::RripCache::kBimodalPeriod + 1; ++id) {
        ASSERT_TRUE(brrip.insert(rripFrag(id, 8), evicted));
    }
    // Inserts 0 and kBimodalPeriod predict long; all between predict
    // distant — deterministic, no RNG.
    EXPECT_EQ(brrip.find(0)->rrpv, cache::RripCache::kMaxRrpv - 1);
    EXPECT_EQ(brrip.find(1)->rrpv, cache::RripCache::kMaxRrpv);
    EXPECT_EQ(brrip.find(cache::RripCache::kBimodalPeriod - 1)->rrpv,
              cache::RripCache::kMaxRrpv);
    EXPECT_EQ(brrip.find(cache::RripCache::kBimodalPeriod)->rrpv,
              cache::RripCache::kMaxRrpv - 1);
}

TEST(RripCache, FailedInsertLeavesResidencyAndPredictionsUnchanged)
{
    cache::RripCache srrip(100, /*bimodal=*/false);
    std::vector<cache::Fragment> evicted;
    ASSERT_TRUE(srrip.insert(rripFrag(1, 60), evicted));
    srrip.touch(1, 5);
    ASSERT_TRUE(srrip.setPinned(1, true));

    // Oversized fragment: rejected outright.
    EXPECT_FALSE(srrip.insert(rripFrag(2, 200), evicted));
    // Pinned congestion: no evictable plan exists.
    EXPECT_FALSE(srrip.insert(rripFrag(3, 60), evicted));

    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(srrip.stats().placementFailures, 2u);
    ASSERT_TRUE(srrip.contains(1));
    EXPECT_EQ(srrip.find(1)->rrpv, 0); // untouched by failed plans
    EXPECT_FALSE(srrip.contains(2));
    EXPECT_FALSE(srrip.contains(3));
}

TEST(RripCache, FactoryBuildsBothVariants)
{
    auto srrip = cache::makeLocalCache(cache::LocalPolicy::Srrip, 1024);
    auto brrip = cache::makeLocalCache(cache::LocalPolicy::Brrip, 1024);
    EXPECT_STREQ(srrip->policyName(), "srrip");
    EXPECT_STREQ(brrip->policyName(), "brrip");
    EXPECT_TRUE(srrip->observesTouch());
    EXPECT_TRUE(brrip->observesTouch());
    EXPECT_STREQ(cache::localPolicyName(cache::LocalPolicy::Srrip),
                 "srrip");
    EXPECT_STREQ(cache::localPolicyName(cache::LocalPolicy::Brrip),
                 "brrip");
}

// Pipeline-level: RRIP-policied topologies replay cleanly and the
// batched fast path stays bit-identical to the legacy per-event path.
TEST(Topology, RripTopologiesBatchedMatchesLegacy)
{
    workload::BenchmarkProfile profile = workload::findProfile("gzip");
    sim::ExperimentRunner runner(profile);
    std::uint64_t capacity = profileCapacity(profile);

    std::vector<cache::TierTopology> topologies;
    for (cache::LocalPolicy policy :
         {cache::LocalPolicy::Srrip, cache::LocalPolicy::Brrip}) {
        cache::TierTopology topology;
        topology.name = std::string("3tier-") +
                        cache::localPolicyName(policy);
        topology.fractions = {0.45, 0.10, 0.45};
        topology.edges.resize(2);
        topology.edges[0].rule =
            cache::EdgeSpec::Rule::AlwaysPromote;
        topology.edges[1].rule = cache::EdgeSpec::Rule::Threshold;
        topology.edges[1].threshold = 2;
        topology.policy = policy;
        topologies.push_back(std::move(topology));
    }

    std::vector<sim::SimResult> batched =
        runner.runTopologyBatch(capacity, topologies);
    ASSERT_EQ(batched.size(), topologies.size());
    for (std::size_t i = 0; i < topologies.size(); ++i) {
        sim::SimResult legacy =
            runner.runTopology(capacity, topologies[i]);
        expectIdentical(legacy, batched[i], topologies[i].name);
        EXPECT_GT(batched[i].lookups, 0u);
    }
}

} // namespace
