/**
 * @file
 * Tests of the gencheck static analyzer (src/analysis).
 *
 * Two kinds: golden tests asserting a clean workload yields zero
 * diagnostics, and negative tests that corrupt one specific invariant
 * and assert the exact check ID the analyzer reports for it.
 */

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/cache_passes.h"
#include "analysis/cfg_passes.h"
#include "analysis/checker.h"
#include "analysis/frontend_passes.h"
#include "analysis/link_passes.h"
#include "analysis/pass.h"
#include "analysis/superblock_passes.h"
#include "codecache/generational_cache.h"
#include "codecache/list_cache.h"
#include "codecache/unified_cache.h"
#include "guest/synthetic_program.h"
#include "runtime/linker.h"
#include "runtime/runtime.h"
#include "support/units.h"

namespace {

using namespace gencache;
using analysis::DiagnosticEngine;
using analysis::Severity;

/** Scoped GENCACHE_CHECK override that restores the prior value. */
class ScopedCheckEnv
{
  public:
    explicit ScopedCheckEnv(const char *value)
    {
        const char *old = std::getenv("GENCACHE_CHECK");
        had_ = old != nullptr;
        if (had_) {
            saved_ = old;
        }
        if (value != nullptr) {
            ::setenv("GENCACHE_CHECK", value, 1);
        } else {
            ::unsetenv("GENCACHE_CHECK");
        }
    }

    ~ScopedCheckEnv()
    {
        if (had_) {
            ::setenv("GENCACHE_CHECK", saved_.c_str(), 1);
        } else {
            ::unsetenv("GENCACHE_CHECK");
        }
    }

  private:
    bool had_ = false;
    std::string saved_;
};

/** Three-block program: A (cond branch to C, falls through to B),
 *  B (jump back to A), C (halt). Entry at A. */
struct TinyProgram
{
    guest::GuestProgram program;
    guest::ModuleId module = guest::kInvalidModule;
    isa::GuestAddr a = 0, b = 0, c = 0;
};

TinyProgram
makeTinyProgram()
{
    TinyProgram tiny;
    tiny.a = 0x1000;
    tiny.b = tiny.a + isa::opcodeSize(isa::Opcode::MovImm) +
             isa::opcodeSize(isa::Opcode::BranchNz);
    tiny.c = tiny.b + isa::opcodeSize(isa::Opcode::Jump);

    guest::GuestModule &main_mod =
        tiny.program.addModule("main.exe", tiny.a);
    tiny.module = main_mod.id();

    isa::BasicBlock block_a(tiny.a);
    block_a.append(isa::makeMovImm(1, 0));
    block_a.append(isa::makeBranchNz(1, tiny.c));
    main_mod.addBlock(block_a);

    isa::BasicBlock block_b(tiny.b);
    block_b.append(isa::makeJump(tiny.a));
    main_mod.addBlock(block_b);

    isa::BasicBlock block_c(tiny.c);
    block_c.append(isa::makeHalt());
    main_mod.addBlock(block_c);

    tiny.program.setEntry(tiny.a);
    return tiny;
}

runtime::Trace
makeTrace(const TinyProgram &tiny,
          std::vector<isa::GuestAddr> path,
          std::vector<isa::GuestAddr> exits)
{
    runtime::Trace trace;
    trace.id = 1;
    trace.entry = path.empty() ? 0 : path.front();
    trace.module = tiny.module;
    trace.blockAddrs = std::move(path);
    trace.sizeBytes = 64;
    trace.exitTargets = std::move(exits);
    return trace;
}

/** FifoCache whose protected slab state the tests can corrupt. */
class CorruptibleFifo : public cache::FifoCache
{
  public:
    using FifoCache::FifoCache;

    void breakFreeList() { freeHead_ = 12345; }
    void breakRing() { nodes_[head_].next = head_; }
    void breakBytes() { used_ += 100; }
};

cache::Fragment
makeFragment(cache::TraceId id, std::uint32_t size_bytes)
{
    cache::Fragment frag;
    frag.id = id;
    frag.sizeBytes = size_bytes;
    frag.module = 0;
    return frag;
}

// ---------------------------------------------------------------------
// Golden: a clean live workload yields zero diagnostics.
// ---------------------------------------------------------------------

TEST(Analysis, CleanLiveWorkloadHasNoDiagnostics)
{
    guest::SyntheticProgramConfig config;
    config.seed = 7;
    config.phases = 3;
    config.phaseIterations = 40;
    config.innerIterations = 25;
    config.dllCount = 2;
    guest::SyntheticProgram synthetic =
        guest::generateSyntheticProgram(config);

    guest::AddressSpace space;
    for (const auto &module : synthetic.program.modules()) {
        space.map(*module);
    }
    cache::GenerationalConfig cache_config =
        cache::GenerationalConfig::fromProportions(
            4 * kKiB, 0.45, 0.10, /*threshold=*/1);
    cache::GenerationalCacheManager manager(cache_config);
    runtime::Runtime runtime(space, manager, /*trace_threshold=*/10);
    runtime.start(synthetic.program.entry());
    runtime.run();
    ASSERT_TRUE(runtime.finished());

    DiagnosticEngine engine =
        analysis::checkRuntime(synthetic.program, runtime);
    EXPECT_TRUE(engine.empty()) << engine.textReport();
    EXPECT_EQ(engine.textReport(), "no diagnostics\n");
    EXPECT_NE(engine.jsonReport().find("\"error\": 0"),
              std::string::npos);
}

TEST(Analysis, TinyProgramIsCfgClean)
{
    TinyProgram tiny = makeTinyProgram();
    DiagnosticEngine engine;
    analysis::checkProgram(tiny.program, engine);
    EXPECT_TRUE(engine.empty()) << engine.textReport();
}

// ---------------------------------------------------------------------
// CFG negatives.
// ---------------------------------------------------------------------

TEST(Analysis, DanglingBranchTargetIsReported)
{
    TinyProgram tiny = makeTinyProgram();
    guest::GuestModule *main_mod =
        tiny.program.findModule(tiny.module);
    ASSERT_NE(main_mod, nullptr);
    isa::BasicBlock bad(main_mod->endAddr());
    bad.append(isa::makeJump(0xdead0));
    main_mod->addBlock(bad);

    DiagnosticEngine engine;
    analysis::checkProgram(tiny.program, engine);
    EXPECT_TRUE(engine.hasCheck("cfg-dangling-target"))
        << engine.textReport();
    EXPECT_GT(engine.errorCount(), 0u);
}

TEST(Analysis, UnreachableBlockIsReported)
{
    TinyProgram tiny = makeTinyProgram();
    guest::GuestModule *main_mod =
        tiny.program.findModule(tiny.module);
    ASSERT_NE(main_mod, nullptr);
    isa::BasicBlock island(main_mod->endAddr());
    island.append(isa::makeHalt());
    main_mod->addBlock(island);

    DiagnosticEngine engine;
    analysis::checkProgram(tiny.program, engine);
    EXPECT_TRUE(engine.hasCheck("cfg-unreachable"))
        << engine.textReport();
    EXPECT_EQ(engine.errorCount(), 0u); // unreachable is a warning
}

TEST(Analysis, UnterminatedBlockIsReported)
{
    guest::GuestProgram program;
    guest::GuestModule &main_mod =
        program.addModule("main.exe", 0x2000);
    isa::BasicBlock entry_block(0x2000);
    entry_block.append(isa::makeHalt());
    main_mod.addBlock(entry_block);
    program.setEntry(0x2000);

    // addBlock() itself panics on unterminated blocks, so corrupt the
    // module behind its back the way a buggy mutation pass would.
    isa::BasicBlock open_block(0x3000);
    open_block.append(isa::makeMovImm(1, 3));
    auto &blocks = const_cast<std::map<isa::GuestAddr, isa::BasicBlock> &>(
        main_mod.blocks());
    blocks.emplace(isa::GuestAddr{0x3000}, std::move(open_block));

    DiagnosticEngine engine;
    analysis::checkProgram(program, engine);
    EXPECT_TRUE(engine.hasCheck("cfg-block-unterminated"))
        << engine.textReport();
}

TEST(Analysis, UnmappedEntryIsReported)
{
    TinyProgram tiny = makeTinyProgram();
    tiny.program.setEntry(0x5555);

    DiagnosticEngine engine;
    analysis::checkProgram(tiny.program, engine);
    EXPECT_TRUE(engine.hasCheck("cfg-entry-unmapped"))
        << engine.textReport();
}

// ---------------------------------------------------------------------
// Superblock negatives.
// ---------------------------------------------------------------------

TEST(Analysis, ValidTraceIsClean)
{
    TinyProgram tiny = makeTinyProgram();
    runtime::Trace trace =
        makeTrace(tiny, {tiny.a, tiny.b}, {tiny.c, tiny.a});
    DiagnosticEngine engine;
    analysis::checkTrace(trace, tiny.program, nullptr, engine);
    EXPECT_TRUE(engine.empty()) << engine.textReport();
}

TEST(Analysis, RepeatedPathBlockViolatesSingleEntry)
{
    TinyProgram tiny = makeTinyProgram();
    runtime::Trace trace =
        makeTrace(tiny, {tiny.a, tiny.b, tiny.a}, {tiny.c});
    DiagnosticEngine engine;
    analysis::checkTrace(trace, tiny.program, nullptr, engine);
    EXPECT_TRUE(engine.hasCheck("sb-multi-entry"))
        << engine.textReport();
    EXPECT_FALSE(engine.hasCheck("sb-broken-path"));
}

TEST(Analysis, DisconnectedPathIsReported)
{
    TinyProgram tiny = makeTinyProgram();
    // B jumps to A, so B -> C is not an edge the terminator allows.
    runtime::Trace trace =
        makeTrace(tiny, {tiny.b, tiny.c}, {tiny.a});
    DiagnosticEngine engine;
    analysis::checkTrace(trace, tiny.program, nullptr, engine);
    EXPECT_TRUE(engine.hasCheck("sb-broken-path"))
        << engine.textReport();
}

TEST(Analysis, BogusExitTargetIsReported)
{
    TinyProgram tiny = makeTinyProgram();
    runtime::Trace trace = makeTrace(tiny, {tiny.a}, {0x99990});
    DiagnosticEngine engine;
    analysis::checkTrace(trace, tiny.program, nullptr, engine);
    EXPECT_TRUE(engine.hasCheck("sb-exit-invalid"))
        << engine.textReport();
    EXPECT_FALSE(engine.hasCheck("sb-multi-entry"));
}

TEST(Analysis, ExitToLiveTraceEntryIsAccepted)
{
    TinyProgram tiny = makeTinyProgram();
    // 0x99990 is no program block, but a live trace starts there.
    runtime::TraceLinker linker;
    runtime::Trace other;
    other.id = 9;
    other.slot = 9;
    other.entry = 0x99990;
    linker.onTraceInserted(other);

    runtime::Trace trace = makeTrace(tiny, {tiny.a}, {0x99990});
    DiagnosticEngine engine;
    analysis::checkTrace(trace, tiny.program, &linker, engine);
    EXPECT_FALSE(engine.hasCheck("sb-exit-invalid"))
        << engine.textReport();
}

// ---------------------------------------------------------------------
// Link-graph negatives.
// ---------------------------------------------------------------------

TEST(Analysis, DanglingLinkAfterForcedEvictionIsReported)
{
    // Two linked traces; the cache then loses trace 2 without the
    // linker hearing about it (the bug unlink-on-evict must prevent).
    runtime::Trace a;
    a.id = 1;
    a.slot = 1;
    a.entry = 0x1000;
    a.exitTargets = {0x2000};
    runtime::Trace b;
    b.id = 2;
    b.slot = 2;
    b.entry = 0x2000;

    runtime::TraceLinker linker;
    linker.onTraceInserted(a);
    linker.onTraceInserted(b);
    ASSERT_TRUE(linker.linked(1, 2));

    cache::UnifiedCacheManager manager(64 * kKiB);
    ASSERT_TRUE(manager.insert(1, 100, 0, 0)); // trace 2 not resident

    analysis::AnalysisInput input;
    input.linker = &linker;
    input.manager = &manager;
    DiagnosticEngine engine;
    analysis::LinkGraphPass pass;
    engine.setCurrentPass(pass.name());
    pass.run(input, engine);

    EXPECT_TRUE(engine.hasCheck("link-dangling"))
        << engine.textReport();
    EXPECT_TRUE(engine.hasCheck("link-stale-node"));
    EXPECT_GT(engine.errorCount(), 0u);
}

TEST(Analysis, ConsistentLinkGraphIsClean)
{
    runtime::Trace a;
    a.id = 1;
    a.slot = 1;
    a.entry = 0x1000;
    a.exitTargets = {0x2000};
    runtime::Trace b;
    b.id = 2;
    b.slot = 2;
    b.entry = 0x2000;
    b.exitTargets = {0x1000};

    runtime::TraceLinker linker;
    linker.onTraceInserted(a);
    linker.onTraceInserted(b);

    cache::UnifiedCacheManager manager(64 * kKiB);
    ASSERT_TRUE(manager.insert(1, 100, 0, 0));
    ASSERT_TRUE(manager.insert(2, 100, 0, 0));

    analysis::AnalysisInput input;
    input.linker = &linker;
    input.manager = &manager;
    DiagnosticEngine engine;
    analysis::LinkGraphPass pass;
    engine.setCurrentPass(pass.name());
    pass.run(input, engine);
    EXPECT_TRUE(engine.empty()) << engine.textReport();
}

// ---------------------------------------------------------------------
// Front-end fast-path checks (fe-*): direct-chaining exit caches and
// the dense block/dispatch mirrors.
// ---------------------------------------------------------------------

/** TraceLinker whose protected exit-cache state the tests corrupt. */
class CorruptibleLinker : public runtime::TraceLinker
{
  public:
    void corruptSlot(runtime::TraceSlot from, std::size_t exit,
                     runtime::TraceSlot value)
    {
        exitCache_[from].slots[exit] = value;
    }

    void corruptTargets(runtime::TraceSlot from)
    {
        exitCache_[from].targets.push_back(0xdead0);
        exitCache_[from].slots.push_back(runtime::kInvalidSlot);
    }

    void resurrectStaleCache(runtime::TraceSlot slot,
                             isa::GuestAddr target)
    {
        if (exitCache_.size() <= slot) {
            exitCache_.resize(slot + 1);
        }
        exitCache_[slot].targets = {target};
        exitCache_[slot].slots = {runtime::kInvalidSlot};
    }
};

/** Two mutually linked traces: id 1 in slot 1 at 0x1000 <-> id 2 in
 *  slot 2 at 0x2000. */
void
insertLinkedPair(runtime::TraceLinker &linker)
{
    runtime::Trace a;
    a.id = 1;
    a.slot = 1;
    a.entry = 0x1000;
    a.exitTargets = {0x2000, 0x3000};
    runtime::Trace b;
    b.id = 2;
    b.slot = 2;
    b.entry = 0x2000;
    b.exitTargets = {0x1000};
    linker.onTraceInserted(a);
    linker.onTraceInserted(b);
}

TEST(Analysis, ConsistentExitCachesAreClean)
{
    runtime::TraceLinker linker;
    insertLinkedPair(linker);
    ASSERT_TRUE(linker.linked(1, 2));
    ASSERT_EQ(linker.cachedSuccessor(1, 0x2000), 2u);
    ASSERT_EQ(linker.cachedSuccessor(1, 0x3000),
              runtime::kInvalidSlot);

    DiagnosticEngine engine;
    analysis::checkExitCaches(linker, engine);
    EXPECT_TRUE(engine.empty()) << engine.textReport();

    // Still clean after an eviction clears trace 2's cache and
    // unlinks 1 -> 2.
    linker.onTraceEvicted(2);
    DiagnosticEngine after;
    analysis::checkExitCaches(linker, after);
    EXPECT_TRUE(after.empty()) << after.textReport();
}

TEST(Analysis, CorruptedSuccessorSlotIsReported)
{
    CorruptibleLinker linker;
    insertLinkedPair(linker);

    // The patched 1 -> 2 edge exists, but the cached jump was lost.
    linker.corruptSlot(1, 0, runtime::kInvalidSlot);
    DiagnosticEngine engine;
    analysis::checkExitCaches(linker, engine);
    EXPECT_TRUE(engine.hasCheck("fe-exit-slot"))
        << engine.textReport();
}

TEST(Analysis, SlotWithoutPatchedEdgeIsReported)
{
    CorruptibleLinker linker;
    insertLinkedPair(linker);

    // Exit 0x3000 has no resident successor, yet a cached jump
    // appeared (a stale patch the dispatcher would blindly follow).
    linker.corruptSlot(1, 1, 2);
    DiagnosticEngine engine;
    analysis::checkExitCaches(linker, engine);
    EXPECT_TRUE(engine.hasCheck("fe-exit-slot"))
        << engine.textReport();
}

TEST(Analysis, ExitCacheShapeMismatchIsReported)
{
    CorruptibleLinker linker;
    insertLinkedPair(linker);

    linker.corruptTargets(2);
    DiagnosticEngine engine;
    analysis::checkExitCaches(linker, engine);
    EXPECT_TRUE(engine.hasCheck("fe-exit-shape"))
        << engine.textReport();
}

TEST(Analysis, StaleExitCacheAfterEvictionIsReported)
{
    CorruptibleLinker linker;
    insertLinkedPair(linker);
    linker.onTraceEvicted(2);

    // An eviction that failed to clear the evictee's cached jumps.
    linker.resurrectStaleCache(2, 0x1000);
    DiagnosticEngine engine;
    analysis::checkExitCaches(linker, engine);
    EXPECT_TRUE(engine.hasCheck("fe-exit-shape"))
        << engine.textReport();
}

TEST(Analysis, FrontendPassCleanOnLiveRuntimeBothModes)
{
    // The dense mirrors (block index round-trip, dispatch table,
    // exit caches) must be consistent on a live runtime in either
    // front-end mode, including after a module unload retires ids.
    for (auto mode : {runtime::FrontEnd::Legacy,
                      runtime::FrontEnd::Predecoded}) {
        guest::SyntheticProgramConfig config;
        config.seed = 13;
        config.phases = 2;
        config.phaseIterations = 20;
        config.innerIterations = 10;
        config.dllCount = 1;
        guest::SyntheticProgram synthetic =
            guest::generateSyntheticProgram(config);

        guest::AddressSpace space;
        cache::UnifiedCacheManager manager(4 * kKiB);
        runtime::Runtime runtime(space, manager,
                                 /*trace_threshold=*/10, mode);
        for (const auto &module : synthetic.program.modules()) {
            runtime.loadModule(*module);
        }
        runtime.start(synthetic.program.entry());
        runtime.run();
        ASSERT_TRUE(runtime.finished());

        analysis::AnalysisInput input = analysis::AnalysisInput::
            forRuntime(synthetic.program, runtime);
        analysis::FrontendPass pass;
        DiagnosticEngine engine;
        engine.setCurrentPass(pass.name());
        pass.run(input, engine);
        EXPECT_TRUE(engine.empty()) << engine.textReport();

        ASSERT_FALSE(synthetic.dllLastPhase.empty());
        runtime.unloadModule(synthetic.dllLastPhase[0].first);
        DiagnosticEngine after;
        after.setCurrentPass(pass.name());
        pass.run(input, after);
        EXPECT_TRUE(after.empty()) << after.textReport();
    }
}

// ---------------------------------------------------------------------
// Cache-state negatives.
// ---------------------------------------------------------------------

TEST(Analysis, DuplicateResidencyIsReported)
{
    cache::GenerationalConfig config;
    config.nurseryBytes = 1 * kKiB;
    config.probationBytes = 1 * kKiB;
    config.persistentBytes = 1 * kKiB;
    cache::GenerationalCacheManager manager(config);
    ASSERT_TRUE(manager.insert(1, 100, 0, 0)); // lands in the nursery

    // Corrupt: force a second copy into the persistent cache behind
    // the manager's back.
    auto &persistent = const_cast<cache::LocalCache &>(
        manager.localCache(cache::Generation::Persistent));
    std::vector<cache::Fragment> evicted;
    ASSERT_TRUE(persistent.insert(makeFragment(1, 100), evicted));

    DiagnosticEngine engine;
    analysis::checkCacheState(manager, engine);
    EXPECT_TRUE(engine.hasCheck("gen-dup-residency"))
        << engine.textReport();
}

TEST(Analysis, BrokenFreeListIsReported)
{
    CorruptibleFifo fifo(1 * kKiB);
    std::vector<cache::Fragment> evicted;
    ASSERT_TRUE(fifo.insert(makeFragment(1, 100), evicted));
    ASSERT_TRUE(fifo.insert(makeFragment(2, 100), evicted));
    ASSERT_TRUE(fifo.remove(1)); // slot 0 goes to the free list
    fifo.breakFreeList();

    DiagnosticEngine engine;
    analysis::checkLocalCache(fifo, "fifo", engine);
    EXPECT_TRUE(engine.hasCheck("list-free-broken"))
        << engine.textReport();
}

TEST(Analysis, BrokenVictimRingIsReported)
{
    CorruptibleFifo fifo(1 * kKiB);
    std::vector<cache::Fragment> evicted;
    ASSERT_TRUE(fifo.insert(makeFragment(1, 100), evicted));
    ASSERT_TRUE(fifo.insert(makeFragment(2, 100), evicted));
    fifo.breakRing();

    DiagnosticEngine engine;
    analysis::checkLocalCache(fifo, "fifo", engine);
    EXPECT_TRUE(engine.hasCheck("list-ring-broken"))
        << engine.textReport();
}

TEST(Analysis, ByteAccountingMismatchIsReported)
{
    CorruptibleFifo fifo(1 * kKiB);
    std::vector<cache::Fragment> evicted;
    ASSERT_TRUE(fifo.insert(makeFragment(1, 100), evicted));
    fifo.breakBytes();

    DiagnosticEngine engine;
    analysis::checkLocalCache(fifo, "fifo", engine);
    EXPECT_TRUE(engine.hasCheck("list-bytes"))
        << engine.textReport();
}

TEST(Analysis, IntactCachesAreClean)
{
    cache::GenerationalConfig config =
        cache::GenerationalConfig::fromProportions(
            2 * kKiB, 0.45, 0.10, /*threshold=*/1);
    cache::GenerationalCacheManager manager(config);
    for (cache::TraceId id = 1; id <= 40; ++id) {
        manager.insert(id, 100, 0, id);
        manager.lookup(id, id);
        manager.lookup(id / 2 + 1, id);
    }
    DiagnosticEngine engine;
    analysis::checkCacheState(manager, engine);
    EXPECT_TRUE(engine.empty()) << engine.textReport();
}

// ---------------------------------------------------------------------
// GENCACHE_CHECK phase-boundary hook.
// ---------------------------------------------------------------------

TEST(Analysis, PhaseChecksAttachOnlyWhenEnabled)
{
    guest::SyntheticProgramConfig config;
    config.seed = 11;
    config.phases = 2;
    config.phaseIterations = 20;
    config.innerIterations = 10;
    config.dllCount = 1;
    guest::SyntheticProgram synthetic =
        guest::generateSyntheticProgram(config);
    guest::AddressSpace space;
    for (const auto &module : synthetic.program.modules()) {
        space.map(*module);
    }
    cache::UnifiedCacheManager manager(4 * kKiB);
    runtime::Runtime runtime(space, manager, /*trace_threshold=*/10);

    {
        ScopedCheckEnv env("0");
        EXPECT_FALSE(analysis::attachPhaseChecks(runtime));
    }
    {
        ScopedCheckEnv env("1");
        EXPECT_TRUE(analysis::attachPhaseChecks(runtime));
    }
    // With the hook installed, a healthy run passes every boundary.
    runtime.start(synthetic.program.entry());
    runtime.run();
    EXPECT_TRUE(runtime.finished());
}

} // namespace
