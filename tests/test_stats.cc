/**
 * @file
 * Unit tests for histograms, summary statistics, and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace gencache {
namespace {

TEST(SummaryStats, MeanAndSum)
{
    SummaryStats stats;
    stats.add(1.0);
    stats.add(2.0);
    stats.add(3.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 6.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
    EXPECT_EQ(stats.count(), 3u);
}

TEST(SummaryStats, Geomean)
{
    SummaryStats stats;
    stats.add(1.0);
    stats.add(100.0);
    EXPECT_NEAR(stats.geomean(), 10.0, 1e-9);
}

TEST(SummaryStats, GeomeanMatchesPaperStyleRatios)
{
    // Figure 11 averages ratios geometrically; sanity-check the form.
    SummaryStats stats;
    stats.add(0.511);
    stats.add(1.062);
    EXPECT_NEAR(stats.geomean(), std::sqrt(0.511 * 1.062), 1e-12);
}

TEST(SummaryStats, Stddev)
{
    SummaryStats stats;
    stats.add(2.0);
    stats.add(4.0);
    stats.add(4.0);
    stats.add(4.0);
    stats.add(5.0);
    stats.add(5.0);
    stats.add(7.0);
    stats.add(9.0);
    EXPECT_NEAR(stats.stddev(), 2.1380899, 1e-6);
}

TEST(SummaryStats, MedianOddAndEven)
{
    SummaryStats odd;
    odd.add(3.0);
    odd.add(1.0);
    odd.add(2.0);
    EXPECT_DOUBLE_EQ(odd.median(), 2.0);

    SummaryStats even;
    even.add(1.0);
    even.add(2.0);
    even.add(3.0);
    even.add(4.0);
    EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(SummaryStats, MinMaxPercentile)
{
    SummaryStats stats;
    for (int i = 1; i <= 100; ++i) {
        stats.add(static_cast<double>(i));
    }
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 100.0);
    EXPECT_NEAR(stats.percentile(90), 90.1, 0.2);
}

TEST(SummaryStats, StddevOfFewerThanTwoIsZero)
{
    SummaryStats stats;
    stats.add(5.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Histogram, BinsValues)
{
    Histogram histogram({0.0, 1.0, 2.0, 3.0});
    histogram.add(0.5);
    histogram.add(1.5);
    histogram.add(1.7);
    histogram.add(2.9);
    EXPECT_EQ(histogram.binTotal(0), 1u);
    EXPECT_EQ(histogram.binTotal(1), 2u);
    EXPECT_EQ(histogram.binTotal(2), 1u);
    EXPECT_EQ(histogram.total(), 4u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram histogram({0.0, 1.0, 2.0});
    histogram.add(-5.0);
    histogram.add(99.0);
    EXPECT_EQ(histogram.binTotal(0), 1u);
    EXPECT_EQ(histogram.binTotal(1), 1u);
}

TEST(Histogram, Fractions)
{
    Histogram histogram({0.0, 1.0, 2.0});
    histogram.addWeighted(0.5, 3);
    histogram.addWeighted(1.5, 1);
    EXPECT_DOUBLE_EQ(histogram.binFraction(0), 0.75);
    EXPECT_DOUBLE_EQ(histogram.binFraction(1), 0.25);
}

TEST(Histogram, LifetimeBucketsMatchFigure6)
{
    Histogram histogram = makeLifetimeHistogram();
    EXPECT_EQ(histogram.binCount(), 5u);
    histogram.add(0.1);  // <20%
    histogram.add(0.35); // 20-40
    histogram.add(0.5);  // 40-60
    histogram.add(0.7);  // 60-80
    histogram.add(0.95); // >80
    histogram.add(1.0);  // exactly 100% still lands in the top bucket
    for (std::size_t bin = 0; bin < 4; ++bin) {
        EXPECT_EQ(histogram.binTotal(bin), 1u) << "bin " << bin;
    }
    EXPECT_EQ(histogram.binTotal(4), 2u);
    EXPECT_EQ(lifetimeBucketLabels().size(), 5u);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"gzip", "51.1%"});
    table.addRow({"longer-name", "106.2%"});
    std::string out = table.toString();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Right-aligned numeric column: the shorter number is padded.
    EXPECT_NE(out.find(" 51.1%"), std::string::npos);
}

TEST(TextTable, SeparatorRows)
{
    TextTable table({"a"});
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    std::string out = table.toString();
    // Header separator + explicit separator.
    std::size_t dashes = 0;
    for (char c : out) {
        if (c == '-') {
            ++dashes;
        }
    }
    EXPECT_GE(dashes, 2u);
}

TEST(TextTableDeath, RowWidthMismatchPanics)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "cells");
}

} // namespace
} // namespace gencache
