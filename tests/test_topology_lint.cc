// The static topology linter (analysis/topology_passes): every
// ill-formed TierTopology class must be rejected with its stable
// topo-* ID without constructing a cache, the shipped catalog must
// lint clean, the tournament must pre-reject dirty configs, and the
// static fast-path explanation must agree with the real pipeline.

#include <gtest/gtest.h>

#include "analysis/topology_passes.h"
#include "codecache/local_cache.h"
#include "codecache/tier_pipeline.h"
#include "sim/tournament.h"
#include "support/units.h"
#include "workload/profile.h"

namespace {

using namespace gencache;
using analysis::DiagnosticEngine;
using analysis::lintTopology;
using cache::EdgeSpec;
using cache::LocalPolicy;
using cache::PinHandling;
using cache::TierTopology;

EdgeSpec
edge(EdgeSpec::Rule rule, std::uint32_t threshold = 1,
     bool eager = false, TimeUs half_life_us = 0)
{
    EdgeSpec spec;
    spec.rule = rule;
    spec.threshold = threshold;
    spec.eager = eager;
    spec.halfLifeUs = half_life_us;
    return spec;
}

TierTopology
topo(std::vector<double> fractions, std::vector<EdgeSpec> edges)
{
    TierTopology topology;
    topology.name = "under-test";
    topology.fractions = std::move(fractions);
    topology.edges = std::move(edges);
    return topology;
}

/** Run the budget-independent linter; @return the engine. */
DiagnosticEngine
lint(const TierTopology &topology, bool expect_ok)
{
    DiagnosticEngine engine;
    EXPECT_EQ(lintTopology(topology, engine), expect_ok)
        << engine.textReport();
    return engine;
}

TEST(TopologyLint, EmptyTopologyIsRejected)
{
    DiagnosticEngine engine = lint(topo({}, {}), false);
    EXPECT_TRUE(engine.hasCheck("topo-no-tiers"))
        << engine.textReport();
}

TEST(TopologyLint, EdgeCountMismatchIsRejected)
{
    DiagnosticEngine engine = lint(topo({0.5, 0.5}, {}), false);
    EXPECT_TRUE(engine.hasCheck("topo-edge-count"))
        << engine.textReport();
}

TEST(TopologyLint, NinePipelineStagesAreRejected)
{
    std::vector<double> fractions(9, 0.1);
    std::vector<EdgeSpec> edges(
        8, edge(EdgeSpec::Rule::AlwaysPromote));
    DiagnosticEngine engine =
        lint(topo(std::move(fractions), std::move(edges)), false);
    EXPECT_TRUE(engine.hasCheck("topo-too-deep"))
        << engine.textReport();
}

TEST(TopologyLint, NegativeFractionIsRejected)
{
    DiagnosticEngine engine = lint(
        topo({-0.5, 0.5}, {edge(EdgeSpec::Rule::AlwaysPromote)}),
        false);
    EXPECT_TRUE(engine.hasCheck("topo-fraction-range"))
        << engine.textReport();
}

TEST(TopologyLint, OverCommittedFractionsAreRejected)
{
    // Every tier but the last already claims >= 100% of the budget,
    // so tierSpecs() would leave nothing for the last tier.
    DiagnosticEngine engine =
        lint(topo({0.7, 0.4, 0.2}, {edge(EdgeSpec::Rule::AlwaysPromote),
                                    edge(EdgeSpec::Rule::Threshold)}),
             false);
    EXPECT_TRUE(engine.hasCheck("topo-fraction-sum"))
        << engine.textReport();
}

TEST(TopologyLint, LowFractionSumOnlyWarns)
{
    DiagnosticEngine engine = lint(
        topo({0.1, 0.1}, {edge(EdgeSpec::Rule::Threshold)}), true);
    EXPECT_TRUE(engine.hasCheck("topo-fraction-sum-low"))
        << engine.textReport();
    EXPECT_EQ(engine.errorCount(), 0u);
}

TEST(TopologyLint, BudgetBelowTierCountIsRejected)
{
    TierTopology topology =
        topo({0.4, 0.3, 0.3}, {edge(EdgeSpec::Rule::AlwaysPromote),
                               edge(EdgeSpec::Rule::Threshold)});
    DiagnosticEngine engine;
    EXPECT_FALSE(lintTopology(topology, /*budget_bytes=*/2, engine));
    EXPECT_TRUE(engine.hasCheck("topo-zero-capacity"))
        << engine.textReport();
    // The same topology is fine at a real budget.
    DiagnosticEngine ok;
    EXPECT_TRUE(lintTopology(topology, 64 * kKiB, ok))
        << ok.textReport();
}

TEST(TopologyLint, UnboundedMultiTierIsRejected)
{
    TierTopology topology =
        topo({0.5, 0.5}, {edge(EdgeSpec::Rule::Threshold)});
    topology.policy = LocalPolicy::Unbounded;
    DiagnosticEngine engine = lint(topology, false);
    EXPECT_TRUE(engine.hasCheck("topo-unbounded-multi"))
        << engine.textReport();
}

TEST(TopologyLint, TiersBehindAlwaysDeleteAreRejected)
{
    DiagnosticEngine engine = lint(
        topo({0.4, 0.3, 0.3}, {edge(EdgeSpec::Rule::AlwaysDelete),
                               edge(EdgeSpec::Rule::Threshold)}),
        false);
    EXPECT_TRUE(engine.hasCheck("topo-unreachable-tier"))
        << engine.textReport();
    EXPECT_TRUE(engine.hasCheck("topo-edge-never-fires"))
        << engine.textReport();
}

TEST(TopologyLint, ZeroTemperatureHalfLifeIsRejected)
{
    DiagnosticEngine engine =
        lint(topo({0.5, 0.5}, {edge(EdgeSpec::Rule::Temperature,
                                    /*threshold=*/2, false,
                                    /*half_life_us=*/0)}),
             false);
    EXPECT_TRUE(engine.hasCheck("topo-temp-halflife"))
        << engine.textReport();
}

TEST(TopologyLint, ZeroThresholdOnlyWarns)
{
    DiagnosticEngine engine = lint(
        topo({0.5, 0.5},
             {edge(EdgeSpec::Rule::Threshold, /*threshold=*/0)}),
        true);
    EXPECT_TRUE(engine.hasCheck("topo-threshold-zero"))
        << engine.textReport();
    EXPECT_EQ(engine.errorCount(), 0u);
}

TEST(TopologyLint, ShedPinsOnSingleTierOnlyWarns)
{
    TierTopology topology = topo({1.0}, {});
    topology.pins = PinHandling::Shed;
    DiagnosticEngine engine = lint(topology, true);
    EXPECT_TRUE(engine.hasCheck("topo-pin-shed-single"))
        << engine.textReport();
    EXPECT_EQ(engine.errorCount(), 0u);
}

TEST(TopologyLint, ShedPinsUnderPreemptiveFlushOnlyWarn)
{
    TierTopology topology =
        topo({0.5, 0.5}, {edge(EdgeSpec::Rule::Threshold)});
    topology.pins = PinHandling::Shed;
    topology.policy = LocalPolicy::PreemptiveFlush;
    DiagnosticEngine engine = lint(topology, true);
    EXPECT_TRUE(engine.hasCheck("topo-pin-shed-flush"))
        << engine.textReport();
    EXPECT_EQ(engine.errorCount(), 0u);
}

TEST(TopologyLint, ShippedCatalogLintsClean)
{
    for (const TierTopology &topology :
         cache::namedTierTopologies()) {
        DiagnosticEngine engine;
        EXPECT_TRUE(lintTopology(topology, engine))
            << topology.name << "\n" << engine.textReport();
        EXPECT_EQ(engine.errorCount(), 0u) << topology.name;

        DiagnosticEngine budgeted;
        EXPECT_TRUE(lintTopology(topology, kMiB, budgeted))
            << topology.name << "\n" << budgeted.textReport();
    }
}

TEST(TopologyLint, TournamentRejectsDirtyConfigsUpFront)
{
    workload::BenchmarkProfile profile =
        workload::findProfile("gzip");
    profile.finalCacheKb *= 0.1;
    profile.durationSec *= 0.1;
    if (profile.finalCacheKb < 16.0) {
        profile.finalCacheKb = 16.0;
    }
    if (profile.durationSec < 0.25) {
        profile.durationSec = 0.25;
    }

    sim::TournamentConfig good;
    good.name = "good-2tier";
    good.promotionLabel = "thr1";
    good.topology = *cache::findTierTopology("2tier");

    sim::TournamentConfig bad;
    bad.name = "bad-edge-count";
    bad.promotionLabel = "none";
    bad.topology = topo({0.5, 0.5}, {});

    sim::TournamentResult result = sim::runTournament(
        {profile}, {good, bad}, /*threads=*/1, /*shard_lanes=*/4);

    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.rows[0].config, "good-2tier");
    ASSERT_EQ(result.rejected.size(), 1u);
    EXPECT_EQ(result.rejected[0].config, "bad-edge-count");
    ASSERT_FALSE(result.rejected[0].diagnostics.empty());
    EXPECT_EQ(result.rejected[0].diagnostics[0].checkId,
              "topo-edge-count");
}

TEST(TopologyLint, FastPathExplanationMatchesThePipeline)
{
    for (const TierTopology &topology :
         cache::namedTierTopologies()) {
        analysis::FastPathExplanation explanation =
            analysis::explainFastReplay(topology);
        std::unique_ptr<cache::TierPipeline> pipeline =
            topology.build(64 * kKiB);
        // No listener attached, so the config-derived conditions the
        // static explanation models are the only ones in play.
        EXPECT_EQ(pipeline->enableFastReplay(/*id_bound=*/1024),
                  explanation.eligible)
            << topology.name;
        EXPECT_EQ(explanation.blockers.empty(), explanation.eligible)
            << topology.name;
        EXPECT_FALSE(explanation.listenerCaveat.empty())
            << topology.name;
    }
}

TEST(TopologyLint, ObservesTouchPredicateMatchesRealCaches)
{
    for (LocalPolicy policy :
         {LocalPolicy::PseudoCircular, LocalPolicy::Fifo,
          LocalPolicy::Lru, LocalPolicy::PreemptiveFlush,
          LocalPolicy::Unbounded, LocalPolicy::Srrip,
          LocalPolicy::Brrip}) {
        EXPECT_EQ(cache::localPolicyObservesTouch(policy),
                  cache::makeLocalCache(policy, kKiB)->observesTouch())
            << static_cast<int>(policy);
    }
}

} // namespace
