/**
 * @file
 * Unit tests for the access log: event construction, validation,
 * text/binary round trips, and lifetime analysis (Equation 2).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "tracelog/compiled_log.h"
#include "tracelog/event.h"
#include "tracelog/lifetime.h"
#include "tracelog/serialize.h"

namespace gencache::tracelog {
namespace {

AccessLog
sampleLog()
{
    AccessLog log;
    log.setBenchmark("sample");
    log.setDuration(1000);
    log.setFootprintBytes(4096);
    log.append(Event::moduleLoad(0, 0));
    log.append(Event::moduleLoad(0, 1));
    log.append(Event::traceCreate(10, 1, 100, 0));
    log.append(Event::traceExec(20, 1));
    log.append(Event::traceCreate(30, 2, 200, 1));
    log.append(Event::pin(40, 2));
    log.append(Event::unpin(50, 2));
    log.append(Event::traceExec(900, 1));
    log.append(Event::moduleUnload(950, 1));
    return log;
}

TEST(AccessLog, TracksCreatedVolume)
{
    AccessLog log = sampleLog();
    EXPECT_EQ(log.createdTraceCount(), 2u);
    EXPECT_EQ(log.createdTraceBytes(), 300u);
    EXPECT_EQ(log.size(), 9u);
}

TEST(AccessLog, ValidatePassesOnWellFormedLog)
{
    sampleLog().validate();
}

TEST(AccessLogDeath, RejectsTimeTravel)
{
    AccessLog log;
    log.append(Event::traceCreate(10, 1, 100, 0));
    EXPECT_DEATH(log.append(Event::traceExec(5, 1)), "backwards");
}

TEST(AccessLogDeath, ValidateCatchesUseBeforeCreate)
{
    AccessLog log;
    log.append(Event::traceExec(5, 1));
    EXPECT_DEATH(log.validate(), "before creation");
}

TEST(AccessLogDeath, ValidateCatchesDuplicateCreate)
{
    AccessLog log;
    log.append(Event::traceCreate(1, 1, 10, 0));
    log.append(Event::traceCreate(2, 1, 10, 0));
    EXPECT_DEATH(log.validate(), "duplicate");
}

TEST(AccessLogDeath, ValidateCatchesUnloadWithoutLoad)
{
    AccessLog log;
    log.append(Event::moduleUnload(1, 3));
    EXPECT_DEATH(log.validate(), "not loaded");
}

TEST(AccessLog, ModuleReloadIsLegal)
{
    AccessLog log;
    log.append(Event::moduleLoad(0, 1));
    log.append(Event::moduleUnload(10, 1));
    log.append(Event::moduleLoad(20, 1));
    log.validate();
}

TEST(Serialize, TextRoundTrip)
{
    AccessLog original = sampleLog();
    std::stringstream stream;
    writeText(original, stream);
    AccessLog loaded = readText(stream);

    EXPECT_EQ(loaded.benchmark(), original.benchmark());
    EXPECT_EQ(loaded.duration(), original.duration());
    EXPECT_EQ(loaded.footprintBytes(), original.footprintBytes());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].type, original[i].type) << i;
        EXPECT_EQ(loaded[i].time, original[i].time) << i;
        EXPECT_EQ(loaded[i].trace, original[i].trace) << i;
        EXPECT_EQ(loaded[i].sizeBytes, original[i].sizeBytes) << i;
        EXPECT_EQ(loaded[i].module, original[i].module) << i;
    }
}

TEST(Serialize, BinaryRoundTrip)
{
    AccessLog original = sampleLog();
    std::stringstream stream;
    writeBinary(original, stream);
    AccessLog loaded = readBinary(stream);
    EXPECT_EQ(loaded.benchmark(), original.benchmark());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].type, original[i].type) << i;
        EXPECT_EQ(loaded[i].time, original[i].time) << i;
        EXPECT_EQ(loaded[i].trace, original[i].trace) << i;
    }
}

TEST(Serialize, FileRoundTripBothFormats)
{
    AccessLog original = sampleLog();
    for (const char *name : {"/tmp/gencache_test.gclog",
                             "/tmp/gencache_test.gclogb"}) {
        saveLog(original, name);
        AccessLog loaded = loadLog(name);
        EXPECT_EQ(loaded.size(), original.size()) << name;
        EXPECT_EQ(loaded.benchmark(), original.benchmark()) << name;
        std::remove(name);
    }
}

TEST(SerializeDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(loadLog("/nonexistent/path.gclog"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(SerializeDeath, GarbageTextIsFatal)
{
    std::stringstream stream("not a log at all");
    EXPECT_EXIT(readText(stream), ::testing::ExitedWithCode(1),
                "not a gclog");
}

TEST(SerializeDeath, GarbageBinaryIsFatal)
{
    std::stringstream stream("XXXXXXXXXXXXXXXX");
    EXPECT_EXIT(readBinary(stream), ::testing::ExitedWithCode(1),
                "not a gclog");
}

TEST(SerializeDeath, TruncatedBinaryIsFatal)
{
    AccessLog original = sampleLog();
    std::stringstream stream;
    writeBinary(original, stream);
    std::string bytes = stream.str();
    std::stringstream truncated(
        bytes.substr(0, bytes.size() / 2));
    EXPECT_EXIT(readBinary(truncated), ::testing::ExitedWithCode(1),
                "truncated");
}

void
expectLogsEqual(const AccessLog &loaded, const AccessLog &original)
{
    EXPECT_EQ(loaded.benchmark(), original.benchmark());
    EXPECT_EQ(loaded.duration(), original.duration());
    EXPECT_EQ(loaded.footprintBytes(), original.footprintBytes());
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].type, original[i].type) << i;
        EXPECT_EQ(loaded[i].time, original[i].time) << i;
        EXPECT_EQ(loaded[i].trace, original[i].trace) << i;
        EXPECT_EQ(loaded[i].sizeBytes, original[i].sizeBytes) << i;
        EXPECT_EQ(loaded[i].module, original[i].module) << i;
    }
}

TEST(SerializeV2, RoundTripAllFields)
{
    AccessLog original = sampleLog();
    std::stringstream stream;
    writeBinary(original, stream, 2);
    expectLogsEqual(readBinary(stream), original);
}

TEST(SerializeV2, RoundTripsSentinelIds)
{
    // kNoModule and the default field values of non-create events
    // sit at the edges of the +1-shifted varint encoding.
    AccessLog original;
    original.append(Event::traceCreate(0, 0, 16, cache::kNoModule));
    original.append(Event::traceExec(5, 0));
    std::stringstream stream;
    writeBinary(original, stream, 2);
    expectLogsEqual(readBinary(stream), original);
}

TEST(SerializeV2, SmallerThanV1)
{
    AccessLog log = sampleLog();
    std::stringstream v1;
    std::stringstream v2;
    writeBinary(log, v1, 1);
    writeBinary(log, v2, 2);
    EXPECT_LT(v2.str().size(), v1.str().size());
}

TEST(SerializeV2, V1StillLoads)
{
    AccessLog original = sampleLog();
    std::stringstream stream;
    writeBinary(original, stream, 1);
    expectLogsEqual(readBinary(stream), original);
}

TEST(SerializeV2Death, UnsupportedVersionIsFatal)
{
    AccessLog log = sampleLog();
    std::stringstream stream;
    EXPECT_EXIT(writeBinary(log, stream, 3),
                ::testing::ExitedWithCode(1),
                "unsupported binary gclog version");
}

TEST(SerializeV2Death, TruncatedV2IsFatal)
{
    AccessLog original = sampleLog();
    std::stringstream stream;
    writeBinary(original, stream, 2);
    std::string bytes = stream.str();
    std::stringstream truncated(
        bytes.substr(0, bytes.size() / 2));
    EXPECT_EXIT(readBinary(truncated), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(SerializeV2Death, BadEventTypeIsFatal)
{
    // GCL2 header with empty name, zero duration/footprint, one
    // event whose type byte is out of range.
    std::string bytes("GCL2\0\0\0\x01\xff", 9);
    std::stringstream stream(bytes);
    EXPECT_EXIT(readBinary(stream), ::testing::ExitedWithCode(1),
                "bad event type");
}

TEST(SerializeV2Death, TimeOverflowIsFatal)
{
    // Two exec events whose summed time deltas overflow 64 bits.
    std::string bytes("GCL2\0\0\0\x02", 8);
    bytes += '\x01';                            // exec
    bytes += std::string(9, '\xff');            // delta =
    bytes += '\x01';                            //   2^64 - 1
    bytes += '\x02';                            // trace 1
    bytes += '\x01';                            // exec
    bytes += '\x01';                            // delta 1: overflow
    std::stringstream stream(bytes);
    EXPECT_EXIT(readBinary(stream), ::testing::ExitedWithCode(1),
                "time overflows");
}

TEST(SerializeV2Death, ZeroTraceReferenceIsFatal)
{
    // One exec event whose +1-biased trace varint is 0 — decoding it
    // would underflow to kInvalidTrace, so the loader must reject it.
    std::string bytes("GCL2\0\0\0\x01", 8);
    bytes += '\x01'; // exec
    bytes += '\x00'; // delta 0
    bytes += '\x00'; // trace reference 0: reserved
    std::stringstream stream(bytes);
    EXPECT_EXIT(readBinary(stream), ::testing::ExitedWithCode(1),
                "trace reference 0");
}

TEST(SerializeV2Death, OversizedTraceSizeIsFatal)
{
    // A create whose size varint needs more than 32 bits; silently
    // truncating it would corrupt every downstream byte count.
    std::string bytes("GCL2\0\0\0\x01", 8);
    bytes += '\x00';                    // create
    bytes += '\x00';                    // delta 0
    bytes += '\x01';                    // trace 0
    bytes += "\x80\x80\x80\x80\x10";    // size = 2^32
    bytes += '\x01';                    // module (unreached)
    std::stringstream stream(bytes);
    EXPECT_EXIT(readBinary(stream), ::testing::ExitedWithCode(1),
                "exceeds 32 bits");
}

TEST(SerializeV2Death, OversizedModuleReferenceIsFatal)
{
    std::string bytes("GCL2\0\0\0\x01", 8);
    bytes += '\x02';                        // module load
    bytes += '\x00';                        // delta 0
    bytes += "\x81\x80\x80\x80\x80\x10";    // module ref > 2^32
    std::stringstream stream(bytes);
    EXPECT_EXIT(readBinary(stream), ::testing::ExitedWithCode(1),
                "bad module reference");
}

TEST(SerializeV2Death, EveryClipPointDiagnosesCleanly)
{
    // Clipping a valid stream at any byte boundary must produce a
    // clean fatal diagnostic, never a silent partial load or a read
    // past the buffer.
    AccessLog original = sampleLog();
    std::stringstream stream;
    writeBinary(original, stream, 2);
    const std::string bytes = stream.str();
    for (std::size_t cut : {std::size_t{3}, std::size_t{7},
                            bytes.size() / 4, bytes.size() / 2,
                            bytes.size() - 2, bytes.size() - 1}) {
        std::stringstream clipped(bytes.substr(0, cut));
        EXPECT_EXIT(readBinary(clipped), ::testing::ExitedWithCode(1),
                    "gclog|truncated")
            << "clip at " << cut;
    }
}

TEST(SerializeV2, BitFlipsNeverLoadSilentlyWrongEventCounts)
{
    // Flip one bit at a time across the whole stream. Every flip must
    // either still load (the flip hit a benign field: name byte,
    // metadata, a time delta, an id) or die with a diagnostic — the
    // loader must never crash uncleanly. Loads that succeed must not
    // read past the event count.
    AccessLog original = sampleLog();
    std::stringstream stream;
    writeBinary(original, stream, 2);
    const std::string bytes = stream.str();
    // Exit code 0 (benign flip, clean load) and 1 (fatal diagnostic)
    // are both fine; a crash signal is not.
    auto exited_cleanly = [](int status) {
        return WIFEXITED(status) && (WEXITSTATUS(status) == 0 ||
                                     WEXITSTATUS(status) == 1);
    };
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        for (int bit : {0, 3, 7}) {
            std::string mutated = bytes;
            mutated[i] = static_cast<char>(
                mutated[i] ^ static_cast<char>(1 << bit));
            std::stringstream in(mutated);
            // Run the loader in a child so a fatal() exit does not
            // take the test down.
            EXPECT_EXIT(
                {
                    AccessLog loaded = readBinary(in);
                    (void)loaded;
                    std::exit(0);
                },
                exited_cleanly, "")
                << "byte " << i << " bit " << bit;
        }
    }
}

TEST(CompiledLog, ColumnsMirrorTheLog)
{
    AccessLog log = sampleLog();
    CompiledLog compiled = CompiledLog::compile(log);
    EXPECT_EQ(compiled.benchmark(), log.benchmark());
    EXPECT_EQ(compiled.duration(), log.duration());
    EXPECT_EQ(compiled.footprintBytes(), log.footprintBytes());
    EXPECT_EQ(compiled.createdTraceBytes(), log.createdTraceBytes());
    EXPECT_EQ(compiled.createdTraceCount(), log.createdTraceCount());
    ASSERT_EQ(compiled.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(compiled.types()[i], log[i].type) << i;
        EXPECT_EQ(compiled.times()[i], log[i].time) << i;
    }
}

TEST(CompiledLog, DenseRemapPreservesIdentity)
{
    AccessLog log = sampleLog();
    CompiledLog compiled = CompiledLog::compile(log);
    ASSERT_EQ(compiled.traceCount(), 2u);
    // Dense ids are assigned in order of first appearance.
    EXPECT_EQ(compiled.originalId(0), 1u);
    EXPECT_EQ(compiled.originalId(1), 2u);
    EXPECT_EQ(compiled.traceSize(0), 100u);
    EXPECT_EQ(compiled.traceSize(1), 200u);
    EXPECT_EQ(compiled.traceModule(0), 0u);
    EXPECT_EQ(compiled.traceModule(1), 1u);
    // Every trace-bearing event column entry stays in bounds.
    for (std::size_t i = 0; i < compiled.size(); ++i) {
        EventType type = compiled.types()[i];
        if (type == EventType::ModuleLoad ||
            type == EventType::ModuleUnload) {
            continue;
        }
        EXPECT_LT(compiled.traces()[i], compiled.traceCount()) << i;
    }
}

TEST(CompiledLog, ModuleRangesCoverLoadsAndUnloads)
{
    AccessLog log = sampleLog();
    CompiledLog compiled = CompiledLog::compile(log);
    ASSERT_EQ(compiled.moduleRanges().size(), 2u);
    const CompiledLog::ModuleRange &mod0 = compiled.moduleRanges()[0];
    const CompiledLog::ModuleRange &mod1 = compiled.moduleRanges()[1];
    EXPECT_EQ(mod0.module, 0u);
    EXPECT_EQ(mod0.loads, 1u);
    EXPECT_EQ(mod0.unloads, 0u);
    EXPECT_EQ(mod0.firstEvent, 0u);
    EXPECT_EQ(mod1.module, 1u);
    EXPECT_EQ(mod1.loads, 1u);
    EXPECT_EQ(mod1.unloads, 1u);
    EXPECT_EQ(mod1.lastEvent, 8u);
}

TEST(CompiledLog, ChunksTileTheLogWithModuleBarriers)
{
    AccessLog log = sampleLog();
    CompiledLog compiled = CompiledLog::compile(log);
    std::size_t covered = 0;
    for (const CompiledLog::Chunk &chunk : compiled.chunks()) {
        EXPECT_EQ(chunk.first, covered);
        EXPECT_GT(chunk.count, 0u);
        std::uint8_t expected = 0;
        for (std::size_t i = 0; i < chunk.count; ++i) {
            EventType type = compiled.types()[chunk.first + i];
            expected |= static_cast<std::uint8_t>(
                1u << static_cast<unsigned>(type));
            if (chunk.barrier) {
                EXPECT_TRUE(type == EventType::ModuleLoad ||
                            type == EventType::ModuleUnload);
            }
        }
        EXPECT_EQ(chunk.typeMask, expected);
        if (chunk.barrier) {
            EXPECT_EQ(chunk.count, 1u);
        }
        covered += chunk.count;
    }
    EXPECT_EQ(covered, compiled.size());
}

TEST(CompiledLog, LongChunksSplitAtTheChunkSize)
{
    AccessLog log;
    log.append(Event::traceCreate(0, 1, 64, cache::kNoModule));
    for (std::size_t i = 0; i < 3 * CompiledLog::kChunkEvents; ++i) {
        log.append(Event::traceExec(static_cast<TimeUs>(i + 1), 1));
    }
    CompiledLog compiled = CompiledLog::compile(log);
    ASSERT_GE(compiled.chunks().size(), 3u);
    EXPECT_EQ(compiled.chunks()[0].count, CompiledLog::kChunkEvents);
    EXPECT_FALSE(compiled.chunks()[0].pureExec()); // holds the create
    EXPECT_TRUE(compiled.chunks()[1].pureExec());
}

TEST(CompiledLog, ExecPinnedFollowsPinWindows)
{
    AccessLog log;
    log.append(Event::traceCreate(0, 7, 64, cache::kNoModule));
    log.append(Event::traceExec(1, 7));   // before pin: 0
    log.append(Event::pin(2, 7));
    log.append(Event::traceExec(3, 7));   // pinned: 1
    log.append(Event::unpin(4, 7));
    log.append(Event::traceExec(5, 7));   // after unpin: 0
    CompiledLog compiled = CompiledLog::compile(log);
    const std::vector<std::uint8_t> &pinned = compiled.execPinned();
    ASSERT_EQ(pinned.size(), compiled.size());
    EXPECT_EQ(pinned[1], 0);
    EXPECT_EQ(pinned[3], 1);
    EXPECT_EQ(pinned[5], 0);
}

TEST(CompiledLogDeath, DuplicateCreateIsFatal)
{
    AccessLog log;
    log.append(Event::traceCreate(1, 7, 10, 0));
    log.append(Event::traceCreate(2, 7, 10, 0));
    EXPECT_DEATH(CompiledLog::compile(log), "created twice");
}

TEST(CompiledLogDeath, ExecBeforeCreateIsFatal)
{
    AccessLog log;
    log.append(Event::traceExec(1, 7));
    EXPECT_DEATH(CompiledLog::compile(log), "unknown trace");
}

TEST(EventType, Names)
{
    EXPECT_STREQ(eventTypeName(EventType::TraceCreate), "create");
    EXPECT_STREQ(eventTypeName(EventType::ModuleUnload), "unload");
}

TEST(Lifetime, Equation2)
{
    // lifetime = (last - first) / total
    AccessLog log;
    log.setDuration(1000);
    log.append(Event::traceCreate(100, 1, 50, 0));
    log.append(Event::traceExec(600, 1));
    LifetimeAnalyzer analyzer(log);
    ASSERT_EQ(analyzer.lifetimes().size(), 1u);
    const TraceLifetime &lifetime = analyzer.lifetimes()[0];
    EXPECT_EQ(lifetime.firstExec, 100u);
    EXPECT_EQ(lifetime.lastExec, 600u);
    EXPECT_EQ(lifetime.executions, 2u);
    EXPECT_DOUBLE_EQ(lifetime.fraction(analyzer.totalTime()), 0.5);
}

TEST(Lifetime, HistogramBuckets)
{
    AccessLog log;
    log.setDuration(1000);
    log.append(Event::traceCreate(0, 1, 10, 0));   // long-lived
    log.append(Event::traceCreate(0, 2, 10, 0));   // short-lived
    log.append(Event::traceExec(100, 2));
    log.append(Event::traceExec(990, 1));
    LifetimeAnalyzer analyzer(log);
    Histogram histogram = analyzer.lifetimeHistogram();
    EXPECT_EQ(histogram.binTotal(0), 1u); // trace 2: 0.1
    EXPECT_EQ(histogram.binTotal(4), 1u); // trace 1: 0.99
    EXPECT_DOUBLE_EQ(analyzer.shortLivedFraction(), 0.5);
    EXPECT_DOUBLE_EQ(analyzer.longLivedFraction(), 0.5);
}

TEST(Lifetime, NeverExecutedAgainIsZeroLength)
{
    AccessLog log;
    log.setDuration(1000);
    log.append(Event::traceCreate(500, 7, 10, 0));
    LifetimeAnalyzer analyzer(log);
    EXPECT_DOUBLE_EQ(
        analyzer.lifetimes()[0].fraction(analyzer.totalTime()), 0.0);
    EXPECT_DOUBLE_EQ(analyzer.shortLivedFraction(), 1.0);
}

} // namespace
} // namespace gencache::tracelog
