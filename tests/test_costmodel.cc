/**
 * @file
 * Unit tests for the Table 2 cost model: the paper's published values
 * for the 242-byte median trace, and the OverheadAccount listener.
 */

#include <gtest/gtest.h>

#include "codecache/generational_cache.h"
#include "codecache/unified_cache.h"
#include "costmodel/cost_model.h"

namespace gencache::cost {
namespace {

TEST(CostModel, PaperValuesForMedianTrace)
{
    // §6.2: "For a 242-byte trace (the median across all benchmarks),
    // the estimated overhead of trace generation is 69,834
    // instructions, eviction is 3,316 instructions, and promotion is
    // 13,354 instructions."
    CostModel model;
    EXPECT_NEAR(static_cast<double>(
                    model.traceGeneration(CostModel::kMedianTraceBytes)),
                69'834.0, 5.0);
    EXPECT_EQ(model.eviction(CostModel::kMedianTraceBytes), 3'316u);
    EXPECT_EQ(model.promotion(CostModel::kMedianTraceBytes), 13'354u);
}

TEST(CostModel, ContextSwitchIs25Instructions)
{
    CostModel model;
    EXPECT_EQ(model.contextSwitch(), 25u);
}

TEST(CostModel, MissCostApprox85k)
{
    // "For an average trace, this amounts to approximately 85,000
    // instructions."
    CostModel model;
    InstrCount cost = model.missCost(CostModel::kMedianTraceBytes);
    EXPECT_GT(cost, 80'000u);
    EXPECT_LT(cost, 90'000u);
}

TEST(CostModel, CopyEqualsPromotion)
{
    CostModel model;
    EXPECT_EQ(model.copy(100), model.promotion(100));
}

TEST(CostModel, FormulasScaleWithSize)
{
    CostModel model;
    EXPECT_LT(model.traceGeneration(100), model.traceGeneration(1000));
    EXPECT_EQ(model.eviction(100), 2925u);  // 275 + 2650
    EXPECT_EQ(model.promotion(100), 10230u); // 2200 + 8030
}

TEST(OverheadAccount, ChargesUnifiedInsertAndEviction)
{
    CostModel model;
    OverheadAccount account(model);
    cache::UnifiedCacheManager manager(100);
    manager.setListener(&account);

    manager.insert(1, 60, 0, 0);
    const OverheadBreakdown &after_insert = account.breakdown();
    EXPECT_EQ(after_insert.traceGeneration, model.traceGeneration(60));
    EXPECT_EQ(after_insert.contextSwitches, 50u);
    EXPECT_EQ(after_insert.copies, model.copy(60));
    EXPECT_EQ(after_insert.evictions, 0u);
    EXPECT_EQ(after_insert.promotions, 0u);

    manager.insert(2, 60, 0, 1); // evicts trace 1
    EXPECT_EQ(account.breakdown().evictions, model.eviction(60));
}

TEST(OverheadAccount, ChargesPromotionsNotPromotionMoves)
{
    CostModel model;
    OverheadAccount account(model);
    cache::GenerationalConfig config;
    config.nurseryBytes = 100;
    config.probationBytes = 100;
    config.persistentBytes = 100;
    config.promotionThreshold = 1;
    cache::GenerationalCacheManager manager(config);
    manager.setListener(&account);

    manager.insert(1, 60, 0, 0);
    manager.insert(2, 60, 0, 1); // 1 -> probation: cheap transfer
    EXPECT_EQ(account.breakdown().promotions, model.eviction(60));
    // The move out of the nursery must NOT also be charged as an
    // eviction: the code was relocated, not destroyed.
    EXPECT_EQ(account.breakdown().evictions, 0u);
    manager.lookup(1, 2);        // probation hit
    manager.insert(3, 60, 0, 3); // 1 -> persistent: full promotion
    EXPECT_EQ(account.breakdown().promotions,
              2 * model.eviction(60) + model.promotion(60));
}

TEST(OverheadAccount, ChargesRejectionAsEviction)
{
    CostModel model;
    OverheadAccount account(model);
    cache::GenerationalConfig config;
    config.nurseryBytes = 100;
    config.probationBytes = 100;
    config.persistentBytes = 100;
    config.promotionThreshold = 1;
    cache::GenerationalCacheManager manager(config);
    manager.setListener(&account);

    manager.insert(1, 60, 0, 0);
    manager.insert(2, 60, 0, 1); // 1 -> probation
    manager.insert(3, 60, 0, 2); // 2 -> probation, 1 rejected
    EXPECT_EQ(account.breakdown().evictions, model.eviction(60));
}

TEST(OverheadAccount, ResetClears)
{
    OverheadAccount account;
    cache::UnifiedCacheManager manager(1000);
    manager.setListener(&account);
    manager.insert(1, 60, 0, 0);
    EXPECT_GT(account.breakdown().total(), 0u);
    account.reset();
    EXPECT_EQ(account.breakdown().total(), 0u);
}

TEST(OverheadBreakdown, TotalSumsCategories)
{
    OverheadBreakdown breakdown;
    breakdown.traceGeneration = 1;
    breakdown.contextSwitches = 2;
    breakdown.evictions = 3;
    breakdown.promotions = 4;
    breakdown.copies = 5;
    EXPECT_EQ(breakdown.total(), 15u);
}

} // namespace
} // namespace gencache::cost
