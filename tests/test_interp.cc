/**
 * @file
 * Unit tests for the interpreter: arithmetic, memory, control flow,
 * calls, and full synthetic program execution.
 */

#include <gtest/gtest.h>

#include "guest/address_space.h"
#include "guest/program.h"
#include "guest/program_builder.h"
#include "guest/synthetic_program.h"
#include "interp/interpreter.h"

namespace gencache::interp {
namespace {

using guest::AddressSpace;
using guest::BlockLabel;
using guest::GuestProgram;
using guest::ModuleBuilder;

struct Fixture
{
    GuestProgram program;
    AddressSpace space;
};

TEST(CpuState, ResetClearsEverything)
{
    CpuState state;
    state.regs[3] = 7;
    state.storeMem(100, 42);
    state.callStack.push_back(5);
    state.halted = true;
    state.reset(0x400);
    EXPECT_EQ(state.regs[3], 0);
    EXPECT_EQ(state.loadMem(100), 0);
    EXPECT_TRUE(state.callStack.empty());
    EXPECT_EQ(state.pc, 0x400u);
    EXPECT_FALSE(state.halted);
}

TEST(Interpreter, ArithmeticAndHalt)
{
    Fixture fx;
    guest::GuestModule &main = fx.program.addModule("main.exe", 0x400);
    ModuleBuilder mb(main);
    BlockLabel entry = mb.createBlock();
    mb.at(entry)
        .movi(1, 6)
        .movi(2, 7)
        .mul(3, 1, 2)
        .sub(4, 3, 1)
        .addi(5, 4, 10)
        .halt();
    mb.finalize();
    fx.space.map(main);

    Interpreter interp(fx.space);
    CpuState state;
    state.reset(mb.addrOf(entry));
    BlockResult result = interp.executeBlock(state);
    EXPECT_TRUE(result.halted);
    EXPECT_TRUE(state.halted);
    EXPECT_EQ(state.regs[3], 42);
    EXPECT_EQ(state.regs[4], 36);
    EXPECT_EQ(state.regs[5], 46);
    EXPECT_EQ(result.instructions, 6u);
}

TEST(Interpreter, LoadStoreRoundTrip)
{
    Fixture fx;
    guest::GuestModule &main = fx.program.addModule("main.exe", 0x400);
    ModuleBuilder mb(main);
    BlockLabel entry = mb.createBlock();
    mb.at(entry)
        .movi(1, 0x9000)
        .movi(2, 1234)
        .store(1, 8, 2)
        .load(3, 1, 8)
        .load(4, 1, 16) // never written: reads as zero
        .halt();
    mb.finalize();
    fx.space.map(main);

    Interpreter interp(fx.space);
    CpuState state;
    state.reset(mb.addrOf(entry));
    interp.executeBlock(state);
    EXPECT_EQ(state.regs[3], 1234);
    EXPECT_EQ(state.regs[4], 0);
}

TEST(Interpreter, LoopExecutesExactCount)
{
    Fixture fx;
    guest::GuestModule &main = fx.program.addModule("main.exe", 0x400);
    ModuleBuilder mb(main);
    BlockLabel entry = mb.createBlock();
    BlockLabel loop = mb.createBlock();
    BlockLabel done = mb.createBlock();
    mb.at(entry).movi(1, 5).movi(2, 0).jump(loop);
    mb.at(loop)
        .addi(2, 2, 1)
        .addi(1, 1, -1)
        .branchNz(1, loop);
    mb.at(done).halt();
    mb.finalize();
    fx.space.map(main);

    Interpreter interp(fx.space);
    CpuState state;
    state.reset(mb.addrOf(entry));
    interp.run(state, 1000);
    EXPECT_TRUE(state.halted);
    EXPECT_EQ(state.regs[2], 5);
}

TEST(Interpreter, BackwardTransferFlagOnLoopEdge)
{
    Fixture fx;
    guest::GuestModule &main = fx.program.addModule("main.exe", 0x400);
    ModuleBuilder mb(main);
    BlockLabel entry = mb.createBlock();
    BlockLabel loop = mb.createBlock();
    BlockLabel done = mb.createBlock();
    mb.at(entry).movi(1, 2).jump(loop);
    mb.at(loop).addi(1, 1, -1).branchNz(1, loop);
    mb.at(done).halt();
    mb.finalize();
    fx.space.map(main);

    Interpreter interp(fx.space);
    CpuState state;
    state.reset(mb.addrOf(entry));
    BlockResult entry_result = interp.executeBlock(state);
    EXPECT_FALSE(entry_result.backwardTransfer);
    BlockResult loop_result = interp.executeBlock(state);
    EXPECT_TRUE(loop_result.backwardTransfer); // taken back edge
    BlockResult exit_result = interp.executeBlock(state);
    EXPECT_FALSE(exit_result.backwardTransfer); // fall through
}

TEST(Interpreter, CallAndReturn)
{
    Fixture fx;
    guest::GuestModule &main = fx.program.addModule("main.exe", 0x400);
    ModuleBuilder mb(main);
    BlockLabel fn = mb.createBlock();
    BlockLabel entry = mb.createBlock();
    BlockLabel after = mb.createBlock();
    mb.at(fn).movi(7, 99).ret();
    mb.at(entry).call(fn);
    mb.at(after).halt();
    mb.finalize();
    fx.space.map(main);

    Interpreter interp(fx.space);
    CpuState state;
    state.reset(mb.addrOf(entry));
    interp.executeBlock(state); // call
    EXPECT_EQ(state.callStack.size(), 1u);
    interp.executeBlock(state); // function body + ret
    EXPECT_TRUE(state.callStack.empty());
    EXPECT_EQ(state.pc, mb.addrOf(after));
    EXPECT_EQ(state.regs[7], 99);
}

TEST(Interpreter, IndirectJump)
{
    // The indirect target address must be known when the movi is
    // emitted: entry = movi (6 bytes) + jmpr (3 bytes) = 9 bytes, so
    // the second block starts at 0x400 + 9 = 0x409.
    Fixture fx;
    guest::GuestModule &main = fx.program.addModule("main.exe", 0x400);
    ModuleBuilder mb(main);
    BlockLabel entry = mb.createBlock();
    BlockLabel target = mb.createBlock();
    mb.at(entry).movi(1, 0x409).jumpReg(1);
    mb.at(target).movi(2, 5).halt();
    std::vector<isa::GuestAddr> addrs = mb.finalize();
    ASSERT_EQ(addrs[1], 0x409u);
    fx.space.map(main);

    Interpreter interp(fx.space);
    CpuState state;
    state.reset(addrs[0]);
    interp.run(state, 10);
    EXPECT_TRUE(state.halted);
    EXPECT_EQ(state.regs[2], 5);
}

TEST(InterpreterDeath, ReturnWithEmptyStack)
{
    Fixture fx;
    guest::GuestModule &main = fx.program.addModule("main.exe", 0x400);
    ModuleBuilder mb(main);
    BlockLabel entry = mb.createBlock();
    mb.at(entry).ret();
    mb.finalize();
    fx.space.map(main);

    Interpreter interp(fx.space);
    CpuState state;
    state.reset(mb.addrOf(entry));
    EXPECT_DEATH(interp.executeBlock(state), "empty call stack");
}

TEST(InterpreterDeath, UnmappedPc)
{
    guest::GuestProgram program;
    AddressSpace space;
    Interpreter interp(space);
    CpuState state;
    state.reset(0xdead);
    EXPECT_DEATH(interp.executeBlock(state), "no mapped block");
}

TEST(Interpreter, SyntheticProgramRunsToCompletion)
{
    guest::SyntheticProgramConfig config;
    config.seed = 5;
    config.phases = 2;
    config.phaseIterations = 3;
    config.innerIterations = 4;
    guest::SyntheticProgram synthetic =
        generateSyntheticProgram(config);

    AddressSpace space;
    for (const auto &module : synthetic.program.modules()) {
        space.map(*module);
    }
    Interpreter interp(space);
    CpuState state;
    state.reset(synthetic.program.entry());
    std::uint64_t retired = interp.run(state, 1'000'000);
    EXPECT_TRUE(state.halted);
    EXPECT_GT(retired, 100u);
    // Phase register saw the final phase.
    EXPECT_EQ(state.regs[guest::kPhaseRegister],
              static_cast<std::int64_t>(config.phases - 1));
}

TEST(Interpreter, SyntheticProgramDeterministicInstructionCount)
{
    guest::SyntheticProgramConfig config;
    config.seed = 12;
    std::uint64_t counts[2];
    for (int round = 0; round < 2; ++round) {
        guest::SyntheticProgram synthetic =
            generateSyntheticProgram(config);
        AddressSpace space;
        for (const auto &module : synthetic.program.modules()) {
            space.map(*module);
        }
        Interpreter interp(space);
        CpuState state;
        state.reset(synthetic.program.entry());
        counts[round] = interp.run(state, 10'000'000);
        EXPECT_TRUE(state.halted);
    }
    EXPECT_EQ(counts[0], counts[1]);
}

} // namespace
} // namespace gencache::interp
