// The policy tournament: configuration grid shape, determinism across
// thread counts and shard sizes, baseline parity, and the Pareto
// front contract (non-dominated, deterministically ordered).

#include <gtest/gtest.h>

#include <set>

#include "sim/tournament.h"
#include "workload/profile.h"

namespace {

using namespace gencache;

std::vector<workload::BenchmarkProfile>
smokeProfiles()
{
    // Two small profiles, shrunk further so the grid replays fast.
    std::vector<workload::BenchmarkProfile> profiles = {
        workload::findProfile("gzip"),
        workload::findProfile("word"),
    };
    for (workload::BenchmarkProfile &profile : profiles) {
        profile.finalCacheKb *= 0.1;
        profile.durationSec *= 0.1;
        if (profile.finalCacheKb < 16.0) {
            profile.finalCacheKb = 16.0;
        }
        if (profile.durationSec < 0.25) {
            profile.durationSec = 0.25;
        }
    }
    return profiles;
}

void
expectIdenticalResults(const sim::TournamentResult &a,
                       const sim::TournamentResult &b,
                       const std::string &what)
{
    ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_EQ(a.rows[i].config, b.rows[i].config) << what;
        EXPECT_EQ(a.rows[i].meanMissRate, b.rows[i].meanMissRate)
            << what << " row " << a.rows[i].config;
        EXPECT_EQ(a.rows[i].meanMissRateReductionPct,
                  b.rows[i].meanMissRateReductionPct)
            << what << " row " << a.rows[i].config;
        EXPECT_EQ(a.rows[i].meanOverheadRatioPct,
                  b.rows[i].meanOverheadRatioPct)
            << what << " row " << a.rows[i].config;
    }
    ASSERT_EQ(a.pareto, b.pareto) << what;
}

TEST(Tournament, DefaultGridCrossesAtLeastAThousandConfigs)
{
    std::vector<sim::TournamentConfig> configs =
        sim::defaultTournamentConfigs();
    EXPECT_GE(configs.size(), 1000u);

    // Names are unique (they key artifact rows) and every config is
    // buildable at a nominal budget.
    std::set<std::string> names;
    for (const sim::TournamentConfig &config : configs) {
        EXPECT_TRUE(names.insert(config.name).second)
            << "duplicate config name " << config.name;
        EXPECT_GT(config.capacityFactor, 0.0) << config.name;
        ASSERT_FALSE(config.topology.fractions.empty())
            << config.name;
    }
    // The paper's baseline must be an entrant at every pressure point
    // so overhead ratios have an in-grid anchor.
    EXPECT_TRUE(names.count("unified|pseudo-circular|none|c50"))
        << "baseline config missing";
}

TEST(Tournament, ResultsIdenticalAcrossThreadsAndShards)
{
    std::vector<workload::BenchmarkProfile> profiles = smokeProfiles();
    std::vector<sim::TournamentConfig> configs =
        sim::smokeTournamentConfigs();

    sim::TournamentResult serial =
        sim::runTournament(profiles, configs, 1, configs.size());
    sim::TournamentResult threaded =
        sim::runTournament(profiles, configs, 4, 5);
    sim::TournamentResult rerun =
        sim::runTournament(profiles, configs, 2, 1);

    expectIdenticalResults(serial, threaded, "threads=4 shard=5");
    expectIdenticalResults(serial, rerun, "threads=2 shard=1");
    EXPECT_EQ(serial.profileCount, profiles.size());
    EXPECT_EQ(serial.rows.size(), configs.size());
}

TEST(Tournament, UnifiedBaselineSitsAtParity)
{
    std::vector<workload::BenchmarkProfile> profiles = smokeProfiles();
    std::vector<sim::TournamentConfig> configs =
        sim::smokeTournamentConfigs();
    sim::TournamentResult result =
        sim::runTournament(profiles, configs, 2);

    // The unified pseudo-circular entrant IS the baseline the ratios
    // are computed against, so its row must sit at exactly 100% with
    // zero miss-rate reduction, at every pressure point.
    std::size_t found = 0;
    for (const sim::TournamentRow &row : result.rows) {
        if (row.topology == "unified" &&
            row.localPolicy == "pseudo-circular") {
            ++found;
            EXPECT_DOUBLE_EQ(row.meanOverheadRatioPct, 100.0)
                << row.config;
            EXPECT_DOUBLE_EQ(row.meanMissRateReductionPct, 0.0)
                << row.config;
        }
    }
    EXPECT_GE(found, 2u);
}

TEST(Tournament, ParetoFrontIsNonDominatedAndSorted)
{
    std::vector<workload::BenchmarkProfile> profiles = smokeProfiles();
    std::vector<sim::TournamentConfig> configs =
        sim::smokeTournamentConfigs();
    sim::TournamentResult result =
        sim::runTournament(profiles, configs, 2);

    ASSERT_FALSE(result.pareto.empty());
    for (std::size_t index : result.pareto) {
        ASSERT_LT(index, result.rows.size());
        const sim::TournamentRow &a = result.rows[index];
        for (const sim::TournamentRow &b : result.rows) {
            bool dominates =
                b.meanOverheadRatioPct <= a.meanOverheadRatioPct &&
                b.meanMissRate <= a.meanMissRate &&
                (b.meanOverheadRatioPct < a.meanOverheadRatioPct ||
                 b.meanMissRate < a.meanMissRate);
            EXPECT_FALSE(dominates)
                << b.config << " dominates front member " << a.config;
        }
    }
    for (std::size_t i = 1; i < result.pareto.size(); ++i) {
        const sim::TournamentRow &prev =
            result.rows[result.pareto[i - 1]];
        const sim::TournamentRow &next =
            result.rows[result.pareto[i]];
        bool ordered =
            prev.meanOverheadRatioPct < next.meanOverheadRatioPct ||
            (prev.meanOverheadRatioPct == next.meanOverheadRatioPct &&
             (prev.meanMissRate < next.meanMissRate ||
              (prev.meanMissRate == next.meanMissRate &&
               prev.config < next.config)));
        EXPECT_TRUE(ordered)
            << "front unordered at " << prev.config << " -> "
            << next.config;
    }
}

} // namespace
