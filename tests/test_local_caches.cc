/**
 * @file
 * Unit tests for the list-based local caches (FIFO, LRU, preemptive
 * flush, unbounded), the pseudo-circular wrapper, and the factory.
 */

#include <gtest/gtest.h>

#include "codecache/list_cache.h"
#include "codecache/local_cache.h"
#include "codecache/pseudo_circular_cache.h"

namespace gencache::cache {
namespace {

Fragment
frag(TraceId id, std::uint32_t size, ModuleId module = 0)
{
    Fragment fragment;
    fragment.id = id;
    fragment.sizeBytes = size;
    fragment.module = module;
    return fragment;
}

TEST(FifoCache, EvictsOldestFirst)
{
    FifoCache cache(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(cache.insert(frag(1, 40), evicted));
    ASSERT_TRUE(cache.insert(frag(2, 40), evicted));
    ASSERT_TRUE(cache.insert(frag(3, 40), evicted));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].id, 1u);
    EXPECT_EQ(cache.usedBytes(), 80u);
    EXPECT_TRUE(cache.contains(2));
    EXPECT_FALSE(cache.contains(1));
}

TEST(FifoCache, TouchDoesNotChangeOrder)
{
    FifoCache cache(100);
    std::vector<Fragment> evicted;
    cache.insert(frag(1, 40), evicted);
    cache.insert(frag(2, 40), evicted);
    cache.touch(1, 10);
    cache.insert(frag(3, 40), evicted);
    EXPECT_FALSE(cache.contains(1)); // still evicted first
}

TEST(LruCache, TouchProtectsRecentlyUsed)
{
    LruCache cache(100);
    std::vector<Fragment> evicted;
    cache.insert(frag(1, 40), evicted);
    cache.insert(frag(2, 40), evicted);
    cache.touch(1, 10); // 1 becomes most recently used
    cache.insert(frag(3, 40), evicted);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].id, 2u);
    EXPECT_TRUE(cache.contains(1));
}

TEST(LruCache, PinnedFragmentsSkipped)
{
    LruCache cache(100);
    std::vector<Fragment> evicted;
    cache.insert(frag(1, 50), evicted);
    cache.insert(frag(2, 50), evicted);
    cache.setPinned(1, true);
    ASSERT_TRUE(cache.insert(frag(3, 50), evicted));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].id, 2u);
    EXPECT_TRUE(cache.contains(1));
}

TEST(LruCache, FailsWhenAllPinned)
{
    LruCache cache(100);
    std::vector<Fragment> evicted;
    cache.insert(frag(1, 60), evicted);
    cache.setPinned(1, true);
    EXPECT_FALSE(cache.insert(frag(2, 60), evicted));
    EXPECT_EQ(cache.stats().placementFailures, 1u);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
}

TEST(FlushCache, FlushesEverythingWhenFull)
{
    FlushCache cache(100);
    std::vector<Fragment> evicted;
    cache.insert(frag(1, 40), evicted);
    cache.insert(frag(2, 40), evicted);
    EXPECT_TRUE(evicted.empty());
    ASSERT_TRUE(cache.insert(frag(3, 40), evicted));
    EXPECT_EQ(evicted.size(), 2u);
    EXPECT_EQ(cache.fragmentCount(), 1u);
    EXPECT_TRUE(cache.contains(3));
    EXPECT_EQ(cache.stats().flushes, 1u);
}

TEST(FlushCache, KeepsPinnedAcrossFlush)
{
    FlushCache cache(100);
    std::vector<Fragment> evicted;
    cache.insert(frag(1, 40), evicted);
    cache.setPinned(1, true);
    cache.insert(frag(2, 40), evicted);
    ASSERT_TRUE(cache.insert(frag(3, 40), evicted));
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
}

TEST(UnboundedCache, NeverEvictsAndTracksPeak)
{
    UnboundedCache cache;
    std::vector<Fragment> evicted;
    for (TraceId id = 1; id <= 100; ++id) {
        ASSERT_TRUE(cache.insert(frag(id, 100), evicted));
    }
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(cache.peakBytes(), 10'000u);
    Fragment out;
    cache.remove(50, &out);
    EXPECT_EQ(cache.usedBytes(), 9'900u);
    EXPECT_EQ(cache.peakBytes(), 10'000u); // peak survives removal
}

TEST(ListCache, RemoveUpdatesBytes)
{
    FifoCache cache(100);
    std::vector<Fragment> evicted;
    cache.insert(frag(1, 30), evicted);
    Fragment out;
    ASSERT_TRUE(cache.remove(1, &out));
    EXPECT_EQ(out.sizeBytes, 30u);
    EXPECT_EQ(cache.usedBytes(), 0u);
    EXPECT_FALSE(cache.remove(1));
    EXPECT_EQ(cache.stats().removals, 1u);
}

TEST(ListCache, ForEachVisitsAll)
{
    FifoCache cache(1000);
    std::vector<Fragment> evicted;
    for (TraceId id = 1; id <= 5; ++id) {
        cache.insert(frag(id, 10), evicted);
    }
    std::size_t visited = 0;
    cache.forEach([&](const Fragment &) { ++visited; });
    EXPECT_EQ(visited, 5u);
}

TEST(PseudoCircularCache, BehavesLikeRegion)
{
    PseudoCircularCache cache(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(cache.insert(frag(1, 60), evicted));
    ASSERT_TRUE(cache.insert(frag(2, 60), evicted));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].id, 1u);
    EXPECT_EQ(cache.stats().capacityEvictions, 1u);
    EXPECT_EQ(cache.stats().inserts, 2u);
}

TEST(PseudoCircularCache, PlacementFailureCounted)
{
    PseudoCircularCache cache(50);
    std::vector<Fragment> evicted;
    EXPECT_FALSE(cache.insert(frag(1, 60), evicted));
    EXPECT_EQ(cache.stats().placementFailures, 1u);
}

TEST(LocalCacheFactory, CreatesEveryPolicy)
{
    EXPECT_STREQ(
        makeLocalCache(LocalPolicy::PseudoCircular, 100)->policyName(),
        "pseudo-circular");
    EXPECT_STREQ(makeLocalCache(LocalPolicy::Fifo, 100)->policyName(),
                 "fifo");
    EXPECT_STREQ(makeLocalCache(LocalPolicy::Lru, 100)->policyName(),
                 "lru");
    EXPECT_STREQ(
        makeLocalCache(LocalPolicy::PreemptiveFlush, 100)->policyName(),
        "preemptive-flush");
    EXPECT_STREQ(
        makeLocalCache(LocalPolicy::Unbounded, 0)->policyName(),
        "unbounded");
}

TEST(LocalCacheFactory, PolicyNames)
{
    EXPECT_STREQ(localPolicyName(LocalPolicy::PseudoCircular),
                 "pseudo-circular");
    EXPECT_STREQ(localPolicyName(LocalPolicy::Unbounded), "unbounded");
}

TEST(ListCacheDeath, DuplicateInsertPanics)
{
    FifoCache cache(100);
    std::vector<Fragment> evicted;
    cache.insert(frag(1, 10), evicted);
    EXPECT_DEATH(cache.insert(frag(1, 10), evicted),
                 "already resident");
}

} // namespace
} // namespace gencache::cache
