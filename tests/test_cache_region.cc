/**
 * @file
 * Unit tests for the byte-granular CacheRegion and its pseudo-circular
 * placement policy: FIFO order, wrap behaviour, pinned-skip resets,
 * holes from program-forced eviction, and fragmentation accounting.
 */

#include <gtest/gtest.h>

#include "codecache/cache_region.h"

namespace gencache::cache {
namespace {

Fragment
frag(TraceId id, std::uint32_t size, ModuleId module = 0)
{
    Fragment fragment;
    fragment.id = id;
    fragment.sizeBytes = size;
    fragment.module = module;
    return fragment;
}

TEST(CacheRegion, PlacesSequentially)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(region.place(frag(1, 30), evicted));
    ASSERT_TRUE(region.place(frag(2, 30), evicted));
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(region.usedBytes(), 60u);
    EXPECT_EQ(region.find(1)->addr, 0u);
    EXPECT_EQ(region.find(2)->addr, 30u);
    EXPECT_EQ(region.pointer(), 60u);
    region.validate();
}

TEST(CacheRegion, EvictsInFifoOrderOnWrap)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(region.place(frag(1, 40), evicted));
    ASSERT_TRUE(region.place(frag(2, 40), evicted));
    // 20 bytes left at the tail; a 30-byte fragment wraps: the tail
    // is abandoned and the oldest fragment (id 1) is the victim.
    ASSERT_TRUE(region.place(frag(3, 30), evicted));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].id, 1u);
    EXPECT_EQ(region.find(3)->addr, 0u);
    EXPECT_EQ(region.wrapWasteBytes(), 20u);
    region.validate();
}

TEST(CacheRegion, EvictsMultipleVictimsWhenNeeded)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    for (TraceId id = 1; id <= 5; ++id) {
        ASSERT_TRUE(region.place(frag(id, 20), evicted));
    }
    EXPECT_TRUE(evicted.empty());
    // Full; pointer wrapped to 0. A 50-byte fragment evicts 1, 2, 3.
    ASSERT_TRUE(region.place(frag(6, 50), evicted));
    ASSERT_EQ(evicted.size(), 3u);
    EXPECT_EQ(evicted[0].id, 1u);
    EXPECT_EQ(evicted[1].id, 2u);
    EXPECT_EQ(evicted[2].id, 3u);
    EXPECT_EQ(region.pointer(), 50u);
    region.validate();
}

TEST(CacheRegion, RejectsOversizedFragment)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    EXPECT_FALSE(region.place(frag(1, 101), evicted));
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(region.usedBytes(), 0u);
}

TEST(CacheRegion, PinnedFragmentSkipsEviction)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(region.place(frag(1, 30), evicted)); // [0, 30)
    ASSERT_TRUE(region.place(frag(2, 30), evicted)); // [30, 60)
    ASSERT_TRUE(region.place(frag(3, 40), evicted)); // [60, 100)
    ASSERT_TRUE(region.setPinned(1, true));
    // Pointer wrapped to 0; fragment 1 is pinned, so placement resets
    // past it and evicts fragment 2 instead.
    ASSERT_TRUE(region.place(frag(4, 30), evicted));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].id, 2u);
    EXPECT_NE(region.find(1), nullptr);
    EXPECT_EQ(region.find(4)->addr, 30u);
    EXPECT_EQ(region.pinnedSkips(), 1u);
    region.validate();
}

TEST(CacheRegion, FailsWhenPinnedCongestionBlocksAll)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(region.place(frag(1, 50), evicted));
    ASSERT_TRUE(region.place(frag(2, 50), evicted));
    region.setPinned(1, true);
    region.setPinned(2, true);
    std::uint64_t used_before = region.usedBytes();
    EXPECT_FALSE(region.place(frag(3, 60), evicted));
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(region.usedBytes(), used_before);
    EXPECT_NE(region.find(1), nullptr);
    EXPECT_NE(region.find(2), nullptr);
    region.validate();
}

TEST(CacheRegion, PlacementFitsBetweenPinnedFragments)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(region.place(frag(1, 20), evicted)); // [0,20)
    ASSERT_TRUE(region.place(frag(2, 30), evicted)); // [20,50)
    ASSERT_TRUE(region.place(frag(3, 50), evicted)); // [50,100)
    region.setPinned(1, true);
    region.setPinned(3, true);
    // Wraps to 0, skips pinned 1, evicts 2, places at 20.
    ASSERT_TRUE(region.place(frag(4, 25), evicted));
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].id, 2u);
    EXPECT_EQ(region.find(4)->addr, 20u);
    region.validate();
}

TEST(CacheRegion, RemoveLeavesHole)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(region.place(frag(1, 30), evicted));
    ASSERT_TRUE(region.place(frag(2, 30), evicted));
    ASSERT_TRUE(region.place(frag(3, 30), evicted));
    Fragment removed;
    ASSERT_TRUE(region.remove(2, &removed));
    EXPECT_EQ(removed.id, 2u);
    EXPECT_EQ(region.usedBytes(), 60u);
    FragmentationInfo info = region.fragmentation();
    EXPECT_EQ(info.freeBytes, 40u);
    EXPECT_EQ(info.freeExtents, 2u); // the hole + region tail
    EXPECT_EQ(info.largestFreeExtent, 30u);
    EXPECT_GT(info.index(), 0.0);
    region.validate();
}

TEST(CacheRegion, RemoveAbsentReturnsFalse)
{
    CacheRegion region(100);
    EXPECT_FALSE(region.remove(42));
}

TEST(CacheRegion, CircularSweepReclaimsHoles)
{
    CacheRegion region(90);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(region.place(frag(1, 30), evicted));
    ASSERT_TRUE(region.place(frag(2, 30), evicted));
    ASSERT_TRUE(region.place(frag(3, 30), evicted));
    region.remove(1); // hole at [0, 30)
    // Pointer is at 0 (wrapped); next insertion reuses the hole
    // without evicting anyone.
    ASSERT_TRUE(region.place(frag(4, 30), evicted));
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(region.find(4)->addr, 0u);
    region.validate();
}

TEST(CacheRegion, FlushKeepsPinned)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(region.place(frag(1, 20), evicted));
    ASSERT_TRUE(region.place(frag(2, 20), evicted));
    ASSERT_TRUE(region.place(frag(3, 20), evicted));
    region.setPinned(2, true);
    std::vector<Fragment> flushed;
    region.flush(flushed);
    EXPECT_EQ(flushed.size(), 2u);
    EXPECT_EQ(region.fragmentCount(), 1u);
    EXPECT_NE(region.find(2), nullptr);
    EXPECT_EQ(region.pointer(), 0u);
    region.validate();
}

TEST(CacheRegion, SetPinnedOnAbsentFragment)
{
    CacheRegion region(100);
    EXPECT_FALSE(region.setPinned(9, true));
}

TEST(CacheRegionDeath, DuplicateIdPanics)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(region.place(frag(1, 10), evicted));
    EXPECT_DEATH(region.place(frag(1, 10), evicted),
                 "already resident");
}

TEST(CacheRegionDeath, ZeroSizePanics)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    EXPECT_DEATH(region.place(frag(1, 0), evicted), "zero-sized");
}

TEST(CacheRegion, FragmentationIndexZeroWhenContiguous)
{
    CacheRegion region(100);
    std::vector<Fragment> evicted;
    ASSERT_TRUE(region.place(frag(1, 60), evicted));
    FragmentationInfo info = region.fragmentation();
    EXPECT_EQ(info.freeExtents, 1u);
    EXPECT_DOUBLE_EQ(info.index(), 0.0);
}

TEST(CacheRegion, LongChurnKeepsInvariants)
{
    CacheRegion region(1000);
    std::vector<Fragment> evicted;
    for (TraceId id = 1; id <= 500; ++id) {
        std::uint32_t size =
            static_cast<std::uint32_t>(17 + (id * 37) % 120);
        ASSERT_TRUE(region.place(frag(id, size), evicted));
        if (id % 7 == 0) {
            region.remove(id - 3);
        }
        region.validate();
        ASSERT_LE(region.usedBytes(), region.capacity());
    }
    EXPECT_GT(evicted.size(), 0u);
}

} // namespace
} // namespace gencache::cache
