/**
 * @file
 * Unit tests for the dynamic optimizer runtime: bb cache, trace-head
 * counters, NET trace construction, linking, and execution residency.
 */

#include <gtest/gtest.h>

#include "codecache/generational_cache.h"
#include "codecache/unified_cache.h"
#include "guest/program_builder.h"
#include "guest/synthetic_program.h"
#include "runtime/bb_cache.h"
#include "runtime/linker.h"
#include "runtime/runtime.h"
#include "runtime/trace_head.h"

namespace gencache::runtime {
namespace {

TEST(BasicBlockCache, CopiesOnceThenHits)
{
    BasicBlockCache cache;
    isa::BasicBlock block(0x400);
    block.append(isa::makeNop());
    block.append(isa::makeHalt());
    const isa::BasicBlock *first = cache.fetch(0x400, block, 0);
    const isa::BasicBlock *second = cache.fetch(0x400, block, 0);
    EXPECT_EQ(first, second);
    EXPECT_EQ(cache.stats().copies, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.usedBytes(), block.sizeBytes());
}

TEST(BasicBlockCache, InvalidateByModule)
{
    BasicBlockCache cache;
    isa::BasicBlock block(0x400);
    block.append(isa::makeHalt());
    isa::BasicBlock other(0x800);
    other.append(isa::makeHalt());
    cache.fetch(0x400, block, /*module=*/1);
    cache.fetch(0x800, other, /*module=*/2);
    cache.invalidateModule(1);
    EXPECT_EQ(cache.lookup(0x400), nullptr);
    EXPECT_NE(cache.lookup(0x800), nullptr);
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(TraceHeadTable, ThresholdFires)
{
    TraceHeadTable heads(3);
    heads.markHead(0x400, TraceHeadKind::BackwardBranchTarget);
    EXPECT_TRUE(heads.isHead(0x400));
    EXPECT_FALSE(heads.recordExecution(0x400)); // 1
    EXPECT_FALSE(heads.recordExecution(0x400)); // 2
    EXPECT_TRUE(heads.recordExecution(0x400));  // 3: fire
    EXPECT_FALSE(heads.recordExecution(0x400)); // only fires once
}

TEST(TraceHeadTable, NonHeadsNeverFire)
{
    TraceHeadTable heads(1);
    EXPECT_FALSE(heads.recordExecution(0x999));
    EXPECT_EQ(heads.count(0x999), 0u);
}

TEST(TraceHeadTable, RemoveResets)
{
    TraceHeadTable heads(2);
    heads.markHead(0x400, TraceHeadKind::TraceExit);
    heads.recordExecution(0x400);
    heads.remove(0x400);
    EXPECT_FALSE(heads.isHead(0x400));
    // Re-detection after the trace is deleted/evicted: the head is
    // re-marked and must count up from zero to fire again.
    heads.markHead(0x400, TraceHeadKind::TraceExit);
    EXPECT_EQ(heads.count(0x400), 0u);
    EXPECT_FALSE(heads.recordExecution(0x400)); // 1
    EXPECT_TRUE(heads.recordExecution(0x400));  // 2: fires again
}

TEST(TraceHeadTable, ThresholdMinusOneDoesNotFire)
{
    TraceHeadTable heads(4);
    heads.markHead(0x400, TraceHeadKind::BackwardBranchTarget);
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(heads.recordExecution(0x400));
    }
    EXPECT_EQ(heads.count(0x400), 3u); // threshold - 1: still counting
    EXPECT_TRUE(heads.recordExecution(0x400));
}

TEST(TraceHeadTable, RemoveNonHeadIsNoOp)
{
    TraceHeadTable heads(2);
    heads.markHead(0x400, TraceHeadKind::TraceExit);
    heads.remove(0x999); // never marked: must not disturb anything
    EXPECT_EQ(heads.headCount(), 1u);
    EXPECT_TRUE(heads.isHead(0x400));
    heads.remove(0x999); // idempotent
    EXPECT_EQ(heads.headCount(), 1u);
}

TEST(TraceHeadTable, RemoveRangeDropsOnlyRange)
{
    TraceHeadTable heads(2);
    heads.markHead(0x400, TraceHeadKind::BackwardBranchTarget);
    heads.markHead(0x500, TraceHeadKind::TraceExit);
    heads.markHead(0x600, TraceHeadKind::TraceExit);
    heads.removeRange(0x480, 0x600); // [base, end): keeps 0x400, 0x600
    EXPECT_TRUE(heads.isHead(0x400));
    EXPECT_FALSE(heads.isHead(0x500));
    EXPECT_TRUE(heads.isHead(0x600));
    EXPECT_EQ(heads.headCount(), 2u);
}

TEST(DenseTraceHeadTable, MirrorsHashTableContract)
{
    DenseTraceHeadTable heads(3);
    heads.ensureCapacity(8);
    heads.markHead(2, TraceHeadKind::BackwardBranchTarget);
    EXPECT_TRUE(heads.isHead(2));
    EXPECT_FALSE(heads.isHead(3));
    EXPECT_FALSE(heads.recordExecution(2)); // 1
    EXPECT_FALSE(heads.recordExecution(2)); // 2: threshold - 1
    EXPECT_EQ(heads.count(2), 2u);
    EXPECT_TRUE(heads.recordExecution(2));  // 3: fire
    EXPECT_FALSE(heads.recordExecution(2)); // only fires once
    EXPECT_FALSE(heads.recordExecution(5)); // non-head never fires
    EXPECT_EQ(heads.headCount(), 1u);
}

TEST(DenseTraceHeadTable, RemoveAndRangeSemantics)
{
    DenseTraceHeadTable heads(2);
    heads.ensureCapacity(8);
    heads.markHead(1, TraceHeadKind::TraceExit);
    heads.recordExecution(1);
    heads.remove(1);
    EXPECT_FALSE(heads.isHead(1));
    heads.markHead(1, TraceHeadKind::TraceExit);
    EXPECT_EQ(heads.count(1), 0u); // re-marking restarts from zero
    heads.remove(6);               // non-head: no-op
    EXPECT_EQ(heads.headCount(), 1u);
    heads.markHead(4, TraceHeadKind::BackwardBranchTarget);
    heads.removeRange(0, 4); // drops 1, keeps 4
    EXPECT_FALSE(heads.isHead(1));
    EXPECT_TRUE(heads.isHead(4));
    EXPECT_EQ(heads.headCount(), 1u);
}

TEST(TraceBuilder, RecordsPathAndExits)
{
    TraceBuilder builder;
    builder.begin(1, 0x400, 0);
    ASSERT_TRUE(builder.active());

    isa::BasicBlock a(0x400);
    a.append(isa::makeBranchNz(1, 0x500)); // taken path goes to 0x500
    builder.append(a, 0x500);

    isa::BasicBlock b(0x500);
    b.append(isa::makeJump(0x400));
    builder.append(b, 0x400);

    Trace trace = builder.finish();
    EXPECT_EQ(trace.blockCount(), 2u);
    // Side exit: the not-taken fall-through of block a (0x406), plus
    // the final continuation (0x400).
    ASSERT_EQ(trace.exitTargets.size(), 2u);
    EXPECT_EQ(trace.exitTargets[0], 0x406u);
    EXPECT_EQ(trace.exitTargets[1], 0x400u);
    // Size: code bytes + one stub per conditional + final stub.
    EXPECT_EQ(trace.sizeBytes,
              a.sizeBytes() + b.sizeBytes() + 2 * kExitStubBytes);
}

TEST(TraceBuilder, IndirectFinalExitNotRecorded)
{
    TraceBuilder builder;
    builder.begin(2, 0x400, 0);
    isa::BasicBlock a(0x400);
    a.append(isa::makeReturn());
    builder.append(a, 0x999);
    Trace trace = builder.finish();
    EXPECT_TRUE(trace.exitTargets.empty());
}

TEST(TraceLinker, LinksBothDirections)
{
    TraceLinker linker;
    Trace first;
    first.id = 1;
    first.slot = 1;
    first.entry = 0x400;
    first.exitTargets = {0x500};
    Trace second;
    second.id = 2;
    second.slot = 2;
    second.entry = 0x500;
    second.exitTargets = {0x400};

    linker.onTraceInserted(first);
    EXPECT_EQ(linker.linkCount(), 0u); // 0x500 not resident yet
    linker.onTraceInserted(second);
    EXPECT_TRUE(linker.linked(1, 2));
    EXPECT_TRUE(linker.linked(2, 1));
    EXPECT_EQ(linker.linkCount(), 2u);
    EXPECT_EQ(linker.traceAt(0x400), 1u);

    linker.onTraceEvicted(1);
    EXPECT_FALSE(linker.linked(2, 1));
    EXPECT_EQ(linker.traceAt(0x400), cache::kInvalidTrace);
    EXPECT_EQ(linker.stats().linksUnpatched, 2u);
}

TEST(TraceLinker, SelfLinkForLoopTraces)
{
    // A loop trace whose exit returns to its own entry must be
    // self-linked, so iteration does not round-trip the dispatcher.
    TraceLinker linker;
    Trace loop;
    loop.id = 9;
    loop.slot = 9;
    loop.entry = 0x400;
    loop.exitTargets = {0x400};
    linker.onTraceInserted(loop);
    EXPECT_TRUE(linker.linked(9, 9));
    EXPECT_EQ(linker.linkCount(), 1u);
    linker.onTraceEvicted(9);
    EXPECT_EQ(linker.linkCount(), 0u);
}

TEST(TraceLinker, MoveCountsRelocation)
{
    TraceLinker linker;
    Trace first;
    first.id = 1;
    first.slot = 1;
    first.entry = 0x400;
    first.exitTargets = {0x500};
    Trace second;
    second.id = 2;
    second.slot = 2;
    second.entry = 0x500;
    linker.onTraceInserted(first);
    linker.onTraceInserted(second);
    std::uint64_t patched_before = linker.stats().linksPatched;
    linker.onTraceMoved(2);
    EXPECT_EQ(linker.stats().relocations, 1u);
    EXPECT_GT(linker.stats().linksPatched, patched_before);
}

class RuntimeFixture : public ::testing::Test
{
  protected:
    void
    buildAndRun(cache::CacheManager &manager,
                std::uint32_t threshold = 10)
    {
        guest::SyntheticProgramConfig config;
        config.seed = 21;
        config.phases = 2;
        config.phaseIterations = 30;
        config.innerIterations = 20;
        config.dllCount = 2;
        synthetic_ = guest::generateSyntheticProgram(config);
        for (const auto &module : synthetic_.program.modules()) {
            space_.map(*module);
        }
        runtime_ =
            std::make_unique<Runtime>(space_, manager, threshold);
        runtime_->start(synthetic_.program.entry());
        runtime_->run();
        ASSERT_TRUE(runtime_->finished());
    }

    guest::SyntheticProgram synthetic_;
    guest::AddressSpace space_;
    std::unique_ptr<Runtime> runtime_;
};

TEST_F(RuntimeFixture, BuildsTracesAndExecutesFromCache)
{
    cache::UnifiedCacheManager manager(256 * kKiB);
    buildAndRun(manager);
    const RuntimeStats &stats = runtime_->stats();
    EXPECT_GT(stats.tracesBuilt, 0u);
    EXPECT_GT(stats.traceExecutions, 0u);
    EXPECT_GT(stats.instructionsInTraces, 0u);
    // "The vast majority of the program's execution should occur in
    // the code cache": with a roomy cache and hot loops, most retired
    // instructions come from traces.
    EXPECT_GT(stats.cacheResidency(), 0.5);
}

TEST_F(RuntimeFixture, LogIsReplayableAndValid)
{
    cache::UnifiedCacheManager manager(256 * kKiB);
    buildAndRun(manager);
    runtime_->log().validate();
    EXPECT_GT(runtime_->log().createdTraceCount(), 0u);
    EXPECT_EQ(runtime_->log().createdTraceCount(),
              runtime_->stats().tracesBuilt);
}

TEST_F(RuntimeFixture, WorksWithGenerationalManager)
{
    cache::GenerationalConfig config =
        cache::GenerationalConfig::fromProportions(64 * kKiB, 0.45,
                                                   0.10, 1);
    cache::GenerationalCacheManager manager(config);
    buildAndRun(manager);
    EXPECT_GT(runtime_->stats().traceExecutions, 0u);
    manager.validate();
}

TEST_F(RuntimeFixture, TinyCacheForcesRegenerations)
{
    // A cache far smaller than the trace volume must thrash.
    cache::UnifiedCacheManager manager(2 * kKiB);
    buildAndRun(manager);
    EXPECT_GT(manager.stats().misses, 0u);
    EXPECT_GT(runtime_->stats().traceRegenerations, 0u);
}

TEST_F(RuntimeFixture, ModuleUnloadEvictsTraces)
{
    cache::UnifiedCacheManager manager(256 * kKiB);
    guest::SyntheticProgramConfig config;
    config.seed = 33;
    config.phases = 2;
    config.phaseIterations = 30;
    config.innerIterations = 20;
    config.dllCount = 1;
    synthetic_ = guest::generateSyntheticProgram(config);
    for (const auto &module : synthetic_.program.modules()) {
        space_.map(*module);
    }
    Runtime runtime(space_, manager, 10);
    runtime.start(synthetic_.program.entry());
    runtime.run();
    ASSERT_TRUE(runtime.finished());
    ASSERT_FALSE(synthetic_.dllLastPhase.empty());

    guest::ModuleId dll = synthetic_.dllLastPhase[0].first;
    std::uint64_t before = manager.stats().unmapDeletions;
    runtime.unloadModule(dll);
    EXPECT_GT(manager.stats().unmapDeletions, before);
    // All events (including the unload) still form a valid log.
    runtime.log().validate();
}

TEST_F(RuntimeFixture, HeadRedetectionAfterTraceDeleted)
{
    // After a module unload deletes its traces (and drops its head
    // counters), remapping the module and re-running must re-detect
    // the heads from scratch and build fresh traces for them.
    cache::UnifiedCacheManager manager(256 * kKiB);
    guest::SyntheticProgramConfig config;
    config.seed = 33;
    config.phases = 2;
    config.phaseIterations = 30;
    config.innerIterations = 20;
    config.dllCount = 1;
    synthetic_ = guest::generateSyntheticProgram(config);
    for (const auto &module : synthetic_.program.modules()) {
        space_.map(*module);
    }
    Runtime runtime(space_, manager, 10);
    runtime.start(synthetic_.program.entry());
    runtime.run();
    ASSERT_TRUE(runtime.finished());
    ASSERT_FALSE(synthetic_.dllLastPhase.empty());

    guest::ModuleId dll = synthetic_.dllLastPhase[0].first;
    std::uint64_t built_before = runtime.stats().tracesBuilt;
    runtime.unloadModule(dll);
    for (const auto &module : synthetic_.program.modules()) {
        if (module->id() == dll) {
            runtime.loadModule(*module);
        }
    }
    runtime.start(synthetic_.program.entry());
    runtime.run();
    ASSERT_TRUE(runtime.finished());
    // The dll's traces were deleted with the unload, so the second
    // run must have re-counted its heads up to the threshold and
    // rebuilt at least one trace for the remapped code.
    EXPECT_GT(runtime.stats().tracesBuilt, built_before);
    runtime.log().validate();
}

TEST_F(RuntimeFixture, LoopsTailChainWithoutDispatch)
{
    // With self-linked loop traces, trace executions should vastly
    // outnumber dispatcher round trips (context switches).
    cache::UnifiedCacheManager manager(256 * kKiB);
    buildAndRun(manager);
    const RuntimeStats &stats = runtime_->stats();
    ASSERT_GT(stats.traceExecutions, 100u);
    EXPECT_LT(stats.contextSwitches, stats.traceExecutions / 2);
}

TEST_F(RuntimeFixture, DeterministicAcrossRuns)
{
    std::uint64_t first_instructions = 0;
    std::uint64_t first_traces = 0;
    for (int round = 0; round < 2; ++round) {
        guest::AddressSpace space;
        guest::SyntheticProgramConfig config;
        config.seed = 77;
        guest::SyntheticProgram synthetic =
            guest::generateSyntheticProgram(config);
        for (const auto &module : synthetic.program.modules()) {
            space.map(*module);
        }
        cache::UnifiedCacheManager manager(64 * kKiB);
        Runtime runtime(space, manager, 10);
        runtime.start(synthetic.program.entry());
        runtime.run();
        if (round == 0) {
            first_instructions = runtime.stats().totalInstructions();
            first_traces = runtime.stats().tracesBuilt;
        } else {
            EXPECT_EQ(runtime.stats().totalInstructions(),
                      first_instructions);
            EXPECT_EQ(runtime.stats().tracesBuilt, first_traces);
        }
    }
}

} // namespace
} // namespace gencache::runtime
