/**
 * @file
 * Reproduces Figure 6: trace lifetimes (Equation 2) as a percentage
 * of total execution time, bucketed into five 20% bins.
 *
 * Paper reference point: a U-shaped distribution — the majority of
 * traces are either short-lived (<20% of execution) or long-lived
 * (>80%), with few in the middle. Lifetimes here are measured from
 * the generated logs, not read from profile parameters.
 */

#include <cstdio>

#include "bench_util.h"
#include "stats/table.h"
#include "support/format.h"
#include "tracelog/lifetime.h"
#include "workload/generator.h"

namespace {

using namespace gencache;

void
reportSuite(const char *title,
            const std::vector<workload::BenchmarkProfile> &profiles)
{
    bench::banner(title);
    std::vector<std::string> labels = lifetimeBucketLabels();
    std::vector<std::string> headers = {"benchmark"};
    headers.insert(headers.end(), labels.begin(), labels.end());
    TextTable table(headers);

    std::vector<double> sums(labels.size(), 0.0);
    for (const workload::BenchmarkProfile &profile : profiles) {
        tracelog::AccessLog log = workload::generateWorkload(profile);
        tracelog::LifetimeAnalyzer analyzer(log);
        Histogram histogram = analyzer.lifetimeHistogram();
        std::vector<std::string> row = {profile.name};
        for (std::size_t bin = 0; bin < labels.size(); ++bin) {
            double frac = histogram.binFraction(bin);
            sums[bin] += frac;
            row.push_back(percent(frac, 0));
        }
        table.addRow(row);
    }
    table.addSeparator();
    std::vector<std::string> average = {"average"};
    double extremes = 0.0;
    for (std::size_t bin = 0; bin < labels.size(); ++bin) {
        double mean = sums[bin] / static_cast<double>(profiles.size());
        if (bin == 0 || bin == labels.size() - 1) {
            extremes += mean;
        }
        average.push_back(percent(mean, 0));
    }
    table.addRow(average);
    std::printf("%s", table.toString().c_str());
    std::printf("extreme buckets (<20%% plus >80%%) hold %s of "
                "traces\n", percent(extremes, 0).c_str());
}

} // namespace

int
main()
{
    using namespace gencache;

    reportSuite("Figure 6a: SPEC2000 trace lifetimes",
                bench::scaledSpecProfiles());
    reportSuite("Figure 6b: Interactive trace lifetimes",
                bench::scaledInteractiveProfiles());
    std::printf("\n(paper: U-shaped — most traces live either <20%% "
                "or >80%% of execution)\n");
    return 0;
}
