/**
 * @file
 * Reproduces Figure 1: maximum code cache size reached with an
 * unbounded cache, for SPEC2000 (a) and the interactive Windows
 * benchmarks (b).
 *
 * Paper reference points: SPEC average ~736 KB (gcc 4.3 MB, vortex
 * 1.6 MB); interactive average ~16.1 MB (word 34.2 MB) — roughly a
 * twenty-fold gap between the suites.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/experiment.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "support/format.h"

namespace {

using namespace gencache;

double
reportSuite(const char *title,
            const std::vector<workload::BenchmarkProfile> &profiles)
{
    bench::banner(title);
    TextTable table({"benchmark", "max cache", "KB"});
    SummaryStats stats;
    for (const workload::BenchmarkProfile &profile : profiles) {
        sim::ExperimentRunner runner(profile);
        sim::SimResult result = runner.runUnbounded();
        double kb = static_cast<double>(result.peakBytes) / 1024.0;
        stats.add(kb);
        table.addRow({profile.name, humanBytes(result.peakBytes),
                      fixed(kb, 0)});
    }
    table.addSeparator();
    table.addRow({"average", humanBytes(static_cast<std::uint64_t>(
                                 stats.mean() * 1024.0)),
                  fixed(stats.mean(), 0)});
    std::printf("%s", table.toString().c_str());
    return stats.mean();
}

} // namespace

int
main()
{
    using namespace gencache;

    double spec_avg = reportSuite(
        "Figure 1a: SPEC2000 maximum code cache size",
        bench::scaledSpecProfiles());
    double interactive_avg = reportSuite(
        "Figure 1b: Interactive maximum code cache size",
        bench::scaledInteractiveProfiles());

    std::printf("\nsuite averages: SPEC %.0f KB vs interactive "
                "%.0f KB (%.1fx gap; paper: 736 KB vs 16.1 MB, "
                "~20x)\n",
                spec_avg, interactive_avg,
                interactive_avg / spec_avg);
    return 0;
}
