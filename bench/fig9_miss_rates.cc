/**
 * @file
 * Reproduces Figure 9: code cache miss rate reduction of generational
 * cache layouts over a unified cache of the same total size (set to
 * half of each benchmark's maxCache).
 *
 * Paper reference points: the 45-10-45 layout with single-hit
 * promotion performs best overall (~18% average miss rate
 * reduction); `art` is an outlier; eon, vpr, and applu prefer the
 * larger probation cache of the 33-33-33 layout.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/experiment.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "support/format.h"

namespace {

using namespace gencache;

void
reportSuite(const char *title,
            const std::vector<workload::BenchmarkProfile> &profiles,
            const std::vector<sim::GenerationalLayout> &layouts,
            std::vector<SummaryStats> &all_stats)
{
    bench::banner(title);
    std::vector<std::string> headers = {"benchmark", "unified miss"};
    for (const sim::GenerationalLayout &layout : layouts) {
        headers.push_back(layout.label);
    }
    TextTable table(headers);

    std::vector<SummaryStats> suite_stats(layouts.size());
    for (const workload::BenchmarkProfile &profile : profiles) {
        sim::ExperimentRunner runner(profile);
        sim::BenchmarkComparison comparison = runner.compare(layouts);
        std::vector<std::string> row = {
            profile.name, percent(comparison.unified.missRate(), 2)};
        for (std::size_t i = 0; i < layouts.size(); ++i) {
            double reduction = comparison.missRateReductionPct(i);
            suite_stats[i].add(reduction);
            all_stats[i].add(reduction);
            row.push_back(fixed(reduction, 1) + "%");
        }
        table.addRow(row);
    }
    table.addSeparator();
    std::vector<std::string> average = {"average", ""};
    for (SummaryStats &stats : suite_stats) {
        average.push_back(fixed(stats.mean(), 1) + "%");
    }
    table.addRow(average);
    std::printf("%s", table.toString().c_str());
    std::printf("(columns show miss rate reduction vs the unified "
                "baseline; higher is better)\n");
}

} // namespace

int
main()
{
    using namespace gencache;

    std::vector<sim::GenerationalLayout> layouts =
        sim::paperLayouts();
    std::vector<SummaryStats> all_stats(layouts.size());

    reportSuite("Figure 9a: SPEC2000 miss rate reduction",
                bench::scaledSpecProfiles(), layouts, all_stats);
    reportSuite("Figure 9b: Interactive miss rate reduction",
                bench::scaledInteractiveProfiles(), layouts,
                all_stats);

    std::printf("\noverall unweighted averages:\n");
    for (std::size_t i = 0; i < layouts.size(); ++i) {
        std::printf("  %-18s %6.1f%%\n", layouts[i].label.c_str(),
                    all_stats[i].mean());
    }
    std::printf("(paper: 45-10-45 thr 1 best overall with ~18%% "
                "average reduction)\n");
    return 0;
}
