/**
 * @file
 * The thousand-configuration policy tournament (sim::runTournament).
 *
 * Crosses tier shapes x local policies x promotion policies x cache
 * pressures into one grid and replays every configuration against
 * every benchmark profile (SPEC2000 + interactive, 38 in all) with
 * the blocked batched-replay kernel, sharded across the thread pool.
 * Each profile's log is generated, compiled, and cost-priced exactly
 * once, shared read-only by every shard.
 *
 * Emits BENCH_tournament.json: per-configuration mean miss rate and
 * Table 2 overhead ratio versus the unified pseudo-circular baseline
 * at the same pressure, plus the deterministically ordered Pareto
 * front of the (overhead, miss rate) plane. Run with --smoke for the
 * CI subset (2 profiles x ~28 configurations, written to
 * BENCH_tournament_smoke.json).
 */

#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "sim/tournament.h"
#include "support/format.h"
#include "support/thread_pool.h"

namespace {

using namespace gencache;

bench::JsonObject
rowJson(const sim::TournamentRow &row)
{
    bench::JsonObject entry;
    entry.put("config", row.config)
        .put("topology", row.topology)
        .put("tiers", static_cast<std::uint64_t>(row.tierCount))
        .put("local_policy", row.localPolicy)
        .put("promotion", row.promotion)
        .put("capacity_factor", row.capacityFactor)
        .put("mean_miss_rate", row.meanMissRate)
        .put("mean_miss_reduction_pct", row.meanMissRateReductionPct)
        .put("mean_overhead_ratio_pct", row.meanOverheadRatioPct);
    return entry;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    std::vector<workload::BenchmarkProfile> profiles;
    for (const auto &profile : bench::scaledSpecProfiles()) {
        profiles.push_back(profile);
    }
    for (const auto &profile : bench::scaledInteractiveProfiles()) {
        profiles.push_back(profile);
    }
    if (smoke && profiles.size() > 2) {
        profiles.resize(2);
    }

    std::vector<sim::TournamentConfig> configs =
        smoke ? sim::smokeTournamentConfigs()
              : sim::defaultTournamentConfigs();

    std::size_t threads = ThreadPool::defaultThreadCount();
    bench::banner(format(
        "Policy tournament: {} configurations x {} profiles "
        "({} threads)",
        configs.size(), profiles.size(), threads));

    bench::WallTimer timer;
    sim::TournamentResult result =
        sim::runTournament(profiles, configs);
    double wall_sec = timer.seconds();

    std::printf("replayed %zu configuration-profile pairs in %.2fs\n"
                "Pareto front (%zu configurations):\n",
                configs.size() * profiles.size(), wall_sec,
                result.pareto.size());
    std::size_t shown = 0;
    for (std::size_t index : result.pareto) {
        const sim::TournamentRow &row = result.rows[index];
        std::printf("  %-40s overhead %6.1f%%  miss %7.4f%%  "
                    "reduction %+6.2f%%\n",
                    row.config.c_str(), row.meanOverheadRatioPct,
                    row.meanMissRate * 100.0,
                    row.meanMissRateReductionPct);
        if (++shown == 15 && result.pareto.size() > 15) {
            std::printf("  ... %zu more\n",
                        result.pareto.size() - 15);
            break;
        }
    }

    bench::JsonArray rows;
    for (const sim::TournamentRow &row : result.rows) {
        rows.push(rowJson(row));
    }
    bench::JsonArray pareto;
    for (std::size_t index : result.pareto) {
        pareto.pushRaw(
            bench::JsonObject::quote(result.rows[index].config));
    }

    bench::JsonObject artifact;
    artifact.put("bench", "policy_tournament")
        .put("smoke", smoke)
        .put("config_count",
             static_cast<std::uint64_t>(configs.size()))
        .put("profile_count",
             static_cast<std::uint64_t>(profiles.size()))
        .put("wall_sec", wall_sec)
        .putRaw("rows", rows.toString())
        .putRaw("pareto", pareto.toString());
    bench::writeJsonArtifact(smoke ? "BENCH_tournament_smoke.json"
                                   : "BENCH_tournament.json",
                             artifact);
    return 0;
}
