/**
 * @file
 * Reproduces Table 2: the instruction overheads of trace generation,
 * DynamoRIO context switches, evictions, and promotions.
 *
 * The paper measured these with Pentium-4 counters and fit formulas;
 * we print the formulas and their values at the 242-byte median
 * trace, and additionally microbenchmark (google-benchmark) the cost
 * of the *simulated* operations in this library so the model's
 * relative ordering (generation >> promotion > eviction >> switch)
 * can be compared against real data-structure work.
 */

#include <cstdio>

#include <benchmark/benchmark.h>

#include "codecache/generational_cache.h"
#include "codecache/unified_cache.h"
#include "costmodel/cost_model.h"
#include "stats/table.h"
#include "support/format.h"

namespace {

using namespace gencache;

void
printTable2()
{
    cost::CostModel model;
    std::printf("\n=== Table 2: overheads used in the evaluation "
                "===\n\n");
    TextTable table({"Description", "Formula (instructions)",
                     "@242 bytes"});
    table.setAlign(1, Align::Left);
    table.addRow({"Trace Generation", "865 * bytes^0.8",
                  withCommas(static_cast<std::int64_t>(
                      model.traceGeneration(242)))});
    table.addRow({"DR Context Switch", "25",
                  withCommas(static_cast<std::int64_t>(
                      model.contextSwitch()))});
    table.addRow({"Evictions", "2.75 * bytes + 2650",
                  withCommas(static_cast<std::int64_t>(
                      model.eviction(242)))});
    table.addRow({"Promotions", "22 * bytes + 8030",
                  withCommas(static_cast<std::int64_t>(
                      model.promotion(242)))});
    table.addSeparator();
    table.addRow({"Conflict miss (2 sw + gen + copy)", "",
                  withCommas(static_cast<std::int64_t>(
                      model.missCost(242)))});
    std::printf("%s", table.toString().c_str());
    std::printf("(paper: 69,834 generation / 3,316 eviction / "
                "13,354 promotion; ~85,000 per miss)\n\n");
}

// ----- microbenchmarks of the simulated operations -----

void
BM_UnifiedInsertEvict(benchmark::State &state)
{
    cache::UnifiedCacheManager manager(64 * 1024);
    cache::TraceId next = 1;
    auto size = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        manager.insert(next, size, 0, next);
        ++next;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UnifiedInsertEvict)->Arg(64)->Arg(242)->Arg(1024);

void
BM_UnifiedLookupHit(benchmark::State &state)
{
    cache::UnifiedCacheManager manager(1024 * 1024);
    for (cache::TraceId id = 1; id <= 1000; ++id) {
        manager.insert(id, 242, 0, id);
    }
    cache::TraceId id = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(manager.lookup(id, id));
        id = id % 1000 + 1;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UnifiedLookupHit);

void
BM_GenerationalInsertCascade(benchmark::State &state)
{
    cache::GenerationalConfig config =
        cache::GenerationalConfig::fromProportions(64 * 1024, 0.45,
                                                   0.10, 1);
    cache::GenerationalCacheManager manager(config);
    cache::TraceId next = 1;
    for (auto _ : state) {
        manager.insert(next, 242, 0, next);
        manager.lookup(next, next); // keep some traces warm
        ++next;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GenerationalInsertCascade);

void
BM_ModuleInvalidate(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        cache::UnifiedCacheManager manager(0);
        for (cache::TraceId id = 1; id <= 512; ++id) {
            manager.insert(id, 242,
                           static_cast<cache::ModuleId>(id % 4), id);
        }
        state.ResumeTiming();
        manager.invalidateModule(1, 1000);
    }
}
BENCHMARK(BM_ModuleInvalidate);

} // namespace

int
main(int argc, char **argv)
{
    printTable2();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
