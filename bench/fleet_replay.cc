/**
 * @file
 * Fleet replay bench: what the cross-process shared tier buys.
 *
 * Runs shared-DLL fleets (workload::generateFleetWorkload) through
 * sim::FleetSimulator three ways per configuration:
 *
 *  1. isolated — sharing off: N private pipelines, the paper's
 *     one-process world multiplied by N. This is the baseline both
 *     for memory (every process keeps its own copy of the shared
 *     libraries' traces) and for misses (every process regenerates
 *     its own shared-tier victims);
 *  2. shared, round-robin — the deterministic single-thread driver
 *     the equivalence tests use; all dedup/miss numbers come from
 *     this run so they are exactly reproducible;
 *  3. shared, threaded — one thread per process racing on the shard
 *     locks, timed against the round-robin run and reporting the
 *     store's lock-contention count.
 *
 * Headline metrics, per fleet:
 *  - dedup_saved_bytes: peak claimed-by-processes bytes minus peak
 *    resident bytes — the memory N-1 processes did NOT spend because
 *    the store already held the trace;
 *  - dedup_attaches_per_process: first-time attaches to entries some
 *    OTHER process published, per process;
 *  - regenerations avoided vs the isolated fleet.
 *
 * Writes BENCH_shared.json (BENCH_shared_smoke.json with --smoke) and
 * exits non-zero when a full run fails the acceptance gates
 * (dedup_saved_bytes > 0 and dedup_attaches_per_process > 1 on the
 * storm-free 8-process fleet).
 */

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/fleet.h"
#include "support/units.h"
#include "tracelog/compiled_log.h"
#include "workload/generator.h"

namespace {

using namespace gencache;

struct FleetBenchCase
{
    std::string name;
    workload::FleetWorkloadConfig workload;
};

std::vector<FleetBenchCase>
benchCases(bool smoke)
{
    // office8: eight interactive processes over four shared DLLs,
    // no churn — the pure dedup story. storm8: same fleet with three
    // fleet-wide unmap storms — the invalidation story.
    workload::FleetWorkloadConfig office;
    office.processes = 8;
    office.sharedDlls = 4;
    office.sharedLibKb = 192.0;
    office.privateKb = 96.0;
    office.durationSec = 20.0;
    office.seed = 2003;
    office.namePrefix = "office";

    workload::FleetWorkloadConfig storm = office;
    storm.unmapStorms = 3;
    storm.namePrefix = "storm";
    storm.seed = 2004;

    if (smoke) {
        for (workload::FleetWorkloadConfig *config :
             {&office, &storm}) {
            config->sharedLibKb = 48.0;
            config->privateKb = 24.0;
            config->durationSec = 5.0;
        }
    } else {
        const double factor = bench::scaleFactor();
        for (workload::FleetWorkloadConfig *config :
             {&office, &storm}) {
            config->sharedLibKb *= factor;
            config->privateKb *= factor;
            config->durationSec *= factor;
        }
    }
    return {{"office8", office}, {"storm8", storm}};
}

sim::FleetOptions
fleetOptions(const workload::FleetWorkloadConfig &workload,
             bool sharing)
{
    sim::FleetOptions options;
    options.sharing = sharing;
    // Private budget at half of one process's footprint (the paper's
    // pressure point), the store sized for the shared libraries.
    options.budgetBytes = static_cast<std::uint64_t>(
        (workload.sharedLibKb + workload.privateKb) *
        static_cast<double>(kKiB) / 2.0);
    options.store.shards = 8;
    options.store.capacityBytes = static_cast<std::uint64_t>(
        workload.sharedDlls * workload.sharedLibKb * 2.0 *
        static_cast<double>(kKiB));
    return options;
}

std::uint64_t
totalEvents(const std::vector<tracelog::CompiledLog> &logs)
{
    std::uint64_t events = 0;
    for (const tracelog::CompiledLog &log : logs) {
        events += log.size();
    }
    return events;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    bench::banner("fleet replay: cross-process shared code store");

    bench::JsonArray fleets;
    bool passed = true;
    for (const FleetBenchCase &bench_case : benchCases(smoke)) {
        std::vector<tracelog::AccessLog> logs =
            workload::generateFleetWorkload(bench_case.workload);
        std::vector<tracelog::CompiledLog> compiled;
        compiled.reserve(logs.size());
        for (const tracelog::AccessLog &log : logs) {
            compiled.push_back(tracelog::CompiledLog::compile(log));
        }
        const auto processes =
            static_cast<std::uint64_t>(compiled.size());

        // 1. Isolated baseline: sharing off.
        bench::WallTimer isolated_timer;
        sim::FleetSimulator isolated(
            compiled,
            fleetOptions(bench_case.workload, /*sharing=*/false));
        sim::FleetResult isolated_result = isolated.run();
        const double isolated_sec = isolated_timer.seconds();

        // 2. Shared store, deterministic round-robin.
        bench::WallTimer shared_timer;
        sim::FleetSimulator shared(
            compiled,
            fleetOptions(bench_case.workload, /*sharing=*/true));
        sim::FleetResult shared_result = shared.run();
        const double shared_sec = shared_timer.seconds();

        // 3. Shared store, one thread per process (contention).
        bench::WallTimer threaded_timer;
        sim::FleetSimulator threaded(
            compiled,
            fleetOptions(bench_case.workload, /*sharing=*/true));
        threaded.runThreaded();
        const double threaded_sec = threaded_timer.seconds();

        std::uint64_t isolated_regens = 0;
        std::uint64_t isolated_peak = 0;
        std::uint64_t shared_regens = 0;
        std::uint64_t shared_peak = 0;
        for (std::uint64_t p = 0; p < processes; ++p) {
            isolated_regens +=
                isolated_result.processes[p].sim.regenerations;
            isolated_peak +=
                isolated_result.processes[p].sim.peakBytes;
            shared_regens +=
                shared_result.processes[p].sim.regenerations;
            shared_peak += shared_result.processes[p].sim.peakBytes;
        }

        const cache::SharedStoreStats &store =
            shared_result.storeStats;
        // First-time attaches to entries some OTHER process created.
        const std::uint64_t dedup_attaches =
            store.attaches - store.inserts;
        const double attaches_per_process =
            static_cast<double>(dedup_attaches) /
            static_cast<double>(processes);
        const std::uint64_t saved =
            shared_result.dedupSavedBytes();

        std::printf("%-8s %2llu procs: dedup saves %llu bytes, "
                    "%.1f dedup attaches/proc, regenerations "
                    "%llu -> %llu, round-robin %.2fs, threaded "
                    "%.2fs (%llu lock contentions)\n",
                    bench_case.name.c_str(),
                    static_cast<unsigned long long>(processes),
                    static_cast<unsigned long long>(saved),
                    attaches_per_process,
                    static_cast<unsigned long long>(isolated_regens),
                    static_cast<unsigned long long>(shared_regens),
                    shared_sec, threaded_sec,
                    static_cast<unsigned long long>(
                        threaded.store()->stats().lockContentions));

        // Acceptance gates (full office8 run): the shared tier must
        // actually deduplicate.
        if (bench_case.workload.unmapStorms == 0 &&
            (saved == 0 || attaches_per_process <= 1.0)) {
            passed = false;
        }

        bench::JsonObject entry;
        entry.put("fleet", bench_case.name)
            .put("processes", processes)
            .put("shared_dlls",
                 static_cast<std::uint64_t>(
                     bench_case.workload.sharedDlls))
            .put("unmap_storms",
                 static_cast<std::uint64_t>(
                     bench_case.workload.unmapStorms))
            .put("events", totalEvents(compiled))
            .put("isolated_sec", isolated_sec)
            .put("shared_sec", shared_sec)
            .put("threaded_sec", threaded_sec)
            .put("isolated_regenerations", isolated_regens)
            .put("shared_regenerations", shared_regens)
            .put("isolated_peak_private_bytes", isolated_peak)
            .put("shared_peak_private_bytes", shared_peak)
            .put("store_peak_used_bytes",
                 shared_result.storePeakUsedBytes)
            .put("store_peak_claimed_bytes",
                 shared_result.storePeakClaimedBytes)
            .put("dedup_saved_bytes", saved)
            .put("store_entries", shared_result.storeEntries)
            .put("publishes", store.publishes)
            .put("inserts", store.inserts)
            .put("attaches", store.attaches)
            .put("dedup_attaches", dedup_attaches)
            .put("dedup_attaches_per_process", attaches_per_process)
            .put("probe_hits", store.probeHits)
            .put("unmap_evictions", store.unmapEvictions)
            .put("invalidations", store.invalidations)
            .put("threaded_lock_contentions",
                 threaded.store()->stats().lockContentions);
        fleets.push(entry);
    }

    bench::JsonObject artifact;
    artifact.put("bench", "fleet_replay")
        .put("smoke", smoke)
        .put("passed", passed)
        .putRaw("fleets", fleets.toString());
    if (!bench::writeJsonArtifact(smoke ? "BENCH_shared_smoke.json"
                                        : "BENCH_shared.json",
                                  artifact)) {
        return 1;
    }
    if (!passed) {
        std::fprintf(stderr,
                     "fleet_replay: acceptance gates FAILED "
                     "(dedup_saved_bytes > 0 and > 1 dedup "
                     "attach/process required)\n");
        return 1;
    }
    return 0;
}
