/**
 * @file
 * Reproduces Figure 3: trace insertion rate in KB/s of generated
 * trace bytes over execution time.
 *
 * Paper reference points: most SPEC benchmarks insert below 5 KB/s
 * (gcc ~232 KB/s and perlbmk ~89 KB/s are the exceptions), while all
 * interactive applications except solitaire exceed 5 KB/s.
 */

#include <cstdio>

#include "bench_util.h"
#include "stats/table.h"
#include "support/format.h"
#include "support/units.h"
#include "workload/generator.h"

namespace {

using namespace gencache;

unsigned
reportSuite(const char *title,
            const std::vector<workload::BenchmarkProfile> &profiles)
{
    bench::banner(title);
    TextTable table({"benchmark", "trace bytes", "seconds", "KB/s"});
    unsigned above5 = 0;
    for (const workload::BenchmarkProfile &profile : profiles) {
        tracelog::AccessLog log = workload::generateWorkload(profile);
        double seconds = usToSeconds(log.duration());
        double rate = static_cast<double>(log.createdTraceBytes()) /
                      1024.0 / seconds;
        if (rate > 5.0) {
            ++above5;
        }
        table.addRow({profile.name,
                      humanBytes(log.createdTraceBytes()),
                      fixed(seconds, 0), fixed(rate, 1)});
    }
    std::printf("%s", table.toString().c_str());
    return above5;
}

} // namespace

int
main()
{
    using namespace gencache;

    unsigned spec_above = reportSuite(
        "Figure 3a: SPEC2000 trace insertion rate",
        bench::scaledSpecProfiles());
    std::vector<workload::BenchmarkProfile> interactive =
        bench::scaledInteractiveProfiles();
    unsigned interactive_above = reportSuite(
        "Figure 3b: Interactive trace insertion rate", interactive);

    std::printf("\nbenchmarks above 5 KB/s: SPEC %u of 26, "
                "interactive %u of %zu (paper: 2 of 26 vs 11 of "
                "12)\n",
                spec_above, interactive_above, interactive.size());
    return 0;
}
