/**
 * @file
 * Ablation: eager vs. eviction-time promotion (§5.3).
 *
 * The paper notes that with a single-hit threshold the access counter
 * can be eliminated entirely by letting each probation hit trigger
 * the upgrade immediately. This bench compares the two policies at
 * identical layouts: eager promotion moves hot traces out of
 * probation sooner (freeing probation space) at the cost of
 * promoting the occasional one-hit wonder.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/experiment.h"
#include "stats/table.h"
#include "support/format.h"

namespace {

using namespace gencache;

const char *const kSubset[] = {"gzip", "gcc", "crafty", "vortex",
                               "word", "excel", "solitaire"};

} // namespace

int
main()
{
    using namespace gencache;

    bench::banner("Ablation: eviction-time vs eager promotion "
                  "(45-10-45, threshold 1)");

    TextTable table({"benchmark", "unified miss", "eviction-time",
                     "eager", "eager promos", "lazy promos"});

    for (const char *name : kSubset) {
        workload::BenchmarkProfile profile =
            bench::scaled(workload::findProfile(name));
        sim::ExperimentRunner runner(profile);
        sim::SimResult unbounded = runner.runUnbounded();
        std::uint64_t capacity =
            std::max<std::uint64_t>(4096, unbounded.peakBytes / 2);
        sim::SimResult unified = runner.runUnified(capacity);

        sim::GenerationalLayout lazy;
        lazy.label = "lazy";
        lazy.nurseryFrac = 0.45;
        lazy.probationFrac = 0.10;
        lazy.promotionThreshold = 1;
        lazy.eagerPromotion = false;
        sim::SimResult lazy_result =
            runner.runGenerational(capacity, lazy);

        sim::GenerationalLayout eager = lazy;
        eager.label = "eager";
        eager.eagerPromotion = true;
        sim::SimResult eager_result =
            runner.runGenerational(capacity, eager);

        auto reduction = [&](const sim::SimResult &result) {
            return unified.missRate() > 0.0
                       ? (1.0 -
                          result.missRate() / unified.missRate()) *
                             100.0
                       : 0.0;
        };
        table.addRow({profile.name, percent(unified.missRate(), 2),
                      fixed(reduction(lazy_result), 1) + "%",
                      fixed(reduction(eager_result), 1) + "%",
                      withCommas(static_cast<std::int64_t>(
                          eager_result.managerStats.promotions)),
                      withCommas(static_cast<std::int64_t>(
                          lazy_result.managerStats.promotions))});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\n(§5.3: a single probation hit triggering the "
                "upgrade removes the need for access counters "
                "entirely)\n");
    return 0;
}
