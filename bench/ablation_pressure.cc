/**
 * @file
 * Ablation: cache pressure. The paper fixes the managed budget at
 * maxCache * 0.5 (§6); this bench sweeps the pressure factor to show
 * how the generational advantage appears as soon as the cache stops
 * fitting the workload and grows as pressure rises — and that art,
 * whose working set exceeds any fraction, stays pathological.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/experiment.h"
#include "stats/table.h"
#include "support/format.h"

namespace {

using namespace gencache;

const char *const kSubset[] = {"gzip", "gcc", "crafty", "art", "word",
                               "solitaire"};
const double kPressures[] = {1.0, 0.75, 0.5, 0.25};

} // namespace

int
main()
{
    using namespace gencache;

    bench::banner("Ablation: managed-cache pressure "
                  "(miss-rate reduction of 45-10-45 thr 1)");

    TextTable table({"benchmark", "1.00x", "0.75x", "0.50x",
                     "0.25x"});
    sim::GenerationalLayout layout = sim::paperLayouts().back();

    for (const char *name : kSubset) {
        workload::BenchmarkProfile profile =
            bench::scaled(workload::findProfile(name));
        sim::ExperimentRunner runner(profile);
        sim::SimResult unbounded = runner.runUnbounded();

        std::vector<std::string> row = {profile.name};
        for (double pressure : kPressures) {
            auto capacity = static_cast<std::uint64_t>(
                static_cast<double>(unbounded.peakBytes) * pressure);
            if (capacity < 4096) {
                capacity = 4096;
            }
            sim::SimResult unified = runner.runUnified(capacity);
            sim::SimResult generational =
                runner.runGenerational(capacity, layout);
            double reduction =
                unified.missRate() > 0.0
                    ? (1.0 - generational.missRate() /
                                 unified.missRate()) *
                          100.0
                    : 0.0;
            if (unified.misses == 0) {
                row.push_back("-");
            } else {
                row.push_back(fixed(reduction, 1) + "%");
            }
        }
        table.addRow(row);
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\n('-' = the unified cache of that size never "
                "misses, so management is moot; the paper evaluates "
                "at 0.50x)\n");
    return 0;
}
