/**
 * @file
 * Reproduces Figure 11: the instruction overhead ratio of the
 * generational design (45-10-45) to the unified cache (Equation 3),
 * using the Table 2 cost model. Values below 100% are overhead
 * reductions.
 *
 * Paper reference points: geometric mean 80.7% (a 19.3% overhead
 * reduction); gzip best at 51.1%; eon, vpr, and applu above 100%
 * (their promotion traffic outweighs the miss savings); every
 * interactive benchmark below 100%.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/experiment.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "support/format.h"

namespace {

using namespace gencache;

void
reportSuite(const char *title,
            const std::vector<workload::BenchmarkProfile> &profiles,
            const sim::GenerationalLayout &layout,
            SummaryStats &all_ratios, unsigned &above100)
{
    bench::banner(title);
    TextTable table({"benchmark", "unified overhead",
                     "generational overhead", "ratio"});
    for (const workload::BenchmarkProfile &profile : profiles) {
        sim::ExperimentRunner runner(profile);
        sim::BenchmarkComparison comparison =
            runner.compare({layout});
        double ratio = comparison.overheadRatioPct(0);
        all_ratios.add(ratio / 100.0);
        if (ratio > 100.0) {
            ++above100;
        }
        table.addRow({profile.name,
                      withCommas(static_cast<std::int64_t>(
                          comparison.unified.overhead.total())),
                      withCommas(static_cast<std::int64_t>(
                          comparison.generational[0]
                              .overhead.total())),
                      fixed(ratio, 1) + "%"});
    }
    std::printf("%s", table.toString().c_str());
}

} // namespace

int
main()
{
    using namespace gencache;

    sim::GenerationalLayout layout = sim::paperLayouts().back();
    std::printf("layout: %s (smaller ratios are better; <100%% is a "
                "reduction)\n", layout.label.c_str());

    SummaryStats ratios;
    unsigned above100 = 0;
    reportSuite("Figure 11a: SPEC2000 overhead ratio",
                bench::scaledSpecProfiles(), layout, ratios,
                above100);
    reportSuite("Figure 11b: Interactive overhead ratio",
                bench::scaledInteractiveProfiles(), layout, ratios,
                above100);

    std::printf("\ngeometric mean overhead ratio: %s (%u benchmarks "
                "above 100%%)\n",
                percent(ratios.geomean()).c_str(), above100);
    std::printf("(paper: geomean 80.7%%, i.e. 19.3%% fewer "
                "instructions spent servicing misses; 3 SPEC "
                "benchmarks above 100%%)\n");
    return 0;
}
