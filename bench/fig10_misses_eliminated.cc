/**
 * @file
 * Reproduces Figure 10: the total number of cache misses eliminated
 * by the generational design (45-10-45, threshold 1) relative to a
 * unified cache of the same size. The paper plots this on a
 * logarithmic axis; we print the raw counts and their magnitude.
 *
 * Paper reference points: miss-rate reductions often correspond to
 * many thousands of eliminated misses (e.g. gzip ~2.3k, crafty
 * ~292k).
 */

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "sim/experiment.h"
#include "stats/table.h"
#include "support/format.h"

namespace {

using namespace gencache;

void
reportSuite(const char *title,
            const std::vector<workload::BenchmarkProfile> &profiles,
            const sim::GenerationalLayout &layout)
{
    bench::banner(title);
    TextTable table({"benchmark", "unified misses", "gen misses",
                     "eliminated", "log10"});
    for (const workload::BenchmarkProfile &profile : profiles) {
        sim::ExperimentRunner runner(profile);
        sim::BenchmarkComparison comparison =
            runner.compare({layout});
        std::int64_t eliminated = comparison.missesEliminated(0);
        double magnitude =
            eliminated > 0
                ? std::log10(static_cast<double>(eliminated))
                : 0.0;
        table.addRow({profile.name,
                      withCommas(static_cast<std::int64_t>(
                          comparison.unified.misses)),
                      withCommas(static_cast<std::int64_t>(
                          comparison.generational[0].misses)),
                      withCommas(eliminated),
                      eliminated > 0 ? fixed(magnitude, 1) : "-"});
    }
    std::printf("%s", table.toString().c_str());
}

} // namespace

int
main()
{
    using namespace gencache;

    sim::GenerationalLayout layout = sim::paperLayouts().back();
    std::printf("layout: %s\n", layout.label.c_str());
    reportSuite("Figure 10a: SPEC2000 misses eliminated",
                bench::scaledSpecProfiles(), layout);
    reportSuite("Figure 10b: Interactive misses eliminated",
                bench::scaledInteractiveProfiles(), layout);
    std::printf("\n(paper: thousands of misses eliminated on most "
                "benchmarks; log-scale axis)\n");
    return 0;
}
