/**
 * @file
 * Tier-pipeline dispatch overhead: frozen pre-refactor managers vs
 * their TierPipeline re-expressions on the standard sweep shape.
 *
 * The refactor routes every hot-path operation (lookup, insert,
 * cascade) through the generalized pipeline plus virtual
 * PromotionPolicy edges. This harness proves the generalization is
 * close to free: it replays identical batched sweep rows — one lane
 * per standard threshold, 45-10-45 split, plus a unified lane —
 * against the verbatim pre-refactor managers (tests/
 * reference_managers.h) and against the adapters, takes the best of
 * several repetitions, and reports the wall-time ratio. Acceptance:
 * pipeline dispatch adds < 2% to sweep replay wall-time.
 *
 * Emits BENCH_tiers.json: per-benchmark reference/pipeline seconds,
 * overhead percentage, result-identity flag, and the aggregate
 * overhead number.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "codecache/generational_cache.h"
#include "codecache/unified_cache.h"
#include "reference_managers.h"
#include "sim/batched_replay.h"
#include "sim/experiment.h"
#include "sim/sweep.h"
#include "support/format.h"
#include "support/units.h"
#include "workload/generator.h"

namespace {

using namespace gencache;

const char *const kSubset[] = {"gzip", "gcc", "crafty", "art",
                               "word"};
constexpr int kRepetitions = 5;

std::uint64_t
managedCapacity(const workload::BenchmarkProfile &profile)
{
    auto capacity = static_cast<std::uint64_t>(
        profile.finalCacheKb * static_cast<double>(kKiB) / 2.0);
    return capacity < 4096 ? 4096 : capacity;
}

struct PassResult
{
    double seconds = 0.0;
    std::vector<sim::SimResult> results;
};

/** One timed batched pass: a generational lane per threshold plus a
 *  unified lane, all built by @p make_gen / @p make_uni. */
template <typename MakeGen, typename MakeUni>
PassResult
timedPass(const tracelog::CompiledLog &compiled,
          std::uint64_t capacity,
          const std::vector<std::uint32_t> &thresholds,
          MakeGen make_gen, MakeUni make_uni)
{
    std::vector<std::unique_ptr<cache::CacheManager>> managers;
    sim::BatchedReplay replay(compiled);
    for (std::uint32_t threshold : thresholds) {
        managers.push_back(make_gen(
            cache::GenerationalConfig::fromProportions(
                capacity, 0.45, 0.10, threshold)));
        replay.addLane(*managers.back());
    }
    managers.push_back(make_uni(capacity));
    replay.addLane(*managers.back());

    PassResult pass;
    bench::WallTimer timer;
    pass.results = replay.run();
    pass.seconds = timer.seconds();
    return pass;
}

bool
resultsIdentical(const std::vector<sim::SimResult> &a,
                 const std::vector<sim::SimResult> &b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        const cache::ManagerStats &x = a[i].managerStats;
        const cache::ManagerStats &y = b[i].managerStats;
        if (a[i].misses != b[i].misses || a[i].hits != b[i].hits ||
            x.deletions != y.deletions ||
            x.promotions != y.promotions ||
            x.probationRejections != y.probationRejections ||
            a[i].overhead.total() != b[i].overhead.total()) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    bench::banner("Tier-pipeline dispatch overhead: frozen "
                  "pre-refactor managers vs pipeline adapters");

    std::vector<std::uint32_t> thresholds =
        sim::defaultSweepThresholds();

    bench::JsonArray benchmarks;
    double total_reference = 0.0;
    double total_pipeline = 0.0;
    bool all_identical = true;

    auto make_ref_gen = [](const cache::GenerationalConfig &config) {
        return std::unique_ptr<cache::CacheManager>(
            new cache::reference::ReferenceGenerationalManager(config));
    };
    auto make_ref_uni = [](std::uint64_t capacity) {
        return std::unique_ptr<cache::CacheManager>(
            new cache::reference::ReferenceUnifiedManager(capacity));
    };
    auto make_new_gen = [](const cache::GenerationalConfig &config) {
        return std::unique_ptr<cache::CacheManager>(
            new cache::GenerationalCacheManager(config));
    };
    auto make_new_uni = [](std::uint64_t capacity) {
        return std::unique_ptr<cache::CacheManager>(
            new cache::UnifiedCacheManager(capacity));
    };

    for (const char *name : kSubset) {
        workload::BenchmarkProfile profile =
            bench::scaled(workload::findProfile(name));
        tracelog::AccessLog log = workload::generateWorkload(profile);
        tracelog::CompiledLog compiled =
            tracelog::CompiledLog::compile(log);
        std::uint64_t capacity = managedCapacity(profile);

        double best_reference = 0.0;
        double best_pipeline = 0.0;
        bool identical = true;
        for (int rep = 0; rep < kRepetitions; ++rep) {
            // Alternate the order each repetition so neither side
            // systematically inherits the warmer caches.
            PassResult ref;
            PassResult pipe;
            if (rep % 2 == 0) {
                ref = timedPass(compiled, capacity, thresholds,
                                make_ref_gen, make_ref_uni);
                pipe = timedPass(compiled, capacity, thresholds,
                                 make_new_gen, make_new_uni);
            } else {
                pipe = timedPass(compiled, capacity, thresholds,
                                 make_new_gen, make_new_uni);
                ref = timedPass(compiled, capacity, thresholds,
                                make_ref_gen, make_ref_uni);
            }
            identical = identical &&
                        resultsIdentical(ref.results, pipe.results);
            if (rep == 0 || ref.seconds < best_reference) {
                best_reference = ref.seconds;
            }
            if (rep == 0 || pipe.seconds < best_pipeline) {
                best_pipeline = pipe.seconds;
            }
        }

        double overhead_pct =
            best_reference > 0.0
                ? (best_pipeline / best_reference - 1.0) * 100.0
                : 0.0;
        total_reference += best_reference;
        total_pipeline += best_pipeline;
        all_identical = all_identical && identical;

        std::printf("%-10s %9zu events  reference %.3fs  pipeline "
                    "%.3fs  overhead %+.2f%%  results %s\n",
                    name, log.size(), best_reference, best_pipeline,
                    overhead_pct,
                    identical ? "identical" : "MISMATCH");

        bench::JsonObject entry;
        entry.put("name", name)
            .put("events", static_cast<std::uint64_t>(log.size()))
            .put("reference_sec", best_reference)
            .put("pipeline_sec", best_pipeline)
            .put("overhead_pct", overhead_pct)
            .put("results_identical", identical);
        benchmarks.push(entry);
    }

    double total_overhead_pct =
        total_reference > 0.0
            ? (total_pipeline / total_reference - 1.0) * 100.0
            : 0.0;
    bool within_budget = total_overhead_pct < 2.0;

    std::printf("\ntotal: reference %.2fs, pipeline %.2fs, overhead "
                "%+.2f%% (budget < 2%%: %s), results %s\n",
                total_reference, total_pipeline, total_overhead_pct,
                within_budget ? "PASS" : "FAIL",
                all_identical ? "identical" : "MISMATCH");

    bench::JsonObject artifact;
    artifact.put("bench", "tier_overhead")
        .put("scale", bench::scaleFactor())
        .put("repetitions", kRepetitions)
        .put("lanes_per_pass",
             static_cast<std::uint64_t>(thresholds.size() + 1))
        .putRaw("benchmarks", benchmarks.toString())
        .put("total_reference_sec", total_reference)
        .put("total_pipeline_sec", total_pipeline)
        .put("total_overhead_pct", total_overhead_pct)
        .put("within_budget", within_budget)
        .put("results_identical", all_identical);
    bench::writeJsonArtifact("BENCH_tiers.json", artifact);

    return (within_budget && all_identical) ? 0 : 1;
}
