/**
 * @file
 * google-benchmark microbenchmarks of the code cache data
 * structures: region placement, lookup, removal, flush, and the
 * generational cascade, across capacities and fragment sizes.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codecache/cache_region.h"
#include "codecache/generational_cache.h"
#include "codecache/list_cache.h"
#include "codecache/pseudo_circular_cache.h"
#include "support/rng.h"

namespace {

using namespace gencache;
using cache::Fragment;

Fragment
frag(cache::TraceId id, std::uint32_t size)
{
    Fragment fragment;
    fragment.id = id;
    fragment.sizeBytes = size;
    fragment.module = 0;
    return fragment;
}

void
BM_RegionPlace(benchmark::State &state)
{
    cache::CacheRegion region(
        static_cast<std::uint64_t>(state.range(0)));
    cache::TraceId next = 1;
    std::vector<Fragment> evicted;
    for (auto _ : state) {
        evicted.clear();
        region.place(frag(next++, 242), evicted);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegionPlace)->Arg(64 << 10)->Arg(1 << 20)->Arg(8 << 20);

void
BM_RegionFind(benchmark::State &state)
{
    cache::CacheRegion region(1 << 20);
    std::vector<Fragment> evicted;
    const cache::TraceId count = 2000;
    for (cache::TraceId id = 1; id <= count; ++id) {
        region.place(frag(id, 242), evicted);
    }
    cache::TraceId id = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(region.find(id));
        id = id % count + 1;
    }
}
BENCHMARK(BM_RegionFind);

void
BM_RegionRemoveReinsert(benchmark::State &state)
{
    cache::CacheRegion region(1 << 20);
    std::vector<Fragment> evicted;
    const cache::TraceId count = 2000;
    for (cache::TraceId id = 1; id <= count; ++id) {
        region.place(frag(id, 242), evicted);
    }
    cache::TraceId id = 1;
    cache::TraceId next = count + 1;
    for (auto _ : state) {
        region.remove(id);
        evicted.clear();
        region.place(frag(next, 242), evicted);
        id = (next % count) + 1;
        ++next;
    }
}
BENCHMARK(BM_RegionRemoveReinsert);

void
BM_LruTouch(benchmark::State &state)
{
    cache::LruCache cache(1 << 20);
    std::vector<Fragment> evicted;
    const cache::TraceId count = 2000;
    for (cache::TraceId id = 1; id <= count; ++id) {
        cache.insert(frag(id, 242), evicted);
    }
    cache::TraceId id = 1;
    for (auto _ : state) {
        cache.touch(id, 0);
        id = id % count + 1;
    }
}
BENCHMARK(BM_LruTouch);

void
BM_GenerationalLookupHit(benchmark::State &state)
{
    cache::GenerationalConfig config =
        cache::GenerationalConfig::fromProportions(4 << 20, 0.45,
                                                   0.10, 1);
    cache::GenerationalCacheManager manager(config);
    const cache::TraceId count = 4000;
    for (cache::TraceId id = 1; id <= count; ++id) {
        manager.insert(id, 242, 0, id);
    }
    cache::TraceId id = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(manager.lookup(id, id));
        id = id % count + 1;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GenerationalLookupHit);

void
BM_GenerationalChurn(benchmark::State &state)
{
    cache::GenerationalConfig config =
        cache::GenerationalConfig::fromProportions(
            static_cast<std::uint64_t>(state.range(0)), 0.45, 0.10,
            1);
    cache::GenerationalCacheManager manager(config);
    Rng rng(7);
    cache::TraceId next = 1;
    for (auto _ : state) {
        manager.insert(next, static_cast<std::uint32_t>(
                                 rng.uniformInt(64, 1024)),
                       0, next);
        if (next > 4) {
            manager.lookup(next - static_cast<cache::TraceId>(
                                      rng.uniformInt(1, 4)),
                           next);
        }
        ++next;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GenerationalChurn)->Arg(64 << 10)->Arg(1 << 20);

void
BM_RegionFlush(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        cache::CacheRegion region(1 << 20);
        std::vector<Fragment> evicted;
        for (cache::TraceId id = 1; id <= 2000; ++id) {
            region.place(frag(id, 242), evicted);
        }
        std::vector<Fragment> flushed;
        state.ResumeTiming();
        region.flush(flushed);
        benchmark::DoNotOptimize(flushed.size());
    }
}
BENCHMARK(BM_RegionFlush);

/**
 * Console reporter that additionally collects every run so the
 * numbers can be written to BENCH_microbench.json after the suite
 * finishes.
 */
class ArtifactReporter : public benchmark::ConsoleReporter
{
  public:
    bool ReportContext(const Context &context) override
    {
        return benchmark::ConsoleReporter::ReportContext(context);
    }

    void ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred) {
                continue;
            }
            bench::JsonObject entry;
            entry.put("name", run.benchmark_name())
                .put("iterations",
                     static_cast<std::uint64_t>(run.iterations))
                .put("real_time_ns", run.GetAdjustedRealTime())
                .put("cpu_time_ns", run.GetAdjustedCPUTime());
            auto items = run.counters.find("items_per_second");
            if (items != run.counters.end()) {
                entry.put("items_per_second",
                          static_cast<double>(items->second));
            }
            results_.push(entry);
        }
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

    const bench::JsonArray &results() const { return results_; }

  private:
    bench::JsonArray results_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    ArtifactReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    bench::JsonObject artifact;
    artifact.put("bench", "microbench_codecache")
        .putRaw("benchmarks", reporter.results().toString());
    bench::writeJsonArtifact("BENCH_microbench.json", artifact);
    return 0;
}
