/**
 * @file
 * Reproduces Figure 4: percentage of code trace bytes that must be
 * deleted from the code cache due to unmapped memory (unloaded DLLs)
 * in the interactive Windows benchmarks.
 *
 * Paper reference point: an average of ~15% of each interactive
 * benchmark's code is deleted because its module was unmapped.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/experiment.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "support/format.h"

int
main()
{
    using namespace gencache;

    bench::banner("Figure 4: code deleted due to unmapped memory");

    TextTable table({"benchmark", "trace bytes", "unmapped bytes",
                     "deleted"});
    SummaryStats stats;
    for (const workload::BenchmarkProfile &profile :
         bench::scaledInteractiveProfiles()) {
        sim::ExperimentRunner runner(profile);
        sim::SimResult result = runner.runUnbounded();
        double frac =
            static_cast<double>(
                result.managerStats.unmapDeletedBytes) /
            static_cast<double>(result.createdBytes);
        stats.add(frac * 100.0);
        table.addRow({profile.name, humanBytes(result.createdBytes),
                      humanBytes(
                          result.managerStats.unmapDeletedBytes),
                      percent(frac)});
    }
    table.addSeparator();
    table.addRow({"average", "", "", fixed(stats.mean(), 1) + "%"});
    std::printf("%s", table.toString().c_str());
    std::printf("\n(paper: average ~15%% of interactive code deleted "
                "by unmapping)\n");
    return 0;
}
