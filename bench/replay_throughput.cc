/**
 * @file
 * Replay-engine throughput: legacy per-event CacheSimulator vs the
 * compiled-log batched engine, on the standard §6.1 sweep grid.
 *
 * For each benchmark the workload is generated once and the memoized
 * unbounded/unified baselines are primed before any timing, so the
 * measured interval is pure generational-cell replay. The one-time
 * CompiledLog build is timed separately and reported alongside.
 *
 * Three engines are timed on the same grid: the legacy per-event
 * CacheSimulator, the batched engine pinned to its per-event
 * reference kernel (the PR-3 loop), and the batched engine's blocked
 * (chunk x lane-block, table-priced) kernel.
 *
 * Emits BENCH_replay.json: per-benchmark and total wall times,
 * replayed-events/sec, the single-threaded legacy-vs-blocked speedup,
 * and the single-threaded blocked-vs-reference speedup — the
 * acceptance number (>= 2x) — plus the same comparison at the default
 * thread count (GENCACHE_THREADS / hardware concurrency).
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/sweep.h"
#include "support/format.h"
#include "support/thread_pool.h"

namespace {

using namespace gencache;

const char *const kSubset[] = {"gzip", "vpr", "gcc", "crafty", "eon",
                               "art", "applu", "word", "solitaire"};

bool
cellsIdentical(const sim::SweepResult &a, const sim::SweepResult &b)
{
    if (a.capacityBytes != b.capacityBytes ||
        a.unifiedMissRate != b.unifiedMissRate ||
        a.cells.size() != b.cells.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        const sim::SweepCell &x = a.cells[i];
        const sim::SweepCell &y = b.cells[i];
        if (x.missRate != y.missRate ||
            x.promotions != y.promotions ||
            x.missRateReductionPct != y.missRateReductionPct ||
            x.threshold != y.threshold) {
            return false;
        }
    }
    return true;
}

double
eventsPerSec(std::uint64_t events, std::size_t cells, double seconds)
{
    if (seconds <= 0.0) {
        return 0.0;
    }
    return static_cast<double>(events) *
           static_cast<double>(cells) / seconds;
}

} // namespace

int
main()
{
    std::size_t threads = ThreadPool::defaultThreadCount();
    bench::banner(
        format("Replay throughput: legacy vs compiled+batched on the "
               "standard sweep (serial and {} threads)", threads));

    std::vector<sim::SweepPoint> points = sim::defaultSweepPoints();
    std::vector<std::uint32_t> thresholds =
        sim::defaultSweepThresholds();
    const std::size_t cells = points.size() * thresholds.size();

    bench::JsonArray benchmarks;
    double total_legacy_serial = 0.0;
    double total_reference_serial = 0.0;
    double total_compiled_serial = 0.0;
    double total_legacy_threaded = 0.0;
    double total_compiled_threaded = 0.0;
    double total_compile_sec = 0.0;
    std::uint64_t total_events = 0;
    bool all_identical = true;

    for (const char *name : kSubset) {
        workload::BenchmarkProfile profile =
            bench::scaled(workload::findProfile(name));
        sim::ExperimentRunner runner(profile);
        const std::uint64_t events = runner.log().size();

        // Prime the memoized baselines (and thereby the capacity)
        // so both engines time pure generational-cell replay.
        sim::SweepResult warm =
            sim::runSweep(runner, points, {thresholds.front()}, 1,
                          sim::ReplayEngine::Legacy);

        bench::WallTimer compile_timer;
        runner.compiled();
        double compile_sec = compile_timer.seconds();

        bench::WallTimer timer;
        sim::SweepResult legacy_serial = sim::runSweep(
            runner, points, thresholds, 1, sim::ReplayEngine::Legacy);
        double legacy_serial_sec = timer.seconds();

        timer.reset();
        sim::SweepResult reference_serial =
            sim::runSweep(runner, points, thresholds, 1,
                          sim::ReplayEngine::BatchedReference);
        double reference_serial_sec = timer.seconds();

        timer.reset();
        sim::SweepResult compiled_serial =
            sim::runSweep(runner, points, thresholds, 1,
                          sim::ReplayEngine::BatchedCompiled);
        double compiled_serial_sec = timer.seconds();

        timer.reset();
        sim::SweepResult legacy_threaded =
            sim::runSweep(runner, points, thresholds, threads,
                          sim::ReplayEngine::Legacy);
        double legacy_threaded_sec = timer.seconds();

        timer.reset();
        sim::SweepResult compiled_threaded =
            sim::runSweep(runner, points, thresholds, threads,
                          sim::ReplayEngine::BatchedCompiled);
        double compiled_threaded_sec = timer.seconds();

        bool identical =
            cellsIdentical(legacy_serial, compiled_serial) &&
            cellsIdentical(legacy_serial, reference_serial) &&
            cellsIdentical(legacy_serial, legacy_threaded) &&
            cellsIdentical(legacy_serial, compiled_threaded) &&
            warm.capacityBytes == legacy_serial.capacityBytes;
        all_identical = all_identical && identical;

        double serial_speedup =
            compiled_serial_sec > 0.0
                ? legacy_serial_sec / compiled_serial_sec
                : 0.0;
        double blocked_speedup =
            compiled_serial_sec > 0.0
                ? reference_serial_sec / compiled_serial_sec
                : 0.0;
        double threaded_speedup =
            compiled_threaded_sec > 0.0
                ? legacy_threaded_sec / compiled_threaded_sec
                : 0.0;

        total_legacy_serial += legacy_serial_sec;
        total_reference_serial += reference_serial_sec;
        total_compiled_serial += compiled_serial_sec;
        total_legacy_threaded += legacy_threaded_sec;
        total_compiled_threaded += compiled_threaded_sec;
        total_compile_sec += compile_sec;
        total_events += events;

        std::printf("%-10s %9llu events  serial legacy %.3fs ref "
                    "%.3fs blocked %.3fs (%.2fx vs legacy, %.2fx vs "
                    "ref)  %zu-thread %.3fs -> %.3fs (%.2fx)  "
                    "compile %.3fs  cells %s\n",
                    name,
                    static_cast<unsigned long long>(events),
                    legacy_serial_sec, reference_serial_sec,
                    compiled_serial_sec, serial_speedup,
                    blocked_speedup, threads, legacy_threaded_sec,
                    compiled_threaded_sec, threaded_speedup,
                    compile_sec,
                    identical ? "identical" : "MISMATCH");

        bench::JsonObject entry;
        entry.put("name", name)
            .put("events", events)
            .put("cells", static_cast<std::uint64_t>(cells))
            .put("compile_sec", compile_sec)
            .put("legacy_serial_sec", legacy_serial_sec)
            .put("reference_serial_sec", reference_serial_sec)
            .put("compiled_serial_sec", compiled_serial_sec)
            .put("serial_speedup", serial_speedup)
            .put("blocked_vs_reference_speedup", blocked_speedup)
            .put("legacy_events_per_sec",
                 eventsPerSec(events, cells, legacy_serial_sec))
            .put("compiled_events_per_sec",
                 eventsPerSec(events, cells, compiled_serial_sec))
            .put("legacy_threaded_sec", legacy_threaded_sec)
            .put("compiled_threaded_sec", compiled_threaded_sec)
            .put("threaded_speedup", threaded_speedup)
            .put("cells_identical", identical);
        benchmarks.push(entry);
    }

    double serial_speedup =
        total_compiled_serial > 0.0
            ? total_legacy_serial / total_compiled_serial
            : 0.0;
    double blocked_speedup =
        total_compiled_serial > 0.0
            ? total_reference_serial / total_compiled_serial
            : 0.0;
    double threaded_speedup =
        total_compiled_threaded > 0.0
            ? total_legacy_threaded / total_compiled_threaded
            : 0.0;

    std::printf("\ntotal: serial legacy %.2fs ref %.2fs blocked "
                "%.2fs (%.2fx vs legacy, %.2fx vs ref), %zu-thread "
                "%.2fs -> %.2fs (%.2fx), compile %.2fs, cells %s\n",
                total_legacy_serial, total_reference_serial,
                total_compiled_serial, serial_speedup,
                blocked_speedup, threads, total_legacy_threaded,
                total_compiled_threaded, threaded_speedup,
                total_compile_sec,
                all_identical ? "identical" : "MISMATCH");

    bench::JsonObject artifact;
    artifact.put("bench", "replay_throughput")
        .put("threads", static_cast<std::uint64_t>(threads))
        .put("scale", bench::scaleFactor())
        .put("sweep_cells", static_cast<std::uint64_t>(cells))
        .putRaw("benchmarks", benchmarks.toString())
        .put("total_events", total_events)
        .put("total_compile_sec", total_compile_sec)
        .put("legacy_serial_sec", total_legacy_serial)
        .put("reference_serial_sec", total_reference_serial)
        .put("compiled_serial_sec", total_compiled_serial)
        .put("serial_speedup", serial_speedup)
        .put("blocked_vs_reference_speedup", blocked_speedup)
        .put("legacy_threaded_sec", total_legacy_threaded)
        .put("compiled_threaded_sec", total_compiled_threaded)
        .put("threaded_speedup", threaded_speedup)
        .put("all_cells_identical", all_identical);
    bench::writeJsonArtifact("BENCH_replay.json", artifact);

    return all_identical ? 0 : 1;
}
