/**
 * @file
 * Reproduces the §6.1 design-space sweep: generational cache
 * proportions crossed with promotion thresholds, on a representative
 * subset of benchmarks.
 *
 * Paper reference points: no universally best unbalanced
 * nursery/persistent split; an "undeniable link between the size of
 * the probation cache and the promotion threshold" — small probation
 * caches require low thresholds or long-lived traces are evicted
 * before qualifying.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/sweep.h"
#include "stats/table.h"
#include "support/format.h"

namespace {

using namespace gencache;

const char *const kSubset[] = {"gzip", "vpr", "gcc", "crafty", "eon",
                               "art", "applu", "word", "solitaire"};

} // namespace

int
main()
{
    using namespace gencache;

    bench::banner("Section 6.1 sweep: proportions x thresholds "
                  "(miss rate reduction vs unified)");

    std::vector<sim::SweepPoint> points = sim::defaultSweepPoints();
    std::vector<std::uint32_t> thresholds =
        sim::defaultSweepThresholds();

    for (const char *name : kSubset) {
        workload::BenchmarkProfile profile =
            bench::scaled(workload::findProfile(name));
        sim::SweepResult sweep =
            sim::runSweep(profile, points, thresholds);

        std::printf("\n--- %s (unified miss rate %s, budget %s) ---\n",
                    name, percent(sweep.unifiedMissRate, 2).c_str(),
                    humanBytes(sweep.capacityBytes).c_str());

        std::vector<std::string> headers = {"layout"};
        for (std::uint32_t threshold : thresholds) {
            headers.push_back(format("thr {}", threshold));
        }
        TextTable table(headers);
        for (std::size_t p = 0; p < points.size(); ++p) {
            std::vector<std::string> row = {points[p].label()};
            for (std::size_t t = 0; t < thresholds.size(); ++t) {
                const sim::SweepCell &cell =
                    sweep.at(p, t, thresholds.size());
                row.push_back(fixed(cell.missRateReductionPct, 1) +
                              "%");
            }
            table.addRow(row);
        }
        std::printf("%s", table.toString().c_str());

        const sim::SweepCell &best = sweep.best();
        std::printf("best: %s thr %u (%.1f%% miss rate reduction)\n",
                    best.point.label().c_str(), best.threshold,
                    best.missRateReductionPct);
    }

    std::printf("\n(paper: small probation caches need low promotion "
                "thresholds; 45-10-45 thr 1 best overall)\n");
    return 0;
}
