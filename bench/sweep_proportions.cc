/**
 * @file
 * Reproduces the §6.1 design-space sweep: generational cache
 * proportions crossed with promotion thresholds, on a representative
 * subset of benchmarks.
 *
 * Paper reference points: no universally best unbalanced
 * nursery/persistent split; an "undeniable link between the size of
 * the probation cache and the promotion threshold" — small probation
 * caches require low thresholds or long-lived traces are evicted
 * before qualifying.
 *
 * Doubles as the parallel-engine acceptance driver: every sweep runs
 * twice, serial (1 thread) and parallel (GENCACHE_THREADS / hardware
 * concurrency), the cells are checked for exact equality, and the
 * wall-clock numbers land in BENCH_sweep.json.
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/sweep.h"
#include "stats/table.h"
#include "support/format.h"
#include "support/thread_pool.h"

namespace {

using namespace gencache;

const char *const kSubset[] = {"gzip", "vpr", "gcc", "crafty", "eon",
                               "art", "applu", "word", "solitaire"};

/** Exact per-cell equality: the parallel fan-out must not change a
 *  single miss rate or promotion count. */
bool
cellsIdentical(const sim::SweepResult &a, const sim::SweepResult &b)
{
    if (a.capacityBytes != b.capacityBytes ||
        a.unifiedMissRate != b.unifiedMissRate ||
        a.cells.size() != b.cells.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        const sim::SweepCell &x = a.cells[i];
        const sim::SweepCell &y = b.cells[i];
        if (x.missRate != y.missRate ||
            x.promotions != y.promotions ||
            x.missRateReductionPct != y.missRateReductionPct ||
            x.threshold != y.threshold) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    using namespace gencache;

    std::size_t threads = ThreadPool::defaultThreadCount();
    bench::banner(format("Section 6.1 sweep: proportions x thresholds "
                         "(miss rate reduction vs unified; serial vs "
                         "{} threads)", threads));

    std::vector<sim::SweepPoint> points = sim::defaultSweepPoints();
    std::vector<std::uint32_t> thresholds =
        sim::defaultSweepThresholds();

    bench::JsonArray benchmarks;
    double total_serial = 0.0;
    double total_parallel = 0.0;
    bool all_identical = true;

    for (const char *name : kSubset) {
        workload::BenchmarkProfile profile =
            bench::scaled(workload::findProfile(name));

        bench::WallTimer serial_timer;
        sim::SweepResult serial =
            sim::runSweep(profile, points, thresholds, 1);
        double serial_sec = serial_timer.seconds();

        bench::WallTimer parallel_timer;
        sim::SweepResult sweep =
            sim::runSweep(profile, points, thresholds, threads);
        double parallel_sec = parallel_timer.seconds();

        bool identical = cellsIdentical(serial, sweep);
        all_identical = all_identical && identical;
        total_serial += serial_sec;
        total_parallel += parallel_sec;

        std::printf("\n--- %s (unified miss rate %s, budget %s) ---\n",
                    name, percent(sweep.unifiedMissRate, 2).c_str(),
                    humanBytes(sweep.capacityBytes).c_str());

        std::vector<std::string> headers = {"layout"};
        for (std::uint32_t threshold : thresholds) {
            headers.push_back(format("thr {}", threshold));
        }
        TextTable table(headers);
        for (std::size_t p = 0; p < points.size(); ++p) {
            std::vector<std::string> row = {points[p].label()};
            for (std::size_t t = 0; t < thresholds.size(); ++t) {
                const sim::SweepCell &cell =
                    sweep.at(p, t, thresholds.size());
                row.push_back(fixed(cell.missRateReductionPct, 1) +
                              "%");
            }
            table.addRow(row);
        }
        std::printf("%s", table.toString().c_str());

        const sim::SweepCell &best = sweep.best();
        std::printf("best: %s thr %u (%.1f%% miss rate reduction)\n",
                    best.point.label().c_str(), best.threshold,
                    best.missRateReductionPct);
        std::printf("serial %.2fs, parallel %.2fs (%.2fx), cells %s\n",
                    serial_sec, parallel_sec,
                    parallel_sec > 0.0 ? serial_sec / parallel_sec
                                       : 0.0,
                    identical ? "identical" : "MISMATCH");

        bench::JsonObject entry;
        entry.put("name", name)
            .put("capacity_bytes", sweep.capacityBytes)
            .put("cells", static_cast<std::uint64_t>(
                              sweep.cells.size()))
            .put("unified_miss_rate", sweep.unifiedMissRate)
            .put("serial_sec", serial_sec)
            .put("parallel_sec", parallel_sec)
            .put("speedup", parallel_sec > 0.0
                                ? serial_sec / parallel_sec
                                : 0.0)
            .put("cells_identical", identical)
            .put("best_layout",
                 format("{} thr {}", best.point.label(),
                        best.threshold))
            .put("best_reduction_pct", best.missRateReductionPct);
        benchmarks.push(entry);
    }

    std::printf("\ntotal: serial %.2fs, parallel %.2fs (%.2fx on %zu "
                "threads), all cells %s\n",
                total_serial, total_parallel,
                total_parallel > 0.0 ? total_serial / total_parallel
                                     : 0.0,
                threads, all_identical ? "identical" : "MISMATCH");

    bench::JsonObject artifact;
    artifact.put("bench", "sweep_proportions")
        .put("threads", static_cast<std::uint64_t>(threads))
        .put("scale", bench::scaleFactor())
        .putRaw("benchmarks", benchmarks.toString())
        .put("total_serial_sec", total_serial)
        .put("total_parallel_sec", total_parallel)
        .put("speedup", total_parallel > 0.0
                            ? total_serial / total_parallel
                            : 0.0)
        .put("all_cells_identical", all_identical);
    bench::writeJsonArtifact("BENCH_sweep.json", artifact);

    std::printf("\n(paper: small probation caches need low promotion "
                "thresholds; 45-10-45 thr 1 best overall)\n");
    return all_identical ? 0 : 1;
}
