/**
 * @file
 * Reproduces Figure 2: code expansion — the unbounded code cache size
 * as a percentage of the application's static code footprint
 * (Equation 1).
 *
 * Paper reference points: ~500% for both suites, with standard
 * deviations of 111% (SPEC) and 59% (interactive).
 */

#include <cstdio>

#include "bench_util.h"
#include "sim/experiment.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "support/format.h"

namespace {

using namespace gencache;

void
reportSuite(const char *title,
            const std::vector<workload::BenchmarkProfile> &profiles,
            SummaryStats &stats)
{
    bench::banner(title);
    TextTable table({"benchmark", "footprint", "max cache",
                     "expansion"});
    for (const workload::BenchmarkProfile &profile : profiles) {
        sim::ExperimentRunner runner(profile);
        std::uint64_t footprint = runner.log().footprintBytes();
        sim::SimResult result = runner.runUnbounded();
        double expansion = 100.0 *
                           static_cast<double>(result.peakBytes) /
                           static_cast<double>(footprint);
        stats.add(expansion);
        table.addRow({profile.name, humanBytes(footprint),
                      humanBytes(result.peakBytes),
                      fixed(expansion, 0) + "%"});
    }
    table.addSeparator();
    table.addRow({"average", "", "", fixed(stats.mean(), 0) + "%"});
    table.addRow({"stddev", "", "", fixed(stats.stddev(), 0) + "%"});
    std::printf("%s", table.toString().c_str());
}

} // namespace

int
main()
{
    using namespace gencache;

    SummaryStats spec_stats;
    reportSuite("Figure 2a: SPEC2000 code expansion",
                bench::scaledSpecProfiles(), spec_stats);
    SummaryStats interactive_stats;
    reportSuite("Figure 2b: Interactive code expansion",
                bench::scaledInteractiveProfiles(),
                interactive_stats);

    std::printf("\nexpansion averages: SPEC %.0f%% (sd %.0f%%), "
                "interactive %.0f%% (sd %.0f%%); paper: ~500%% with "
                "sd 111%% / 59%%\n",
                spec_stats.mean(), spec_stats.stddev(),
                interactive_stats.mean(),
                interactive_stats.stddev());
    return 0;
}
