/**
 * @file
 * Reproduces Table 1: the interactive Windows benchmarks used in the
 * evaluation (name, duration in seconds, description).
 */

#include <cstdio>

#include "bench_util.h"
#include "stats/table.h"
#include "support/format.h"

int
main()
{
    using namespace gencache;

    bench::banner("Table 1: Interactive Windows benchmarks");

    TextTable table({"Name", "Seconds", "Description"});
    table.setAlign(2, Align::Left);
    for (const workload::BenchmarkProfile &profile :
         workload::interactiveProfiles()) {
        table.addRow({profile.name,
                      fixed(profile.durationSec, 0),
                      profile.description});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\n(paper Table 1: identical names, durations, and "
                "descriptions)\n");
    return 0;
}
