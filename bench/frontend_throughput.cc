/**
 * @file
 * Front-end throughput: legacy hash-map dispatch vs the predecoded
 * fast path, generating live access logs on the standard nine
 * benchmarks (gzip, vpr, gcc, crafty, eon, art, applu, word,
 * solitaire).
 *
 * Each benchmark name maps deterministically to a synthetic guest
 * program whose shape mimics the profile class: tight hot loops for
 * the SPEC floating-point codes, wide flat code for gcc, phased
 * DLL-heavy runs for the interactive programs. The same program is
 * executed to completion under both front ends; the timed interval is
 * module load (which includes predecoding) through guest halt — the
 * full single-threaded log-generation path. The two logs must be
 * bit-identical or the harness exits nonzero.
 *
 * Emits BENCH_frontend.json: per-benchmark and total wall times,
 * retired instructions/sec, events/sec, and the single-threaded
 * speedup (the acceptance number).
 */

#include <cstdint>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "codecache/unified_cache.h"
#include "guest/address_space.h"
#include "guest/synthetic_program.h"
#include "runtime/runtime.h"
#include "support/format.h"

namespace {

using namespace gencache;

/** Shape class of a benchmark's synthetic stand-in. */
struct BenchShape
{
    const char *name;
    unsigned phases;
    unsigned functionsPerPhase;
    unsigned sharedFunctions;
    unsigned dllCount;
    unsigned blocksPerFunction;
    unsigned phaseIterations; ///< scaled by GENCACHE_SCALE
    unsigned innerIterations;
};

/** The §6.1 nine-benchmark grid, as front-end workload shapes.
 *  SPEC integer codes: moderate footprints, warm loops. gcc: wide
 *  flat code, dispatch-heavy. SPEC fp (art, applu): tiny scorching
 *  loops. Interactive (word, solitaire): phased, DLL churn. */
const BenchShape kShapes[] = {
    {"gzip", 3, 4, 2, 1, 4, 900, 60},
    {"vpr", 3, 5, 2, 1, 5, 700, 50},
    {"gcc", 5, 8, 3, 2, 6, 500, 25},
    {"crafty", 3, 6, 3, 1, 5, 700, 45},
    {"eon", 4, 5, 2, 1, 5, 650, 45},
    {"art", 2, 3, 2, 0, 3, 1400, 120},
    {"applu", 2, 3, 2, 0, 4, 1200, 110},
    {"word", 6, 5, 2, 3, 4, 450, 30},
    {"solitaire", 6, 4, 2, 3, 4, 500, 30},
};

/** Deterministic seed from the benchmark name (FNV-1a). */
std::uint64_t
seedOf(const char *name)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (const char *c = name; *c != '\0'; ++c) {
        hash ^= static_cast<unsigned char>(*c);
        hash *= 1099511628211ULL;
    }
    return hash;
}

guest::SyntheticProgramConfig
configOf(const BenchShape &shape)
{
    double scale = bench::scaleFactor();
    guest::SyntheticProgramConfig config;
    config.seed = seedOf(shape.name);
    config.phases = shape.phases;
    config.functionsPerPhase = shape.functionsPerPhase;
    config.sharedFunctions = shape.sharedFunctions;
    config.dllCount = shape.dllCount;
    config.blocksPerFunction = shape.blocksPerFunction;
    auto iterations = static_cast<unsigned>(
        static_cast<double>(shape.phaseIterations) * scale);
    config.phaseIterations = iterations < 1 ? 1 : iterations;
    config.innerIterations = shape.innerIterations;
    return config;
}

/** One complete run: load, execute to halt, capture observables. */
struct RunResult
{
    double seconds = 0.0;
    std::uint64_t instructions = 0;
    tracelog::AccessLog log;
    runtime::RuntimeStats stats;
};

RunResult
runOnce(const guest::SyntheticProgram &synthetic,
        runtime::FrontEnd mode)
{
    cache::UnifiedCacheManager manager(0);
    guest::AddressSpace space;
    runtime::Runtime runtime(space, manager,
                             runtime::kDefaultTraceThreshold, mode);

    bench::WallTimer timer;
    for (const auto &module : synthetic.program.modules()) {
        runtime.loadModule(*module);
    }
    runtime.start(synthetic.program.entry());
    runtime.run();

    RunResult result;
    result.seconds = timer.seconds();
    result.instructions = runtime.stats().totalInstructions();
    result.log = runtime.log();
    result.stats = runtime.stats();
    return result;
}

bool
identical(const RunResult &a, const RunResult &b)
{
    if (a.instructions != b.instructions ||
        a.stats.tracesBuilt != b.stats.tracesBuilt ||
        a.stats.traceExecutions != b.stats.traceExecutions ||
        a.stats.contextSwitches != b.stats.contextSwitches ||
        a.log.size() != b.log.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.log.size(); ++i) {
        const tracelog::Event &x = a.log[i];
        const tracelog::Event &y = b.log[i];
        if (x.type != y.type || x.time != y.time ||
            x.trace != y.trace || x.sizeBytes != y.sizeBytes ||
            x.module != y.module) {
            return false;
        }
    }
    return true;
}

double
perSec(std::uint64_t count, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

} // namespace

int
main()
{
    bench::banner("Front-end throughput: legacy dispatch vs "
                  "predecoded fast path (single-threaded log "
                  "generation)");

    bench::JsonArray benchmarks;
    double total_legacy = 0.0;
    double total_fast = 0.0;
    std::uint64_t total_instructions = 0;
    std::uint64_t total_events = 0;
    bool all_identical = true;

    for (const BenchShape &shape : kShapes) {
        guest::SyntheticProgram synthetic =
            guest::generateSyntheticProgram(configOf(shape));

        // Warm-up pass (untimed) so first-touch allocation noise does
        // not land on whichever mode happens to run first.
        runOnce(synthetic, runtime::FrontEnd::Predecoded);

        RunResult legacy =
            runOnce(synthetic, runtime::FrontEnd::Legacy);
        RunResult fast =
            runOnce(synthetic, runtime::FrontEnd::Predecoded);

        bool match = identical(legacy, fast);
        all_identical = all_identical && match;
        double speedup = fast.seconds > 0.0
                             ? legacy.seconds / fast.seconds
                             : 0.0;

        total_legacy += legacy.seconds;
        total_fast += fast.seconds;
        total_instructions += legacy.instructions;
        total_events += legacy.log.size();

        std::printf("%-10s %10llu insts %8zu events  %.3fs -> %.3fs "
                    "(%.2fx)  logs %s\n",
                    shape.name,
                    static_cast<unsigned long long>(
                        legacy.instructions),
                    legacy.log.size(), legacy.seconds, fast.seconds,
                    speedup, match ? "identical" : "MISMATCH");

        bench::JsonObject entry;
        entry.put("name", shape.name)
            .put("instructions", legacy.instructions)
            .put("events",
                 static_cast<std::uint64_t>(legacy.log.size()))
            .put("legacy_sec", legacy.seconds)
            .put("fast_sec", fast.seconds)
            .put("speedup", speedup)
            .put("legacy_insts_per_sec",
                 perSec(legacy.instructions, legacy.seconds))
            .put("fast_insts_per_sec",
                 perSec(fast.instructions, fast.seconds))
            .put("legacy_events_per_sec",
                 perSec(legacy.log.size(), legacy.seconds))
            .put("fast_events_per_sec",
                 perSec(fast.log.size(), fast.seconds))
            .put("logs_identical", match);
        benchmarks.push(entry);
    }

    double speedup =
        total_fast > 0.0 ? total_legacy / total_fast : 0.0;
    std::printf("\ntotal: %.2fs -> %.2fs (%.2fx), logs %s\n",
                total_legacy, total_fast, speedup,
                all_identical ? "identical" : "MISMATCH");

    bench::JsonObject artifact;
    artifact.put("bench", "frontend_throughput")
        .put("threads", static_cast<std::uint64_t>(1))
        .put("scale", bench::scaleFactor())
        .putRaw("benchmarks", benchmarks.toString())
        .put("total_instructions", total_instructions)
        .put("total_events", total_events)
        .put("legacy_sec", total_legacy)
        .put("fast_sec", total_fast)
        .put("speedup", speedup)
        .put("all_logs_identical", all_identical);
    bench::writeJsonArtifact("BENCH_frontend.json", artifact);

    return all_identical ? 0 : 1;
}
