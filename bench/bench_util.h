/**
 * @file
 * Shared helpers for the benchmark harness binaries.
 *
 * Every figure/table binary replays the full benchmark suites by
 * default. Set GENCACHE_SCALE=<factor> (e.g. 0.1) to scale workload
 * volume down proportionally for quick runs — insertion rates and
 * shapes are preserved, absolute sizes shrink.
 */

#ifndef GENCACHE_BENCH_BENCH_UTIL_H
#define GENCACHE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workload/profile.h"

namespace gencache::bench {

/** Scale factor from GENCACHE_SCALE (default 1.0, clamped to
 *  [0.01, 10]). */
inline double
scaleFactor()
{
    const char *env = std::getenv("GENCACHE_SCALE");
    if (env == nullptr) {
        return 1.0;
    }
    double value = std::atof(env);
    if (value < 0.01) {
        return 0.01;
    }
    if (value > 10.0) {
        return 10.0;
    }
    return value;
}

/** Apply the scale factor to one profile (volume and duration). */
inline workload::BenchmarkProfile
scaled(workload::BenchmarkProfile profile)
{
    double factor = scaleFactor();
    profile.finalCacheKb *= factor;
    profile.durationSec *= factor;
    if (profile.finalCacheKb < 16.0) {
        profile.finalCacheKb = 16.0;
    }
    if (profile.durationSec < 0.25) {
        profile.durationSec = 0.25;
    }
    return profile;
}

/** All SPEC2000 profiles, scaled. */
inline std::vector<workload::BenchmarkProfile>
scaledSpecProfiles()
{
    std::vector<workload::BenchmarkProfile> profiles;
    for (const auto &profile : workload::spec2000Profiles()) {
        profiles.push_back(scaled(profile));
    }
    return profiles;
}

/** All interactive profiles, scaled. */
inline std::vector<workload::BenchmarkProfile>
scaledInteractiveProfiles()
{
    std::vector<workload::BenchmarkProfile> profiles;
    for (const auto &profile : workload::interactiveProfiles()) {
        profiles.push_back(scaled(profile));
    }
    return profiles;
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace gencache::bench

#endif // GENCACHE_BENCH_BENCH_UTIL_H
