/**
 * @file
 * Shared helpers for the benchmark harness binaries.
 *
 * Every figure/table binary replays the full benchmark suites by
 * default. Set GENCACHE_SCALE=<factor> (e.g. 0.1) to scale workload
 * volume down proportionally for quick runs — insertion rates and
 * shapes are preserved, absolute sizes shrink.
 */

#ifndef GENCACHE_BENCH_BENCH_UTIL_H
#define GENCACHE_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "support/simd.h"
#include "support/thread_pool.h"
#include "workload/profile.h"

namespace gencache::bench {

/** Scale factor from GENCACHE_SCALE (default 1.0, clamped to
 *  [0.01, 10]). */
inline double
scaleFactor()
{
    const char *env = std::getenv("GENCACHE_SCALE");
    if (env == nullptr) {
        return 1.0;
    }
    double value = std::atof(env);
    if (value < 0.01) {
        return 0.01;
    }
    if (value > 10.0) {
        return 10.0;
    }
    return value;
}

/** Apply the scale factor to one profile (volume and duration). */
inline workload::BenchmarkProfile
scaled(workload::BenchmarkProfile profile)
{
    double factor = scaleFactor();
    profile.finalCacheKb *= factor;
    profile.durationSec *= factor;
    if (profile.finalCacheKb < 16.0) {
        profile.finalCacheKb = 16.0;
    }
    if (profile.durationSec < 0.25) {
        profile.durationSec = 0.25;
    }
    return profile;
}

/** All SPEC2000 profiles, scaled. */
inline std::vector<workload::BenchmarkProfile>
scaledSpecProfiles()
{
    std::vector<workload::BenchmarkProfile> profiles;
    for (const auto &profile : workload::spec2000Profiles()) {
        profiles.push_back(scaled(profile));
    }
    return profiles;
}

/** All interactive profiles, scaled. */
inline std::vector<workload::BenchmarkProfile>
scaledInteractiveProfiles()
{
    std::vector<workload::BenchmarkProfile> profiles;
    for (const auto &profile : workload::interactiveProfiles()) {
        profiles.push_back(scaled(profile));
    }
    return profiles;
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/** Monotonic wall-clock stopwatch for before/after perf numbers. */
class WallTimer
{
  public:
    WallTimer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Minimal ordered JSON object builder for perf artifacts
 * (BENCH_*.json). Keys keep insertion order; values are numbers,
 * strings, bools, or pre-rendered JSON (nested objects/arrays).
 */
class JsonObject
{
  public:
    JsonObject &put(const std::string &key, const std::string &value)
    {
        return putRaw(key, quote(value));
    }
    JsonObject &put(const std::string &key, const char *value)
    {
        return putRaw(key, quote(value));
    }
    JsonObject &put(const std::string &key, double value)
    {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.6g", value);
        return putRaw(key, buffer);
    }
    JsonObject &put(const std::string &key, std::uint64_t value)
    {
        return putRaw(key, std::to_string(value));
    }
    JsonObject &put(const std::string &key, std::int64_t value)
    {
        return putRaw(key, std::to_string(value));
    }
    JsonObject &put(const std::string &key, int value)
    {
        return putRaw(key, std::to_string(value));
    }
    JsonObject &put(const std::string &key, bool value)
    {
        return putRaw(key, value ? "true" : "false");
    }
    /** Insert @p raw_json (an already-rendered value) verbatim. */
    JsonObject &putRaw(const std::string &key,
                       const std::string &raw_json)
    {
        if (!body_.empty()) {
            body_ += ",";
        }
        body_ += quote(key) + ":" + raw_json;
        return *this;
    }

    std::string toString() const { return "{" + body_ + "}"; }

    /** Render @p text as a JSON string literal. */
    static std::string quote(const std::string &text)
    {
        std::string out = "\"";
        for (char c : text) {
            switch (c) {
              case '"': out += "\\\""; break;
              case '\\': out += "\\\\"; break;
              case '\n': out += "\\n"; break;
              case '\t': out += "\\t"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                                  c);
                    out += buffer;
                } else {
                    out += c;
                }
            }
        }
        out += "\"";
        return out;
    }

  private:
    std::string body_;
};

/** Companion array builder; elements are pre-rendered JSON values. */
class JsonArray
{
  public:
    JsonArray &push(const JsonObject &object)
    {
        return pushRaw(object.toString());
    }
    JsonArray &pushRaw(const std::string &raw_json)
    {
        if (!body_.empty()) {
            body_ += ",";
        }
        body_ += raw_json;
        return *this;
    }

    std::string toString() const { return "[" + body_ + "]"; }

  private:
    std::string body_;
};

/** Best-effort git revision of the working tree; "unknown" when the
 *  binary runs outside a checkout (or git is unavailable). */
inline std::string
gitRevision()
{
    FILE *pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
    if (pipe == nullptr) {
        return "unknown";
    }
    char buffer[80] = {0};
    std::string sha;
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
        sha = buffer;
        while (!sha.empty() &&
               (sha.back() == '\n' || sha.back() == '\r')) {
            sha.pop_back();
        }
    }
    ::pclose(pipe);
    return sha.empty() ? "unknown" : sha;
}

/** The run-environment stamp every perf artifact carries: where the
 *  numbers came from (revision), and the two knobs that change them
 *  without a code change (worker count, SIMD dispatch). */
inline JsonObject
runMetadata()
{
    JsonObject meta;
    meta.put("git_sha", gitRevision())
        .put("threads",
             static_cast<std::uint64_t>(
                 ThreadPool::defaultThreadCount()))
        .put("simd", simd::activeSimdMode())
        .put("scale", scaleFactor());
    return meta;
}

/** Write @p object to @p path (stamped with runMetadata() under a
 *  "meta" key) and report where it went.
 *  @return false (with a message) when the file cannot be written. */
inline bool
writeJsonArtifact(const std::string &path, const JsonObject &object)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write perf artifact %s\n",
                     path.c_str());
        return false;
    }
    JsonObject stamped = object;
    stamped.putRaw("meta", runMetadata().toString());
    out << stamped.toString() << "\n";
    std::printf("\nperf artifact: %s\n", path.c_str());
    return true;
}

} // namespace gencache::bench

#endif // GENCACHE_BENCH_BENCH_UTIL_H
