/**
 * @file
 * Fragmentation study (paper §4.2–4.3): the pseudo-circular policy is
 * designed to avoid fragmentation from ordinary replacement, leaving
 * only the holes that program-forced evictions (unmapped DLLs) and
 * pinned-trace skips make unavoidable.
 *
 * This bench replays interactive workloads against an address-accurate
 * pseudo-circular unified cache and reports the end-state free-space
 * fragmentation, wrap waste, and pinned-skip counts, plus a synthetic
 * stress case with heavy pinning.
 */

#include <cstdio>

#include "bench_util.h"
#include "codecache/pseudo_circular_cache.h"
#include "codecache/unified_cache.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "stats/table.h"
#include "support/format.h"
#include "support/rng.h"

namespace {

using namespace gencache;

void
workloadStudy()
{
    bench::banner("Fragmentation after replay "
                  "(pseudo-circular unified cache, 0.5x budget)");
    TextTable table({"benchmark", "free", "extents", "largest",
                     "frag index", "wrap waste", "pinned skips"});

    const char *const names[] = {"word", "iexplore", "excel",
                                 "pinball", "solitaire", "gcc",
                                 "crafty"};
    for (const char *name : names) {
        workload::BenchmarkProfile profile =
            bench::scaled(workload::findProfile(name));
        // Exaggerate pinning a little so the pinned-skip machinery is
        // visible in the report.
        profile.pinFrac = 0.01;
        sim::ExperimentRunner runner(profile);
        sim::SimResult unbounded = runner.runUnbounded();
        std::uint64_t capacity =
            std::max<std::uint64_t>(4096, unbounded.peakBytes / 2);

        cache::UnifiedCacheManager manager(capacity);
        sim::CacheSimulator simulator(manager);
        simulator.run(runner.log());

        const auto &local = dynamic_cast<const
            cache::PseudoCircularCache &>(manager.local());
        cache::FragmentationInfo info =
            local.region().fragmentation();
        table.addRow({name, humanBytes(info.freeBytes),
                      withCommas(static_cast<std::int64_t>(
                          info.freeExtents)),
                      humanBytes(info.largestFreeExtent),
                      fixed(info.index(), 3),
                      humanBytes(local.region().wrapWasteBytes()),
                      withCommas(static_cast<std::int64_t>(
                          local.region().pinnedSkips()))});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("(frag index = 1 - largest/total free; 0 means all "
                "free space is one hole)\n");
}

void
pinStress()
{
    bench::banner("Synthetic pin stress (64 KB region)");
    TextTable table({"pin fraction", "placement failures",
                     "pinned skips", "wrap waste", "frag index"});

    for (double pin_frac : {0.0, 0.05, 0.20, 0.50}) {
        cache::PseudoCircularCache cache(64 * kKiB);
        Rng rng(42);
        std::vector<cache::Fragment> evicted;
        std::vector<cache::TraceId> pinned;
        for (cache::TraceId id = 1; id <= 20'000; ++id) {
            cache::Fragment frag;
            frag.id = id;
            frag.sizeBytes = static_cast<std::uint32_t>(
                rng.uniformInt(64, 1024));
            evicted.clear();
            if (cache.insert(frag, evicted) &&
                rng.bernoulli(pin_frac)) {
                cache.setPinned(id, true);
                pinned.push_back(id);
                // Cap the pinned population at 1/4 of the region so
                // progress stays possible.
                if (pinned.size() > 16) {
                    cache.setPinned(pinned.front(), false);
                    pinned.erase(pinned.begin());
                }
            }
        }
        cache::FragmentationInfo info = cache.region().fragmentation();
        table.addRow({fixed(pin_frac, 2),
                      withCommas(static_cast<std::int64_t>(
                          cache.stats().placementFailures)),
                      withCommas(static_cast<std::int64_t>(
                          cache.region().pinnedSkips())),
                      humanBytes(cache.region().wrapWasteBytes()),
                      fixed(info.index(), 3)});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("(pinned fragments force eviction-pointer resets; "
                "the policy keeps placing without defragmentation)\n");
}

} // namespace

int
main()
{
    workloadStudy();
    pinStress();
    return 0;
}
