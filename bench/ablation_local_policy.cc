/**
 * @file
 * Ablation: local replacement policies inside a unified cache —
 * pseudo-circular (the paper's §4.3 choice) vs. idealized FIFO, LRU,
 * and Dynamo-style preemptive flush.
 *
 * Context: the paper's prior work [12] found FIFO-style circular
 * management superior to LRU once overhead and fragmentation are
 * accounted for, and preemptive flushing discards useful long-lived
 * traces. This bench reports both miss rates and the Table 2
 * instruction overheads so the trade-off is visible.
 */

#include <cstdio>

#include "bench_util.h"
#include "codecache/unified_cache.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "support/format.h"

namespace {

using namespace gencache;

const char *const kSubset[] = {"gzip", "gcc", "crafty", "vortex",
                               "art", "word", "excel", "solitaire"};

const cache::LocalPolicy kPolicies[] = {
    cache::LocalPolicy::PseudoCircular,
    cache::LocalPolicy::Fifo,
    cache::LocalPolicy::Lru,
    cache::LocalPolicy::PreemptiveFlush,
};

} // namespace

int
main()
{
    using namespace gencache;

    bench::banner("Ablation: local policy in a unified cache "
                  "(miss rate / overhead instr)");

    TextTable table({"benchmark", "pseudo-circular", "fifo", "lru",
                     "preemptive-flush"});
    SummaryStats totals[4];

    for (const char *name : kSubset) {
        workload::BenchmarkProfile profile =
            bench::scaled(workload::findProfile(name));
        sim::ExperimentRunner runner(profile);
        sim::SimResult unbounded = runner.runUnbounded();
        std::uint64_t capacity =
            std::max<std::uint64_t>(4096, unbounded.peakBytes / 2);

        std::vector<std::string> row = {profile.name};
        int column = 0;
        for (cache::LocalPolicy policy : kPolicies) {
            cache::UnifiedCacheManager manager(capacity, policy);
            sim::CacheSimulator simulator(manager);
            sim::SimResult result = simulator.run(runner.log());
            totals[column].add(
                static_cast<double>(result.overhead.total()));
            row.push_back(format("{} / {}",
                                 percent(result.missRate(), 2),
                                 withCommas(static_cast<std::int64_t>(
                                     result.overhead.total()))));
            ++column;
        }
        table.addRow(row);
    }
    std::printf("%s", table.toString().c_str());

    std::printf("\nmean overhead (instructions):\n");
    const char *labels[] = {"pseudo-circular", "fifo", "lru",
                            "preemptive-flush"};
    for (int i = 0; i < 4; ++i) {
        std::printf("  %-17s %s\n", labels[i],
                    withCommas(static_cast<std::int64_t>(
                        totals[i].mean())).c_str());
    }
    std::printf("\n(prior-work claim: circular/FIFO competitive with "
                "LRU at far lower bookkeeping cost; flushing is the "
                "worst of both)\n");
    return 0;
}
