/**
 * @file
 * Trace optimizer demo: builds a superblock the way the runtime does
 * (jump straightening included), runs the optimization pipeline, and
 * prints the before/after disassembly — then shows the effect the
 * optimizer has on real cache pressure by running the same guest
 * program with optimization on and off.
 */

#include <cstdio>

#include "codecache/unified_cache.h"
#include "guest/synthetic_program.h"
#include "opt/passes.h"
#include "runtime/runtime.h"
#include "support/format.h"
#include "support/units.h"

namespace {

using namespace gencache;

void
demoPipeline()
{
    std::printf("=== pass pipeline on a hand-built superblock ===\n\n");

    // A trace as selection might record it: loop setup feeding
    // constants into an address computation, with a side exit.
    opt::Superblock sb(0x400);
    sb.append(isa::makeNop());
    sb.append(isa::makeMovImm(1, 100));
    sb.append(isa::makeMovImm(2, 28));
    sb.append(isa::makeAdd(3, 1, 2));      // 3 = 128 (foldable)
    sb.append(isa::makeMov(4, 4));         // self move
    sb.append(isa::makeAddImm(5, 3, 4));   // 5 = 132 (foldable)
    sb.append(isa::makeBranchNz(0, 0x900), true); // side exit
    sb.append(isa::makeMovImm(1, 0));      // kills the earlier r1
    sb.append(isa::makeStore(5, 0, 3));
    sb.append(isa::makeReturn());

    std::printf("before:\n%s\n", sb.toString().c_str());
    opt::PassManager pipeline = opt::makeDefaultPipeline();
    opt::OptResult result = pipeline.optimize(sb);
    std::printf("after (%u -> %u bytes, %u saved, %u iterations):\n%s",
                result.bytesBefore, result.bytesAfter,
                result.bytesSaved(), result.iterations,
                sb.toString().c_str());
    for (const opt::PassStats &stats : result.passStats) {
        std::printf("  %-12s changed the block in %u iteration(s)\n",
                    stats.pass.c_str(), stats.applications);
    }
}

runtime::RuntimeStats
runGuest(bool optimize)
{
    guest::SyntheticProgramConfig config;
    config.seed = 2026;
    config.phases = 3;
    config.phaseIterations = 50;
    config.innerIterations = 30;
    config.dllCount = 2;
    guest::SyntheticProgram synthetic =
        guest::generateSyntheticProgram(config);
    guest::AddressSpace space;
    for (const auto &module : synthetic.program.modules()) {
        space.map(*module);
    }
    cache::UnifiedCacheManager manager(3 * kKiB);
    runtime::Runtime runtime(space, manager, 20);
    runtime.setOptimizeTraces(optimize);
    runtime.start(synthetic.program.entry());
    runtime.run();
    std::printf("  %-12s traces %3zu, cached bytes/trace %5.1f, "
                "misses %llu, saved %s\n",
                optimize ? "optimized:" : "unoptimized:",
                runtime.traceCount(),
                static_cast<double>(
                    manager.stats().insertedBytes) /
                    static_cast<double>(manager.stats().inserts),
                static_cast<unsigned long long>(
                    manager.stats().misses),
                humanBytes(runtime.stats().optimizerBytesSaved)
                    .c_str());
    return runtime.stats();
}

} // namespace

int
main()
{
    demoPipeline();

    std::printf("\n=== effect on cache pressure (same guest, same "
                "3 KB cache) ===\n\n");
    runGuest(false);
    runGuest(true);
    std::printf("\nsmaller traces -> more of them fit -> fewer "
                "conflict misses.\n");
    return 0;
}
