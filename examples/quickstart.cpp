/**
 * @file
 * Quickstart: run a synthetic guest program under the dynamic
 * optimizer runtime with a generational code cache, and print where
 * execution time went.
 *
 * This is the smallest end-to-end use of the library:
 *
 *   1. generate a guest program (phased loops, DLLs),
 *   2. build a GenerationalCacheManager (45%-10%-45%, threshold 1),
 *   3. execute under the Runtime (bb cache, NET trace selection),
 *   4. inspect residency, miss counts, and promotion flows.
 */

#include <cstdio>

#include "codecache/generational_cache.h"
#include "guest/synthetic_program.h"
#include "runtime/runtime.h"
#include "support/format.h"
#include "support/units.h"

int
main()
{
    using namespace gencache;

    // 1. A deterministic synthetic guest program.
    guest::SyntheticProgramConfig program_config;
    program_config.seed = 2003;
    program_config.phases = 3;
    program_config.phaseIterations = 60;
    program_config.innerIterations = 30;
    program_config.dllCount = 2;
    guest::SyntheticProgram synthetic =
        guest::generateSyntheticProgram(program_config);

    guest::AddressSpace space;
    for (const auto &module : synthetic.program.modules()) {
        space.map(*module);
    }

    // 2. A generational code cache: nursery, probation, persistent.
    // Sized well below the trace volume so the generational machinery
    // (evictions, probation, promotions) is visibly exercised.
    cache::GenerationalConfig cache_config =
        cache::GenerationalConfig::fromProportions(
            /*total=*/4 * kKiB, /*nursery=*/0.40,
            /*probation=*/0.20, /*threshold=*/1);
    cache::GenerationalCacheManager manager(cache_config);

    // 3. Execute the guest under the dynamic optimizer.
    runtime::Runtime runtime(space, manager, /*trace_threshold=*/20);
    runtime.start(synthetic.program.entry());
    runtime.run();

    // 4. Report.
    const runtime::RuntimeStats &stats = runtime.stats();
    const cache::ManagerStats &cache_stats = manager.stats();

    std::printf("guest finished: %s\n",
                runtime.finished() ? "yes" : "no");
    std::printf("cache manager:  %s\n", manager.name().c_str());
    std::printf("\n-- execution --\n");
    std::printf("instructions retired:     %s\n",
                withCommas(static_cast<std::int64_t>(
                    stats.totalInstructions())).c_str());
    std::printf("  in trace cache:         %s (%s)\n",
                withCommas(static_cast<std::int64_t>(
                    stats.instructionsInTraces)).c_str(),
                percent(stats.cacheResidency()).c_str());
    std::printf("  interpreted:            %s\n",
                withCommas(static_cast<std::int64_t>(
                    stats.instructionsInterpreted)).c_str());
    std::printf("traces built:             %llu (optimizer saved "
                "%s)\n",
                static_cast<unsigned long long>(stats.tracesBuilt),
                humanBytes(stats.optimizerBytesSaved).c_str());
    std::printf("trace executions:         %llu\n",
                static_cast<unsigned long long>(
                    stats.traceExecutions));
    std::printf("context switches:         %llu\n",
                static_cast<unsigned long long>(
                    stats.contextSwitches));

    std::printf("\n-- code cache --\n");
    std::printf("lookups: %llu   hits: %llu   misses: %llu "
                "(miss rate %s)\n",
                static_cast<unsigned long long>(cache_stats.lookups),
                static_cast<unsigned long long>(cache_stats.hits),
                static_cast<unsigned long long>(cache_stats.misses),
                percent(cache_stats.missRate(), 2).c_str());
    std::printf("promotions: %llu   deletions: %llu   "
                "probation rejections: %llu\n",
                static_cast<unsigned long long>(
                    cache_stats.promotions),
                static_cast<unsigned long long>(cache_stats.deletions),
                static_cast<unsigned long long>(
                    cache_stats.probationRejections));
    for (cache::Generation gen :
         {cache::Generation::Nursery, cache::Generation::Probation,
          cache::Generation::Persistent}) {
        const cache::LocalCache &local = manager.localCache(gen);
        std::printf("%-10s %6s / %6s used, %3zu traces resident\n",
                    cache::generationName(gen),
                    humanBytes(local.usedBytes()).c_str(),
                    humanBytes(local.capacity()).c_str(),
                    local.fragmentCount());
    }

    std::printf("\n-- linker --\n");
    std::printf("links patched: %llu   unpatched: %llu   "
                "relocations: %llu\n",
                static_cast<unsigned long long>(
                    runtime.linker().stats().linksPatched),
                static_cast<unsigned long long>(
                    runtime.linker().stats().linksUnpatched),
                static_cast<unsigned long long>(
                    runtime.linker().stats().relocations));
    return 0;
}
