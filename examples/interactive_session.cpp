/**
 * @file
 * Interactive-application scenario: simulate a Microsoft-Word-like
 * session (the paper's motivating workload) and compare a unified
 * cache against the generational design under the same byte budget.
 *
 * The workload model has the features §3 identifies: a large trace
 * volume, a high insertion rate, transient DLLs whose unloading
 * forces deletions, and a U-shaped trace lifetime distribution.
 */

#include <cstdio>

#include "sim/experiment.h"
#include "stats/table.h"
#include "support/format.h"
#include "tracelog/lifetime.h"
#include "workload/generator.h"
#include "workload/profile.h"

int
main(int argc, char **argv)
{
    using namespace gencache;

    // A scaled-down "word" session (pass --full for paper scale;
    // the default keeps the example snappy).
    workload::BenchmarkProfile profile = workload::findProfile("word");
    bool full = argc > 1 && std::string(argv[1]) == "--full";
    if (!full) {
        profile.durationSec = 10.0;
        profile.finalCacheKb = 1024.0;
    }

    std::printf("simulating '%s' (%s): %.0f seconds of interaction\n",
                profile.name.c_str(), profile.description.c_str(),
                profile.durationSec);

    sim::ExperimentRunner runner(profile);
    const tracelog::AccessLog &log = runner.log();
    std::printf("log: %llu events, %llu traces, %s of trace bytes\n",
                static_cast<unsigned long long>(log.size()),
                static_cast<unsigned long long>(
                    log.createdTraceCount()),
                humanBytes(log.createdTraceBytes()).c_str());

    // Trace lifetimes (the motivation for generations, Fig 6).
    tracelog::LifetimeAnalyzer analyzer(log);
    Histogram lifetimes = analyzer.lifetimeHistogram();
    std::printf("\ntrace lifetimes (fraction of traces):\n");
    std::vector<std::string> labels = lifetimeBucketLabels();
    for (std::size_t bin = 0; bin < lifetimes.binCount(); ++bin) {
        std::printf("  %-7s %s\n", labels[bin].c_str(),
                    percent(lifetimes.binFraction(bin)).c_str());
    }

    // The §6 comparison.
    sim::BenchmarkComparison comparison =
        runner.compare(sim::paperLayouts());
    std::printf("\nmax cache (unbounded): %s; managed budget: %s\n",
                humanBytes(comparison.maxCacheBytes).c_str(),
                humanBytes(comparison.capacityBytes).c_str());

    TextTable table({"configuration", "miss rate", "misses",
                     "overhead (instr)", "vs unified"});
    table.addRow({comparison.unified.manager,
                  percent(comparison.unified.missRate(), 2),
                  withCommas(static_cast<std::int64_t>(
                      comparison.unified.misses)),
                  withCommas(static_cast<std::int64_t>(
                      comparison.unified.overhead.total())),
                  "100.0%"});
    for (std::size_t i = 0; i < comparison.generational.size(); ++i) {
        const sim::SimResult &result = comparison.generational[i];
        table.addRow({result.manager, percent(result.missRate(), 2),
                      withCommas(static_cast<std::int64_t>(
                          result.misses)),
                      withCommas(static_cast<std::int64_t>(
                          result.overhead.total())),
                      fixed(comparison.overheadRatioPct(i), 1) + "%"});
    }
    std::printf("\n%s", table.toString().c_str());

    std::printf("\nprogram-forced evictions (unloaded DLLs): %s of "
                "trace bytes\n",
                percent(static_cast<double>(
                            comparison.unbounded.managerStats
                                .unmapDeletedBytes) /
                        static_cast<double>(
                            comparison.unbounded.createdBytes))
                    .c_str());
    return 0;
}
