/**
 * @file
 * Log workflow tool: generate an access log from a profile (or from a
 * live run of the dynamic optimizer), save it, reload it, and replay
 * it — the exact methodology of the paper's evaluation.
 *
 * Usage:
 *   logreplay_tool generate <benchmark> <path.gclog|path.gclogb>
 *   logreplay_tool live <seed> <path.gclog|path.gclogb>
 *   logreplay_tool replay <path> [capacityKb]
 *   logreplay_tool info <path>
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "codecache/unified_cache.h"
#include "guest/synthetic_program.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "support/format.h"
#include "tracelog/lifetime.h"
#include "tracelog/serialize.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace gencache;

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  logreplay_tool generate <benchmark> <path>\n"
                 "  logreplay_tool live <seed> <path>\n"
                 "  logreplay_tool replay <path> [capacityKb]\n"
                 "  logreplay_tool info <path>\n");
    return 2;
}

int
cmdGenerate(const std::string &benchmark, const std::string &path)
{
    workload::BenchmarkProfile profile =
        workload::findProfile(benchmark);
    // Scale the biggest profiles down for example purposes.
    if (profile.finalCacheKb > 2048.0) {
        profile.finalCacheKb = 2048.0;
        profile.durationSec = std::min(profile.durationSec, 20.0);
    }
    tracelog::AccessLog log = workload::generateWorkload(profile);
    log.validate();
    tracelog::saveLog(log, path);
    std::printf("wrote %llu events (%llu traces, %s) to %s\n",
                static_cast<unsigned long long>(log.size()),
                static_cast<unsigned long long>(
                    log.createdTraceCount()),
                humanBytes(log.createdTraceBytes()).c_str(),
                path.c_str());
    return 0;
}

int
cmdLive(std::uint64_t seed, const std::string &path)
{
    guest::SyntheticProgramConfig config;
    config.seed = seed;
    config.phases = 3;
    config.phaseIterations = 50;
    config.innerIterations = 30;
    config.dllCount = 2;
    guest::SyntheticProgram synthetic =
        guest::generateSyntheticProgram(config);

    guest::AddressSpace space;
    for (const auto &module : synthetic.program.modules()) {
        space.map(*module);
    }
    cache::UnifiedCacheManager manager(0); // unbounded, like the paper
    runtime::Runtime runtime(space, manager, 20);
    runtime.start(synthetic.program.entry());
    runtime.run();

    const tracelog::AccessLog &log = runtime.log();
    log.validate();
    tracelog::saveLog(log, path);
    std::printf("live run: %llu instructions, %s residency; wrote "
                "%llu events to %s\n",
                static_cast<unsigned long long>(
                    runtime.stats().totalInstructions()),
                percent(runtime.stats().cacheResidency()).c_str(),
                static_cast<unsigned long long>(log.size()),
                path.c_str());
    return 0;
}

int
cmdReplay(const std::string &path, double capacity_kb)
{
    tracelog::AccessLog log = tracelog::loadLog(path);
    log.validate();
    std::uint64_t capacity = 0;
    if (capacity_kb <= 0.0) {
        // Default: the paper's 50%-of-maxCache pressure point.
        cache::UnifiedCacheManager unbounded(0);
        sim::CacheSimulator pre(unbounded);
        sim::SimResult first = pre.run(log);
        capacity = std::max<std::uint64_t>(4096, first.peakBytes / 2);
    } else {
        capacity = static_cast<std::uint64_t>(capacity_kb * 1024.0);
    }

    cache::UnifiedCacheManager manager(capacity);
    sim::CacheSimulator simulator(manager);
    sim::SimResult result = simulator.run(log);
    std::printf("replayed '%s' against %s\n",
                log.benchmark().c_str(), manager.name().c_str());
    std::printf("lookups %llu, misses %llu (%s), evict+regen "
                "overhead %s instructions\n",
                static_cast<unsigned long long>(result.lookups),
                static_cast<unsigned long long>(result.misses),
                percent(result.missRate(), 2).c_str(),
                withCommas(static_cast<std::int64_t>(
                    result.overhead.total())).c_str());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    tracelog::AccessLog log = tracelog::loadLog(path);
    log.validate();
    tracelog::LifetimeAnalyzer analyzer(log);
    std::printf("benchmark:  %s\n", log.benchmark().c_str());
    std::printf("duration:   %.2f s\n", usToSeconds(log.duration()));
    std::printf("events:     %llu\n",
                static_cast<unsigned long long>(log.size()));
    std::printf("traces:     %llu (%s)\n",
                static_cast<unsigned long long>(
                    log.createdTraceCount()),
                humanBytes(log.createdTraceBytes()).c_str());
    std::printf("footprint:  %s\n",
                humanBytes(log.footprintBytes()).c_str());
    std::printf("short-lived %s, long-lived %s\n",
                percent(analyzer.shortLivedFraction()).c_str(),
                percent(analyzer.longLivedFraction()).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        return usage();
    }
    std::string command = argv[1];
    if (command == "generate" && argc == 4) {
        return cmdGenerate(argv[2], argv[3]);
    }
    if (command == "live" && argc == 4) {
        return cmdLive(static_cast<std::uint64_t>(
                           std::strtoull(argv[2], nullptr, 10)),
                       argv[3]);
    }
    if (command == "replay" && (argc == 3 || argc == 4)) {
        return cmdReplay(argv[2],
                         argc == 4 ? std::atof(argv[3]) : 0.0);
    }
    if (command == "info" && argc == 3) {
        return cmdInfo(argv[2]);
    }
    return usage();
}
