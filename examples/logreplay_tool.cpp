/**
 * @file
 * Log workflow tool: generate an access log from a profile (or from a
 * live run of the dynamic optimizer), save it, reload it, and replay
 * it — the exact methodology of the paper's evaluation.
 *
 * Usage:
 *   logreplay_tool generate <benchmark> <path.gclog|path.gclogb>
 *   logreplay_tool live <seed> <path.gclog|path.gclogb>
 *   logreplay_tool replay <path> [capacityKb]
 *   logreplay_tool info <path>
 *
 * Options:
 *   --format v1|v2   binary format version written by generate/live
 *                    to .gclogb paths (default v2; text paths and
 *                    loading are unaffected — the reader negotiates
 *                    the version from the file's magic).
 *   --compiled       replay through the compiled columnar log and
 *                    the simulator's batched fast path instead of
 *                    the legacy per-event loop. Results are
 *                    bit-identical; only the speed differs.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "codecache/unified_cache.h"
#include "guest/synthetic_program.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "support/format.h"
#include "tracelog/compiled_log.h"
#include "tracelog/lifetime.h"
#include "tracelog/serialize.h"
#include "workload/generator.h"
#include "workload/profile.h"

namespace {

using namespace gencache;

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  logreplay_tool generate <benchmark> <path>\n"
                 "  logreplay_tool live <seed> <path>\n"
                 "  logreplay_tool replay <path> [capacityKb]\n"
                 "  logreplay_tool info <path>\n"
                 "options:\n"
                 "  --format v1|v2  binary version for generate/live"
                 " (default v2)\n"
                 "  --compiled      replay via the compiled columnar"
                 " fast path\n");
    return 2;
}

int
cmdGenerate(const std::string &benchmark, const std::string &path,
            int binary_version)
{
    workload::BenchmarkProfile profile =
        workload::findProfile(benchmark);
    // Scale the biggest profiles down for example purposes.
    if (profile.finalCacheKb > 2048.0) {
        profile.finalCacheKb = 2048.0;
        profile.durationSec = std::min(profile.durationSec, 20.0);
    }
    tracelog::AccessLog log = workload::generateWorkload(profile);
    log.validate();
    tracelog::saveLog(log, path, binary_version);
    std::printf("wrote %llu events (%llu traces, %s) to %s\n",
                static_cast<unsigned long long>(log.size()),
                static_cast<unsigned long long>(
                    log.createdTraceCount()),
                humanBytes(log.createdTraceBytes()).c_str(),
                path.c_str());
    return 0;
}

int
cmdLive(std::uint64_t seed, const std::string &path,
        int binary_version)
{
    guest::SyntheticProgramConfig config;
    config.seed = seed;
    config.phases = 3;
    config.phaseIterations = 50;
    config.innerIterations = 30;
    config.dllCount = 2;
    guest::SyntheticProgram synthetic =
        guest::generateSyntheticProgram(config);

    guest::AddressSpace space;
    for (const auto &module : synthetic.program.modules()) {
        space.map(*module);
    }
    cache::UnifiedCacheManager manager(0); // unbounded, like the paper
    runtime::Runtime runtime(space, manager, 20);
    runtime.start(synthetic.program.entry());
    runtime.run();

    const tracelog::AccessLog &log = runtime.log();
    log.validate();
    tracelog::saveLog(log, path, binary_version);
    std::printf("live run: %llu instructions, %s residency; wrote "
                "%llu events to %s\n",
                static_cast<unsigned long long>(
                    runtime.stats().totalInstructions()),
                percent(runtime.stats().cacheResidency()).c_str(),
                static_cast<unsigned long long>(log.size()),
                path.c_str());
    return 0;
}

int
cmdReplay(const std::string &path, double capacity_kb, bool compiled)
{
    tracelog::AccessLog log = tracelog::loadLog(path);
    log.validate();
    std::uint64_t capacity = 0;
    if (capacity_kb <= 0.0) {
        // Default: the paper's 50%-of-maxCache pressure point.
        cache::UnifiedCacheManager unbounded(0);
        sim::CacheSimulator pre(unbounded);
        sim::SimResult first = pre.run(log);
        capacity = std::max<std::uint64_t>(4096, first.peakBytes / 2);
    } else {
        capacity = static_cast<std::uint64_t>(capacity_kb * 1024.0);
    }

    cache::UnifiedCacheManager manager(capacity);
    sim::CacheSimulator simulator(manager);
    sim::SimResult result;
    if (compiled) {
        tracelog::CompiledLog fast = tracelog::CompiledLog::compile(log);
        result = simulator.run(fast);
    } else {
        result = simulator.run(log);
    }
    std::printf("replayed '%s' against %s%s\n",
                log.benchmark().c_str(), manager.name().c_str(),
                compiled ? " (compiled fast path)" : "");
    std::printf("lookups %llu, misses %llu (%s), evict+regen "
                "overhead %s instructions\n",
                static_cast<unsigned long long>(result.lookups),
                static_cast<unsigned long long>(result.misses),
                percent(result.missRate(), 2).c_str(),
                withCommas(static_cast<std::int64_t>(
                    result.overhead.total())).c_str());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    tracelog::AccessLog log = tracelog::loadLog(path);
    log.validate();
    tracelog::LifetimeAnalyzer analyzer(log);
    std::printf("benchmark:  %s\n", log.benchmark().c_str());
    std::printf("duration:   %.2f s\n", usToSeconds(log.duration()));
    std::printf("events:     %llu\n",
                static_cast<unsigned long long>(log.size()));
    std::printf("traces:     %llu (%s)\n",
                static_cast<unsigned long long>(
                    log.createdTraceCount()),
                humanBytes(log.createdTraceBytes()).c_str());
    std::printf("footprint:  %s\n",
                humanBytes(log.footprintBytes()).c_str());
    std::printf("short-lived %s, long-lived %s\n",
                percent(analyzer.shortLivedFraction()).c_str(),
                percent(analyzer.longLivedFraction()).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel the options off; what remains are the positional
    // arguments, so every pre-flag invocation works unchanged.
    int binary_version = 2;
    bool compiled = false;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--compiled") {
            compiled = true;
        } else if (arg == "--format") {
            if (i + 1 >= argc) {
                return usage();
            }
            std::string value = argv[++i];
            if (value == "v1") {
                binary_version = 1;
            } else if (value == "v2") {
                binary_version = 2;
            } else {
                return usage();
            }
        } else {
            args.push_back(arg);
        }
    }
    if (args.size() < 2) {
        return usage();
    }
    const std::string &command = args[0];
    if (command == "generate" && args.size() == 3) {
        return cmdGenerate(args[1], args[2], binary_version);
    }
    if (command == "live" && args.size() == 3) {
        return cmdLive(static_cast<std::uint64_t>(
                           std::strtoull(args[1].c_str(), nullptr,
                                         10)),
                       args[2], binary_version);
    }
    if (command == "replay" &&
        (args.size() == 2 || args.size() == 3)) {
        return cmdReplay(args[1],
                         args.size() == 3 ? std::atof(args[2].c_str())
                                          : 0.0,
                         compiled);
    }
    if (command == "info" && args.size() == 2) {
        return cmdInfo(args[1]);
    }
    return usage();
}
