/**
 * @file
 * Policy explorer: a small CLI to run any benchmark profile against
 * any cache configuration.
 *
 * Usage:
 *   policy_explorer [benchmark] [pressure] [nursery%] [probation%]
 *                   [threshold]
 *
 *   benchmark   profile name (default "gzip"; see workload/profile.h)
 *   pressure    managed-cache fraction of maxCache (default 0.5)
 *   nursery%    nursery share of the budget (default 45)
 *   probation%  probation share of the budget (default 10)
 *   threshold   probation promotion threshold (default 1)
 *
 * Prints the unified baseline and the requested generational layout
 * side by side, plus the per-generation flow statistics.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "codecache/generational_cache.h"
#include "sim/experiment.h"
#include "stats/table.h"
#include "support/format.h"
#include "workload/profile.h"

int
main(int argc, char **argv)
{
    using namespace gencache;

    std::string benchmark = argc > 1 ? argv[1] : "gzip";
    double pressure = argc > 2 ? std::atof(argv[2]) : 0.5;
    double nursery_pct = argc > 3 ? std::atof(argv[3]) : 45.0;
    double probation_pct = argc > 4 ? std::atof(argv[4]) : 10.0;
    unsigned threshold =
        argc > 5 ? static_cast<unsigned>(std::atoi(argv[5])) : 1;

    workload::BenchmarkProfile profile =
        workload::findProfile(benchmark);
    // Keep the example responsive on the big interactive profiles.
    if (profile.finalCacheKb > 4096.0) {
        std::printf("(scaling '%s' down for interactive use)\n",
                    benchmark.c_str());
        profile.finalCacheKb = 4096.0;
        profile.durationSec = std::min(profile.durationSec, 30.0);
    }

    sim::ExperimentRunner runner(profile);
    sim::SimResult unbounded = runner.runUnbounded();
    auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(unbounded.peakBytes) * pressure);
    if (capacity < 4096) {
        capacity = 4096;
    }

    std::printf("benchmark '%s': maxCache %s, managed budget %s "
                "(pressure %.2f)\n",
                benchmark.c_str(),
                humanBytes(unbounded.peakBytes).c_str(),
                humanBytes(capacity).c_str(), pressure);

    sim::SimResult unified = runner.runUnified(capacity);

    sim::GenerationalLayout layout;
    layout.label = format("{}-{}-{} thr {}",
                          static_cast<int>(nursery_pct),
                          static_cast<int>(probation_pct),
                          static_cast<int>(100.0 - nursery_pct -
                                           probation_pct),
                          threshold);
    layout.nurseryFrac = nursery_pct / 100.0;
    layout.probationFrac = probation_pct / 100.0;
    layout.promotionThreshold = threshold;
    sim::SimResult generational =
        runner.runGenerational(capacity, layout);

    TextTable table({"metric", "unified", layout.label});
    auto row = [&](const char *name, std::uint64_t a,
                   std::uint64_t b) {
        table.addRow({name,
                      withCommas(static_cast<std::int64_t>(a)),
                      withCommas(static_cast<std::int64_t>(b))});
    };
    row("lookups", unified.lookups, generational.lookups);
    row("misses", unified.misses, generational.misses);
    table.addRow({"miss rate", percent(unified.missRate(), 2),
                  percent(generational.missRate(), 2)});
    row("evict instr", unified.overhead.evictions,
        generational.overhead.evictions);
    row("promote instr", unified.overhead.promotions,
        generational.overhead.promotions);
    row("total overhead", unified.overhead.total(),
        generational.overhead.total());
    double ratio = unified.overhead.total() == 0
                       ? 100.0
                       : 100.0 *
                             static_cast<double>(
                                 generational.overhead.total()) /
                             static_cast<double>(
                                 unified.overhead.total());
    table.addRow({"overhead ratio", "100.0%", fixed(ratio, 1) + "%"});
    std::printf("\n%s", table.toString().c_str());

    double reduction =
        unified.missRate() > 0.0
            ? (1.0 - generational.missRate() / unified.missRate()) *
                  100.0
            : 0.0;
    std::printf("\nmiss rate reduction vs unified: %.1f%%\n",
                reduction);

    // Per-generation flow statistics (re-run to inspect the manager).
    cache::GenerationalCacheManager manager(
        layout.toConfig(capacity));
    sim::CacheSimulator inspect(manager);
    inspect.run(runner.log());
    std::printf("\nper-generation flows:\n");
    std::printf("  %-10s %10s %12s %12s %10s\n", "cache", "hits",
                "promote-in", "promote-out", "deleted");
    for (cache::Generation gen :
         {cache::Generation::Nursery, cache::Generation::Probation,
          cache::Generation::Persistent}) {
        const cache::GenerationStats &gs =
            manager.generationStats(gen);
        std::printf("  %-10s %10llu %12llu %12llu %10llu\n",
                    cache::generationName(gen),
                    static_cast<unsigned long long>(gs.hits),
                    static_cast<unsigned long long>(gs.promotionsIn),
                    static_cast<unsigned long long>(gs.promotionsOut),
                    static_cast<unsigned long long>(gs.deletions));
    }
    std::printf("  probation rejections: %llu, placement failures: "
                "%llu\n",
                static_cast<unsigned long long>(
                    manager.stats().probationRejections),
                static_cast<unsigned long long>(
                    manager.stats().placementFailures));
    return 0;
}
