file(REMOVE_RECURSE
  "libgencache_runtime.a"
)
