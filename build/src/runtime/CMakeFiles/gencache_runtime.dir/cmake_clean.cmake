file(REMOVE_RECURSE
  "CMakeFiles/gencache_runtime.dir/bb_cache.cc.o"
  "CMakeFiles/gencache_runtime.dir/bb_cache.cc.o.d"
  "CMakeFiles/gencache_runtime.dir/linker.cc.o"
  "CMakeFiles/gencache_runtime.dir/linker.cc.o.d"
  "CMakeFiles/gencache_runtime.dir/runtime.cc.o"
  "CMakeFiles/gencache_runtime.dir/runtime.cc.o.d"
  "CMakeFiles/gencache_runtime.dir/trace.cc.o"
  "CMakeFiles/gencache_runtime.dir/trace.cc.o.d"
  "CMakeFiles/gencache_runtime.dir/trace_head.cc.o"
  "CMakeFiles/gencache_runtime.dir/trace_head.cc.o.d"
  "libgencache_runtime.a"
  "libgencache_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
