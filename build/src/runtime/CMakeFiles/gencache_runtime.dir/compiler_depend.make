# Empty compiler generated dependencies file for gencache_runtime.
# This may be replaced when dependencies are built.
