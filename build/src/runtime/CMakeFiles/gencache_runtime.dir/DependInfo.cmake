
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/bb_cache.cc" "src/runtime/CMakeFiles/gencache_runtime.dir/bb_cache.cc.o" "gcc" "src/runtime/CMakeFiles/gencache_runtime.dir/bb_cache.cc.o.d"
  "/root/repo/src/runtime/linker.cc" "src/runtime/CMakeFiles/gencache_runtime.dir/linker.cc.o" "gcc" "src/runtime/CMakeFiles/gencache_runtime.dir/linker.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/runtime/CMakeFiles/gencache_runtime.dir/runtime.cc.o" "gcc" "src/runtime/CMakeFiles/gencache_runtime.dir/runtime.cc.o.d"
  "/root/repo/src/runtime/trace.cc" "src/runtime/CMakeFiles/gencache_runtime.dir/trace.cc.o" "gcc" "src/runtime/CMakeFiles/gencache_runtime.dir/trace.cc.o.d"
  "/root/repo/src/runtime/trace_head.cc" "src/runtime/CMakeFiles/gencache_runtime.dir/trace_head.cc.o" "gcc" "src/runtime/CMakeFiles/gencache_runtime.dir/trace_head.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codecache/CMakeFiles/gencache_codecache.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/gencache_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/gencache_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gencache_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/gencache_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/tracelog/CMakeFiles/gencache_tracelog.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gencache_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gencache_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
