# Empty dependencies file for gencache_codecache.
# This may be replaced when dependencies are built.
