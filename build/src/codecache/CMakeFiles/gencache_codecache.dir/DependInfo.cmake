
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codecache/cache_region.cc" "src/codecache/CMakeFiles/gencache_codecache.dir/cache_region.cc.o" "gcc" "src/codecache/CMakeFiles/gencache_codecache.dir/cache_region.cc.o.d"
  "/root/repo/src/codecache/fragment.cc" "src/codecache/CMakeFiles/gencache_codecache.dir/fragment.cc.o" "gcc" "src/codecache/CMakeFiles/gencache_codecache.dir/fragment.cc.o.d"
  "/root/repo/src/codecache/generational_cache.cc" "src/codecache/CMakeFiles/gencache_codecache.dir/generational_cache.cc.o" "gcc" "src/codecache/CMakeFiles/gencache_codecache.dir/generational_cache.cc.o.d"
  "/root/repo/src/codecache/list_cache.cc" "src/codecache/CMakeFiles/gencache_codecache.dir/list_cache.cc.o" "gcc" "src/codecache/CMakeFiles/gencache_codecache.dir/list_cache.cc.o.d"
  "/root/repo/src/codecache/local_cache.cc" "src/codecache/CMakeFiles/gencache_codecache.dir/local_cache.cc.o" "gcc" "src/codecache/CMakeFiles/gencache_codecache.dir/local_cache.cc.o.d"
  "/root/repo/src/codecache/pseudo_circular_cache.cc" "src/codecache/CMakeFiles/gencache_codecache.dir/pseudo_circular_cache.cc.o" "gcc" "src/codecache/CMakeFiles/gencache_codecache.dir/pseudo_circular_cache.cc.o.d"
  "/root/repo/src/codecache/unified_cache.cc" "src/codecache/CMakeFiles/gencache_codecache.dir/unified_cache.cc.o" "gcc" "src/codecache/CMakeFiles/gencache_codecache.dir/unified_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gencache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
