file(REMOVE_RECURSE
  "libgencache_codecache.a"
)
