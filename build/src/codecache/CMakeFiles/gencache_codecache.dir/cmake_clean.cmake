file(REMOVE_RECURSE
  "CMakeFiles/gencache_codecache.dir/cache_region.cc.o"
  "CMakeFiles/gencache_codecache.dir/cache_region.cc.o.d"
  "CMakeFiles/gencache_codecache.dir/fragment.cc.o"
  "CMakeFiles/gencache_codecache.dir/fragment.cc.o.d"
  "CMakeFiles/gencache_codecache.dir/generational_cache.cc.o"
  "CMakeFiles/gencache_codecache.dir/generational_cache.cc.o.d"
  "CMakeFiles/gencache_codecache.dir/list_cache.cc.o"
  "CMakeFiles/gencache_codecache.dir/list_cache.cc.o.d"
  "CMakeFiles/gencache_codecache.dir/local_cache.cc.o"
  "CMakeFiles/gencache_codecache.dir/local_cache.cc.o.d"
  "CMakeFiles/gencache_codecache.dir/pseudo_circular_cache.cc.o"
  "CMakeFiles/gencache_codecache.dir/pseudo_circular_cache.cc.o.d"
  "CMakeFiles/gencache_codecache.dir/unified_cache.cc.o"
  "CMakeFiles/gencache_codecache.dir/unified_cache.cc.o.d"
  "libgencache_codecache.a"
  "libgencache_codecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_codecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
