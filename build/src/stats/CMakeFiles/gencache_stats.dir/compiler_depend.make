# Empty compiler generated dependencies file for gencache_stats.
# This may be replaced when dependencies are built.
