file(REMOVE_RECURSE
  "CMakeFiles/gencache_stats.dir/histogram.cc.o"
  "CMakeFiles/gencache_stats.dir/histogram.cc.o.d"
  "CMakeFiles/gencache_stats.dir/summary.cc.o"
  "CMakeFiles/gencache_stats.dir/summary.cc.o.d"
  "CMakeFiles/gencache_stats.dir/table.cc.o"
  "CMakeFiles/gencache_stats.dir/table.cc.o.d"
  "libgencache_stats.a"
  "libgencache_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
