file(REMOVE_RECURSE
  "libgencache_stats.a"
)
