file(REMOVE_RECURSE
  "CMakeFiles/gencache_support.dir/format.cc.o"
  "CMakeFiles/gencache_support.dir/format.cc.o.d"
  "CMakeFiles/gencache_support.dir/logging.cc.o"
  "CMakeFiles/gencache_support.dir/logging.cc.o.d"
  "CMakeFiles/gencache_support.dir/rng.cc.o"
  "CMakeFiles/gencache_support.dir/rng.cc.o.d"
  "libgencache_support.a"
  "libgencache_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
