# Empty compiler generated dependencies file for gencache_support.
# This may be replaced when dependencies are built.
