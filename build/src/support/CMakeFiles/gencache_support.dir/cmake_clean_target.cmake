file(REMOVE_RECURSE
  "libgencache_support.a"
)
