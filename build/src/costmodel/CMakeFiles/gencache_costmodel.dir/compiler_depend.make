# Empty compiler generated dependencies file for gencache_costmodel.
# This may be replaced when dependencies are built.
