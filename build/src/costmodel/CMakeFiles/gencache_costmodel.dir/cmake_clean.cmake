file(REMOVE_RECURSE
  "CMakeFiles/gencache_costmodel.dir/cost_model.cc.o"
  "CMakeFiles/gencache_costmodel.dir/cost_model.cc.o.d"
  "libgencache_costmodel.a"
  "libgencache_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
