file(REMOVE_RECURSE
  "libgencache_costmodel.a"
)
