# Empty compiler generated dependencies file for gencache_sim.
# This may be replaced when dependencies are built.
