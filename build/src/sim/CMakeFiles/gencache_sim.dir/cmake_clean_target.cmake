file(REMOVE_RECURSE
  "libgencache_sim.a"
)
