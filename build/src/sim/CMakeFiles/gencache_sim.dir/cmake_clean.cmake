file(REMOVE_RECURSE
  "CMakeFiles/gencache_sim.dir/experiment.cc.o"
  "CMakeFiles/gencache_sim.dir/experiment.cc.o.d"
  "CMakeFiles/gencache_sim.dir/simulator.cc.o"
  "CMakeFiles/gencache_sim.dir/simulator.cc.o.d"
  "CMakeFiles/gencache_sim.dir/sweep.cc.o"
  "CMakeFiles/gencache_sim.dir/sweep.cc.o.d"
  "libgencache_sim.a"
  "libgencache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
