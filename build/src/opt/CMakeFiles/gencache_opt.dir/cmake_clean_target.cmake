file(REMOVE_RECURSE
  "libgencache_opt.a"
)
