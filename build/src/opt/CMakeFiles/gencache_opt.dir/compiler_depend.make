# Empty compiler generated dependencies file for gencache_opt.
# This may be replaced when dependencies are built.
