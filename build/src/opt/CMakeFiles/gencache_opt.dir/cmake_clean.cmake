file(REMOVE_RECURSE
  "CMakeFiles/gencache_opt.dir/passes.cc.o"
  "CMakeFiles/gencache_opt.dir/passes.cc.o.d"
  "CMakeFiles/gencache_opt.dir/superblock.cc.o"
  "CMakeFiles/gencache_opt.dir/superblock.cc.o.d"
  "libgencache_opt.a"
  "libgencache_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
