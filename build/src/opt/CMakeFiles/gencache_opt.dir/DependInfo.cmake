
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/passes.cc" "src/opt/CMakeFiles/gencache_opt.dir/passes.cc.o" "gcc" "src/opt/CMakeFiles/gencache_opt.dir/passes.cc.o.d"
  "/root/repo/src/opt/superblock.cc" "src/opt/CMakeFiles/gencache_opt.dir/superblock.cc.o" "gcc" "src/opt/CMakeFiles/gencache_opt.dir/superblock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/gencache_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gencache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
