
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/address_space.cc" "src/guest/CMakeFiles/gencache_guest.dir/address_space.cc.o" "gcc" "src/guest/CMakeFiles/gencache_guest.dir/address_space.cc.o.d"
  "/root/repo/src/guest/module.cc" "src/guest/CMakeFiles/gencache_guest.dir/module.cc.o" "gcc" "src/guest/CMakeFiles/gencache_guest.dir/module.cc.o.d"
  "/root/repo/src/guest/program.cc" "src/guest/CMakeFiles/gencache_guest.dir/program.cc.o" "gcc" "src/guest/CMakeFiles/gencache_guest.dir/program.cc.o.d"
  "/root/repo/src/guest/program_builder.cc" "src/guest/CMakeFiles/gencache_guest.dir/program_builder.cc.o" "gcc" "src/guest/CMakeFiles/gencache_guest.dir/program_builder.cc.o.d"
  "/root/repo/src/guest/synthetic_program.cc" "src/guest/CMakeFiles/gencache_guest.dir/synthetic_program.cc.o" "gcc" "src/guest/CMakeFiles/gencache_guest.dir/synthetic_program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/gencache_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gencache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
