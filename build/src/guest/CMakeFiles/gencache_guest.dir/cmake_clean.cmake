file(REMOVE_RECURSE
  "CMakeFiles/gencache_guest.dir/address_space.cc.o"
  "CMakeFiles/gencache_guest.dir/address_space.cc.o.d"
  "CMakeFiles/gencache_guest.dir/module.cc.o"
  "CMakeFiles/gencache_guest.dir/module.cc.o.d"
  "CMakeFiles/gencache_guest.dir/program.cc.o"
  "CMakeFiles/gencache_guest.dir/program.cc.o.d"
  "CMakeFiles/gencache_guest.dir/program_builder.cc.o"
  "CMakeFiles/gencache_guest.dir/program_builder.cc.o.d"
  "CMakeFiles/gencache_guest.dir/synthetic_program.cc.o"
  "CMakeFiles/gencache_guest.dir/synthetic_program.cc.o.d"
  "libgencache_guest.a"
  "libgencache_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
