file(REMOVE_RECURSE
  "libgencache_guest.a"
)
