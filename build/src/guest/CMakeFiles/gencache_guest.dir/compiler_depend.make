# Empty compiler generated dependencies file for gencache_guest.
# This may be replaced when dependencies are built.
