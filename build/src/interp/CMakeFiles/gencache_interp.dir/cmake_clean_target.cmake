file(REMOVE_RECURSE
  "libgencache_interp.a"
)
