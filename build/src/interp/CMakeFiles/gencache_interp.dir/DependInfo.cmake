
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/cpu_state.cc" "src/interp/CMakeFiles/gencache_interp.dir/cpu_state.cc.o" "gcc" "src/interp/CMakeFiles/gencache_interp.dir/cpu_state.cc.o.d"
  "/root/repo/src/interp/interpreter.cc" "src/interp/CMakeFiles/gencache_interp.dir/interpreter.cc.o" "gcc" "src/interp/CMakeFiles/gencache_interp.dir/interpreter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/gencache_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gencache_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gencache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
