file(REMOVE_RECURSE
  "CMakeFiles/gencache_interp.dir/cpu_state.cc.o"
  "CMakeFiles/gencache_interp.dir/cpu_state.cc.o.d"
  "CMakeFiles/gencache_interp.dir/interpreter.cc.o"
  "CMakeFiles/gencache_interp.dir/interpreter.cc.o.d"
  "libgencache_interp.a"
  "libgencache_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
