# Empty compiler generated dependencies file for gencache_interp.
# This may be replaced when dependencies are built.
