file(REMOVE_RECURSE
  "libgencache_tracelog.a"
)
