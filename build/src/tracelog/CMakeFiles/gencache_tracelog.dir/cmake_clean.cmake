file(REMOVE_RECURSE
  "CMakeFiles/gencache_tracelog.dir/event.cc.o"
  "CMakeFiles/gencache_tracelog.dir/event.cc.o.d"
  "CMakeFiles/gencache_tracelog.dir/lifetime.cc.o"
  "CMakeFiles/gencache_tracelog.dir/lifetime.cc.o.d"
  "CMakeFiles/gencache_tracelog.dir/serialize.cc.o"
  "CMakeFiles/gencache_tracelog.dir/serialize.cc.o.d"
  "libgencache_tracelog.a"
  "libgencache_tracelog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_tracelog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
