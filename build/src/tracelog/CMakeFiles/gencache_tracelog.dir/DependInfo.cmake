
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracelog/event.cc" "src/tracelog/CMakeFiles/gencache_tracelog.dir/event.cc.o" "gcc" "src/tracelog/CMakeFiles/gencache_tracelog.dir/event.cc.o.d"
  "/root/repo/src/tracelog/lifetime.cc" "src/tracelog/CMakeFiles/gencache_tracelog.dir/lifetime.cc.o" "gcc" "src/tracelog/CMakeFiles/gencache_tracelog.dir/lifetime.cc.o.d"
  "/root/repo/src/tracelog/serialize.cc" "src/tracelog/CMakeFiles/gencache_tracelog.dir/serialize.cc.o" "gcc" "src/tracelog/CMakeFiles/gencache_tracelog.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codecache/CMakeFiles/gencache_codecache.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gencache_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gencache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
