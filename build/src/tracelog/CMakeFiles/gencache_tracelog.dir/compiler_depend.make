# Empty compiler generated dependencies file for gencache_tracelog.
# This may be replaced when dependencies are built.
