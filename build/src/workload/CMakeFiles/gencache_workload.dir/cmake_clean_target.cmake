file(REMOVE_RECURSE
  "libgencache_workload.a"
)
