file(REMOVE_RECURSE
  "CMakeFiles/gencache_workload.dir/generator.cc.o"
  "CMakeFiles/gencache_workload.dir/generator.cc.o.d"
  "CMakeFiles/gencache_workload.dir/profile.cc.o"
  "CMakeFiles/gencache_workload.dir/profile.cc.o.d"
  "libgencache_workload.a"
  "libgencache_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
