# Empty dependencies file for gencache_workload.
# This may be replaced when dependencies are built.
