# Empty compiler generated dependencies file for gencache_isa.
# This may be replaced when dependencies are built.
