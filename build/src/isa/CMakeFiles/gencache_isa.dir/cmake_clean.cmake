file(REMOVE_RECURSE
  "CMakeFiles/gencache_isa.dir/basic_block.cc.o"
  "CMakeFiles/gencache_isa.dir/basic_block.cc.o.d"
  "CMakeFiles/gencache_isa.dir/instruction.cc.o"
  "CMakeFiles/gencache_isa.dir/instruction.cc.o.d"
  "libgencache_isa.a"
  "libgencache_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencache_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
