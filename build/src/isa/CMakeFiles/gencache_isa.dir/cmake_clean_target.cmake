file(REMOVE_RECURSE
  "libgencache_isa.a"
)
