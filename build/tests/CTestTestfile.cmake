# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_guest[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_cache_region[1]_include.cmake")
include("/root/repo/build/tests/test_local_caches[1]_include.cmake")
include("/root/repo/build/tests/test_unified[1]_include.cmake")
include("/root/repo/build/tests/test_generational[1]_include.cmake")
include("/root/repo/build/tests/test_tracelog[1]_include.cmake")
include("/root/repo/build/tests/test_costmodel[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
