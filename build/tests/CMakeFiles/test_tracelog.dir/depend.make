# Empty dependencies file for test_tracelog.
# This may be replaced when dependencies are built.
