file(REMOVE_RECURSE
  "CMakeFiles/test_tracelog.dir/test_tracelog.cc.o"
  "CMakeFiles/test_tracelog.dir/test_tracelog.cc.o.d"
  "test_tracelog"
  "test_tracelog.pdb"
  "test_tracelog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracelog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
