file(REMOVE_RECURSE
  "CMakeFiles/test_local_caches.dir/test_local_caches.cc.o"
  "CMakeFiles/test_local_caches.dir/test_local_caches.cc.o.d"
  "test_local_caches"
  "test_local_caches.pdb"
  "test_local_caches[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
