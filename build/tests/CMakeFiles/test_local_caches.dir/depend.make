# Empty dependencies file for test_local_caches.
# This may be replaced when dependencies are built.
