# Empty dependencies file for test_unified.
# This may be replaced when dependencies are built.
