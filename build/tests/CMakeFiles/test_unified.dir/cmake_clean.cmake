file(REMOVE_RECURSE
  "CMakeFiles/test_unified.dir/test_unified.cc.o"
  "CMakeFiles/test_unified.dir/test_unified.cc.o.d"
  "test_unified"
  "test_unified.pdb"
  "test_unified[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
