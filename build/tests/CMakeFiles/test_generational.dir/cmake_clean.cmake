file(REMOVE_RECURSE
  "CMakeFiles/test_generational.dir/test_generational.cc.o"
  "CMakeFiles/test_generational.dir/test_generational.cc.o.d"
  "test_generational"
  "test_generational.pdb"
  "test_generational[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
