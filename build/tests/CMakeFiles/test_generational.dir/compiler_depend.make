# Empty compiler generated dependencies file for test_generational.
# This may be replaced when dependencies are built.
