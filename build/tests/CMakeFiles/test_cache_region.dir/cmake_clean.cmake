file(REMOVE_RECURSE
  "CMakeFiles/test_cache_region.dir/test_cache_region.cc.o"
  "CMakeFiles/test_cache_region.dir/test_cache_region.cc.o.d"
  "test_cache_region"
  "test_cache_region.pdb"
  "test_cache_region[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
