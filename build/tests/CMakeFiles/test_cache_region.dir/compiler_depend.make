# Empty compiler generated dependencies file for test_cache_region.
# This may be replaced when dependencies are built.
