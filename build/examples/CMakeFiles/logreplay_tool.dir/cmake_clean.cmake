file(REMOVE_RECURSE
  "CMakeFiles/logreplay_tool.dir/logreplay_tool.cpp.o"
  "CMakeFiles/logreplay_tool.dir/logreplay_tool.cpp.o.d"
  "logreplay_tool"
  "logreplay_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logreplay_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
