# Empty compiler generated dependencies file for logreplay_tool.
# This may be replaced when dependencies are built.
