
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/policy_explorer.cpp" "examples/CMakeFiles/policy_explorer.dir/policy_explorer.cpp.o" "gcc" "examples/CMakeFiles/policy_explorer.dir/policy_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/gencache_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/gencache_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/gencache_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/gencache_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gencache_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gencache_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gencache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tracelog/CMakeFiles/gencache_tracelog.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gencache_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/gencache_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/codecache/CMakeFiles/gencache_codecache.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gencache_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
