# Empty dependencies file for trace_optimizer_demo.
# This may be replaced when dependencies are built.
