file(REMOVE_RECURSE
  "CMakeFiles/trace_optimizer_demo.dir/trace_optimizer_demo.cpp.o"
  "CMakeFiles/trace_optimizer_demo.dir/trace_optimizer_demo.cpp.o.d"
  "trace_optimizer_demo"
  "trace_optimizer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_optimizer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
