file(REMOVE_RECURSE
  "CMakeFiles/fig11_overhead_ratio.dir/fig11_overhead_ratio.cc.o"
  "CMakeFiles/fig11_overhead_ratio.dir/fig11_overhead_ratio.cc.o.d"
  "fig11_overhead_ratio"
  "fig11_overhead_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_overhead_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
