# Empty dependencies file for fig11_overhead_ratio.
# This may be replaced when dependencies are built.
