# Empty dependencies file for fig10_misses_eliminated.
# This may be replaced when dependencies are built.
