file(REMOVE_RECURSE
  "CMakeFiles/fig10_misses_eliminated.dir/fig10_misses_eliminated.cc.o"
  "CMakeFiles/fig10_misses_eliminated.dir/fig10_misses_eliminated.cc.o.d"
  "fig10_misses_eliminated"
  "fig10_misses_eliminated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_misses_eliminated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
