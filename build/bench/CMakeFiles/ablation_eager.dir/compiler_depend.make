# Empty compiler generated dependencies file for ablation_eager.
# This may be replaced when dependencies are built.
