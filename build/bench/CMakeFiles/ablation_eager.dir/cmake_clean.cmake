file(REMOVE_RECURSE
  "CMakeFiles/ablation_eager.dir/ablation_eager.cc.o"
  "CMakeFiles/ablation_eager.dir/ablation_eager.cc.o.d"
  "ablation_eager"
  "ablation_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
