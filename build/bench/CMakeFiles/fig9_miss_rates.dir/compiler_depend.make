# Empty compiler generated dependencies file for fig9_miss_rates.
# This may be replaced when dependencies are built.
