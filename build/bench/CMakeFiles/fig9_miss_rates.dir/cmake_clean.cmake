file(REMOVE_RECURSE
  "CMakeFiles/fig9_miss_rates.dir/fig9_miss_rates.cc.o"
  "CMakeFiles/fig9_miss_rates.dir/fig9_miss_rates.cc.o.d"
  "fig9_miss_rates"
  "fig9_miss_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_miss_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
