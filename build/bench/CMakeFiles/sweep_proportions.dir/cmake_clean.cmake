file(REMOVE_RECURSE
  "CMakeFiles/sweep_proportions.dir/sweep_proportions.cc.o"
  "CMakeFiles/sweep_proportions.dir/sweep_proportions.cc.o.d"
  "sweep_proportions"
  "sweep_proportions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_proportions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
