# Empty compiler generated dependencies file for sweep_proportions.
# This may be replaced when dependencies are built.
