# Empty dependencies file for ablation_pressure.
# This may be replaced when dependencies are built.
