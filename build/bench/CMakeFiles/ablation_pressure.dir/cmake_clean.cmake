file(REMOVE_RECURSE
  "CMakeFiles/ablation_pressure.dir/ablation_pressure.cc.o"
  "CMakeFiles/ablation_pressure.dir/ablation_pressure.cc.o.d"
  "ablation_pressure"
  "ablation_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
