file(REMOVE_RECURSE
  "CMakeFiles/fig2_code_expansion.dir/fig2_code_expansion.cc.o"
  "CMakeFiles/fig2_code_expansion.dir/fig2_code_expansion.cc.o.d"
  "fig2_code_expansion"
  "fig2_code_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_code_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
