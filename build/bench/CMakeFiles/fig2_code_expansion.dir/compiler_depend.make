# Empty compiler generated dependencies file for fig2_code_expansion.
# This may be replaced when dependencies are built.
