file(REMOVE_RECURSE
  "CMakeFiles/fig3_insertion_rate.dir/fig3_insertion_rate.cc.o"
  "CMakeFiles/fig3_insertion_rate.dir/fig3_insertion_rate.cc.o.d"
  "fig3_insertion_rate"
  "fig3_insertion_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_insertion_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
