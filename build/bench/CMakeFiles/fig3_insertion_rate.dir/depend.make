# Empty dependencies file for fig3_insertion_rate.
# This may be replaced when dependencies are built.
