file(REMOVE_RECURSE
  "CMakeFiles/table1_benchmarks.dir/table1_benchmarks.cc.o"
  "CMakeFiles/table1_benchmarks.dir/table1_benchmarks.cc.o.d"
  "table1_benchmarks"
  "table1_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
