file(REMOVE_RECURSE
  "CMakeFiles/table2_costmodel.dir/table2_costmodel.cc.o"
  "CMakeFiles/table2_costmodel.dir/table2_costmodel.cc.o.d"
  "table2_costmodel"
  "table2_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
