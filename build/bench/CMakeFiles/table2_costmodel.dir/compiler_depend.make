# Empty compiler generated dependencies file for table2_costmodel.
# This may be replaced when dependencies are built.
