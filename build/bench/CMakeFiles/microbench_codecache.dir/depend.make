# Empty dependencies file for microbench_codecache.
# This may be replaced when dependencies are built.
