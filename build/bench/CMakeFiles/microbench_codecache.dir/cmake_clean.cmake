file(REMOVE_RECURSE
  "CMakeFiles/microbench_codecache.dir/microbench_codecache.cc.o"
  "CMakeFiles/microbench_codecache.dir/microbench_codecache.cc.o.d"
  "microbench_codecache"
  "microbench_codecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_codecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
