# Empty dependencies file for ablation_local_policy.
# This may be replaced when dependencies are built.
