file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_policy.dir/ablation_local_policy.cc.o"
  "CMakeFiles/ablation_local_policy.dir/ablation_local_policy.cc.o.d"
  "ablation_local_policy"
  "ablation_local_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
