file(REMOVE_RECURSE
  "CMakeFiles/fig1_max_cache_size.dir/fig1_max_cache_size.cc.o"
  "CMakeFiles/fig1_max_cache_size.dir/fig1_max_cache_size.cc.o.d"
  "fig1_max_cache_size"
  "fig1_max_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_max_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
