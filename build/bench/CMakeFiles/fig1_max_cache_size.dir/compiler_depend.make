# Empty compiler generated dependencies file for fig1_max_cache_size.
# This may be replaced when dependencies are built.
