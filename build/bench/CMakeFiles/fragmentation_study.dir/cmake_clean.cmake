file(REMOVE_RECURSE
  "CMakeFiles/fragmentation_study.dir/fragmentation_study.cc.o"
  "CMakeFiles/fragmentation_study.dir/fragmentation_study.cc.o.d"
  "fragmentation_study"
  "fragmentation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragmentation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
