# Empty dependencies file for fragmentation_study.
# This may be replaced when dependencies are built.
