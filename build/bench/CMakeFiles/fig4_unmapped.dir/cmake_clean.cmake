file(REMOVE_RECURSE
  "CMakeFiles/fig4_unmapped.dir/fig4_unmapped.cc.o"
  "CMakeFiles/fig4_unmapped.dir/fig4_unmapped.cc.o.d"
  "fig4_unmapped"
  "fig4_unmapped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_unmapped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
