# Empty dependencies file for fig4_unmapped.
# This may be replaced when dependencies are built.
