# Empty compiler generated dependencies file for fig6_lifetimes.
# This may be replaced when dependencies are built.
