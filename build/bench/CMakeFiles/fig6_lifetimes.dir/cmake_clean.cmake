file(REMOVE_RECURSE
  "CMakeFiles/fig6_lifetimes.dir/fig6_lifetimes.cc.o"
  "CMakeFiles/fig6_lifetimes.dir/fig6_lifetimes.cc.o.d"
  "fig6_lifetimes"
  "fig6_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
