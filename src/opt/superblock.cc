#include "opt/superblock.h"

#include "support/format.h"
#include "support/logging.h"

namespace gencache::opt {

void
Superblock::append(const isa::Instruction &inst, bool side_exit)
{
    if (side_exit && !isa::isConditionalBranch(inst.opcode)) {
        GENCACHE_PANIC("only conditional branches can be side exits");
    }
    insts_.push_back(SbInst{inst, side_exit});
}

std::uint32_t
Superblock::codeBytes() const
{
    std::uint32_t bytes = 0;
    for (const SbInst &entry : insts_) {
        bytes += entry.inst.sizeBytes();
    }
    return bytes;
}

std::size_t
Superblock::sideExitCount() const
{
    std::size_t count = 0;
    for (const SbInst &entry : insts_) {
        if (entry.sideExit) {
            ++count;
        }
    }
    return count;
}

std::string
Superblock::toString() const
{
    std::string out = format("superblock @{} ({} insts, {} bytes):\n",
                             entry_, insts_.size(), codeBytes());
    for (const SbInst &entry : insts_) {
        out += format("  {}{}\n", entry.inst.toString(),
                      entry.sideExit ? "   ; side exit" : "");
    }
    return out;
}

Superblock
buildSuperblock(const std::vector<const isa::BasicBlock *> &blocks)
{
    if (blocks.empty()) {
        GENCACHE_PANIC("buildSuperblock on empty path");
    }
    Superblock sb(blocks.front()->startAddr());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const isa::BasicBlock *block = blocks[i];
        const isa::BasicBlock *next =
            i + 1 < blocks.size() ? blocks[i + 1] : nullptr;
        const std::vector<isa::Instruction> &insts =
            block->instructions();
        for (std::size_t k = 0; k + 1 < insts.size(); ++k) {
            sb.append(insts[k]);
        }
        const isa::Instruction &term = insts.back();
        if (next == nullptr) {
            // Final terminator always kept (trace exit).
            sb.append(term, isa::isConditionalBranch(term.opcode));
            continue;
        }
        if (term.opcode == isa::Opcode::Jump &&
            term.target == next->startAddr()) {
            // Jump straightening: the successor is laid out directly
            // after this code inside the trace.
            continue;
        }
        if (isa::isConditionalBranch(term.opcode)) {
            // The recorded path continues on-trace; the other arm is
            // a side exit stub. If the *taken* arm is the on-trace
            // successor the branch sense is logically inverted in a
            // real code cache; byte size is identical either way, so
            // the IR keeps the original instruction.
            sb.append(term, true);
            continue;
        }
        // Calls and other terminators stay (the path continues at
        // the callee or the return target).
        sb.append(term);
    }
    return sb;
}

SbMachineState
evaluateStraightLine(const Superblock &sb, SbMachineState state)
{
    auto memLoad = [&state](std::int64_t addr) {
        for (auto it = state.stores.rbegin(); it != state.stores.rend();
             ++it) {
            if (it->first == addr) {
                return it->second;
            }
        }
        return std::int64_t{0};
    };

    for (const SbInst &entry : sb.insts()) {
        const isa::Instruction &inst = entry.inst;
        switch (inst.opcode) {
          case isa::Opcode::Nop:
            break;
          case isa::Opcode::Add:
            state.regs[inst.dst] = isa::wrapAdd(
                state.regs[inst.src1], state.regs[inst.src2]);
            break;
          case isa::Opcode::Sub:
            state.regs[inst.dst] = isa::wrapSub(
                state.regs[inst.src1], state.regs[inst.src2]);
            break;
          case isa::Opcode::Mul:
            state.regs[inst.dst] = isa::wrapMul(
                state.regs[inst.src1], state.regs[inst.src2]);
            break;
          case isa::Opcode::AddImm:
            state.regs[inst.dst] =
                isa::wrapAdd(state.regs[inst.src1], inst.imm);
            break;
          case isa::Opcode::MovImm:
            state.regs[inst.dst] = inst.imm;
            break;
          case isa::Opcode::Mov:
            state.regs[inst.dst] = state.regs[inst.src1];
            break;
          case isa::Opcode::Load:
            state.regs[inst.dst] =
                memLoad(isa::wrapAdd(state.regs[inst.src1], inst.imm));
            break;
          case isa::Opcode::Store:
            state.stores.emplace_back(
                isa::wrapAdd(state.regs[inst.src1], inst.imm),
                state.regs[inst.src2]);
            break;
          case isa::Opcode::BranchNz:
          case isa::Opcode::BranchZ:
            // Straight-line evaluation: side exits not taken.
            break;
          default:
            // Unconditional transfer: end of straight-line region.
            return state;
        }
    }
    return state;
}

} // namespace gencache::opt
