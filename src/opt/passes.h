/**
 * @file
 * Trace optimization passes (paper §1: "applies optimizations and/or
 * transformations to the generated code traces").
 *
 * Superblocks are ideal for low-overhead optimization (§3.2): a
 * single entry means straight-line dataflow, with side exits as the
 * only barriers. The pipeline here implements the classic
 * trace-cache-friendly passes:
 *
 *  - nop elimination,
 *  - redundant-move elimination (self moves, re-materialized
 *    constants),
 *  - constant folding and propagation (MovImm feeding ALU ops),
 *  - dead-write elimination (registers overwritten before any read,
 *    with side exits treated as full liveness barriers).
 *
 * The PassManager iterates to a fixpoint and keeps the smallest
 * version it saw (folding can temporarily grow code: on this ISA a
 * MovImm is wider than the ALU op it replaces, and pays off only when
 * it makes producers dead).
 */

#ifndef GENCACHE_OPT_PASSES_H
#define GENCACHE_OPT_PASSES_H

#include <memory>
#include <string>
#include <vector>

#include "opt/superblock.h"

namespace gencache::opt {

/** One rewrite over a superblock. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Short pass name for reports. */
    virtual const char *name() const = 0;

    /** Rewrite @p sb in place.
     *  @return true when anything changed. */
    virtual bool run(Superblock &sb) = 0;
};

/** Removes Nop instructions. */
class NopElimination : public Pass
{
  public:
    const char *name() const override { return "nop-elim"; }
    bool run(Superblock &sb) override;
};

/** Removes self-moves (mov rX, rX) and identical re-materializations
 *  (movi rX, k immediately redefined by the same movi). */
class RedundantMoveElimination : public Pass
{
  public:
    const char *name() const override { return "move-elim"; }
    bool run(Superblock &sb) override;
};

/**
 * Forward constant propagation and folding: registers defined by
 * MovImm are tracked; ALU operations whose inputs are all known
 * become MovImm of the folded value. Side exits do not invalidate
 * constants (the folded value equals the architectural value), but
 * Load results are unknown.
 */
class ConstantFolding : public Pass
{
  public:
    const char *name() const override { return "const-fold"; }
    bool run(Superblock &sb) override;
};

/**
 * Backward dead-write elimination: a register write is removed when
 * the register is rewritten before any read, with no intervening
 * side exit (every register is live on the off-trace path) and no
 * side effect. Stores and control flow are never removed.
 */
class DeadWriteElimination : public Pass
{
  public:
    const char *name() const override { return "dead-write"; }
    bool run(Superblock &sb) override;
};

/** Per-pass change counters of one optimization run. */
struct PassStats
{
    std::string pass;
    unsigned applications = 0; ///< iterations in which it changed sb
};

/** Outcome of PassManager::optimize. */
struct OptResult
{
    std::uint32_t bytesBefore = 0;
    std::uint32_t bytesAfter = 0;
    std::size_t instsBefore = 0;
    std::size_t instsAfter = 0;
    unsigned iterations = 0;
    std::vector<PassStats> passStats;

    std::uint32_t bytesSaved() const
    {
        return bytesBefore > bytesAfter ? bytesBefore - bytesAfter : 0;
    }
};

/** Runs a pass pipeline to fixpoint, keeping the smallest version. */
class PassManager
{
  public:
    PassManager() = default;

    /** Append @p pass to the pipeline (order preserved). */
    void addPass(std::unique_ptr<Pass> pass);

    std::size_t passCount() const { return passes_.size(); }

    /** Optimize @p sb in place; at most @p max_iterations rounds. */
    OptResult optimize(Superblock &sb,
                       unsigned max_iterations = 8) const;

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

/** The standard pipeline described in the file comment. */
PassManager makeDefaultPipeline();

} // namespace gencache::opt

#endif // GENCACHE_OPT_PASSES_H
