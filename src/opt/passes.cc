#include "opt/passes.h"

#include <optional>

#include "support/logging.h"

namespace gencache::opt {

namespace {

/** Registers read by @p inst. */
std::vector<unsigned>
readsOf(const isa::Instruction &inst)
{
    using isa::Opcode;
    switch (inst.opcode) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
        return {inst.src1, inst.src2};
      case Opcode::AddImm:
      case Opcode::Mov:
      case Opcode::Load:
        return {inst.src1};
      case Opcode::Store:
        return {inst.src1, inst.src2};
      case Opcode::BranchNz:
      case Opcode::BranchZ:
      case Opcode::JumpReg:
      case Opcode::CallReg:
        return {inst.src1};
      default:
        return {};
    }
}

/** The register written by @p inst, or -1. */
int
writeOf(const isa::Instruction &inst)
{
    using isa::Opcode;
    switch (inst.opcode) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::AddImm:
      case Opcode::MovImm:
      case Opcode::Mov:
      case Opcode::Load:
        return inst.dst;
      default:
        return -1;
    }
}

} // namespace

bool
NopElimination::run(Superblock &sb)
{
    std::vector<SbInst> &insts = sb.insts();
    std::size_t before = insts.size();
    std::erase_if(insts, [](const SbInst &entry) {
        return entry.inst.opcode == isa::Opcode::Nop;
    });
    return insts.size() != before;
}

bool
RedundantMoveElimination::run(Superblock &sb)
{
    std::vector<SbInst> &insts = sb.insts();
    std::size_t before = insts.size();
    std::erase_if(insts, [](const SbInst &entry) {
        return entry.inst.opcode == isa::Opcode::Mov &&
               entry.inst.dst == entry.inst.src1;
    });

    // Identical consecutive re-materializations of the same constant
    // into the same register (the second movi is redundant).
    for (std::size_t i = 1; i < insts.size();) {
        const isa::Instruction &prev = insts[i - 1].inst;
        const isa::Instruction &cur = insts[i].inst;
        if (prev.opcode == isa::Opcode::MovImm &&
            cur.opcode == isa::Opcode::MovImm &&
            prev.dst == cur.dst && prev.imm == cur.imm) {
            insts.erase(insts.begin() +
                        static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
    return insts.size() != before;
}

bool
ConstantFolding::run(Superblock &sb)
{
    std::array<std::optional<std::int64_t>, isa::kNumRegs> known{};
    bool changed = false;

    for (SbInst &entry : sb.insts()) {
        isa::Instruction &inst = entry.inst;
        using isa::Opcode;
        switch (inst.opcode) {
          case Opcode::MovImm:
            known[inst.dst] = inst.imm;
            break;
          case Opcode::Mov:
            known[inst.dst] = known[inst.src1];
            break;
          case Opcode::AddImm:
            if (known[inst.src1]) {
                std::int64_t value =
                    isa::wrapAdd(*known[inst.src1], inst.imm);
                inst = isa::makeMovImm(inst.dst, value);
                known[inst.dst] = value;
                changed = true;
            } else {
                known[inst.dst].reset();
            }
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
            if (known[inst.src1] && known[inst.src2]) {
                std::int64_t a = *known[inst.src1];
                std::int64_t b = *known[inst.src2];
                std::int64_t value =
                    inst.opcode == Opcode::Add
                        ? isa::wrapAdd(a, b)
                        : inst.opcode == Opcode::Sub
                              ? isa::wrapSub(a, b)
                              : isa::wrapMul(a, b);
                inst = isa::makeMovImm(inst.dst, value);
                known[inst.dst] = value;
                changed = true;
            } else {
                known[inst.dst].reset();
            }
            break;
          case Opcode::Load:
            known[inst.dst].reset();
            break;
          default:
            // Stores and control flow neither define registers nor
            // invalidate the constants we track.
            break;
        }
    }
    return changed;
}

bool
DeadWriteElimination::run(Superblock &sb)
{
    std::vector<SbInst> &insts = sb.insts();
    // Backward liveness. At the trace end everything is live (the
    // code after the trace may read any register); likewise across
    // any side exit or control transfer.
    std::array<bool, isa::kNumRegs> live;
    live.fill(true);

    std::vector<bool> dead(insts.size(), false);
    bool changed = false;

    for (std::size_t n = insts.size(); n-- > 0;) {
        const SbInst &entry = insts[n];
        const isa::Instruction &inst = entry.inst;
        if (entry.sideExit || isa::isControlFlow(inst.opcode)) {
            live.fill(true);
            // Control flow may still read a register (bnz, jmpr).
            for (unsigned reg : readsOf(inst)) {
                live[reg] = true;
            }
            continue;
        }
        int write = writeOf(inst);
        // Loads are kept even when dead: in a real ISA they may
        // fault, and the conservatism is cheap.
        if (write >= 0 && !live[static_cast<unsigned>(write)] &&
            inst.opcode != isa::Opcode::Load) {
            dead[n] = true;
            changed = true;
            continue;
        }
        if (write >= 0) {
            live[static_cast<unsigned>(write)] = false;
        }
        for (unsigned reg : readsOf(inst)) {
            live[reg] = true;
        }
    }

    if (changed) {
        std::vector<SbInst> kept;
        kept.reserve(insts.size());
        for (std::size_t i = 0; i < insts.size(); ++i) {
            if (!dead[i]) {
                kept.push_back(insts[i]);
            }
        }
        insts.swap(kept);
    }
    return changed;
}

void
PassManager::addPass(std::unique_ptr<Pass> pass)
{
    passes_.push_back(std::move(pass));
}

OptResult
PassManager::optimize(Superblock &sb, unsigned max_iterations) const
{
    OptResult result;
    result.bytesBefore = sb.codeBytes();
    result.instsBefore = sb.size();
    result.passStats.reserve(passes_.size());
    for (const auto &pass : passes_) {
        result.passStats.push_back(PassStats{pass->name(), 0});
    }

    // Folding may temporarily grow code (MovImm is wider than the ALU
    // op it replaces); keep the smallest version seen.
    Superblock best = sb;

    for (unsigned iter = 0; iter < max_iterations; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < passes_.size(); ++i) {
            if (passes_[i]->run(sb)) {
                ++result.passStats[i].applications;
                changed = true;
            }
        }
        ++result.iterations;
        if (sb.codeBytes() < best.codeBytes()) {
            best = sb;
        }
        if (!changed) {
            break;
        }
    }
    if (best.codeBytes() < sb.codeBytes()) {
        sb = best;
    }
    result.bytesAfter = sb.codeBytes();
    result.instsAfter = sb.size();
    return result;
}

PassManager
makeDefaultPipeline()
{
    PassManager manager;
    manager.addPass(std::make_unique<NopElimination>());
    manager.addPass(std::make_unique<RedundantMoveElimination>());
    manager.addPass(std::make_unique<ConstantFolding>());
    manager.addPass(std::make_unique<DeadWriteElimination>());
    return manager;
}

} // namespace gencache::opt
