/**
 * @file
 * Superblocks as an optimization IR.
 *
 * A dynamic optimizer's unit of optimization is the superblock: the
 * single-entry multiple-exit instruction sequence produced by trace
 * selection (paper §1, §4.1). This module gives the runtime a linear
 * IR for that sequence: straight-line instructions interspersed with
 * *side exits* (conditional branches whose taken/not-taken path leaves
 * the trace). Optimization passes (opt/passes.h) rewrite the IR; the
 * optimized byte size is what the code cache stores.
 */

#ifndef GENCACHE_OPT_SUPERBLOCK_H
#define GENCACHE_OPT_SUPERBLOCK_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/basic_block.h"

namespace gencache::opt {

/** One instruction of a superblock. */
struct SbInst
{
    isa::Instruction inst;
    /** True when this is a conditional branch that may leave the
     *  trace (a side exit). Side exits are optimization barriers:
     *  every architectural register is live across them. */
    bool sideExit = false;
};

/** Linear single-entry multiple-exit instruction sequence. */
class Superblock
{
  public:
    Superblock() = default;

    explicit Superblock(isa::GuestAddr entry) : entry_(entry) {}

    isa::GuestAddr entry() const { return entry_; }

    void append(const isa::Instruction &inst, bool side_exit = false);

    const std::vector<SbInst> &insts() const { return insts_; }
    std::vector<SbInst> &insts() { return insts_; }

    std::size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    /** Total encoded bytes of the current instruction sequence. */
    std::uint32_t codeBytes() const;

    /** Number of side exits (each costs an exit stub). */
    std::size_t sideExitCount() const;

    /** Multi-line disassembly (side exits are annotated). */
    std::string toString() const;

  private:
    isa::GuestAddr entry_ = 0;
    std::vector<SbInst> insts_;
};

/**
 * Build a superblock from the blocks of a recorded trace path.
 *
 * Performs *jump straightening* during construction: an unconditional
 * jump whose target is the next block on the path is dropped (the
 * blocks become physically adjacent in the trace), and a conditional
 * branch that continues on-trace is kept as a side exit.
 *
 * @param blocks the executed path, in order.
 * @param taken_on_trace for each block i < blocks.size()-1, nothing
 *        is needed: adjacency is inferred from the next block's
 *        start address. The final block's terminator is always kept.
 */
Superblock buildSuperblock(
    const std::vector<const isa::BasicBlock *> &blocks);

/**
 * Reference evaluator for straight-line superblock semantics (test
 * support): executes the instruction sequence assuming no side exit
 * is taken, returning the final register file. Loads read from
 * @p memory; stores write to it. Stops at the first unconditional
 * control transfer or at the end.
 */
struct SbMachineState
{
    std::array<std::int64_t, isa::kNumRegs> regs{};
    std::vector<std::pair<std::int64_t, std::int64_t>> stores;
};

SbMachineState evaluateStraightLine(const Superblock &sb,
                                    SbMachineState initial);

} // namespace gencache::opt

#endif // GENCACHE_OPT_SUPERBLOCK_H
