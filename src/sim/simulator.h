/**
 * @file
 * The trace-driven code cache simulator (paper §6).
 *
 * "DynamoRIO executed our benchmarks using an unbounded code cache,
 *  and we used the verbose log of cache accesses to drive our cache
 *  simulator."
 *
 * CacheSimulator replays an AccessLog against any CacheManager:
 * creations insert, executions look up (a miss regenerates and
 * re-inserts, paying the Table 2 costs through the attached
 * OverheadAccount), module unloads force invalidations, and pin/unpin
 * events toggle undeletability.
 */

#ifndef GENCACHE_SIM_SIMULATOR_H
#define GENCACHE_SIM_SIMULATOR_H

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "codecache/cache_manager.h"
#include "costmodel/cost_model.h"
#include "tracelog/compiled_log.h"
#include "tracelog/event.h"

namespace gencache::sim {

/** Everything one simulation run produces. */
struct SimResult
{
    std::string benchmark;
    std::string manager;

    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t regenerations = 0;   ///< misses that re-inserted
    std::uint64_t peakBytes = 0;       ///< peak cache occupancy
    std::uint64_t createdTraces = 0;
    std::uint64_t createdBytes = 0;

    cache::ManagerStats managerStats;
    cost::OverheadBreakdown overhead;

    double missRate() const
    {
        return lookups == 0 ? 0.0
                            : static_cast<double>(misses) /
                                  static_cast<double>(lookups);
    }
};

/** Replays an access log against a cache manager. */
class CacheSimulator
{
  public:
    /**
     * @param manager the global scheme under test; the simulator
     *        installs itself as the manager's event listener.
     * @param model cost model for overhead accounting.
     */
    explicit CacheSimulator(cache::CacheManager &manager,
                            cost::CostModel model = cost::CostModel{});

    /** Replay @p log from the beginning and return the results. */
    SimResult run(const tracelog::AccessLog &log);

    /**
     * Fast path: replay a compiled log. Streams the columnar event
     * arrays and keeps pin/regeneration state in flat vectors indexed
     * by dense trace id — no hash lookups on the per-event path. The
     * manager sees dense ids (its behavior depends only on id
     * identity, so results are bit-identical to the legacy path).
     * Requires a freshly constructed manager: its residency indexes
     * are switched to dense storage via prepareDenseIds().
     */
    SimResult run(const tracelog::CompiledLog &log);

    /**
     * Install @p hook to run at replay phase boundaries: after every
     * ModuleLoad/ModuleUnload event and at the end of run(). The
     * static checker's GENCACHE_CHECK support attaches its cheap
     * passes here (analysis::attachPhaseChecks); nullptr detaches.
     */
    void setCheckpointHook(
        std::function<void(const cache::CacheManager &, TimeUs)> hook)
    {
        checkpointHook_ = std::move(hook);
    }

    /**
     * Attach @p probe as a second event listener beside the cost
     * accountant: a TeeListener fans every manager event out to the
     * accountant first, then the probe. The temporal invariant engine
     * (analysis::attachPhaseChecks, gencheck --journal) observes runs
     * through this. @p probe is not owned and must outlive the runs;
     * nullptr restores the accountant alone.
     */
    void setProbeListener(cache::CacheEventListener *probe)
    {
        if (probe == nullptr) {
            tee_.reset();
            manager_.setListener(&account_);
        } else {
            tee_.emplace(account_, *probe);
            manager_.setListener(&*tee_);
        }
    }

    /** The manager under simulation (probe attachment, checks). */
    const cache::CacheManager &manager() const { return manager_; }

  private:
    struct TraceInfo
    {
        std::uint32_t sizeBytes = 0;
        cache::ModuleId module = cache::kNoModule;
        bool pinnedWanted = false;
    };

    cache::CacheManager &manager_;
    cost::OverheadAccount account_;
    std::optional<cache::TeeListener> tee_; ///< set by setProbeListener
    std::function<void(const cache::CacheManager &, TimeUs)>
        checkpointHook_;
};

} // namespace gencache::sim

#endif // GENCACHE_SIM_SIMULATOR_H
