#include "sim/sweep.h"

#include <algorithm>
#include <cmath>
#include <future>

#include "support/format.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace gencache::sim {

std::string
SweepPoint::label() const
{
    int nursery = static_cast<int>(std::llround(nurseryFrac * 100));
    int probation =
        static_cast<int>(std::llround(probationFrac * 100));
    return format("{}-{}-{}", nursery, probation,
                  100 - nursery - probation);
}

const SweepCell &
SweepResult::best() const
{
    if (cells.empty()) {
        GENCACHE_PANIC("best() on an empty sweep");
    }
    const SweepCell *winner = &cells.front();
    for (const SweepCell &cell : cells) {
        if (cell.missRateReductionPct >
            winner->missRateReductionPct) {
            winner = &cell;
        }
    }
    return *winner;
}

const SweepCell &
SweepResult::at(std::size_t point_index, std::size_t threshold_index,
                std::size_t threshold_count) const
{
    std::size_t index =
        point_index * threshold_count + threshold_index;
    if (index >= cells.size()) {
        GENCACHE_PANIC("sweep cell ({}, {}) out of range",
                       point_index, threshold_index);
    }
    return cells[index];
}

std::vector<SweepPoint>
defaultSweepPoints()
{
    return {
        {1.0 / 3.0, 1.0 / 3.0}, {0.45, 0.10}, {0.40, 0.20},
        {0.25, 0.50},           {0.60, 0.10}, {0.10, 0.45},
    };
}

std::vector<std::uint32_t>
defaultSweepThresholds()
{
    return {1, 5, 10, 50};
}

SweepResult
runSweep(const workload::BenchmarkProfile &profile,
         const std::vector<SweepPoint> &points,
         const std::vector<std::uint32_t> &thresholds,
         std::size_t threads, ReplayEngine engine)
{
    ExperimentRunner runner(profile);
    return runSweep(runner, points, thresholds, threads, engine);
}

SweepResult
runSweep(const ExperimentRunner &runner,
         const std::vector<SweepPoint> &points,
         const std::vector<std::uint32_t> &thresholds,
         std::size_t threads, ReplayEngine engine)
{
    if (points.empty() || thresholds.empty()) {
        fatal("sweep needs at least one point and one threshold");
    }
    const workload::BenchmarkProfile &profile = runner.profile();
    SimResult unbounded = runner.runUnbounded();

    SweepResult result;
    result.benchmark = profile.name;
    result.capacityBytes = std::max<std::uint64_t>(
        4096, static_cast<std::uint64_t>(std::llround(
                  static_cast<double>(unbounded.peakBytes) *
                  kCachePressureFactor)));

    SimResult unified = runner.runUnified(result.capacityBytes);
    result.unifiedMissRate = unified.missRate();

    // The grid, row-major. Cells are filled by index so the parallel
    // fan-out preserves the serial cell order exactly.
    std::vector<GenerationalLayout> layouts;
    layouts.reserve(points.size() * thresholds.size());
    for (const SweepPoint &point : points) {
        for (std::uint32_t threshold : thresholds) {
            GenerationalLayout layout;
            layout.label = format("{} thr {}", point.label(),
                                  threshold);
            layout.nurseryFrac = point.nurseryFrac;
            layout.probationFrac = point.probationFrac;
            layout.promotionThreshold = threshold;
            layouts.push_back(std::move(layout));
        }
    }

    auto to_cell = [&](std::size_t index, const SimResult &sim) {
        SweepCell cell;
        cell.point = points[index / thresholds.size()];
        cell.threshold = layouts[index].promotionThreshold;
        cell.missRate = sim.missRate();
        cell.promotions = sim.managerStats.promotions;
        cell.missRateReductionPct =
            unified.missRate() > 0.0
                ? (1.0 - sim.missRate() / unified.missRate()) * 100.0
                : 0.0;
        return cell;
    };

    if (threads == 0) {
        threads = ThreadPool::defaultThreadCount();
    }

    if (engine != ReplayEngine::Legacy) {
        // One streaming pass per sweep point: the point's whole
        // threshold column advances lane-by-lane through a single
        // decode of the compiled log.
        const ReplayKernel kernel =
            engine == ReplayEngine::BatchedReference
                ? ReplayKernel::Reference
                : ReplayKernel::Blocked;
        const std::size_t row = thresholds.size();
        auto run_row = [&](std::size_t point_index) {
            std::vector<GenerationalLayout> row_layouts(
                layouts.begin() +
                    static_cast<std::ptrdiff_t>(point_index * row),
                layouts.begin() +
                    static_cast<std::ptrdiff_t>((point_index + 1) *
                                                row));
            std::vector<SimResult> sims = runner.runGenerationalBatch(
                result.capacityBytes, row_layouts, kernel);
            std::vector<SweepCell> cells;
            cells.reserve(row);
            for (std::size_t i = 0; i < sims.size(); ++i) {
                cells.push_back(
                    to_cell(point_index * row + i, sims[i]));
            }
            return cells;
        };

        result.cells.reserve(layouts.size());
        if (threads <= 1 || points.size() <= 1) {
            for (std::size_t pi = 0; pi < points.size(); ++pi) {
                std::vector<SweepCell> cells = run_row(pi);
                result.cells.insert(result.cells.end(), cells.begin(),
                                    cells.end());
            }
            return result;
        }
        ThreadPool pool(std::min<std::size_t>(threads, points.size()));
        std::vector<std::future<std::vector<SweepCell>>> futures;
        futures.reserve(points.size());
        for (std::size_t pi = 0; pi < points.size(); ++pi) {
            futures.push_back(
                pool.submit([&run_row, pi]() { return run_row(pi); }));
        }
        for (std::future<std::vector<SweepCell>> &future : futures) {
            std::vector<SweepCell> cells = future.get();
            result.cells.insert(result.cells.end(), cells.begin(),
                                cells.end());
        }
        return result;
    }

    auto run_cell = [&](std::size_t index) {
        return to_cell(index, runner.runGenerational(
                                  result.capacityBytes,
                                  layouts[index]));
    };

    if (threads <= 1 || layouts.size() <= 1) {
        result.cells.reserve(layouts.size());
        for (std::size_t i = 0; i < layouts.size(); ++i) {
            result.cells.push_back(run_cell(i));
        }
        return result;
    }

    ThreadPool pool(std::min<std::size_t>(threads, layouts.size()));
    std::vector<std::future<SweepCell>> futures;
    futures.reserve(layouts.size());
    for (std::size_t i = 0; i < layouts.size(); ++i) {
        futures.push_back(
            pool.submit([&run_cell, i]() { return run_cell(i); }));
    }
    result.cells.reserve(layouts.size());
    for (std::future<SweepCell> &future : futures) {
        result.cells.push_back(future.get());
    }
    return result;
}

const TopologyCell &
TopologySweepResult::best() const
{
    if (cells.empty()) {
        GENCACHE_PANIC("best() on an empty topology sweep");
    }
    const TopologyCell *winner = &cells.front();
    for (const TopologyCell &cell : cells) {
        if (cell.missRateReductionPct > winner->missRateReductionPct) {
            winner = &cell;
        }
    }
    return *winner;
}

TopologySweepResult
runTopologySweep(const ExperimentRunner &runner,
                 const std::vector<cache::TierTopology> &topologies,
                 std::size_t threads)
{
    if (topologies.empty()) {
        fatal("topology sweep needs at least one topology");
    }
    SimResult unbounded = runner.runUnbounded();

    TopologySweepResult result;
    result.benchmark = runner.profile().name;
    result.capacityBytes = std::max<std::uint64_t>(
        4096, static_cast<std::uint64_t>(std::llround(
                  static_cast<double>(unbounded.peakBytes) *
                  kCachePressureFactor)));

    SimResult unified = runner.runUnified(result.capacityBytes);
    result.unifiedMissRate = unified.missRate();

    auto to_cell = [&](const cache::TierTopology &topology,
                       const SimResult &sim) {
        TopologyCell cell;
        cell.topology = topology.name;
        cell.tierCount = topology.fractions.size();
        cell.missRate = sim.missRate();
        cell.promotions = sim.managerStats.promotions;
        cell.overheadInstrs = sim.overhead.total();
        cell.missRateReductionPct =
            unified.missRate() > 0.0
                ? (1.0 - sim.missRate() / unified.missRate()) * 100.0
                : 0.0;
        return cell;
    };

    if (threads == 0) {
        threads = ThreadPool::defaultThreadCount();
    }

    if (threads <= 1 || topologies.size() <= 1) {
        // Serial: one streaming pass over the compiled log advances
        // every topology lane at once.
        std::vector<SimResult> sims = runner.runTopologyBatch(
            result.capacityBytes, topologies);
        result.cells.reserve(sims.size());
        for (std::size_t i = 0; i < sims.size(); ++i) {
            result.cells.push_back(to_cell(topologies[i], sims[i]));
        }
        return result;
    }

    // Parallel: one single-topology batched pass per worker task;
    // filled by index so the cell order matches the serial path.
    ThreadPool pool(std::min<std::size_t>(threads, topologies.size()));
    std::vector<std::future<SimResult>> futures;
    futures.reserve(topologies.size());
    for (const cache::TierTopology &topology : topologies) {
        futures.push_back(pool.submit([&runner, &result, &topology]() {
            return runner
                .runTopologyBatch(result.capacityBytes, {topology})
                .front();
        }));
    }
    result.cells.reserve(topologies.size());
    for (std::size_t i = 0; i < topologies.size(); ++i) {
        result.cells.push_back(to_cell(topologies[i],
                                       futures[i].get()));
    }
    return result;
}

TopologySweepResult
runTopologySweep(const workload::BenchmarkProfile &profile,
                 const std::vector<cache::TierTopology> &topologies,
                 std::size_t threads)
{
    ExperimentRunner runner(profile);
    return runTopologySweep(runner, topologies, threads);
}

} // namespace gencache::sim
