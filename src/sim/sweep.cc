#include "sim/sweep.h"

#include <algorithm>
#include <cmath>
#include <future>

#include "support/format.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace gencache::sim {

std::string
SweepPoint::label() const
{
    int nursery = static_cast<int>(std::llround(nurseryFrac * 100));
    int probation =
        static_cast<int>(std::llround(probationFrac * 100));
    return format("{}-{}-{}", nursery, probation,
                  100 - nursery - probation);
}

const SweepCell &
SweepResult::best() const
{
    if (cells.empty()) {
        GENCACHE_PANIC("best() on an empty sweep");
    }
    const SweepCell *winner = &cells.front();
    for (const SweepCell &cell : cells) {
        if (cell.missRateReductionPct >
            winner->missRateReductionPct) {
            winner = &cell;
        }
    }
    return *winner;
}

const SweepCell &
SweepResult::at(std::size_t point_index, std::size_t threshold_index,
                std::size_t threshold_count) const
{
    std::size_t index =
        point_index * threshold_count + threshold_index;
    if (index >= cells.size()) {
        GENCACHE_PANIC("sweep cell ({}, {}) out of range",
                       point_index, threshold_index);
    }
    return cells[index];
}

std::vector<SweepPoint>
defaultSweepPoints()
{
    return {
        {1.0 / 3.0, 1.0 / 3.0}, {0.45, 0.10}, {0.40, 0.20},
        {0.25, 0.50},           {0.60, 0.10}, {0.10, 0.45},
    };
}

std::vector<std::uint32_t>
defaultSweepThresholds()
{
    return {1, 5, 10, 50};
}

SweepResult
runSweep(const workload::BenchmarkProfile &profile,
         const std::vector<SweepPoint> &points,
         const std::vector<std::uint32_t> &thresholds,
         std::size_t threads)
{
    if (points.empty() || thresholds.empty()) {
        fatal("sweep needs at least one point and one threshold");
    }
    ExperimentRunner runner(profile);
    SimResult unbounded = runner.runUnbounded();

    SweepResult result;
    result.benchmark = profile.name;
    result.capacityBytes = std::max<std::uint64_t>(
        4096, static_cast<std::uint64_t>(std::llround(
                  static_cast<double>(unbounded.peakBytes) *
                  kCachePressureFactor)));

    SimResult unified = runner.runUnified(result.capacityBytes);
    result.unifiedMissRate = unified.missRate();

    // The grid, row-major. Cells are filled by index so the parallel
    // fan-out preserves the serial cell order exactly.
    std::vector<GenerationalLayout> layouts;
    layouts.reserve(points.size() * thresholds.size());
    for (const SweepPoint &point : points) {
        for (std::uint32_t threshold : thresholds) {
            GenerationalLayout layout;
            layout.label = format("{} thr {}", point.label(),
                                  threshold);
            layout.nurseryFrac = point.nurseryFrac;
            layout.probationFrac = point.probationFrac;
            layout.promotionThreshold = threshold;
            layouts.push_back(std::move(layout));
        }
    }

    auto run_cell = [&](std::size_t index) {
        const GenerationalLayout &layout = layouts[index];
        SimResult sim =
            runner.runGenerational(result.capacityBytes, layout);
        SweepCell cell;
        cell.point = points[index / thresholds.size()];
        cell.threshold = layout.promotionThreshold;
        cell.missRate = sim.missRate();
        cell.promotions = sim.managerStats.promotions;
        cell.missRateReductionPct =
            unified.missRate() > 0.0
                ? (1.0 - sim.missRate() / unified.missRate()) * 100.0
                : 0.0;
        return cell;
    };

    if (threads == 0) {
        threads = ThreadPool::defaultThreadCount();
    }
    if (threads <= 1 || layouts.size() <= 1) {
        result.cells.reserve(layouts.size());
        for (std::size_t i = 0; i < layouts.size(); ++i) {
            result.cells.push_back(run_cell(i));
        }
        return result;
    }

    ThreadPool pool(std::min<std::size_t>(threads, layouts.size()));
    std::vector<std::future<SweepCell>> futures;
    futures.reserve(layouts.size());
    for (std::size_t i = 0; i < layouts.size(); ++i) {
        futures.push_back(
            pool.submit([&run_cell, i]() { return run_cell(i); }));
    }
    result.cells.reserve(layouts.size());
    for (std::future<SweepCell> &future : futures) {
        result.cells.push_back(future.get());
    }
    return result;
}

} // namespace gencache::sim
