#include "sim/batched_replay.h"

#include <algorithm>

#include "codecache/tier_pipeline.h"
#include "support/logging.h"

namespace gencache::sim {

BatchedReplay::BatchedReplay(const tracelog::CompiledLog &log)
    : log_(log)
{
}

BatchedReplay::~BatchedReplay() = default;

std::size_t
BatchedReplay::addLane(cache::CacheManager &manager,
                       cost::CostModel model)
{
    Lane lane;
    lane.manager = &manager;
    lane.pipeline = dynamic_cast<cache::TierPipeline *>(&manager);
    lane.account = std::make_unique<cost::OverheadAccount>(model);
    manager.setListener(lane.account.get());
    lane.result.benchmark = log_.benchmark();
    lane.result.manager = manager.name();
    lanes_.push_back(std::move(lane));
    return lanes_.size() - 1;
}

std::vector<SimResult>
BatchedReplay::run()
{
    for (Lane &lane : lanes_) {
        lane.manager->prepareDenseIds(log_.traceCount());
    }

    if (kernel_ == ReplayKernel::Reference) {
        runReference();
    } else {
        runBlocked();
    }

    std::vector<SimResult> results;
    results.reserve(lanes_.size());
    for (Lane &lane : lanes_) {
        if (checkpointHook_) {
            checkpointHook_(*lane.manager, log_.duration());
        }
        lane.result.managerStats = lane.manager->stats();
        lane.result.overhead = lane.tableAccount != nullptr
                                   ? lane.tableAccount->breakdown()
                                   : lane.account->breakdown();
        results.push_back(lane.result);
    }
    return results;
}

void
BatchedReplay::runReference()
{
    std::vector<std::uint8_t> pinnedWanted(log_.traceCount(), 0);

    const std::vector<tracelog::EventType> &types = log_.types();
    const std::vector<TimeUs> &times = log_.times();
    const std::vector<tracelog::DenseTraceId> &traces = log_.traces();
    const std::vector<std::uint32_t> &sizes = log_.sizes();
    const std::vector<cache::ModuleId> &modules = log_.modules();

    auto note_peak = [](Lane &lane) {
        std::uint64_t used = lane.manager->usedBytes();
        if (used > lane.result.peakBytes) {
            lane.result.peakBytes = used;
        }
    };

    const std::size_t count = log_.size();
    for (std::size_t i = 0; i < count; ++i) {
        const TimeUs now = times[i];
        const tracelog::DenseTraceId dense = traces[i];
        switch (types[i]) {
          case tracelog::EventType::TraceCreate:
            pinnedWanted[dense] = 0;
            for (Lane &lane : lanes_) {
                ++lane.result.createdTraces;
                lane.result.createdBytes += sizes[i];
                lane.manager->insert(dense, sizes[i], modules[i], now);
                note_peak(lane);
            }
            break;
          case tracelog::EventType::TraceExec:
            for (Lane &lane : lanes_) {
                ++lane.result.lookups;
                if (lane.manager->lookup(dense, now)) {
                    ++lane.result.hits;
                } else {
                    ++lane.result.misses;
                    if (lane.manager->insert(dense,
                                             log_.traceSize(dense),
                                             log_.traceModule(dense),
                                             now)) {
                        ++lane.result.regenerations;
                        if (pinnedWanted[dense] != 0) {
                            lane.manager->setPinned(dense, true);
                        }
                    }
                    note_peak(lane);
                }
            }
            break;
          case tracelog::EventType::ModuleLoad:
            if (checkpointHook_) {
                for (Lane &lane : lanes_) {
                    checkpointHook_(*lane.manager, now);
                }
            }
            break;
          case tracelog::EventType::ModuleUnload:
            for (Lane &lane : lanes_) {
                lane.manager->invalidateModule(modules[i], now);
                if (checkpointHook_) {
                    checkpointHook_(*lane.manager, now);
                }
            }
            break;
          case tracelog::EventType::Pin:
            pinnedWanted[dense] = 1;
            for (Lane &lane : lanes_) {
                lane.manager->setPinned(dense, true);
            }
            break;
          case tracelog::EventType::Unpin:
            pinnedWanted[dense] = 0;
            for (Lane &lane : lanes_) {
                lane.manager->setPinned(dense, false);
            }
            break;
        }
    }
}

template <typename ManagerT>
void
BatchedReplay::runChunk(Lane &lane, ManagerT &manager,
                        const tracelog::CompiledLog::Chunk &chunk)
{
    const TimeUs *times = log_.times().data();
    const tracelog::DenseTraceId *traces = log_.traces().data();
    const std::uint8_t *execPinned = log_.execPinned().data();
    SimResult &result = lane.result;

    auto note_peak = [&] {
        std::uint64_t used = manager.usedBytes();
        if (used > result.peakBytes) {
            result.peakBytes = used;
        }
    };
    auto miss_service = [&](std::size_t i,
                            tracelog::DenseTraceId dense,
                            TimeUs now) {
        if (manager.insert(dense, log_.traceSize(dense),
                           log_.traceModule(dense), now)) {
            ++result.regenerations;
            if (execPinned[i] != 0) {
                manager.setPinned(dense, true);
            }
        }
        note_peak();
    };

    const std::size_t first = chunk.first;
    const std::size_t end = first + chunk.count;

    if (chunk.barrier) {
        // Singleton module event: a global phase boundary.
        const TimeUs now = times[first];
        if (log_.types()[first] ==
            tracelog::EventType::ModuleUnload) {
            manager.invalidateModule(log_.modules()[first], now);
        }
        if (checkpointHook_) {
            checkpointHook_(*lane.manager, now);
        }
        return;
    }

    if (chunk.pureExec()) {
        // The dominant chunk class: no event-type dispatch at all,
        // and the lookup counters are tallied once per chunk.
        std::uint64_t misses = 0;
        for (std::size_t i = first; i < end; ++i) {
            const tracelog::DenseTraceId dense = traces[i];
            const TimeUs now = times[i];
            if (!manager.lookup(dense, now)) [[unlikely]] {
                ++misses;
                miss_service(i, dense, now);
            }
        }
        result.lookups += chunk.count;
        result.hits += chunk.count - misses;
        result.misses += misses;
        return;
    }

    const tracelog::EventType *types = log_.types().data();
    const std::uint32_t *sizes = log_.sizes().data();
    const cache::ModuleId *modules = log_.modules().data();
    for (std::size_t i = first; i < end; ++i) {
        const TimeUs now = times[i];
        const tracelog::DenseTraceId dense = traces[i];
        switch (types[i]) {
          case tracelog::EventType::TraceCreate:
            ++result.createdTraces;
            result.createdBytes += sizes[i];
            manager.insert(dense, sizes[i], modules[i], now);
            note_peak();
            break;
          case tracelog::EventType::TraceExec:
            ++result.lookups;
            if (manager.lookup(dense, now)) {
                ++result.hits;
            } else {
                ++result.misses;
                miss_service(i, dense, now);
            }
            break;
          case tracelog::EventType::Pin:
            manager.setPinned(dense, true);
            break;
          case tracelog::EventType::Unpin:
            manager.setPinned(dense, false);
            break;
          case tracelog::EventType::ModuleLoad:
          case tracelog::EventType::ModuleUnload:
            GENCACHE_PANIC("module event outside a barrier chunk");
        }
    }
}

void
BatchedReplay::runChunkFast(Lane &lane,
                            cache::TierPipeline &pipeline,
                            const tracelog::CompiledLog::Chunk &chunk)
{
    if (chunk.barrier) {
        if (checkpointHook_) {
            // The hook may inspect fragments; fold the pending hit
            // counters in before the phase boundary runs. (Module
            // invalidation itself syncs each removed fragment, so
            // without a hook no flush is needed.)
            pipeline.flushFastCounts();
        }
        runChunk(lane, pipeline, chunk);
        return;
    }

    const TimeUs *times = log_.times().data();
    const tracelog::DenseTraceId *traces = log_.traces().data();
    const std::uint8_t *execPinned = log_.execPinned().data();
    SimResult &result = lane.result;

    std::uint64_t tierHits[cache::kMaxTiers] = {};
    std::uint64_t lookups = 0;
    std::uint64_t misses = 0;
    const std::size_t end = chunk.first + chunk.count;

    auto note_peak = [&] {
        std::uint64_t used = pipeline.usedBytes();
        if (used > result.peakBytes) {
            result.peakBytes = used;
        }
    };
    auto fast_exec = [&](std::size_t i,
                         tracelog::DenseTraceId dense) {
        const std::uint8_t tierPlusOne = pipeline.fastProbe(dense);
        if (tierPlusOne == 0) [[unlikely]] {
            ++misses;
            const TimeUs now = times[i];
            if (pipeline.insert(dense, log_.traceSize(dense),
                                log_.traceModule(dense), now)) {
                ++result.regenerations;
                if (execPinned[i] != 0) {
                    pipeline.setPinned(dense, true);
                }
            }
            note_peak();
        } else {
            ++tierHits[tierPlusOne - 1];
        }
    };

    // The sidecar of a big log spans megabytes, so the probe's slot
    // load usually misses L2; prefetching a fixed distance down the
    // dense-id column hides that latency behind the loop.
    constexpr std::size_t kProbeAhead = 16;
    const std::size_t fetchEnd = end - std::min<std::size_t>(
                                           end - chunk.first,
                                           kProbeAhead);

    if (chunk.pureExec()) {
        for (std::size_t i = chunk.first; i < end; ++i) {
            if (i < fetchEnd) {
                pipeline.fastPrefetch(traces[i + kProbeAhead]);
            }
            fast_exec(i, traces[i]);
        }
        lookups = chunk.count;
    } else {
        // Mixed chunk: keep the event switch but serve the exec
        // events (the bulk even here) from the sidecar.
        const tracelog::EventType *types = log_.types().data();
        const std::uint32_t *sizes = log_.sizes().data();
        const cache::ModuleId *modules = log_.modules().data();
        for (std::size_t i = chunk.first; i < end; ++i) {
            const tracelog::DenseTraceId dense = traces[i];
            if (i < fetchEnd) {
                pipeline.fastPrefetch(traces[i + kProbeAhead]);
            }
            switch (types[i]) {
              case tracelog::EventType::TraceCreate:
                ++result.createdTraces;
                result.createdBytes += sizes[i];
                pipeline.insert(dense, sizes[i], modules[i],
                                times[i]);
                note_peak();
                break;
              case tracelog::EventType::TraceExec:
                ++lookups;
                fast_exec(i, dense);
                break;
              case tracelog::EventType::Pin:
                pipeline.setPinned(dense, true);
                break;
              case tracelog::EventType::Unpin:
                pipeline.setPinned(dense, false);
                break;
              case tracelog::EventType::ModuleLoad:
              case tracelog::EventType::ModuleUnload:
                GENCACHE_PANIC("module event outside a barrier "
                               "chunk");
            }
        }
    }
    pipeline.noteFastLookups(lookups, misses, tierHits);
    result.lookups += lookups;
    result.hits += lookups - misses;
    result.misses += misses;
}

void
BatchedReplay::prepareBlockedLanes()
{
    // Table-driven cost accounting replaces the live formulas.
    const CostTables *tables = sharedTables_;
    if (tables == nullptr) {
        ownedTables_.emplace(
            CostTables::build(log_, cost::CostModel{}));
        tables = &*ownedTables_;
    }
    for (Lane &lane : lanes_) {
        lane.tableAccount =
            std::make_unique<TableOverheadListener>(*tables);
        lane.manager->setListener(lane.tableAccount.get());
        lane.fast =
            lane.pipeline != nullptr &&
            lane.pipeline->enableFastReplay(log_.traceCount());
    }
}

void
BatchedReplay::replayChunk(Lane &lane,
                           const tracelog::CompiledLog::Chunk &chunk)
{
    if (lane.fast) {
        runChunkFast(lane, *lane.pipeline, chunk);
    } else if (lane.pipeline != nullptr) {
        runChunk(lane, *lane.pipeline, chunk);
    } else {
        runChunk(lane, *lane.manager, chunk);
    }
}

void
BatchedReplay::runBlocked()
{
    prepareBlockedLanes();

    const std::vector<tracelog::CompiledLog::Chunk> &chunks =
        log_.chunks();
    const std::size_t laneCount = lanes_.size();
    for (std::size_t blockFirst = 0; blockFirst < laneCount;
         blockFirst += kLaneBlock) {
        const std::size_t blockEnd =
            std::min(laneCount, blockFirst + kLaneBlock);
        for (const tracelog::CompiledLog::Chunk &chunk : chunks) {
            for (std::size_t l = blockFirst; l < blockEnd; ++l) {
                replayChunk(lanes_[l], chunk);
            }
        }
    }

    // End states are inspected by callers (stats snapshots, gencheck
    // passes, identity tests): fold every pending counter back into
    // its fragment.
    for (Lane &lane : lanes_) {
        if (lane.fast) {
            lane.pipeline->flushFastCounts();
        }
    }
}

void
BatchedReplay::begin()
{
    if (begun_) {
        GENCACHE_PANIC("begin() called twice on one replay");
    }
    if (kernel_ != ReplayKernel::Blocked) {
        GENCACHE_PANIC("incremental stepping requires the blocked "
                       "kernel");
    }
    begun_ = true;
    for (Lane &lane : lanes_) {
        lane.manager->prepareDenseIds(log_.traceCount());
    }
    prepareBlockedLanes();
}

bool
BatchedReplay::step(std::size_t chunk_budget)
{
    if (!begun_) {
        GENCACHE_PANIC("step() before begin()");
    }
    const std::vector<tracelog::CompiledLog::Chunk> &chunks =
        log_.chunks();
    if (chunkCursor_ >= chunks.size() || chunk_budget == 0) {
        return false;
    }
    const std::size_t end =
        std::min(chunks.size(), chunkCursor_ + chunk_budget);
    for (std::size_t c = chunkCursor_; c < end; ++c) {
        for (Lane &lane : lanes_) {
            replayChunk(lane, chunks[c]);
        }
    }
    chunkCursor_ = end;
    return true;
}

std::vector<SimResult>
BatchedReplay::finish()
{
    if (!begun_) {
        GENCACHE_PANIC("finish() before begin()");
    }
    // Drain whatever the stepper left unplayed, then close out
    // exactly like run().
    while (step(log_.chunks().size())) {
    }
    for (Lane &lane : lanes_) {
        if (lane.fast) {
            lane.pipeline->flushFastCounts();
        }
    }
    std::vector<SimResult> results;
    results.reserve(lanes_.size());
    for (Lane &lane : lanes_) {
        if (checkpointHook_) {
            checkpointHook_(*lane.manager, log_.duration());
        }
        lane.result.managerStats = lane.manager->stats();
        lane.result.overhead = lane.tableAccount != nullptr
                                   ? lane.tableAccount->breakdown()
                                   : lane.account->breakdown();
        results.push_back(lane.result);
    }
    return results;
}

} // namespace gencache::sim
