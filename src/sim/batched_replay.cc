#include "sim/batched_replay.h"

#include "support/logging.h"

namespace gencache::sim {

BatchedReplay::BatchedReplay(const tracelog::CompiledLog &log)
    : log_(log)
{
}

std::size_t
BatchedReplay::addLane(cache::CacheManager &manager,
                       cost::CostModel model)
{
    Lane lane;
    lane.manager = &manager;
    lane.account = std::make_unique<cost::OverheadAccount>(model);
    manager.setListener(lane.account.get());
    lane.result.benchmark = log_.benchmark();
    lane.result.manager = manager.name();
    lanes_.push_back(std::move(lane));
    return lanes_.size() - 1;
}

std::vector<SimResult>
BatchedReplay::run()
{
    for (Lane &lane : lanes_) {
        lane.manager->prepareDenseIds(log_.traceCount());
    }

    std::vector<std::uint8_t> pinnedWanted(log_.traceCount(), 0);

    const std::vector<tracelog::EventType> &types = log_.types();
    const std::vector<TimeUs> &times = log_.times();
    const std::vector<tracelog::DenseTraceId> &traces = log_.traces();
    const std::vector<std::uint32_t> &sizes = log_.sizes();
    const std::vector<cache::ModuleId> &modules = log_.modules();

    auto note_peak = [](Lane &lane) {
        std::uint64_t used = lane.manager->usedBytes();
        if (used > lane.result.peakBytes) {
            lane.result.peakBytes = used;
        }
    };

    const std::size_t count = log_.size();
    for (std::size_t i = 0; i < count; ++i) {
        const TimeUs now = times[i];
        const tracelog::DenseTraceId dense = traces[i];
        switch (types[i]) {
          case tracelog::EventType::TraceCreate:
            pinnedWanted[dense] = 0;
            for (Lane &lane : lanes_) {
                ++lane.result.createdTraces;
                lane.result.createdBytes += sizes[i];
                lane.manager->insert(dense, sizes[i], modules[i], now);
                note_peak(lane);
            }
            break;
          case tracelog::EventType::TraceExec:
            for (Lane &lane : lanes_) {
                ++lane.result.lookups;
                if (lane.manager->lookup(dense, now)) {
                    ++lane.result.hits;
                } else {
                    ++lane.result.misses;
                    if (lane.manager->insert(dense,
                                             log_.traceSize(dense),
                                             log_.traceModule(dense),
                                             now)) {
                        ++lane.result.regenerations;
                        if (pinnedWanted[dense] != 0) {
                            lane.manager->setPinned(dense, true);
                        }
                    }
                    note_peak(lane);
                }
            }
            break;
          case tracelog::EventType::ModuleLoad:
            if (checkpointHook_) {
                for (Lane &lane : lanes_) {
                    checkpointHook_(*lane.manager, now);
                }
            }
            break;
          case tracelog::EventType::ModuleUnload:
            for (Lane &lane : lanes_) {
                lane.manager->invalidateModule(modules[i], now);
                if (checkpointHook_) {
                    checkpointHook_(*lane.manager, now);
                }
            }
            break;
          case tracelog::EventType::Pin:
            pinnedWanted[dense] = 1;
            for (Lane &lane : lanes_) {
                lane.manager->setPinned(dense, true);
            }
            break;
          case tracelog::EventType::Unpin:
            pinnedWanted[dense] = 0;
            for (Lane &lane : lanes_) {
                lane.manager->setPinned(dense, false);
            }
            break;
        }
    }

    std::vector<SimResult> results;
    results.reserve(lanes_.size());
    for (Lane &lane : lanes_) {
        if (checkpointHook_) {
            checkpointHook_(*lane.manager, log_.duration());
        }
        lane.result.managerStats = lane.manager->stats();
        lane.result.overhead = lane.account->breakdown();
        results.push_back(lane.result);
    }
    return results;
}

} // namespace gencache::sim
