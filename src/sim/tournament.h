/**
 * @file
 * Thousand-configuration policy tournament.
 *
 * The sweeps of §6.1 explore one axis at a time (proportions, or
 * thresholds, or topologies). The tournament crosses every axis the
 * pipeline exposes — tier shape x local replacement policy x
 * promotion policy x cache pressure — into a single configuration
 * grid, replays every configuration against every benchmark profile,
 * and reports the per-configuration mean miss rate and Table 2
 * overhead ratio versus the paper's unified pseudo-circular baseline
 * at the same pressure, plus the Pareto front of the
 * (overhead, miss rate) plane.
 *
 * Each profile's log is generated and compiled exactly once
 * (ExperimentRunner memoizes the CompiledLog and the CostTables);
 * configurations are sharded into lane groups and replayed by the
 * blocked BatchedReplay kernel, with (profile, shard) tasks fanned out
 * across a ThreadPool. Results are deterministic: rows are keyed by
 * the enumeration order of the config list, every reduction runs in
 * fixed profile order, and the Pareto front is sorted by
 * (overhead ratio, miss rate, config name) — the same bytes for the
 * same inputs regardless of thread count or sharding.
 */

#ifndef GENCACHE_SIM_TOURNAMENT_H
#define GENCACHE_SIM_TOURNAMENT_H

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "codecache/tier_pipeline.h"
#include "workload/profile.h"

namespace gencache::sim {

/** One tournament entrant: a buildable topology at a pressure point. */
struct TournamentConfig
{
    std::string name;          ///< unique deterministic key
    std::string promotionLabel; ///< "thr5", "temp2-50ms", "none", ...
    cache::TierTopology topology;
    double capacityFactor = 0.5; ///< fraction of the unbounded peak
};

/** Aggregated (across profiles) results of one configuration. */
struct TournamentRow
{
    std::string config;     ///< TournamentConfig::name
    std::string topology;   ///< shape label ("3tier-45-10-45", ...)
    std::string localPolicy;
    std::string promotion;
    std::size_t tierCount = 0;
    double capacityFactor = 0.5;

    double meanMissRate = 0.0;
    double meanMissRateReductionPct = 0.0; ///< vs unified baseline
    double meanOverheadRatioPct = 0.0;     ///< vs unified baseline
};

/** A configuration the topology linter rejected before replay. */
struct TournamentRejection
{
    std::string config; ///< TournamentConfig::name
    std::vector<analysis::Diagnostic> diagnostics; ///< topo-* findings
};

/** Tournament output: one row per accepted configuration plus the
 *  front, and the configurations the pre-lint rejected. */
struct TournamentResult
{
    std::size_t profileCount = 0;
    std::vector<TournamentRow> rows; ///< accepted configs, input order

    /** Indices into rows of the non-dominated configurations of the
     *  minimize-(meanOverheadRatioPct, meanMissRate) plane, sorted by
     *  (overhead asc, miss rate asc, config name asc). */
    std::vector<std::size_t> pareto;

    /** Configurations rejected up front by the static topology linter
     *  (analysis::lintTopology) — ill-formed topologies would fatal()
     *  inside build() mid-replay otherwise. Input order. */
    std::vector<TournamentRejection> rejected;
};

/**
 * The full default grid: 8 multi-tier shapes x 4 local policies
 * (pseudo-circular, LRU, SRRIP, BRRIP) x 8 promotion variants
 * (threshold ladder, eager thresholds, temperature points) x 4
 * pressure points, plus the single-tier shapes (no promotion axis) —
 * 1040 configurations.
 */
std::vector<TournamentConfig> defaultTournamentConfigs();

/** A ~28-configuration subset for CI smoke runs and tests. */
std::vector<TournamentConfig> smokeTournamentConfigs();

/**
 * Replay every configuration of @p configs against every profile of
 * @p profiles and aggregate. @p threads sizes the ThreadPool (0 obeys
 * GENCACHE_THREADS); @p shard_lanes is the number of configurations
 * each replay task advances in one pass (sharding granularity only —
 * results are identical for any value >= 1).
 */
TournamentResult runTournament(
    const std::vector<workload::BenchmarkProfile> &profiles,
    const std::vector<TournamentConfig> &configs,
    std::size_t threads = 0, std::size_t shard_lanes = 32);

} // namespace gencache::sim

#endif // GENCACHE_SIM_TOURNAMENT_H
