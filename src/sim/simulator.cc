#include "sim/simulator.h"

#include "support/logging.h"

namespace gencache::sim {

CacheSimulator::CacheSimulator(cache::CacheManager &manager,
                               cost::CostModel model)
    : manager_(manager), account_(model)
{
    manager_.setListener(&account_);
}

SimResult
CacheSimulator::run(const tracelog::AccessLog &log)
{
    std::unordered_map<cache::TraceId, TraceInfo> registry;
    SimResult result;
    result.benchmark = log.benchmark();
    result.manager = manager_.name();

    auto note_peak = [&]() {
        std::uint64_t used = manager_.usedBytes();
        if (used > result.peakBytes) {
            result.peakBytes = used;
        }
    };

    for (const tracelog::Event &event : log.events()) {
        switch (event.type) {
          case tracelog::EventType::TraceCreate: {
            TraceInfo info;
            info.sizeBytes = event.sizeBytes;
            info.module = event.module;
            auto [it, fresh] = registry.emplace(event.trace, info);
            if (!fresh) {
                GENCACHE_PANIC("trace {} created twice in log",
                               event.trace);
            }
            ++result.createdTraces;
            result.createdBytes += event.sizeBytes;
            manager_.insert(event.trace, event.sizeBytes, event.module,
                            event.time);
            note_peak();
            break;
          }
          case tracelog::EventType::TraceExec: {
            auto it = registry.find(event.trace);
            if (it == registry.end()) {
                GENCACHE_PANIC("execution of unknown trace {}",
                               event.trace);
            }
            ++result.lookups;
            if (manager_.lookup(event.trace, event.time)) {
                ++result.hits;
            } else {
                ++result.misses;
                // Conflict miss: the optimizer regenerates the trace
                // and re-inserts it (§6.2).
                if (manager_.insert(event.trace,
                                    it->second.sizeBytes,
                                    it->second.module, event.time)) {
                    ++result.regenerations;
                    if (it->second.pinnedWanted) {
                        manager_.setPinned(event.trace, true);
                    }
                }
                note_peak();
            }
            break;
          }
          case tracelog::EventType::ModuleLoad:
            if (checkpointHook_) {
                checkpointHook_(manager_, event.time);
            }
            break;
          case tracelog::EventType::ModuleUnload:
            manager_.invalidateModule(event.module, event.time);
            if (checkpointHook_) {
                checkpointHook_(manager_, event.time);
            }
            break;
          case tracelog::EventType::Pin: {
            auto it = registry.find(event.trace);
            if (it != registry.end()) {
                it->second.pinnedWanted = true;
            }
            manager_.setPinned(event.trace, true);
            break;
          }
          case tracelog::EventType::Unpin: {
            auto it = registry.find(event.trace);
            if (it != registry.end()) {
                it->second.pinnedWanted = false;
            }
            manager_.setPinned(event.trace, false);
            break;
          }
        }
    }

    if (checkpointHook_) {
        checkpointHook_(manager_, log.duration());
    }
    result.managerStats = manager_.stats();
    result.overhead = account_.breakdown();
    return result;
}

SimResult
CacheSimulator::run(const tracelog::CompiledLog &log)
{
    SimResult result;
    result.benchmark = log.benchmark();
    result.manager = manager_.name();
    manager_.prepareDenseIds(log.traceCount());

    std::vector<std::uint8_t> pinnedWanted(log.traceCount(), 0);

    const std::vector<tracelog::EventType> &types = log.types();
    const std::vector<TimeUs> &times = log.times();
    const std::vector<tracelog::DenseTraceId> &traces = log.traces();
    const std::vector<std::uint32_t> &sizes = log.sizes();
    const std::vector<cache::ModuleId> &modules = log.modules();

    auto note_peak = [&]() {
        std::uint64_t used = manager_.usedBytes();
        if (used > result.peakBytes) {
            result.peakBytes = used;
        }
    };

    const std::size_t count = log.size();
    for (std::size_t i = 0; i < count; ++i) {
        const TimeUs now = times[i];
        const tracelog::DenseTraceId dense = traces[i];
        switch (types[i]) {
          case tracelog::EventType::TraceCreate:
            pinnedWanted[dense] = 0;
            ++result.createdTraces;
            result.createdBytes += sizes[i];
            manager_.insert(dense, sizes[i], modules[i], now);
            note_peak();
            break;
          case tracelog::EventType::TraceExec:
            ++result.lookups;
            if (manager_.lookup(dense, now)) {
                ++result.hits;
            } else {
                ++result.misses;
                if (manager_.insert(dense, log.traceSize(dense),
                                    log.traceModule(dense), now)) {
                    ++result.regenerations;
                    if (pinnedWanted[dense] != 0) {
                        manager_.setPinned(dense, true);
                    }
                }
                note_peak();
            }
            break;
          case tracelog::EventType::ModuleLoad:
            if (checkpointHook_) {
                checkpointHook_(manager_, now);
            }
            break;
          case tracelog::EventType::ModuleUnload:
            manager_.invalidateModule(modules[i], now);
            if (checkpointHook_) {
                checkpointHook_(manager_, now);
            }
            break;
          case tracelog::EventType::Pin:
            pinnedWanted[dense] = 1;
            manager_.setPinned(dense, true);
            break;
          case tracelog::EventType::Unpin:
            pinnedWanted[dense] = 0;
            manager_.setPinned(dense, false);
            break;
        }
    }

    if (checkpointHook_) {
        checkpointHook_(manager_, log.duration());
    }
    result.managerStats = manager_.stats();
    result.overhead = account_.breakdown();
    return result;
}

} // namespace gencache::sim
