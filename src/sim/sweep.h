/**
 * @file
 * Design-space sweeps over generational configurations (paper §6.1).
 *
 * "We swept the space of generational code cache sizes to determine
 *  the cache proportions that result in the lowest miss rates for
 *  each application."
 *
 * SweepRunner replays one benchmark against a grid of
 * (proportion, threshold) points, all at the same total budget, and
 * reports miss-rate reductions relative to the unified baseline plus
 * the best point found.
 */

#ifndef GENCACHE_SIM_SWEEP_H
#define GENCACHE_SIM_SWEEP_H

#include <string>
#include <vector>

#include "sim/experiment.h"

namespace gencache::sim {

/** One (nursery, probation) proportion pair of the sweep grid. */
struct SweepPoint
{
    double nurseryFrac = 1.0 / 3.0;
    double probationFrac = 1.0 / 3.0;

    /** "45-10-45"-style label. */
    std::string label() const;
};

/** Result of one grid cell. */
struct SweepCell
{
    SweepPoint point;
    std::uint32_t threshold = 1;
    double missRate = 0.0;
    double missRateReductionPct = 0.0; ///< vs the unified baseline
    std::uint64_t promotions = 0;
};

/** Full sweep output for one benchmark. */
struct SweepResult
{
    std::string benchmark;
    std::uint64_t capacityBytes = 0;
    double unifiedMissRate = 0.0;
    std::vector<SweepCell> cells; ///< row-major: points x thresholds

    /** @return the cell with the highest miss-rate reduction;
     *  panics when the sweep is empty. */
    const SweepCell &best() const;

    /** @return the cell for (point_index, threshold_index). */
    const SweepCell &at(std::size_t point_index,
                        std::size_t threshold_index,
                        std::size_t threshold_count) const;
};

/** The default §6.1 grid: six proportion points, four thresholds. */
std::vector<SweepPoint> defaultSweepPoints();
std::vector<std::uint32_t> defaultSweepThresholds();

/** Which replay implementation drives the generational grid cells. */
enum class ReplayEngine {
    /** One CacheSimulator pass over the AccessLog per cell. */
    Legacy,
    /** One BatchedReplay pass over the CompiledLog per sweep point,
     *  advancing the whole threshold column at once with the blocked
     *  (chunk x lane-block) kernel. Cell results are bit-identical to
     *  Legacy. */
    BatchedCompiled,
    /** The batched engine pinned to its per-event reference kernel
     *  (the PR-3 loop) — the baseline the blocked kernel is
     *  benchmarked against. Bit-identical results. */
    BatchedReference,
};

/**
 * Run the sweep for @p profile: unbounded pre-pass, unified baseline
 * at half the peak, then every (point, threshold) cell.
 *
 * Grid cells are independent — each owns a private cache hierarchy
 * and replays the runner's shared immutable log — so they fan out
 * across a ThreadPool. @p threads selects the worker count: 0 obeys
 * the environment (GENCACHE_THREADS, else hardware concurrency), 1
 * forces the fully serial path, N uses N workers. With the batched
 * engine the fan-out unit is one sweep point (a threshold column);
 * with the legacy engine it is one cell. Cell results are identical
 * regardless of thread count and engine.
 */
SweepResult runSweep(const workload::BenchmarkProfile &profile,
                     const std::vector<SweepPoint> &points,
                     const std::vector<std::uint32_t> &thresholds,
                     std::size_t threads = 0,
                     ReplayEngine engine = ReplayEngine::BatchedCompiled);

/** As above, but over a caller-owned @p runner whose workload is
 *  already generated (benchmarks use this to time pure replay). */
SweepResult runSweep(const ExperimentRunner &runner,
                     const std::vector<SweepPoint> &points,
                     const std::vector<std::uint32_t> &thresholds,
                     std::size_t threads = 0,
                     ReplayEngine engine = ReplayEngine::BatchedCompiled);

/** Result of one topology of a topology sweep. */
struct TopologyCell
{
    std::string topology;      ///< TierTopology::name
    std::size_t tierCount = 0;
    double missRate = 0.0;
    double missRateReductionPct = 0.0; ///< vs the unified baseline
    std::uint64_t promotions = 0;
    std::uint64_t overheadInstrs = 0;  ///< Table 2 cost-model total
};

/** Full topology-sweep output for one benchmark. */
struct TopologySweepResult
{
    std::string benchmark;
    std::uint64_t capacityBytes = 0;
    double unifiedMissRate = 0.0;
    std::vector<TopologyCell> cells; ///< one per topology, in order

    /** @return the cell with the highest miss-rate reduction;
     *  panics when the sweep is empty. */
    const TopologyCell &best() const;
};

/**
 * Sweep arbitrary tier topologies (the pipeline generalization of the
 * proportion grid): unbounded pre-pass, unified baseline at half the
 * peak, then every topology in @p topologies over the same budget via
 * batched replay. @p threads fans topology chunks out across a
 * ThreadPool (0 obeys GENCACHE_THREADS); results are identical
 * regardless of thread count.
 */
TopologySweepResult runTopologySweep(
    const ExperimentRunner &runner,
    const std::vector<cache::TierTopology> &topologies,
    std::size_t threads = 0);

/** As above, generating @p profile's workload first. */
TopologySweepResult runTopologySweep(
    const workload::BenchmarkProfile &profile,
    const std::vector<cache::TierTopology> &topologies,
    std::size_t threads = 0);

} // namespace gencache::sim

#endif // GENCACHE_SIM_SWEEP_H
