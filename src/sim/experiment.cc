#include "sim/experiment.h"

#include <cmath>

#include "codecache/unified_cache.h"
#include "sim/batched_replay.h"
#include "support/format.h"
#include "support/logging.h"
#include "workload/generator.h"

namespace gencache::sim {

cache::GenerationalConfig
GenerationalLayout::toConfig(std::uint64_t total_bytes) const
{
    return cache::GenerationalConfig::fromProportions(
        total_bytes, nurseryFrac, probationFrac, promotionThreshold,
        eagerPromotion);
}

std::vector<GenerationalLayout>
paperLayouts()
{
    return {
        {"33-33-33 thr 10", 1.0 / 3.0, 1.0 / 3.0, 10, false},
        {"40-20-40 thr 5", 0.40, 0.20, 5, false},
        {"45-10-45 thr 1", 0.45, 0.10, 1, false},
    };
}

double
BenchmarkComparison::missRateReductionPct(std::size_t i) const
{
    double base = unified.missRate();
    if (base <= 0.0) {
        return 0.0;
    }
    return (1.0 - generational.at(i).missRate() / base) * 100.0;
}

std::int64_t
BenchmarkComparison::missesEliminated(std::size_t i) const
{
    return static_cast<std::int64_t>(unified.misses) -
           static_cast<std::int64_t>(generational.at(i).misses);
}

double
BenchmarkComparison::overheadRatioPct(std::size_t i) const
{
    double base = static_cast<double>(unified.overhead.total());
    if (base <= 0.0) {
        return 100.0;
    }
    return static_cast<double>(generational.at(i).overhead.total()) /
           base * 100.0;
}

ExperimentRunner::ExperimentRunner(workload::BenchmarkProfile profile)
    : profile_(std::move(profile)),
      log_(workload::generateWorkload(profile_))
{
}

const tracelog::CompiledLog &
ExperimentRunner::compiled() const
{
    std::call_once(compiledOnce_, [this]() {
        compiled_ = std::make_unique<tracelog::CompiledLog>(
            tracelog::CompiledLog::compile(log_));
    });
    return *compiled_;
}

const CostTables &
ExperimentRunner::costTables() const
{
    std::call_once(costTablesOnce_, [this]() {
        costTables_ = std::make_unique<CostTables>(
            CostTables::build(compiled(), cost::CostModel{}));
    });
    return *costTables_;
}

SimResult
ExperimentRunner::runUnbounded() const
{
    {
        MutexLock lock(memoMutex_);
        if (unbounded_.has_value()) {
            return *unbounded_;
        }
    }
    cache::UnifiedCacheManager manager(0);
    CacheSimulator simulator(manager);
    SimResult result = simulator.run(log_);
    // The list cache tracks its own peak; prefer it (it includes the
    // occupancy between simulator samples).
    result.peakBytes = std::max(result.peakBytes, manager.peakBytes());
    MutexLock lock(memoMutex_);
    if (!unbounded_.has_value()) {
        unbounded_ = result;
    }
    return *unbounded_;
}

SimResult
ExperimentRunner::runUnified(std::uint64_t capacity_bytes) const
{
    if (capacity_bytes == 0) {
        fatal("unified baseline requires a positive capacity");
    }
    {
        MutexLock lock(memoMutex_);
        auto it = unifiedByCapacity_.find(capacity_bytes);
        if (it != unifiedByCapacity_.end()) {
            return it->second;
        }
    }
    cache::UnifiedCacheManager manager(
        capacity_bytes, cache::LocalPolicy::PseudoCircular);
    CacheSimulator simulator(manager);
    SimResult result = simulator.run(log_);
    MutexLock lock(memoMutex_);
    return unifiedByCapacity_.emplace(capacity_bytes, result)
        .first->second;
}

SimResult
ExperimentRunner::runGenerational(std::uint64_t total_bytes,
                                  const GenerationalLayout &layout) const
{
    cache::GenerationalCacheManager manager(
        layout.toConfig(total_bytes));
    CacheSimulator simulator(manager);
    SimResult result = simulator.run(log_);
    result.manager = layout.label;
    return result;
}

std::vector<SimResult>
ExperimentRunner::runGenerationalBatch(
    std::uint64_t total_bytes,
    const std::vector<GenerationalLayout> &layouts,
    ReplayKernel kernel) const
{
    std::vector<std::unique_ptr<cache::GenerationalCacheManager>>
        managers;
    managers.reserve(layouts.size());
    BatchedReplay replay(compiled());
    replay.setKernel(kernel);
    replay.setCostTables(&costTables());
    for (const GenerationalLayout &layout : layouts) {
        managers.push_back(
            std::make_unique<cache::GenerationalCacheManager>(
                layout.toConfig(total_bytes)));
        replay.addLane(*managers.back());
    }
    std::vector<SimResult> results = replay.run();
    for (std::size_t i = 0; i < results.size(); ++i) {
        results[i].manager = layouts[i].label;
    }
    return results;
}

SimResult
ExperimentRunner::runTopology(std::uint64_t total_bytes,
                              const cache::TierTopology &topology) const
{
    std::unique_ptr<cache::TierPipeline> manager =
        topology.build(total_bytes);
    CacheSimulator simulator(*manager);
    SimResult result = simulator.run(log_);
    result.manager = topology.name;
    return result;
}

std::vector<SimResult>
ExperimentRunner::runTopologyBatch(
    std::uint64_t total_bytes,
    const std::vector<cache::TierTopology> &topologies,
    ReplayKernel kernel) const
{
    std::vector<std::unique_ptr<cache::TierPipeline>> managers;
    managers.reserve(topologies.size());
    BatchedReplay replay(compiled());
    replay.setKernel(kernel);
    replay.setCostTables(&costTables());
    for (const cache::TierTopology &topology : topologies) {
        managers.push_back(topology.build(total_bytes));
        replay.addLane(*managers.back());
    }
    std::vector<SimResult> results = replay.run();
    for (std::size_t i = 0; i < results.size(); ++i) {
        results[i].manager = topologies[i].name;
    }
    return results;
}

BenchmarkComparison
ExperimentRunner::compare(const std::vector<GenerationalLayout> &layouts,
                          ThreadPool *pool) const
{
    BenchmarkComparison comparison;
    comparison.benchmark = profile_.name;
    comparison.suite = profile_.suite;

    comparison.unbounded = runUnbounded();
    comparison.maxCacheBytes = comparison.unbounded.peakBytes;
    comparison.capacityBytes = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(comparison.maxCacheBytes) *
                     kCachePressureFactor));
    if (comparison.capacityBytes < 4096) {
        comparison.capacityBytes = 4096;
    }

    comparison.unified = runUnified(comparison.capacityBytes);

    std::optional<ThreadPool> local;
    if (pool == nullptr && layouts.size() > 1 &&
        ThreadPool::defaultThreadCount() > 1) {
        local.emplace();
        pool = &*local;
    }
    if (pool != nullptr && pool->size() > 1 && layouts.size() > 1) {
        std::vector<std::future<SimResult>> futures;
        futures.reserve(layouts.size());
        for (const GenerationalLayout &layout : layouts) {
            futures.push_back(pool->submit([this, &comparison,
                                            &layout]() {
                return runGenerational(comparison.capacityBytes,
                                       layout);
            }));
        }
        comparison.generational.reserve(layouts.size());
        for (std::future<SimResult> &future : futures) {
            comparison.generational.push_back(future.get());
        }
    } else if (!layouts.empty()) {
        // Serial: one batched streaming pass over the compiled log
        // covers every layout (bit-identical to per-layout runs).
        comparison.generational =
            runGenerationalBatch(comparison.capacityBytes, layouts);
    }
    return comparison;
}

} // namespace gencache::sim
