/**
 * @file
 * Precomputed per-trace overhead tables for replay hot loops.
 *
 * The Table 2 cost formulas include 865 * bytes^0.8 — a transcendental
 * evaluated on every insert when OverheadAccount prices events live.
 * In a compiled-log replay every fragment the manager ever sees is one
 * of the log's traces, and the manager is driven with dense trace ids,
 * so all three per-byte formulas collapse into flat arrays indexed by
 * dense id, built once per CompiledLog and shared read-only across
 * every lane and configuration (the tournament replays one profile's
 * tables thousands of times).
 *
 * TableOverheadListener replays the exact accounting rules of
 * cost::OverheadAccount against those tables: the per-event values are
 * the same InstrCount results the formulas produce (the tables are
 * filled by calling them), so replay results are bit-identical.
 */

#ifndef GENCACHE_SIM_COST_TABLES_H
#define GENCACHE_SIM_COST_TABLES_H

#include <vector>

#include "codecache/cache_manager.h"
#include "costmodel/cost_model.h"
#include "tracelog/compiled_log.h"

namespace gencache::sim {

/** Table 2 formulas evaluated per dense trace id. */
struct CostTables
{
    std::vector<InstrCount> generation; ///< traceGeneration(size)
    std::vector<InstrCount> eviction;   ///< eviction(size)
    std::vector<InstrCount> promotion;  ///< promotion(size) == copy
    InstrCount missSwitches = 0;        ///< 2 * contextSwitch()

    /** Evaluate @p model over every trace of @p log. */
    static CostTables build(const tracelog::CompiledLog &log,
                            const cost::CostModel &model);
};

/**
 * Drop-in replacement for cost::OverheadAccount on compiled-log
 * replays: identical accounting, table lookups instead of formula
 * evaluations. Fragment ids must be dense ids of the CompiledLog the
 * tables were built from.
 */
class TableOverheadListener : public cache::CacheEventListener
{
  public:
    explicit TableOverheadListener(const CostTables &tables)
        : cache::CacheEventListener(/*wants_hits=*/false,
                                    /*wants_misses=*/false),
          tables_(&tables)
    {
    }

    void onInsert(const cache::Fragment &frag, cache::Generation gen,
                  TimeUs now) override
    {
        (void)gen;
        (void)now;
        breakdown_.traceGeneration += tables_->generation[frag.id];
        breakdown_.contextSwitches += tables_->missSwitches;
        breakdown_.copies += tables_->promotion[frag.id];
    }

    void onEvict(const cache::Fragment &frag, cache::Generation gen,
                 cache::EvictReason reason, TimeUs now) override
    {
        (void)gen;
        (void)now;
        if (cache::isDeletion(reason)) {
            breakdown_.evictions += tables_->eviction[frag.id];
        }
    }

    void onPromote(const cache::Fragment &frag, cache::Generation from,
                   cache::Generation to, TimeUs now) override
    {
        (void)from;
        (void)now;
        // Persistent upgrades pay the full §5.4 relocation; other
        // inter-tier moves are priced as link-update bookkeeping (see
        // OverheadAccount::onPromote).
        breakdown_.promotions += to == cache::Generation::Persistent
                                     ? tables_->promotion[frag.id]
                                     : tables_->eviction[frag.id];
    }

    const cost::OverheadBreakdown &breakdown() const
    {
        return breakdown_;
    }

  private:
    const CostTables *tables_;
    cost::OverheadBreakdown breakdown_;
};

} // namespace gencache::sim

#endif // GENCACHE_SIM_COST_TABLES_H
