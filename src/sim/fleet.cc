#include "sim/fleet.h"

#include <thread>

#include "support/logging.h"

namespace gencache::sim {

FleetSimulator::FleetSimulator(
    const std::vector<tracelog::CompiledLog> &logs,
    FleetOptions options)
    : options_(std::move(options))
{
    if (logs.empty()) {
        fatal("a fleet needs at least one process log");
    }
    const cache::TierTopology *topology =
        cache::findTierTopology(options_.topology);
    if (topology == nullptr) {
        fatal("unknown fleet topology '{}'", options_.topology);
    }
    if (options_.sharing) {
        if (logs.size() > options_.store.processLimit) {
            fatal("fleet of {} exceeds the store's process limit {}",
                  logs.size(), options_.store.processLimit);
        }
        store_ = std::make_unique<cache::SharedCodeStore>(
            options_.store);
    }

    processes_.reserve(logs.size());
    for (std::size_t p = 0; p < logs.size(); ++p) {
        Process process;
        process.log = &logs[p];
        process.pipeline = topology->build(options_.budgetBytes);
        if (store_ != nullptr) {
            process.pipeline->mountSharedStore(
                store_.get(), static_cast<unsigned>(p));
            // Replay feeds the pipeline dense per-log ids; the
            // original-id column is the canonical-key translation.
            process.pipeline->setSharedKeyTable(
                logs[p].originalIds().data(),
                logs[p].originalIds().size());
            for (const auto &[module, uid] : logs[p].moduleUids()) {
                process.pipeline->setSharedModuleUid(module, uid);
            }
        }
        process.replay = std::make_unique<BatchedReplay>(logs[p]);
        process.replay->addLane(*process.pipeline, options_.model);
        processes_.push_back(std::move(process));
    }
}

FleetSimulator::~FleetSimulator() = default;

FleetResult
FleetSimulator::run()
{
    if (ran_) {
        GENCACHE_PANIC("fleet simulator already ran");
    }
    ran_ = true;
    for (Process &process : processes_) {
        process.replay->begin();
    }
    // Round-robin: every process advances the same chunk quantum per
    // turn until all logs are drained. Single thread, fixed order —
    // the store observes one deterministic interleaving.
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (Process &process : processes_) {
            if (process.replay->step(options_.chunksPerTurn)) {
                progressed = true;
            }
        }
    }
    return collect();
}

FleetResult
FleetSimulator::runThreaded()
{
    if (ran_) {
        GENCACHE_PANIC("fleet simulator already ran");
    }
    ran_ = true;
    std::vector<std::thread> threads;
    threads.reserve(processes_.size());
    for (Process &process : processes_) {
        threads.emplace_back([&process, this] {
            process.replay->begin();
            while (process.replay->step(options_.chunksPerTurn)) {
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    return collect();
}

FleetResult
FleetSimulator::collect()
{
    FleetResult result;
    result.sharing = store_ != nullptr;
    result.processes.reserve(processes_.size());
    for (Process &process : processes_) {
        FleetProcessResult entry;
        entry.sim = process.replay->finish().front();
        entry.sharedTier = process.pipeline->sharedTierStats();
        result.processes.push_back(std::move(entry));
    }
    if (store_ != nullptr) {
        store_->validate();
        result.storeStats = store_->stats();
        result.storePeakUsedBytes = store_->peakUsedBytes();
        result.storePeakClaimedBytes = store_->peakClaimedBytes();
        result.storeEntries = store_->entryCount();
    }
    return result;
}

} // namespace gencache::sim
