#include "sim/tournament.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <memory>
#include <set>

#include "analysis/topology_passes.h"
#include "sim/batched_replay.h"
#include "sim/experiment.h"
#include "support/format.h"
#include "support/logging.h"
#include "support/thread_pool.h"

namespace gencache::sim {

namespace {

/** A tier-fraction shape the grid crosses with the policy axes. */
struct Shape
{
    const char *label;
    std::vector<double> fractions;
};

/** One promotion variant, applied to every edge past the first
 *  (the nursery edge stays always-promote, as in the paper: nursery
 *  eviction *is* the promotion into probation). */
struct PromoVariant
{
    const char *label;
    cache::EdgeSpec spec;
};

std::vector<Shape>
multiTierShapes()
{
    return {
        {"2tier-50-50", {0.50, 0.50}},
        {"2tier-70-30", {0.70, 0.30}},
        {"2tier-30-70", {0.30, 0.70}},
        {"3tier-33-33-33", {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0}},
        {"3tier-45-10-45", {0.45, 0.10, 0.45}},
        {"3tier-40-20-40", {0.40, 0.20, 0.40}},
        {"4tier-25x4", {0.25, 0.25, 0.25, 0.25}},
        {"4tier-40-30-20-10", {0.40, 0.30, 0.20, 0.10}},
    };
}

std::vector<PromoVariant>
promoVariants()
{
    using Rule = cache::EdgeSpec::Rule;
    std::vector<PromoVariant> variants;
    for (std::uint32_t threshold : {1u, 2u, 5u, 10u}) {
        cache::EdgeSpec spec;
        spec.rule = Rule::Threshold;
        spec.threshold = threshold;
        variants.push_back({"", spec});
        variants.back().spec.eager = false;
    }
    variants[0].label = "thr1";
    variants[1].label = "thr2";
    variants[2].label = "thr5";
    variants[3].label = "thr10";
    for (std::uint32_t threshold : {2u, 5u}) {
        cache::EdgeSpec spec;
        spec.rule = Rule::Threshold;
        spec.threshold = threshold;
        spec.eager = true;
        variants.push_back({threshold == 2 ? "thr2e" : "thr5e", spec});
    }
    {
        cache::EdgeSpec spec;
        spec.rule = Rule::Temperature;
        spec.threshold = 2;
        spec.halfLifeUs = 50'000;
        variants.push_back({"temp2-50ms", spec});
    }
    {
        cache::EdgeSpec spec;
        spec.rule = Rule::Temperature;
        spec.threshold = 5;
        spec.halfLifeUs = 200'000;
        variants.push_back({"temp5-200ms", spec});
    }
    return variants;
}

const char *
capacityLabel(double factor)
{
    int pct = static_cast<int>(std::llround(factor * 100));
    switch (pct) {
      case 30: return "c30";
      case 50: return "c50";
      case 70: return "c70";
      case 80: return "c80";
      case 90: return "c90";
      default: return "c";
    }
}

TournamentConfig
makeConfig(const Shape &shape, cache::LocalPolicy policy,
           const PromoVariant *promo, double factor)
{
    TournamentConfig config;
    config.topology.name = shape.label;
    config.topology.fractions = shape.fractions;
    config.topology.policy = policy;
    config.capacityFactor = factor;
    config.promotionLabel = promo != nullptr ? promo->label : "none";
    if (shape.fractions.size() > 1) {
        // Nursery edge: eviction is the promotion (Figure 8). Every
        // deeper edge applies the variant under test.
        config.topology.edges.emplace_back();
        config.topology.edges.back().rule =
            cache::EdgeSpec::Rule::AlwaysPromote;
        while (config.topology.edges.size() + 1 <
               shape.fractions.size()) {
            config.topology.edges.push_back(promo->spec);
        }
        if (shape.fractions.size() == 2) {
            // A 2-tier pipeline has only the one edge; the variant
            // under test must own it or the promotion axis is dead.
            config.topology.edges[0] = promo->spec;
        }
    }
    config.name = format("{}|{}|{}|{}", shape.label,
                         cache::localPolicyName(policy),
                         config.promotionLabel,
                         capacityLabel(factor));
    return config;
}

const std::vector<cache::LocalPolicy> kPolicies = {
    cache::LocalPolicy::PseudoCircular,
    cache::LocalPolicy::Lru,
    cache::LocalPolicy::Srrip,
    cache::LocalPolicy::Brrip,
};

std::uint64_t
capacityBytes(std::uint64_t peak, double factor)
{
    return std::max<std::uint64_t>(
        4096, static_cast<std::uint64_t>(std::llround(
                  static_cast<double>(peak) * factor)));
}

} // namespace

std::vector<TournamentConfig>
defaultTournamentConfigs()
{
    const std::vector<Shape> shapes = multiTierShapes();
    const std::vector<PromoVariant> promos = promoVariants();
    const std::vector<double> factors = {0.30, 0.50, 0.70, 0.90};

    std::vector<TournamentConfig> configs;
    configs.reserve(shapes.size() * kPolicies.size() * promos.size() *
                        factors.size() +
                    kPolicies.size() * factors.size());
    // Single-tier entrants first: no promotion axis, so they appear
    // once per (policy, pressure) — including the paper's baseline,
    // unified|pcirc at every pressure point.
    for (cache::LocalPolicy policy : kPolicies) {
        for (double factor : factors) {
            Shape unified{"unified", {1.0}};
            configs.push_back(
                makeConfig(unified, policy, nullptr, factor));
        }
    }
    for (const Shape &shape : shapes) {
        for (cache::LocalPolicy policy : kPolicies) {
            for (const PromoVariant &promo : promos) {
                for (double factor : factors) {
                    configs.push_back(
                        makeConfig(shape, policy, &promo, factor));
                }
            }
        }
    }
    return configs;
}

std::vector<TournamentConfig>
smokeTournamentConfigs()
{
    const std::vector<PromoVariant> all = promoVariants();
    const std::vector<Shape> shapes = {
        {"2tier-50-50", {0.50, 0.50}},
        {"3tier-45-10-45", {0.45, 0.10, 0.45}},
    };
    const std::vector<cache::LocalPolicy> policies = {
        cache::LocalPolicy::PseudoCircular,
        cache::LocalPolicy::Srrip,
    };
    const std::vector<double> factors = {0.50, 0.80};

    std::vector<TournamentConfig> configs;
    for (cache::LocalPolicy policy : policies) {
        for (double factor : factors) {
            Shape unified{"unified", {1.0}};
            configs.push_back(
                makeConfig(unified, policy, nullptr, factor));
        }
    }
    for (const Shape &shape : shapes) {
        for (cache::LocalPolicy policy : policies) {
            for (const PromoVariant *promo :
                 {&all[0], &all[2], &all[6]}) {
                for (double factor : factors) {
                    configs.push_back(
                        makeConfig(shape, policy, promo, factor));
                }
            }
        }
    }
    return configs;
}

TournamentResult
runTournament(const std::vector<workload::BenchmarkProfile> &profiles,
              const std::vector<TournamentConfig> &all_configs,
              std::size_t threads, std::size_t shard_lanes)
{
    if (profiles.empty() || all_configs.empty()) {
        fatal("tournament needs at least one profile and one config");
    }
    if (shard_lanes == 0) {
        shard_lanes = 1;
    }

    // Pre-lint: an ill-formed topology would fatal() inside build()
    // in the middle of a replay shard; reject it up front instead and
    // report why. Budgets vary per profile, so only the
    // budget-independent checks apply here.
    std::vector<TournamentConfig> configs;
    std::vector<TournamentRejection> rejected;
    configs.reserve(all_configs.size());
    for (const TournamentConfig &config : all_configs) {
        analysis::DiagnosticEngine engine;
        if (analysis::lintTopology(config.topology, engine)) {
            configs.push_back(config);
        } else {
            rejected.push_back(
                TournamentRejection{config.name,
                                    engine.diagnostics()});
        }
    }
    if (configs.empty()) {
        fatal("tournament: the topology linter rejected every "
              "configuration ({} of {})", rejected.size(),
              all_configs.size());
    }

    // Distinct pressure points drive the per-profile baselines.
    std::set<double> factorSet;
    for (const TournamentConfig &config : configs) {
        factorSet.insert(config.capacityFactor);
    }
    const std::vector<double> factors(factorSet.begin(),
                                      factorSet.end());

    ThreadPool pool(threads);

    // Phase A: one runner per profile — generate the workload, compile
    // the log, build the cost tables, and prime the unbounded peak and
    // the unified baselines. All later shards share these read-only.
    std::vector<std::unique_ptr<ExperimentRunner>> runners(
        profiles.size());
    std::vector<std::uint64_t> peaks(profiles.size(), 0);
    {
        std::vector<std::future<void>> setup;
        setup.reserve(profiles.size());
        for (std::size_t p = 0; p < profiles.size(); ++p) {
            setup.push_back(pool.submit([&, p]() {
                runners[p] = std::make_unique<ExperimentRunner>(
                    profiles[p]);
                runners[p]->compiled();
                runners[p]->costTables();
                peaks[p] = runners[p]->runUnbounded().peakBytes;
                for (double factor : factors) {
                    runners[p]->runUnified(
                        capacityBytes(peaks[p], factor));
                }
            }));
        }
        for (std::future<void> &future : setup) {
            future.get();
        }
    }

    // Phase B: shard the config list into lane groups; each
    // (profile, shard) task builds its managers and streams the shared
    // compiled log once, advancing the whole shard per lane block.
    std::vector<std::vector<SimResult>> results(profiles.size());
    for (std::vector<SimResult> &row : results) {
        row.resize(configs.size());
    }
    {
        std::vector<std::future<void>> replays;
        for (std::size_t p = 0; p < profiles.size(); ++p) {
            for (std::size_t first = 0; first < configs.size();
                 first += shard_lanes) {
                const std::size_t last = std::min(
                    configs.size(), first + shard_lanes);
                replays.push_back(pool.submit([&, p, first, last]() {
                    const ExperimentRunner &runner = *runners[p];
                    BatchedReplay replay(runner.compiled());
                    replay.setCostTables(&runner.costTables());
                    std::vector<std::unique_ptr<cache::TierPipeline>>
                        managers;
                    managers.reserve(last - first);
                    for (std::size_t c = first; c < last; ++c) {
                        managers.push_back(configs[c].topology.build(
                            capacityBytes(
                                peaks[p],
                                configs[c].capacityFactor)));
                        replay.addLane(*managers.back());
                    }
                    std::vector<SimResult> sims = replay.run();
                    for (std::size_t c = first; c < last; ++c) {
                        sims[c - first].manager = configs[c].name;
                        results[p][c] = std::move(sims[c - first]);
                    }
                }));
            }
        }
        for (std::future<void> &future : replays) {
            future.get();
        }
    }

    // Phase C: serial aggregation in fixed (config, profile) order so
    // the floating-point reductions are reproducible bit-for-bit.
    TournamentResult tournament;
    tournament.profileCount = profiles.size();
    tournament.rejected = std::move(rejected);
    tournament.rows.reserve(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const TournamentConfig &config = configs[c];
        TournamentRow row;
        row.config = config.name;
        row.topology = config.topology.name;
        row.localPolicy = cache::localPolicyName(
            config.topology.policy);
        row.promotion = config.promotionLabel;
        row.tierCount = config.topology.fractions.size();
        row.capacityFactor = config.capacityFactor;

        double missSum = 0.0;
        double reductionSum = 0.0;
        double overheadSum = 0.0;
        for (std::size_t p = 0; p < profiles.size(); ++p) {
            const SimResult &sim = results[p][c];
            const SimResult unified = runners[p]->runUnified(
                capacityBytes(peaks[p], config.capacityFactor));
            missSum += sim.missRate();
            const double baseMiss = unified.missRate();
            reductionSum +=
                baseMiss > 0.0
                    ? (1.0 - sim.missRate() / baseMiss) * 100.0
                    : 0.0;
            const double baseOverhead =
                static_cast<double>(unified.overhead.total());
            overheadSum +=
                baseOverhead > 0.0
                    ? static_cast<double>(sim.overhead.total()) /
                          baseOverhead * 100.0
                    : 100.0;
        }
        const double n = static_cast<double>(profiles.size());
        row.meanMissRate = missSum / n;
        row.meanMissRateReductionPct = reductionSum / n;
        row.meanOverheadRatioPct = overheadSum / n;
        tournament.rows.push_back(std::move(row));
    }

    // Pareto front of minimize-(overhead, miss rate): a row survives
    // unless some other row is no worse on both axes and strictly
    // better on one. Ties keep both. O(n^2) is fine at this scale and
    // has no ordering sensitivity.
    for (std::size_t i = 0; i < tournament.rows.size(); ++i) {
        const TournamentRow &a = tournament.rows[i];
        bool dominated = false;
        for (std::size_t j = 0;
             j < tournament.rows.size() && !dominated; ++j) {
            if (j == i) {
                continue;
            }
            const TournamentRow &b = tournament.rows[j];
            dominated =
                b.meanOverheadRatioPct <= a.meanOverheadRatioPct &&
                b.meanMissRate <= a.meanMissRate &&
                (b.meanOverheadRatioPct < a.meanOverheadRatioPct ||
                 b.meanMissRate < a.meanMissRate);
        }
        if (!dominated) {
            tournament.pareto.push_back(i);
        }
    }
    std::sort(tournament.pareto.begin(), tournament.pareto.end(),
              [&](std::size_t x, std::size_t y) {
                  const TournamentRow &a = tournament.rows[x];
                  const TournamentRow &b = tournament.rows[y];
                  if (a.meanOverheadRatioPct !=
                      b.meanOverheadRatioPct) {
                      return a.meanOverheadRatioPct <
                             b.meanOverheadRatioPct;
                  }
                  if (a.meanMissRate != b.meanMissRate) {
                      return a.meanMissRate < b.meanMissRate;
                  }
                  return a.config < b.config;
              });
    return tournament;
}

} // namespace gencache::sim
