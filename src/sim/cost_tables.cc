#include "sim/cost_tables.h"

namespace gencache::sim {

CostTables
CostTables::build(const tracelog::CompiledLog &log,
                  const cost::CostModel &model)
{
    CostTables tables;
    const std::size_t count =
        static_cast<std::size_t>(log.traceCount());
    tables.generation.resize(count);
    tables.eviction.resize(count);
    tables.promotion.resize(count);
    for (std::size_t id = 0; id < count; ++id) {
        const std::uint32_t bytes =
            log.traceSize(static_cast<tracelog::DenseTraceId>(id));
        tables.generation[id] = model.traceGeneration(bytes);
        tables.eviction[id] = model.eviction(bytes);
        tables.promotion[id] = model.promotion(bytes);
    }
    tables.missSwitches = 2 * model.contextSwitch();
    return tables;
}

} // namespace gencache::sim
