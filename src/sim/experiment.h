/**
 * @file
 * The paper's experimental methodology (§6), packaged:
 *
 *  1. replay the benchmark's log against an *unbounded* cache to find
 *     maxCache, the size that avoids all cache management;
 *  2. the baseline is a single pseudo-circular cache sized at
 *     maxCache * 0.5;
 *  3. generational configurations split the *same total* between
 *     nursery, probation, and persistent caches;
 *  4. compare miss rates (Fig 9), eliminated misses (Fig 10), and
 *     Table 2 instruction overheads (Fig 11).
 *
 * ExperimentRunner generates the benchmark's access log once, up
 * front, and every replay — unbounded, unified, generational — reads
 * that shared immutable log. All replay entry points are const and
 * safe to call concurrently: each builds a private cache hierarchy,
 * so independent configurations fan out across a ThreadPool (see
 * compare() and sim::runSweep). The unbounded pre-pass and the
 * unified baselines are memoized (keyed by capacity) so repeated
 * methodology steps never replay them twice.
 */

#ifndef GENCACHE_SIM_EXPERIMENT_H
#define GENCACHE_SIM_EXPERIMENT_H

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "codecache/generational_cache.h"
#include "sim/batched_replay.h"
#include "sim/simulator.h"
#include "support/thread_annotations.h"
#include "support/thread_pool.h"
#include "tracelog/compiled_log.h"
#include "workload/profile.h"

namespace gencache::sim {

/** A named generational layout, e.g. "45-10-45 thr 1". */
struct GenerationalLayout
{
    std::string label;
    double nurseryFrac = 1.0 / 3.0;
    double probationFrac = 1.0 / 3.0;
    std::uint32_t promotionThreshold = 1;
    bool eagerPromotion = false;

    cache::GenerationalConfig toConfig(std::uint64_t total_bytes) const;
};

/** The three layouts Figure 9 evaluates. The paper names the first
 *  two explicitly (33-33-33 with threshold 10, and the overall winner
 *  45-10-45 with single-hit promotion); the middle point of the swept
 *  space is represented by 40-20-40 with threshold 5. */
std::vector<GenerationalLayout> paperLayouts();

/** The paper's fraction of maxCache given to managed caches. */
constexpr double kCachePressureFactor = 0.5;

/** All per-benchmark results of the §6 methodology. */
struct BenchmarkComparison
{
    std::string benchmark;
    workload::Suite suite = workload::Suite::SpecInt;

    std::uint64_t maxCacheBytes = 0; ///< unbounded peak (Fig 1)
    std::uint64_t capacityBytes = 0; ///< managed size (0.5 * max)

    SimResult unbounded;
    SimResult unified;
    std::vector<SimResult> generational; ///< one per layout

    /** Fig 9: miss rate reduction (%) of layout @p i vs unified;
     *  positive is better. */
    double missRateReductionPct(std::size_t i) const;

    /** Fig 10: absolute misses eliminated by layout @p i (can be
     *  negative when the layout loses). */
    std::int64_t missesEliminated(std::size_t i) const;

    /** Fig 11: total instruction overhead of layout @p i as a
     *  percentage of the unified overhead (smaller is better). */
    double overheadRatioPct(std::size_t i) const;
};

/** Runs the full methodology for one benchmark profile. */
class ExperimentRunner
{
  public:
    /** Generates the access log eagerly; the runner is immutable
     *  afterwards (modulo result memoization) and all replay methods
     *  are const and thread-safe. */
    explicit ExperimentRunner(workload::BenchmarkProfile profile);

    /** The benchmark's access log, shared by every replay. */
    const tracelog::AccessLog &log() const { return log_; }

    /** The log compiled to columnar, dense-id form. Built on first
     *  use, then shared read-only by every batched replay. */
    const tracelog::CompiledLog &compiled() const;

    /** Table 2 cost formulas evaluated once per trace of compiled().
     *  Built on first use, then shared read-only by every blocked
     *  replay (and the tournament's thousands of configurations). */
    const CostTables &costTables() const;

    /** Step 1: unbounded replay; returns peak occupancy. Memoized. */
    SimResult runUnbounded() const;

    /** Replay against a unified pseudo-circular cache of
     *  @p capacity_bytes. Memoized per capacity. */
    SimResult runUnified(std::uint64_t capacity_bytes) const;

    /** Replay against a generational hierarchy splitting
     *  @p total_bytes per @p layout (legacy per-event path). */
    SimResult runGenerational(std::uint64_t total_bytes,
                              const GenerationalLayout &layout) const;

    /** Fast path: replay every layout in @p layouts (all splitting
     *  @p total_bytes) in ONE streaming pass over the compiled log
     *  (sim::BatchedReplay, @p kernel selects the inner loop).
     *  Returns one SimResult per layout, in order, bit-identical to
     *  runGenerational on each. */
    std::vector<SimResult> runGenerationalBatch(
        std::uint64_t total_bytes,
        const std::vector<GenerationalLayout> &layouts,
        ReplayKernel kernel = ReplayKernel::Blocked) const;

    /** Replay against an arbitrary tier topology splitting
     *  @p total_bytes (legacy per-event path). The result's manager
     *  label is the topology name. */
    SimResult runTopology(std::uint64_t total_bytes,
                          const cache::TierTopology &topology) const;

    /** Fast path: replay every topology in @p topologies (all over a
     *  @p total_bytes budget) in ONE streaming pass over the compiled
     *  log. Bit-identical to runTopology on each. */
    std::vector<SimResult> runTopologyBatch(
        std::uint64_t total_bytes,
        const std::vector<cache::TierTopology> &topologies,
        ReplayKernel kernel = ReplayKernel::Blocked) const;

    /** The whole §6 pipeline with the given layouts. Per-layout runs
     *  fan out across @p pool when it has more than one worker; with
     *  no pool the environment default (GENCACHE_THREADS) decides.
     *  Results are identical to a serial run regardless. */
    BenchmarkComparison compare(
        const std::vector<GenerationalLayout> &layouts,
        ThreadPool *pool = nullptr) const;

    const workload::BenchmarkProfile &profile() const
    {
        return profile_;
    }

  private:
    workload::BenchmarkProfile profile_;
    tracelog::AccessLog log_;

    mutable Mutex memoMutex_;
    mutable std::optional<SimResult> unbounded_
        GENCACHE_GUARDED_BY(memoMutex_);
    mutable std::map<std::uint64_t, SimResult> unifiedByCapacity_
        GENCACHE_GUARDED_BY(memoMutex_);

    mutable std::once_flag compiledOnce_;
    mutable std::unique_ptr<tracelog::CompiledLog> compiled_;

    mutable std::once_flag costTablesOnce_;
    mutable std::unique_ptr<CostTables> costTables_;
};

} // namespace gencache::sim

#endif // GENCACHE_SIM_EXPERIMENT_H
