/**
 * @file
 * Fleet simulation: K guest processes sharing one code store.
 *
 * The paper simulates one process at a time; the cross-process shared
 * tier (codecache/shared_store.h) only shows its value — and its
 * hazards — when several processes run at once. FleetSimulator drives
 * K per-process replays, each a single-lane BatchedReplay over that
 * process's own CompiledLog and private TierPipeline, with every
 * pipeline optionally mounting one SharedCodeStore.
 *
 * Two drivers:
 *
 *  - run() round-robins the processes on one thread, a fixed quantum
 *    of replay chunks per turn. Fully deterministic: the same logs
 *    and options always produce the same results and the same shared
 *    store end state — this is what benches and equivalence tests
 *    use. With sharing off it degenerates to K independent replays,
 *    bit-identical to running each log through BatchedReplay alone.
 *  - runThreaded() gives every process its own thread, so probes,
 *    publishes, and cross-process invalidations genuinely race on
 *    the store's shard locks. Each process's replay order stays
 *    private, but probe outcomes depend on the racing store contents,
 *    so hit/miss counts may vary between runs; the store's structural
 *    invariants (validate(), the shr-* passes) must hold under any
 *    interleaving. This is the TSan stress surface.
 *
 * The simulator keeps the pipelines and the store alive after the
 * run, so shr-* analysis passes and tests can inspect end states.
 */

#ifndef GENCACHE_SIM_FLEET_H
#define GENCACHE_SIM_FLEET_H

#include <memory>
#include <string>
#include <vector>

#include "codecache/shared_store.h"
#include "codecache/tier_pipeline.h"
#include "sim/batched_replay.h"
#include "tracelog/compiled_log.h"

namespace gencache::sim {

/** Fleet-wide configuration. */
struct FleetOptions
{
    std::string topology = "2tier";     ///< catalog topology name
    std::uint64_t budgetBytes = 256 * 1024; ///< per-process private
    bool sharing = true;                ///< mount the shared store
    cache::SharedStoreConfig store;     ///< shared-store sizing
    unsigned chunksPerTurn = 4;         ///< round-robin quantum
    cost::CostModel model;              ///< per-process cost model
};

/** One process's outcome. */
struct FleetProcessResult
{
    SimResult sim;
    cache::TierPipeline::SharedTierStats sharedTier;
};

/** Everything a fleet run produces. */
struct FleetResult
{
    std::vector<FleetProcessResult> processes;
    bool sharing = false;

    // Shared-store end state (zero when sharing is off).
    cache::SharedStoreStats storeStats;
    std::uint64_t storePeakUsedBytes = 0;
    std::uint64_t storePeakClaimedBytes = 0;
    std::uint64_t storeEntries = 0;

    /** Peak bytes the fleet would additionally have spent had every
     *  attached process kept a private copy of its shared traces —
     *  the store's dedup saving. */
    std::uint64_t dedupSavedBytes() const
    {
        return storePeakClaimedBytes - storePeakUsedBytes;
    }
};

/** Round-robins K per-process replays over one shared store. */
class FleetSimulator
{
  public:
    /**
     * @param logs one compiled log per process (canonical trace ids);
     *        must outlive the simulator.
     */
    FleetSimulator(const std::vector<tracelog::CompiledLog> &logs,
                   FleetOptions options);

    ~FleetSimulator();

    /** Deterministic single-thread round-robin. Call at most once
     *  per simulator (and not after runThreaded()). */
    FleetResult run();

    /** One thread per process, racing on the store's shard locks.
     *  Same call-once contract as run(). */
    FleetResult runThreaded();

    unsigned processCount() const
    {
        return static_cast<unsigned>(processes_.size());
    }

    /** Post-run introspection (shr-* passes, tests). */
    const cache::TierPipeline &pipeline(unsigned process) const
    {
        return *processes_[process].pipeline;
    }

    /** The mounted store; nullptr when sharing is off. */
    const cache::SharedCodeStore *store() const
    {
        return store_.get();
    }

  private:
    struct Process
    {
        const tracelog::CompiledLog *log = nullptr;
        std::unique_ptr<cache::TierPipeline> pipeline;
        std::unique_ptr<BatchedReplay> replay;
    };

    FleetResult collect();

    FleetOptions options_;
    std::vector<Process> processes_;
    std::unique_ptr<cache::SharedCodeStore> store_;
    bool ran_ = false;
};

} // namespace gencache::sim

#endif // GENCACHE_SIM_FLEET_H
