/**
 * @file
 * Single-pass batched multi-configuration replay.
 *
 * The sweep workload replays the same access log against K cache
 * managers (e.g. the four promotion thresholds of one sweep point).
 * Running K independent CacheSimulators costs O(K * events) of log
 * decode and event dispatch. BatchedReplay streams a CompiledLog
 * once and advances every registered lane, paying the decode and
 * dispatch cost once: O(events + K * manager work).
 *
 * Two kernels share the lane bookkeeping:
 *
 *  - ReplayKernel::Reference is the original per-event outer loop
 *    (event decoded once, inner loop over lanes), with live
 *    OverheadAccount cost pricing. It is the baseline the blocked
 *    kernel is benchmarked against and validated to match.
 *  - ReplayKernel::Blocked (the default) iterates the CompiledLog's
 *    cache-sized chunks, sweeping a block of kLaneBlock lanes per
 *    chunk so the event columns stay hot in cache across lanes.
 *    Per-event branches are hoisted: pure-exec chunks (the vast
 *    majority) run a switch-free inner loop with the lookup counters
 *    tallied per chunk, pin intent comes from the precomputed
 *    execPinned() column instead of shared mutable state, and Table 2
 *    costs come from precomputed per-trace CostTables instead of
 *    per-event pow()/llround() evaluations. Lanes whose manager is a
 *    cache::TierPipeline (all catalog topologies and both legacy
 *    adapters) run through a statically typed fast path whose hot
 *    calls devirtualize against the pipeline's final methods.
 *
 * Results are bit-identical between the kernels and to running
 * CacheSimulator::run per lane: per-lane event order is preserved
 * (lanes are independent, so reordering chunk x lane changes nothing a
 * lane can observe), the cost tables hold the exact values the live
 * formulas produce, and execPinned() is the pin state the shared
 * pinnedWanted vector would have held at each event. The only visible
 * difference is checkpoint-hook interleaving across lanes: the blocked
 * kernel finishes one lane block's hooks before the next block starts,
 * while the reference kernel interleaves all lanes per event. Per-lane
 * hook order — all any hook inspects — is identical.
 *
 * Each lane owns its manager, its cost accounting (installed as the
 * manager's listener), and its SimResult.
 */

#ifndef GENCACHE_SIM_BATCHED_REPLAY_H
#define GENCACHE_SIM_BATCHED_REPLAY_H

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/cost_tables.h"
#include "sim/simulator.h"
#include "tracelog/compiled_log.h"

namespace gencache::cache {
class TierPipeline;
} // namespace gencache::cache

namespace gencache::sim {

/** Which replay inner loop run() executes. */
enum class ReplayKernel : std::uint8_t {
    Reference, ///< per-event outer loop, live cost formulas
    Blocked,   ///< chunk x lane-block loop, precomputed cost tables
};

/** Replays one compiled log against K cache managers in one pass. */
class BatchedReplay
{
  public:
    /** Lanes per block of the blocked kernel: small enough that the
     *  block's manager state stays cache-resident across one chunk,
     *  large enough to amortize streaming the chunk columns. */
    static constexpr std::size_t kLaneBlock = 8;

    /** @param log compiled log to stream; must outlive the replay. */
    explicit BatchedReplay(const tracelog::CompiledLog &log);

    ~BatchedReplay();

    /**
     * Register @p manager as a replay lane and return its lane index.
     * The replay installs per-lane cost accounting (built from
     * @p model) as the manager's event listener. Managers must be
     * freshly constructed: run() switches their residency indexes to
     * dense storage via prepareDenseIds().
     */
    std::size_t addLane(cache::CacheManager &manager,
                        cost::CostModel model = cost::CostModel{});

    /**
     * Install @p hook to run per lane at replay phase boundaries
     * (after ModuleLoad/ModuleUnload events and at the end of run()),
     * mirroring CacheSimulator::setCheckpointHook.
     */
    void setCheckpointHook(
        std::function<void(const cache::CacheManager &, TimeUs)> hook)
    {
        checkpointHook_ = std::move(hook);
    }

    /** Select the replay kernel (default: Blocked). */
    void setKernel(ReplayKernel kernel) { kernel_ = kernel; }

    /**
     * Share precomputed cost tables (blocked kernel only). They must
     * have been built from this replay's log with each lane's cost
     * model — CostModel is stateless, so one table set serves all.
     * Without this, run() builds a private set; sharing matters when
     * many replays stream the same profile (sweeps, the tournament).
     */
    void setCostTables(const CostTables *tables)
    {
        sharedTables_ = tables;
    }

    /**
     * Stream the log once, advancing all lanes. Returns one SimResult
     * per lane, in addLane() order. Call at most once.
     */
    std::vector<SimResult> run();

    // --- incremental stepping (sim::FleetSimulator) -----------------
    //
    // A fleet round-robins K per-process replays over K distinct
    // logs, so no single run() can drive them: each replay instead
    // exposes its chunk loop as begin() / step() / finish(). Stepping
    // in whole chunks keeps results bit-identical to run() — chunk
    // order per lane is the only order the kernels guarantee anyway.
    // Blocked kernel only.

    /** Prepare all lanes (dense ids, cost tables, fast flags).
     *  Call once, before the first step(). */
    void begin();

    /** Advance every lane by up to @p chunk_budget chunks. @return
     *  false when the log is exhausted (nothing was advanced). */
    bool step(std::size_t chunk_budget);

    /** @return chunks already replayed (monotonic progress). */
    std::size_t chunkCursor() const { return chunkCursor_; }

    /** Finish a begin()/step() replay: flush fast counters, fire the
     *  end-of-run checkpoint, and return the per-lane results. */
    std::vector<SimResult> finish();

  private:
    struct Lane
    {
        cache::CacheManager *manager = nullptr;
        cache::TierPipeline *pipeline = nullptr; ///< fast-path alias
        bool fast = false; ///< pipeline accepted enableFastReplay()
        std::unique_ptr<cost::OverheadAccount> account;
        std::unique_ptr<TableOverheadListener> tableAccount;
        SimResult result;
    };

    void runReference();
    void runBlocked();

    /** Shared prep of runBlocked()/begin(): cost tables, listeners,
     *  fast-path eligibility. */
    void prepareBlockedLanes();

    /** Replay @p chunk on @p lane through its fastest legal path. */
    void replayChunk(Lane &lane,
                     const tracelog::CompiledLog::Chunk &chunk);

    template <typename ManagerT>
    void runChunk(Lane &lane, ManagerT &manager,
                  const tracelog::CompiledLog::Chunk &chunk);

    /** Blocked-kernel chunk replay through the pipeline's dense
     *  hit-slot sidecar (single cache line per hit, no virtual
     *  dispatch); mixed and barrier chunks delegate to runChunk. */
    void runChunkFast(Lane &lane, cache::TierPipeline &pipeline,
                      const tracelog::CompiledLog::Chunk &chunk);

    const tracelog::CompiledLog &log_;
    std::vector<Lane> lanes_;
    ReplayKernel kernel_ = ReplayKernel::Blocked;
    bool begun_ = false;
    std::size_t chunkCursor_ = 0;
    const CostTables *sharedTables_ = nullptr;
    std::optional<CostTables> ownedTables_;
    std::function<void(const cache::CacheManager &, TimeUs)>
        checkpointHook_;
};

} // namespace gencache::sim

#endif // GENCACHE_SIM_BATCHED_REPLAY_H
