/**
 * @file
 * Single-pass batched multi-configuration replay.
 *
 * The sweep workload replays the same access log against K cache
 * managers (e.g. the four promotion thresholds of one sweep point).
 * Running K independent CacheSimulators costs O(K * events) of log
 * decode and event dispatch. BatchedReplay streams a CompiledLog
 * once and advances every registered lane per event, paying the
 * decode/dispatch cost once: O(events + K * manager work).
 *
 * Each lane owns its manager, its OverheadAccount (installed as the
 * manager's listener), and its SimResult. Pin/unpin bookkeeping
 * (pinnedWanted) is shared across lanes: it depends only on the log
 * position, never on manager state, so one copy serves all lanes.
 *
 * Results are bit-identical to running CacheSimulator::run per lane:
 * the per-lane event handling is the same code path, only the event
 * decode is hoisted out of the lane loop.
 */

#ifndef GENCACHE_SIM_BATCHED_REPLAY_H
#define GENCACHE_SIM_BATCHED_REPLAY_H

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "tracelog/compiled_log.h"

namespace gencache::sim {

/** Replays one compiled log against K cache managers in one pass. */
class BatchedReplay
{
  public:
    /** @param log compiled log to stream; must outlive the replay. */
    explicit BatchedReplay(const tracelog::CompiledLog &log);

    /**
     * Register @p manager as a replay lane and return its lane index.
     * The replay installs a per-lane OverheadAccount (built from
     * @p model) as the manager's event listener. Managers must be
     * freshly constructed: run() switches their residency indexes to
     * dense storage via prepareDenseIds().
     */
    std::size_t addLane(cache::CacheManager &manager,
                        cost::CostModel model = cost::CostModel{});

    /**
     * Install @p hook to run per lane at replay phase boundaries
     * (after ModuleLoad/ModuleUnload events and at the end of run()),
     * mirroring CacheSimulator::setCheckpointHook.
     */
    void setCheckpointHook(
        std::function<void(const cache::CacheManager &, TimeUs)> hook)
    {
        checkpointHook_ = std::move(hook);
    }

    /**
     * Stream the log once, advancing all lanes per event. Returns one
     * SimResult per lane, in addLane() order. Call at most once.
     */
    std::vector<SimResult> run();

  private:
    struct Lane
    {
        cache::CacheManager *manager = nullptr;
        std::unique_ptr<cost::OverheadAccount> account;
        SimResult result;
    };

    const tracelog::CompiledLog &log_;
    std::vector<Lane> lanes_;
    std::function<void(const cache::CacheManager &, TimeUs)>
        checkpointHook_;
};

} // namespace gencache::sim

#endif // GENCACHE_SIM_BATCHED_REPLAY_H
