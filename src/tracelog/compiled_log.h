/**
 * @file
 * Compiled columnar access logs.
 *
 * An AccessLog stores events as an array of structs, identifies traces
 * by sparse 64-bit ids, and forces every replay to re-discover
 * per-trace metadata (creation size, owning module) through hash
 * lookups. A CompiledLog is the one-time "compilation" of that log
 * into a replay-friendly shape:
 *
 *   - structure-of-arrays event columns (type / time / trace / size /
 *     module) that replay loops stream sequentially;
 *   - a dense remap of every TraceId that appears in the log to
 *     [0, traceCount()), so simulators can keep residency and pin
 *     state in flat vectors instead of hash maps;
 *   - per-trace side tables (creation size, owning module, original
 *     id) indexed by dense id, so a conflict-miss regeneration needs
 *     no registry lookup at all;
 *   - per-module event-range indices for introspection and tooling.
 *
 * Compilation validates the same invariants the legacy simulator
 * checks per event (no duplicate creations, no execution of unknown
 * traces), so the fast replay paths can skip those branches.
 *
 * A CompiledLog is immutable after compile() and safe to share
 * read-only across sweep cells and worker threads.
 */

#ifndef GENCACHE_TRACELOG_COMPILED_LOG_H
#define GENCACHE_TRACELOG_COMPILED_LOG_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tracelog/event.h"

namespace gencache::tracelog {

/** Dense trace id: index into a CompiledLog's side tables. */
using DenseTraceId = std::uint32_t;

/** An AccessLog compiled into columnar, dense-id form. */
class CompiledLog
{
  public:
    /** Event-index range of one module's activity in the log. */
    struct ModuleRange
    {
        cache::ModuleId module = cache::kNoModule;
        std::size_t firstEvent = 0;  ///< first load/unload index
        std::size_t lastEvent = 0;   ///< last load/unload index
        std::uint32_t loads = 0;
        std::uint32_t unloads = 0;
    };

    /** Events per non-barrier replay chunk (see chunks()). */
    static constexpr std::size_t kChunkEvents = 1024;

    /**
     * One cache-sized slice of the event columns. Replay kernels sweep
     * a block of lanes chunk by chunk, so the slice's columns stay in
     * cache across lanes. Module events sit alone in `barrier` chunks:
     * they are global phase boundaries (checkpoint hooks fire), so
     * isolating them keeps every other chunk free of that branch.
     */
    struct Chunk
    {
        std::size_t first = 0;      ///< first event index
        std::uint32_t count = 0;    ///< number of events
        std::uint8_t typeMask = 0;  ///< OR of (1 << EventType) present
        bool barrier = false;       ///< singleton module event

        /** True when every event is TraceExec: the kernel can run the
         *  switch-free exec-only inner loop. */
        bool pureExec() const
        {
            return typeMask ==
                   (1u << static_cast<unsigned>(EventType::TraceExec));
        }
    };

    /**
     * Compile @p log. Panics (like the legacy replay loop) when a
     * trace is created twice or executed before creation.
     */
    static CompiledLog compile(const AccessLog &log);

    // --- workload metadata (mirrors AccessLog) ----------------------
    const std::string &benchmark() const { return benchmark_; }
    TimeUs duration() const { return duration_; }
    std::uint64_t footprintBytes() const { return footprint_; }
    std::uint64_t createdTraceBytes() const { return createdBytes_; }
    std::uint64_t createdTraceCount() const { return createdCount_; }

    // --- event columns ----------------------------------------------
    std::size_t size() const { return type_.size(); }
    bool empty() const { return type_.empty(); }

    const std::vector<EventType> &types() const { return type_; }
    const std::vector<TimeUs> &times() const { return time_; }

    /** Dense trace id per event; unused for module events. */
    const std::vector<DenseTraceId> &traces() const { return trace_; }

    /** TraceCreate size per event; 0 elsewhere. */
    const std::vector<std::uint32_t> &sizes() const { return size_; }

    /** Module per event: owning module for TraceCreate, subject for
     *  ModuleLoad/ModuleUnload, kNoModule elsewhere. */
    const std::vector<cache::ModuleId> &modules() const
    {
        return module_;
    }

    /**
     * Pin intent per event: whether the event's trace is inside a
     * pin/unpin window at this log position (1) or not (0). Replay
     * consults this on miss regeneration; precomputing it here removes
     * the only cross-lane mutable state from the replay kernels, since
     * pin intent depends on log position alone, never on cache state.
     */
    const std::vector<std::uint8_t> &execPinned() const
    {
        return execPinned_;
    }

    /** The event stream cut into replay chunks: runs of at most
     *  kChunkEvents trace events, with every module event isolated in
     *  its own barrier chunk. Chunks tile the log exactly. */
    const std::vector<Chunk> &chunks() const { return chunks_; }

    // --- per-trace side tables (indexed by dense id) ----------------

    /** Number of distinct traces: the dense id bound. */
    std::uint64_t traceCount() const { return originalId_.size(); }

    /** Creation size of dense trace @p id (0 if never created). */
    std::uint32_t traceSize(DenseTraceId id) const
    {
        return traceSize_[id];
    }

    /** Owning module of dense trace @p id. */
    cache::ModuleId traceModule(DenseTraceId id) const
    {
        return traceModule_[id];
    }

    /** Original (sparse) id of dense trace @p id. */
    cache::TraceId originalId(DenseTraceId id) const
    {
        return originalId_[id];
    }

    /**
     * The whole dense-id -> original-id column. When the source log
     * used canonical (module uid, offset) ids, this is exactly the
     * shared-store key table a mounted TierPipeline needs to
     * translate the dense ids replay feeds it back into
     * process-independent keys (TierPipeline::setSharedKeyTable).
     */
    const std::vector<cache::TraceId> &originalIds() const
    {
        return originalId_;
    }

    /** Process-independent uid of local module @p module (mirrors
     *  AccessLog::moduleUid); kNoModuleUid when unregistered. */
    cache::ModuleUid moduleUid(cache::ModuleId module) const
    {
        auto it = moduleUids_.find(module);
        return it == moduleUids_.end() ? cache::kNoModuleUid
                                       : it->second;
    }

    /** All registered module uids (mirrors AccessLog). */
    const std::unordered_map<cache::ModuleId, cache::ModuleUid> &
    moduleUids() const
    {
        return moduleUids_;
    }

    // --- per-module index -------------------------------------------

    /** Load/unload ranges, ordered by first appearance in the log. */
    const std::vector<ModuleRange> &moduleRanges() const
    {
        return moduleRanges_;
    }

  private:
    CompiledLog() = default;

    /** Cut the event columns into chunks_ (see chunks()). */
    void buildChunks();

    std::string benchmark_;
    TimeUs duration_ = 0;
    std::uint64_t footprint_ = 0;
    std::uint64_t createdBytes_ = 0;
    std::uint64_t createdCount_ = 0;

    std::vector<EventType> type_;
    std::vector<TimeUs> time_;
    std::vector<DenseTraceId> trace_;
    std::vector<std::uint32_t> size_;
    std::vector<cache::ModuleId> module_;
    std::vector<std::uint8_t> execPinned_;
    std::vector<Chunk> chunks_;

    std::vector<std::uint32_t> traceSize_;
    std::vector<cache::ModuleId> traceModule_;
    std::vector<cache::TraceId> originalId_;
    std::unordered_map<cache::ModuleId, cache::ModuleUid> moduleUids_;

    std::vector<ModuleRange> moduleRanges_;
};

} // namespace gencache::tracelog

#endif // GENCACHE_TRACELOG_COMPILED_LOG_H
