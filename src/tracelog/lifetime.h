/**
 * @file
 * Trace lifetime analysis (paper §5.1, Equation 2, Figure 6).
 *
 * lifetime_i = (lastExecution_i - firstExecution_i) / totalTime
 *
 * Lifetimes are measured from the access log itself, never from
 * generator parameters, so the Figure 6 reproduction is an honest
 * measurement of the synthetic workloads.
 */

#ifndef GENCACHE_TRACELOG_LIFETIME_H
#define GENCACHE_TRACELOG_LIFETIME_H

#include <unordered_map>
#include <vector>

#include "stats/histogram.h"
#include "tracelog/event.h"

namespace gencache::tracelog {

/** First/last execution bounds of one trace. */
struct TraceLifetime
{
    cache::TraceId trace = cache::kInvalidTrace;
    TimeUs firstExec = 0;
    TimeUs lastExec = 0;
    std::uint64_t executions = 0;
    std::uint32_t sizeBytes = 0;

    /** Equation 2: lifetime as a fraction of @p total_time. */
    double fraction(TimeUs total_time) const;
};

/** Computes per-trace lifetimes from an access log. */
class LifetimeAnalyzer
{
  public:
    /** Scan @p log (TraceCreate counts as the first execution, since
     *  creation in DynamoRIO happens on the triggering execution). */
    explicit LifetimeAnalyzer(const AccessLog &log);

    const std::vector<TraceLifetime> &lifetimes() const
    {
        return lifetimes_;
    }

    /** Total application execution time used as the denominator. */
    TimeUs totalTime() const { return totalTime_; }

    /** Figure 6: unweighted (static) histogram of trace lifetimes in
     *  five 20% buckets. */
    Histogram lifetimeHistogram() const;

    /** Fraction of traces with lifetime < 0.2 (short-lived). */
    double shortLivedFraction() const;

    /** Fraction of traces with lifetime >= 0.8 (long-lived). */
    double longLivedFraction() const;

  private:
    std::vector<TraceLifetime> lifetimes_;
    TimeUs totalTime_ = 0;
};

} // namespace gencache::tracelog

#endif // GENCACHE_TRACELOG_LIFETIME_H
