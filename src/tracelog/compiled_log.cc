#include "tracelog/compiled_log.h"

#include <algorithm>
#include <unordered_map>

#include "support/logging.h"
#include "support/simd.h"

namespace gencache::tracelog {

CompiledLog
CompiledLog::compile(const AccessLog &log)
{
    CompiledLog out;
    out.benchmark_ = log.benchmark();
    out.duration_ = log.duration();
    out.footprint_ = log.footprintBytes();
    out.createdBytes_ = log.createdTraceBytes();
    out.createdCount_ = log.createdTraceCount();
    out.moduleUids_ = log.moduleUids();

    const std::size_t count = log.size();
    out.type_.reserve(count);
    out.time_.reserve(count);
    out.trace_.reserve(count);
    out.size_.reserve(count);
    out.module_.reserve(count);

    std::unordered_map<cache::TraceId, DenseTraceId> remap;
    std::unordered_map<cache::ModuleId, std::size_t> moduleSlot;
    std::vector<bool> created;
    std::vector<std::uint8_t> pinWanted;

    auto dense_of = [&](cache::TraceId id) {
        auto [it, fresh] = remap.emplace(
            id, static_cast<DenseTraceId>(out.originalId_.size()));
        if (fresh) {
            out.originalId_.push_back(id);
            out.traceSize_.push_back(0);
            out.traceModule_.push_back(cache::kNoModule);
            created.push_back(false);
            pinWanted.push_back(0);
        }
        return it->second;
    };

    for (std::size_t i = 0; i < count; ++i) {
        const Event &event = log[i];
        DenseTraceId dense = 0;
        std::uint32_t size_bytes = 0;
        cache::ModuleId module = cache::kNoModule;
        switch (event.type) {
          case EventType::TraceCreate:
            dense = dense_of(event.trace);
            if (created[dense]) {
                GENCACHE_PANIC("trace {} created twice in log",
                               event.trace);
            }
            created[dense] = true;
            pinWanted[dense] = 0;
            out.traceSize_[dense] = event.sizeBytes;
            out.traceModule_[dense] = event.module;
            size_bytes = event.sizeBytes;
            module = event.module;
            break;
          case EventType::TraceExec:
            dense = dense_of(event.trace);
            if (!created[dense]) {
                GENCACHE_PANIC("execution of unknown trace {}",
                               event.trace);
            }
            break;
          case EventType::Pin:
            dense = dense_of(event.trace);
            pinWanted[dense] = 1;
            break;
          case EventType::Unpin:
            dense = dense_of(event.trace);
            pinWanted[dense] = 0;
            break;
          case EventType::ModuleLoad:
          case EventType::ModuleUnload: {
            module = event.module;
            auto [it, fresh] =
                moduleSlot.emplace(module, out.moduleRanges_.size());
            if (fresh) {
                ModuleRange range;
                range.module = module;
                range.firstEvent = i;
                out.moduleRanges_.push_back(range);
            }
            ModuleRange &range = out.moduleRanges_[it->second];
            range.lastEvent = i;
            if (event.type == EventType::ModuleLoad) {
                ++range.loads;
            } else {
                ++range.unloads;
            }
            break;
          }
        }
        out.type_.push_back(event.type);
        out.time_.push_back(event.time);
        out.trace_.push_back(dense);
        out.size_.push_back(size_bytes);
        out.module_.push_back(module);
        out.execPinned_.push_back(
            event.type == EventType::TraceExec ? pinWanted[dense] : 0);
    }

    out.buildChunks();
    return out;
}

void
CompiledLog::buildChunks()
{
    const std::size_t count = type_.size();
    const std::uint8_t *bytes =
        reinterpret_cast<const std::uint8_t *>(type_.data());
    auto isModuleEvent = [](EventType type) {
        return type == EventType::ModuleLoad ||
               type == EventType::ModuleUnload;
    };

    std::size_t i = 0;
    while (i < count) {
        if (isModuleEvent(type_[i])) {
            Chunk barrier;
            barrier.first = i;
            barrier.count = 1;
            barrier.typeMask = static_cast<std::uint8_t>(
                1u << static_cast<unsigned>(type_[i]));
            barrier.barrier = true;
            chunks_.push_back(barrier);
            ++i;
            continue;
        }
        // Extend a trace-event chunk to kChunkEvents or the next
        // module event, whichever comes first.
        std::size_t end = i;
        const std::size_t limit =
            std::min(count, i + kChunkEvents);
        while (end < limit && !isModuleEvent(type_[end])) {
            ++end;
        }
        Chunk chunk;
        chunk.first = i;
        chunk.count = static_cast<std::uint32_t>(end - i);
        chunk.typeMask =
            simd::byteOccurrenceMask(bytes + i, end - i);
        chunks_.push_back(chunk);
        i = end;
    }
}

} // namespace gencache::tracelog
