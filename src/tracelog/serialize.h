/**
 * @file
 * Access-log serialization: a line-oriented text format (readable,
 * diffable) and a compact binary format (large logs).
 */

#ifndef GENCACHE_TRACELOG_SERIALIZE_H
#define GENCACHE_TRACELOG_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "tracelog/event.h"

namespace gencache::tracelog {

/**
 * Text format:
 * @code
 * gclog 1
 * benchmark <name>
 * duration_us <n>
 * footprint_bytes <n>
 * events <count>
 * <type> <time> <trace> <size> <module>
 * ...
 * @endcode
 */
void writeText(const AccessLog &log, std::ostream &out);

/** Parse the text format. Calls fatal() on malformed input (these are
 *  user-supplied files). */
AccessLog readText(std::istream &in);

/** Binary format: magic "GCL1", metadata, then packed LE records. */
void writeBinary(const AccessLog &log, std::ostream &out);

/** Parse the binary format. Calls fatal() on malformed input. */
AccessLog readBinary(std::istream &in);

/** Convenience file helpers; format chosen by extension ".gclog"
 *  (text) vs ".gclogb" (binary). fatal() on I/O failure. */
void saveLog(const AccessLog &log, const std::string &path);
AccessLog loadLog(const std::string &path);

} // namespace gencache::tracelog

#endif // GENCACHE_TRACELOG_SERIALIZE_H
