/**
 * @file
 * Access-log serialization: a line-oriented text format (readable,
 * diffable) and a compact binary format (large logs).
 */

#ifndef GENCACHE_TRACELOG_SERIALIZE_H
#define GENCACHE_TRACELOG_SERIALIZE_H

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "tracelog/event.h"

namespace gencache::tracelog {

/** Thrown by the parsing internals on unreadable or malformed input.
 *  The public readers convert it to fatal() (their documented
 *  contract); tryLoadLog() converts it to an error string so tools
 *  can distinguish "the subject failed to load" from "the subject
 *  loaded and has findings". */
class ParseError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Text format:
 * @code
 * gclog 1
 * benchmark <name>
 * duration_us <n>
 * footprint_bytes <n>
 * events <count>
 * <type> <time> <trace> <size> <module>
 * ...
 * @endcode
 */
void writeText(const AccessLog &log, std::ostream &out);

/** Parse the text format. Calls fatal() on malformed input (these are
 *  user-supplied files). */
AccessLog readText(std::istream &in);

/**
 * Binary format versions:
 *
 *   v1 — magic "GCL1"; metadata, then fixed-width LE records (25
 *        bytes per event).
 *   v2 — magic "GCL2"; metadata as LEB128 varints, then per-event:
 *        a type byte, the time as a varint *delta* from the previous
 *        event's time, and only the fields the event type carries
 *        (trace id for trace events, module for create/load/unload,
 *        size for create), each as a varint. Trace and module ids are
 *        stored +1 so the sentinels (kInvalidTrace, kNoModule) encode
 *        as a single 0 byte. Fields an event type does not carry
 *        decode to their Event defaults.
 *
 * @param version 1 or 2 (default 2); fatal() on anything else.
 */
void writeBinary(const AccessLog &log, std::ostream &out,
                 int version = 2);

/** Parse either binary format; the version is negotiated from the
 *  magic. Calls fatal() on malformed input. */
AccessLog readBinary(std::istream &in);

/** Convenience file helpers; format chosen by extension ".gclog"
 *  (text) vs ".gclogb" (binary). @p binary_version selects the
 *  binary format version for ".gclogb" paths (text ignores it).
 *  fatal() on I/O failure. */
void saveLog(const AccessLog &log, const std::string &path,
             int binary_version = 2);
AccessLog loadLog(const std::string &path);

/** Like loadLog(), but reports unreadable or malformed input instead
 *  of aborting: @return true and fill @p out on success, else false
 *  with the reason in @p error (gencheck --journal exits with its
 *  distinct load-failure status on this path). */
bool tryLoadLog(const std::string &path, AccessLog &out,
                std::string &error);

} // namespace gencache::tracelog

#endif // GENCACHE_TRACELOG_SERIALIZE_H
