/**
 * @file
 * Cache-access event model.
 *
 * The paper's evaluation is trace-driven: DynamoRIO ran each benchmark
 * with an unbounded cache, emitted a verbose log of cache accesses, and
 * that log drove the cache simulator. This module defines our
 * equivalent log: a time-ordered sequence of trace creations,
 * executions, module load/unload events, and pin/unpin markers.
 */

#ifndef GENCACHE_TRACELOG_EVENT_H
#define GENCACHE_TRACELOG_EVENT_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "codecache/fragment.h"
#include "support/units.h"

namespace gencache::tracelog {

/** Kinds of cache-access events. */
enum class EventType : std::uint8_t {
    TraceCreate,  ///< trace first generated: carries size and module
    TraceExec,    ///< trace executed (a code cache lookup)
    ModuleLoad,   ///< module mapped into the address space
    ModuleUnload, ///< module unmapped: program-forced eviction
    Pin,          ///< trace becomes undeletable (exception in flight)
    Unpin,        ///< trace deletable again
};

/** @return printable name of @p type. */
const char *eventTypeName(EventType type);

/** One log record. */
struct Event
{
    EventType type = EventType::TraceExec;
    TimeUs time = 0;
    cache::TraceId trace = cache::kInvalidTrace;
    std::uint32_t sizeBytes = 0;        ///< TraceCreate only
    cache::ModuleId module = cache::kNoModule;

    static Event traceCreate(TimeUs time, cache::TraceId trace,
                             std::uint32_t size_bytes,
                             cache::ModuleId module);
    static Event traceExec(TimeUs time, cache::TraceId trace);
    static Event moduleLoad(TimeUs time, cache::ModuleId module);
    static Event moduleUnload(TimeUs time, cache::ModuleId module);
    static Event pin(TimeUs time, cache::TraceId trace);
    static Event unpin(TimeUs time, cache::TraceId trace);
};

/**
 * An in-memory access log plus the workload metadata the experiments
 * need (benchmark identity, duration, and static code footprint).
 */
class AccessLog
{
  public:
    AccessLog() = default;

    void setBenchmark(std::string name) { benchmark_ = std::move(name); }
    const std::string &benchmark() const { return benchmark_; }

    void setDuration(TimeUs duration) { duration_ = duration; }
    TimeUs duration() const { return duration_; }

    /** Static code footprint of the traced application in bytes
     *  (denominator of the paper's Equation 1). */
    void setFootprintBytes(std::uint64_t bytes) { footprint_ = bytes; }
    std::uint64_t footprintBytes() const { return footprint_; }

    /** Append an event; times must be non-decreasing. */
    void append(const Event &event);

    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    const Event &operator[](std::size_t i) const { return events_[i]; }

    const std::vector<Event> &events() const { return events_; }

    /**
     * Register the process-independent identity of local @p module
     * (cache::canonicalTraceId's uid half). Modules never registered
     * report cache::kNoModuleUid, marking their traces private —
     * ineligible for any cross-process shared tier.
     */
    void setModuleUid(cache::ModuleId module, cache::ModuleUid uid)
    {
        moduleUids_[module] = uid;
    }

    /** Uid of @p module, or cache::kNoModuleUid when unregistered. */
    cache::ModuleUid moduleUid(cache::ModuleId module) const
    {
        auto it = moduleUids_.find(module);
        return it == moduleUids_.end() ? cache::kNoModuleUid
                                       : it->second;
    }

    /** All registered module uids (local id -> uid). */
    const std::unordered_map<cache::ModuleId, cache::ModuleUid> &
    moduleUids() const
    {
        return moduleUids_;
    }

    /** Total bytes of TraceCreate events (trace volume, Figure 3). */
    std::uint64_t createdTraceBytes() const { return createdBytes_; }

    /** Number of TraceCreate events. */
    std::uint64_t createdTraceCount() const { return createdCount_; }

    /**
     * Structural validation: non-decreasing times, each trace created
     * before executed/pinned, no duplicate creations (a trace may be
     * re-created only after its owning module unloaded — the module
     * reload path), loads only of unloaded modules and unloads only
     * of loaded ones. Panics on violation (these logs are
     * generator/runtime products, so malformation is a bug).
     */
    void validate() const;

  private:
    std::string benchmark_;
    TimeUs duration_ = 0;
    std::uint64_t footprint_ = 0;
    std::uint64_t createdBytes_ = 0;
    std::uint64_t createdCount_ = 0;
    std::vector<Event> events_;
    std::unordered_map<cache::ModuleId, cache::ModuleUid> moduleUids_;
};

} // namespace gencache::tracelog

#endif // GENCACHE_TRACELOG_EVENT_H
