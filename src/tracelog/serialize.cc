#include "tracelog/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "support/format.h"
#include "support/logging.h"

namespace gencache::tracelog {

namespace {

/** Abort parsing: malformed or truncated input. The public entry
 *  points translate this into parseFail() or a tryLoadLog error. */
template <typename... Args>
[[noreturn]] void
parseFail(std::string_view spec, const Args &...args)
{
    throw ParseError(format(spec, args...));
}

constexpr char kTextMagic[] = "gclog";
constexpr std::uint32_t kTextVersion = 1;
constexpr char kBinaryMagic[4] = {'G', 'C', 'L', '1'};
constexpr char kBinaryMagicV2[4] = {'G', 'C', 'L', '2'};

const char *
typeToken(EventType type)
{
    return eventTypeName(type);
}

bool
tokenToType(const std::string &token, EventType &type)
{
    static const EventType all[] = {
        EventType::TraceCreate, EventType::TraceExec,
        EventType::ModuleLoad,  EventType::ModuleUnload,
        EventType::Pin,         EventType::Unpin,
    };
    for (EventType candidate : all) {
        if (token == eventTypeName(candidate)) {
            type = candidate;
            return true;
        }
    }
    return false;
}

template <typename T>
void
writeLe(std::ostream &out, T value)
{
    unsigned char bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        bytes[i] = static_cast<unsigned char>(
            (value >> (8 * i)) & 0xff);
    }
    out.write(reinterpret_cast<const char *>(bytes), sizeof(T));
}

template <typename T>
T
readLe(std::istream &in)
{
    unsigned char bytes[sizeof(T)];
    in.read(reinterpret_cast<char *>(bytes), sizeof(T));
    if (!in) {
        parseFail("truncated binary access log");
    }
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        value |= static_cast<T>(bytes[i]) << (8 * i);
    }
    return value;
}

/** LEB128: 7 payload bits per byte, high bit = continuation. */
void
writeVarint(std::ostream &out, std::uint64_t value)
{
    unsigned char buf[10];
    std::size_t n = 0;
    do {
        unsigned char byte = value & 0x7f;
        value >>= 7;
        if (value != 0) {
            byte |= 0x80;
        }
        buf[n++] = byte;
    } while (value != 0);
    out.write(reinterpret_cast<const char *>(buf),
              static_cast<std::streamsize>(n));
}

std::uint64_t
readVarint(std::istream &in)
{
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        int byte = in.get();
        if (byte == std::char_traits<char>::eof()) {
            parseFail("truncated binary access log");
        }
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            return value;
        }
    }
    parseFail("binary gclog: varint longer than 64 bits");
}

/** Decode a +1-biased trace reference: 0 is reserved (it would
 *  underflow to kInvalidTrace), so a corrupt stream fails loudly
 *  instead of producing a sentinel trace id. */
cache::TraceId
readTraceRef(std::istream &in, std::uint64_t event_index)
{
    std::uint64_t raw = readVarint(in);
    if (raw == 0) {
        parseFail("binary gclog: event {} has trace reference 0 "
              "(corrupt stream)", event_index);
    }
    return raw - 1;
}

/** Decode a +1-biased module reference. The writer adds 1 in 32-bit
 *  arithmetic (kNoModule wraps to 0, which is legal), so any varint
 *  wider than 32 bits means the stream is corrupt, not merely
 *  large. */
cache::ModuleId
readModuleRef(std::istream &in, std::uint64_t event_index)
{
    std::uint64_t raw = readVarint(in);
    if (raw > 0xffffffffULL) {
        parseFail("binary gclog: event {} has bad module reference {} "
              "(corrupt stream)", event_index, raw);
    }
    return static_cast<cache::ModuleId>(raw) - 1U;
}

void
writeBinaryV2(const AccessLog &log, std::ostream &out)
{
    out.write(kBinaryMagicV2, sizeof(kBinaryMagicV2));
    writeVarint(out, log.benchmark().size());
    out.write(log.benchmark().data(),
              static_cast<std::streamsize>(log.benchmark().size()));
    writeVarint(out, log.duration());
    writeVarint(out, log.footprintBytes());
    writeVarint(out, log.size());
    TimeUs prev = 0;
    for (const Event &event : log.events()) {
        writeLe<std::uint8_t>(out,
                              static_cast<std::uint8_t>(event.type));
        writeVarint(out, event.time - prev);
        prev = event.time;
        switch (event.type) {
          case EventType::TraceCreate:
            writeVarint(out, event.trace + 1);
            writeVarint(out, event.sizeBytes);
            writeVarint(out, static_cast<std::uint64_t>(
                                 event.module + 1U));
            break;
          case EventType::TraceExec:
          case EventType::Pin:
          case EventType::Unpin:
            writeVarint(out, event.trace + 1);
            break;
          case EventType::ModuleLoad:
          case EventType::ModuleUnload:
            writeVarint(out, static_cast<std::uint64_t>(
                                 event.module + 1U));
            break;
        }
    }
}

AccessLog
readBinaryV2(std::istream &in)
{
    AccessLog log;
    auto name_len = readVarint(in);
    if (name_len > (1U << 20)) {
        parseFail("binary gclog: implausible benchmark name length {}",
              name_len);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in) {
        parseFail("truncated binary access log header");
    }
    log.setBenchmark(name);
    log.setDuration(readVarint(in));
    log.setFootprintBytes(readVarint(in));
    auto count = readVarint(in);
    TimeUs prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        Event event;
        auto type = readLe<std::uint8_t>(in);
        if (type > static_cast<std::uint8_t>(EventType::Unpin)) {
            parseFail("binary gclog: bad event type {}", int{type});
        }
        event.type = static_cast<EventType>(type);
        TimeUs delta = readVarint(in);
        if (delta > ~prev) {
            parseFail("binary gclog: event {} time overflows", i);
        }
        event.time = prev + delta;
        prev = event.time;
        switch (event.type) {
          case EventType::TraceCreate: {
            event.trace = readTraceRef(in, i);
            std::uint64_t size_bytes = readVarint(in);
            if (size_bytes > 0xffffffffULL) {
                parseFail("binary gclog: event {} trace size {} exceeds "
                      "32 bits (corrupt stream)", i, size_bytes);
            }
            event.sizeBytes = static_cast<std::uint32_t>(size_bytes);
            event.module = readModuleRef(in, i);
            break;
          }
          case EventType::TraceExec:
          case EventType::Pin:
          case EventType::Unpin:
            event.trace = readTraceRef(in, i);
            break;
          case EventType::ModuleLoad:
          case EventType::ModuleUnload:
            event.module = readModuleRef(in, i);
            break;
        }
        log.append(event);
    }
    return log;
}

} // namespace

namespace {

AccessLog readTextImpl(std::istream &in);
AccessLog readBinaryImpl(std::istream &in);

} // namespace

void
writeText(const AccessLog &log, std::ostream &out)
{
    out << kTextMagic << ' ' << kTextVersion << '\n';
    out << "benchmark " << (log.benchmark().empty() ? "-"
                                                    : log.benchmark())
        << '\n';
    out << "duration_us " << log.duration() << '\n';
    out << "footprint_bytes " << log.footprintBytes() << '\n';
    out << "events " << log.size() << '\n';
    for (const Event &event : log.events()) {
        out << typeToken(event.type) << ' ' << event.time << ' '
            << event.trace << ' ' << event.sizeBytes << ' '
            << event.module << '\n';
    }
}

namespace {

AccessLog
readTextImpl(std::istream &in)
{
    std::string magic;
    std::uint32_t version = 0;
    in >> magic >> version;
    if (magic != kTextMagic || version != kTextVersion) {
        parseFail("not a gclog text file (magic '{}', version {})", magic,
              version);
    }

    AccessLog log;
    std::string key;
    std::string benchmark;
    TimeUs duration = 0;
    std::uint64_t footprint = 0;
    std::uint64_t count = 0;

    in >> key >> benchmark;
    if (key != "benchmark") {
        parseFail("gclog: expected 'benchmark', got '{}'", key);
    }
    in >> key >> duration;
    if (key != "duration_us") {
        parseFail("gclog: expected 'duration_us', got '{}'", key);
    }
    in >> key >> footprint;
    if (key != "footprint_bytes") {
        parseFail("gclog: expected 'footprint_bytes', got '{}'", key);
    }
    in >> key >> count;
    if (key != "events") {
        parseFail("gclog: expected 'events', got '{}'", key);
    }
    if (benchmark != "-") {
        log.setBenchmark(benchmark);
    }
    log.setDuration(duration);
    log.setFootprintBytes(footprint);

    for (std::uint64_t i = 0; i < count; ++i) {
        std::string token;
        Event event;
        in >> token >> event.time >> event.trace >> event.sizeBytes >>
            event.module;
        if (!in) {
            parseFail("gclog: truncated after {} of {} events", i, count);
        }
        if (!tokenToType(token, event.type)) {
            parseFail("gclog: unknown event type '{}'", token);
        }
        log.append(event);
    }
    return log;
}

} // namespace

AccessLog
readText(std::istream &in)
{
    try {
        return readTextImpl(in);
    } catch (const ParseError &error) {
        fatal("{}", error.what());
    }
}

void
writeBinary(const AccessLog &log, std::ostream &out, int version)
{
    if (version == 2) {
        writeBinaryV2(log, out);
        return;
    }
    if (version != 1) {
        fatal("unsupported binary gclog version {}", version);
    }
    out.write(kBinaryMagic, sizeof(kBinaryMagic));
    writeLe<std::uint32_t>(
        out, static_cast<std::uint32_t>(log.benchmark().size()));
    out.write(log.benchmark().data(),
              static_cast<std::streamsize>(log.benchmark().size()));
    writeLe<std::uint64_t>(out, log.duration());
    writeLe<std::uint64_t>(out, log.footprintBytes());
    writeLe<std::uint64_t>(out, log.size());
    for (const Event &event : log.events()) {
        writeLe<std::uint8_t>(out,
                              static_cast<std::uint8_t>(event.type));
        writeLe<std::uint64_t>(out, event.time);
        writeLe<std::uint64_t>(out, event.trace);
        writeLe<std::uint32_t>(out, event.sizeBytes);
        writeLe<std::uint32_t>(out, event.module);
    }
}

namespace {

AccessLog
readBinaryImpl(std::istream &in)
{
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in) {
        parseFail("not a gclog binary file");
    }
    if (std::memcmp(magic, kBinaryMagicV2, sizeof(magic)) == 0) {
        return readBinaryV2(in);
    }
    if (std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
        parseFail("not a gclog binary file");
    }
    AccessLog log;
    auto name_len = readLe<std::uint32_t>(in);
    if (name_len > (1U << 20)) {
        parseFail("binary gclog: implausible benchmark name length {}",
              name_len);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in) {
        parseFail("truncated binary access log header");
    }
    log.setBenchmark(name);
    log.setDuration(readLe<std::uint64_t>(in));
    log.setFootprintBytes(readLe<std::uint64_t>(in));
    auto count = readLe<std::uint64_t>(in);
    for (std::uint64_t i = 0; i < count; ++i) {
        Event event;
        auto type = readLe<std::uint8_t>(in);
        if (type > static_cast<std::uint8_t>(EventType::Unpin)) {
            parseFail("binary gclog: bad event type {}", int{type});
        }
        event.type = static_cast<EventType>(type);
        event.time = readLe<std::uint64_t>(in);
        event.trace = readLe<std::uint64_t>(in);
        event.sizeBytes = readLe<std::uint32_t>(in);
        event.module = readLe<std::uint32_t>(in);
        log.append(event);
    }
    return log;
}

} // namespace

AccessLog
readBinary(std::istream &in)
{
    try {
        return readBinaryImpl(in);
    } catch (const ParseError &error) {
        fatal("{}", error.what());
    }
}

namespace {

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

AccessLog
loadLogImpl(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        parseFail("cannot open '{}' for reading", path);
    }
    if (endsWith(path, ".gclogb")) {
        return readBinaryImpl(in);
    }
    return readTextImpl(in);
}

} // namespace

void
saveLog(const AccessLog &log, const std::string &path,
        int binary_version)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        fatal("cannot open '{}' for writing", path);
    }
    if (endsWith(path, ".gclogb")) {
        writeBinary(log, out, binary_version);
    } else {
        writeText(log, out);
    }
    if (!out) {
        fatal("write to '{}' failed", path);
    }
}

AccessLog
loadLog(const std::string &path)
{
    try {
        return loadLogImpl(path);
    } catch (const ParseError &error) {
        fatal("{}", error.what());
    }
}

bool
tryLoadLog(const std::string &path, AccessLog &out, std::string &error)
{
    try {
        out = loadLogImpl(path);
        return true;
    } catch (const ParseError &parse_error) {
        error = parse_error.what();
        return false;
    }
}

} // namespace gencache::tracelog
