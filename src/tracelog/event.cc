#include "tracelog/event.h"

#include <unordered_map>
#include <unordered_set>

#include "support/logging.h"

namespace gencache::tracelog {

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::TraceCreate: return "create";
      case EventType::TraceExec: return "exec";
      case EventType::ModuleLoad: return "load";
      case EventType::ModuleUnload: return "unload";
      case EventType::Pin: return "pin";
      case EventType::Unpin: return "unpin";
    }
    GENCACHE_PANIC("unknown event type {}", static_cast<int>(type));
}

Event
Event::traceCreate(TimeUs time, cache::TraceId trace,
                   std::uint32_t size_bytes, cache::ModuleId module)
{
    Event event;
    event.type = EventType::TraceCreate;
    event.time = time;
    event.trace = trace;
    event.sizeBytes = size_bytes;
    event.module = module;
    return event;
}

Event
Event::traceExec(TimeUs time, cache::TraceId trace)
{
    Event event;
    event.type = EventType::TraceExec;
    event.time = time;
    event.trace = trace;
    return event;
}

Event
Event::moduleLoad(TimeUs time, cache::ModuleId module)
{
    Event event;
    event.type = EventType::ModuleLoad;
    event.time = time;
    event.module = module;
    return event;
}

Event
Event::moduleUnload(TimeUs time, cache::ModuleId module)
{
    Event event;
    event.type = EventType::ModuleUnload;
    event.time = time;
    event.module = module;
    return event;
}

Event
Event::pin(TimeUs time, cache::TraceId trace)
{
    Event event;
    event.type = EventType::Pin;
    event.time = time;
    event.trace = trace;
    return event;
}

Event
Event::unpin(TimeUs time, cache::TraceId trace)
{
    Event event;
    event.type = EventType::Unpin;
    event.time = time;
    event.trace = trace;
    return event;
}

void
AccessLog::append(const Event &event)
{
    if (!events_.empty() && event.time < events_.back().time) {
        GENCACHE_PANIC("log time moved backwards: {} after {}",
                       event.time, events_.back().time);
    }
    if (event.type == EventType::TraceCreate) {
        createdBytes_ += event.sizeBytes;
        ++createdCount_;
    }
    events_.push_back(event);
}

void
AccessLog::validate() const
{
    // A re-creation of the same trace id is legal only across a
    // reload of its module: each trace remembers the module unload
    // epoch it was created under, and a second creation requires the
    // epoch to have advanced since (canonical (module, offset) ids
    // are stable, so the reload path genuinely re-creates them).
    struct Creation
    {
        cache::ModuleId module = cache::kNoModule;
        std::uint64_t unloadEpoch = 0;
    };
    std::unordered_map<cache::TraceId, Creation> created;
    std::unordered_map<cache::ModuleId, std::uint64_t> unloadEpoch;
    std::unordered_set<cache::ModuleId> loaded;
    TimeUs last = 0;
    for (const Event &event : events_) {
        if (event.time < last) {
            GENCACHE_PANIC("unsorted log at t={}", event.time);
        }
        last = event.time;
        switch (event.type) {
          case EventType::TraceCreate: {
            std::uint64_t epoch = unloadEpoch[event.module];
            auto [it, inserted] = created.emplace(
                event.trace, Creation{event.module, epoch});
            if (!inserted) {
                if (it->second.module != event.module) {
                    GENCACHE_PANIC(
                        "trace {} re-created in module {} (was {})",
                        event.trace, event.module, it->second.module);
                }
                if (it->second.unloadEpoch == epoch) {
                    GENCACHE_PANIC("duplicate creation of trace {}",
                                   event.trace);
                }
                it->second.unloadEpoch = epoch;
            }
            if (event.sizeBytes == 0) {
                GENCACHE_PANIC("trace {} created with zero size",
                               event.trace);
            }
            break;
          }
          case EventType::TraceExec:
          case EventType::Pin:
          case EventType::Unpin:
            if (created.count(event.trace) == 0) {
                GENCACHE_PANIC("trace {} used before creation",
                               event.trace);
            }
            break;
          case EventType::ModuleLoad:
            if (!loaded.insert(event.module).second) {
                GENCACHE_PANIC("module {} loaded twice", event.module);
            }
            break;
          case EventType::ModuleUnload:
            if (loaded.erase(event.module) == 0) {
                GENCACHE_PANIC("module {} unloaded while not loaded",
                               event.module);
            }
            ++unloadEpoch[event.module];
            break;
        }
    }
}

} // namespace gencache::tracelog
