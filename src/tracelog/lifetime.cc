#include "tracelog/lifetime.h"

#include "support/logging.h"

namespace gencache::tracelog {

double
TraceLifetime::fraction(TimeUs total_time) const
{
    if (total_time == 0) {
        return 0.0;
    }
    return static_cast<double>(lastExec - firstExec) /
           static_cast<double>(total_time);
}

LifetimeAnalyzer::LifetimeAnalyzer(const AccessLog &log)
{
    std::unordered_map<cache::TraceId, std::size_t> index;
    totalTime_ = log.duration();

    for (const Event &event : log.events()) {
        if (totalTime_ < event.time) {
            totalTime_ = event.time;
        }
        if (event.type == EventType::TraceCreate) {
            TraceLifetime lifetime;
            lifetime.trace = event.trace;
            lifetime.firstExec = event.time;
            lifetime.lastExec = event.time;
            lifetime.executions = 1;
            lifetime.sizeBytes = event.sizeBytes;
            index.emplace(event.trace, lifetimes_.size());
            lifetimes_.push_back(lifetime);
        } else if (event.type == EventType::TraceExec) {
            auto it = index.find(event.trace);
            if (it == index.end()) {
                GENCACHE_PANIC("execution of unknown trace {}",
                               event.trace);
            }
            TraceLifetime &lifetime = lifetimes_[it->second];
            lifetime.lastExec = event.time;
            ++lifetime.executions;
        }
    }
}

Histogram
LifetimeAnalyzer::lifetimeHistogram() const
{
    Histogram histogram = makeLifetimeHistogram();
    for (const TraceLifetime &lifetime : lifetimes_) {
        histogram.add(lifetime.fraction(totalTime_));
    }
    return histogram;
}

double
LifetimeAnalyzer::shortLivedFraction() const
{
    if (lifetimes_.empty()) {
        return 0.0;
    }
    std::size_t count = 0;
    for (const TraceLifetime &lifetime : lifetimes_) {
        if (lifetime.fraction(totalTime_) < 0.2) {
            ++count;
        }
    }
    return static_cast<double>(count) /
           static_cast<double>(lifetimes_.size());
}

double
LifetimeAnalyzer::longLivedFraction() const
{
    if (lifetimes_.empty()) {
        return 0.0;
    }
    std::size_t count = 0;
    for (const TraceLifetime &lifetime : lifetimes_) {
        if (lifetime.fraction(totalTime_) >= 0.8) {
            ++count;
        }
    }
    return static_cast<double>(count) /
           static_cast<double>(lifetimes_.size());
}

} // namespace gencache::tracelog
