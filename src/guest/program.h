/**
 * @file
 * A guest program: a set of modules plus an entry point.
 */

#ifndef GENCACHE_GUEST_PROGRAM_H
#define GENCACHE_GUEST_PROGRAM_H

#include <memory>
#include <string>
#include <vector>

#include "guest/module.h"

namespace gencache::guest {

/** Owns the modules making up one guest application. */
class GuestProgram
{
  public:
    GuestProgram() = default;

    GuestProgram(const GuestProgram &) = delete;
    GuestProgram &operator=(const GuestProgram &) = delete;
    GuestProgram(GuestProgram &&) = default;
    GuestProgram &operator=(GuestProgram &&) = default;

    /** Create a module owned by this program.
     *  @return a stable reference (modules are never removed). */
    GuestModule &addModule(std::string name, isa::GuestAddr base,
                           bool transient = false);

    /** @return the module with id @p id, or nullptr. */
    GuestModule *findModule(ModuleId id);
    const GuestModule *findModule(ModuleId id) const;

    /** @return the module named @p name, or nullptr. */
    GuestModule *findModule(const std::string &name);

    std::size_t moduleCount() const { return modules_.size(); }

    const std::vector<std::unique_ptr<GuestModule>> &modules() const
    {
        return modules_;
    }

    isa::GuestAddr entry() const { return entry_; }
    void setEntry(isa::GuestAddr addr) { entry_ = addr; }

    /** @return total code bytes across all modules (the application
     *  footprint of paper §3.2). */
    std::uint64_t codeFootprintBytes() const;

  private:
    std::vector<std::unique_ptr<GuestModule>> modules_;
    isa::GuestAddr entry_ = 0;
};

} // namespace gencache::guest

#endif // GENCACHE_GUEST_PROGRAM_H
