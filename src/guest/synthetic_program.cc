#include "guest/synthetic_program.h"

#include <algorithm>
#include <memory>

#include "guest/program_builder.h"
#include "support/format.h"
#include "support/logging.h"

namespace gencache::guest {

namespace {

constexpr isa::GuestAddr kMainBase = 0x00400000;
constexpr isa::GuestAddr kDllBase = 0x10000000;
constexpr isa::GuestAddr kDllStride = 0x00100000;

/** Registers reserved by the generated scaffolding. */
constexpr unsigned kPhaseLoopReg = 14;  // phase iteration counter
constexpr unsigned kInnerLoopReg = 12;  // function-local loop counter

/**
 * Emit one synthetic function into @p builder.
 *
 * Shape: entry sets up an inner loop; the body is a chain of blocks
 * with mostly-straight-line flow plus one rarely-taken side block, so
 * NET trace selection sees both hot paths and cold tails.
 *
 * Layout note: a conditional branch's not-taken successor is the block
 * laid out immediately after it, so block creation order here encodes
 * fall-through edges (the trampoline block catches the hot
 * fall-through of the final body block's cold-path branch).
 *
 * @return the label of the function's entry block.
 */
BlockLabel
emitFunction(ModuleBuilder &builder, Rng &rng, unsigned body_blocks,
             unsigned iterations)
{
    BlockLabel entry = builder.createBlock();
    BlockLabel head = builder.createBlock();
    std::vector<BlockLabel> body(std::max(1u, body_blocks));
    for (auto &label : body) {
        label = builder.createBlock();
    }
    BlockLabel trampoline = builder.createBlock();
    BlockLabel rare = builder.createBlock();
    BlockLabel tail = builder.createBlock();
    BlockLabel done = builder.createBlock();

    builder.at(entry)
        .movi(kInnerLoopReg, static_cast<std::int64_t>(iterations))
        .jump(head);
    builder.at(head).branchZ(kInnerLoopReg, done);

    for (std::size_t i = 0; i < body.size(); ++i) {
        builder.at(body[i]);
        unsigned filler =
            1 + static_cast<unsigned>(rng.uniformInt(1, 5));
        for (unsigned k = 0; k < filler; ++k) {
            unsigned dst = static_cast<unsigned>(rng.uniformInt(0, 7));
            unsigned src = static_cast<unsigned>(rng.uniformInt(0, 7));
            switch (rng.uniformInt(0, 3)) {
              case 0:
                builder.add(dst, src, dst);
                break;
              case 1:
                builder.addi(dst, src, rng.uniformInt(-8, 8));
                break;
              case 2:
                builder.mul(dst, src, dst);
                break;
              default:
                builder.mov(dst, src);
                break;
            }
        }
        if (i + 1 < body.size()) {
            builder.jump(body[i + 1]);
        } else {
            // Cold side exit, taken only on the final loop iteration.
            builder.addi(8, kInnerLoopReg, -1).branchZ(8, rare);
        }
    }

    builder.at(trampoline).jump(tail);
    builder.at(rare).addi(9, 9, 1).jump(tail);
    builder.at(tail)
        .addi(kInnerLoopReg, kInnerLoopReg, -1)
        .jump(head);
    builder.at(done).ret();
    return entry;
}

} // namespace

SyntheticProgram
generateSyntheticProgram(const SyntheticProgramConfig &config)
{
    if (config.phases == 0) {
        fatal("synthetic program needs at least one phase");
    }
    Rng rng(config.seed);
    SyntheticProgram result;
    GuestProgram &program = result.program;

    // --- DLL modules hosting phase-local functions -------------------
    std::vector<GuestModule *> dllModules;
    std::vector<std::unique_ptr<ModuleBuilder>> dllBuilders;
    for (unsigned d = 0; d < config.dllCount; ++d) {
        GuestModule &module = program.addModule(
            format("phase{}.dll", d), kDllBase + d * kDllStride,
            /*transient=*/true);
        dllModules.push_back(&module);
        dllBuilders.push_back(std::make_unique<ModuleBuilder>(module));
    }
    std::vector<unsigned> dllLastPhase(config.dllCount, 0);
    std::vector<bool> dllUsed(config.dllCount, false);

    struct PhaseFunction
    {
        unsigned dll = ~0u;
        BlockLabel label;
    };
    std::vector<std::vector<PhaseFunction>> phaseFunctions(config.phases);
    for (unsigned p = 0; p < config.phases; ++p) {
        for (unsigned f = 0; f < config.functionsPerPhase; ++f) {
            PhaseFunction fn;
            if (config.dllCount > 0) {
                fn.dll = (p * config.functionsPerPhase + f)
                         % config.dllCount;
                unsigned iters = config.innerIterations +
                    static_cast<unsigned>(rng.uniformInt(0, 4));
                fn.label = emitFunction(*dllBuilders[fn.dll], rng,
                                        config.blocksPerFunction, iters);
                dllLastPhase[fn.dll] =
                    std::max(dllLastPhase[fn.dll], p);
                dllUsed[fn.dll] = true;
            }
            phaseFunctions[p].push_back(fn);
        }
    }

    // Finalize DLLs to learn the functions' entry addresses.
    for (auto &builder : dllBuilders) {
        builder->finalize();
    }

    // --- Main module --------------------------------------------------
    GuestModule &main = program.addModule("main.exe", kMainBase);
    ModuleBuilder mb(main);

    // Shared hot functions live in the main module.
    std::vector<BlockLabel> sharedFns;
    for (unsigned f = 0; f < config.sharedFunctions; ++f) {
        unsigned iters = config.innerIterations +
            static_cast<unsigned>(rng.uniformInt(0, 4));
        sharedFns.push_back(
            emitFunction(mb, rng, config.blocksPerFunction, iters));
    }

    BlockLabel entry = mb.createBlock();
    mb.at(entry).movi(9, 0); // r9 counts cold-path visits

    // Each phase: publish the phase in r13, then loop over its calls.
    BlockLabel prevTail = entry;
    for (unsigned p = 0; p < config.phases; ++p) {
        BlockLabel setup = mb.createBlock();
        mb.at(prevTail).jump(setup);

        BlockLabel loopHead = mb.createBlock();
        mb.at(setup)
            .movi(kPhaseRegister, static_cast<std::int64_t>(p))
            .movi(kPhaseLoopReg,
                  static_cast<std::int64_t>(config.phaseIterations))
            .jump(loopHead);

        // Chain of call blocks; a call's fall-through must be the next
        // created block.
        BlockLabel current = loopHead;
        for (BlockLabel shared : sharedFns) {
            mb.at(current).call(shared);
            current = mb.createBlock();
        }
        for (const PhaseFunction &fn : phaseFunctions[p]) {
            if (fn.dll != ~0u) {
                mb.at(current).callAbs(
                    dllBuilders[fn.dll]->addrOf(fn.label));
                current = mb.createBlock();
            }
        }

        mb.at(current)
            .addi(kPhaseLoopReg, kPhaseLoopReg, -1)
            .branchNz(kPhaseLoopReg, loopHead);
        BlockLabel phaseDone = mb.createBlock(); // branch fall-through
        mb.at(phaseDone).nop();
        prevTail = phaseDone;
    }
    BlockLabel end = mb.createBlock();
    mb.at(prevTail).jump(end);
    mb.at(end).halt();

    mb.finalize();
    program.setEntry(mb.addrOf(entry));

    for (unsigned d = 0; d < config.dllCount; ++d) {
        if (dllUsed[d]) {
            result.dllLastPhase.emplace_back(dllModules[d]->id(),
                                             dllLastPhase[d]);
        }
    }
    return result;
}

} // namespace gencache::guest
