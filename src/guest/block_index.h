/**
 * @file
 * Dense block index and predecoded code streams for the front-end
 * fast path.
 *
 * The legacy front end resolves every dispatched program counter
 * through two ordered-map lookups (module, then block) and re-walks
 * `isa::Instruction` vectors — paying an out-of-line `opcodeSize()`
 * call per instruction — every time a block executes. The BlockIndex
 * lowers each mapped module once, at map time, into:
 *
 *  - a *dense block id* (`BlockId`): a flat, monotonically growing
 *    integer per basic block, so hot per-block state (dispatch table,
 *    bb-cache presence, trace-head counters) becomes a vector read;
 *  - a *predecoded instruction stream*: one contiguous array of
 *    `PredecodedInst` records with the instruction address and
 *    fall-through address precomputed, so the interpreter's hot loop
 *    touches no out-of-line size tables.
 *
 * Lookup from a guest address is exact and O(1): each mapped module
 * contributes a byte-offset table (one `BlockId` slot per code byte,
 * `kInvalidBlockId` for non-block-start bytes) plus a most-recently-
 * used range hint, since consecutive lookups overwhelmingly stay in
 * one module. Ids are never reused: unmapping a module retires its id
 * range (the metadata stays, marked unowned), which lets the runtime
 * invalidate per-block state with a single range sweep.
 */

#ifndef GENCACHE_GUEST_BLOCK_INDEX_H
#define GENCACHE_GUEST_BLOCK_INDEX_H

#include <cstdint>
#include <vector>

#include "guest/module.h"

namespace gencache::guest {

/** Dense id of a basic block in the address-space-wide index. */
using BlockId = std::uint32_t;

/** Sentinel for "no block". */
constexpr BlockId kInvalidBlockId = ~0u;

/** One predecoded guest instruction: the `isa::Instruction` fields
 *  plus the precomputed instruction address and fall-through address,
 *  so the execution loop never calls `opcodeSize()`. */
struct PredecodedInst
{
    isa::GuestAddr addr = 0;        ///< guest address of this inst
    isa::GuestAddr fallThrough = 0; ///< addr + encoded size
    isa::GuestAddr target = 0;      ///< direct control-flow target
    std::int64_t imm = 0;           ///< immediate operand
    isa::Opcode opcode = isa::Opcode::Nop;
    std::uint8_t dst = 0;
    std::uint8_t src1 = 0;
    std::uint8_t src2 = 0;
};

/** Per-block metadata of the dense index. */
struct BlockMeta
{
    std::uint32_t instBegin = 0; ///< first inst in the code stream
    std::uint32_t instEnd = 0;   ///< one past the last inst
    isa::GuestAddr startAddr = 0;
    std::uint32_t sizeBytes = 0;
    ModuleId module = kInvalidModule; ///< kInvalidModule once retired
};

/** Address-space-wide dense block index + predecoded code stream. */
class BlockIndex
{
  public:
    BlockIndex() = default;

    /** Lower @p module into the index, assigning one contiguous run
     *  of fresh block ids (in block address order). */
    void addModule(const GuestModule &module);

    /** Retire @p module's id range: its ids stop resolving and their
     *  metadata is marked unowned. Ids are never reused. */
    void removeModule(ModuleId module);

    /** @return the dense id of the block starting exactly at @p addr
     *  in a mapped module, or kInvalidBlockId. O(1). */
    BlockId blockIdAt(isa::GuestAddr addr) const
    {
        const Range *range = rangeOf(addr);
        if (range == nullptr) {
            return kInvalidBlockId;
        }
        return range->offsetToId[addr - range->base];
    }

    /** Metadata of block @p id (valid for any id below blockLimit). */
    const BlockMeta &meta(BlockId id) const { return meta_[id]; }

    /** First predecoded instruction of block @p id. */
    const PredecodedInst *instBegin(BlockId id) const
    {
        return code_.data() + meta_[id].instBegin;
    }

    /** One past the last predecoded instruction of block @p id. */
    const PredecodedInst *instEnd(BlockId id) const
    {
        return code_.data() + meta_[id].instEnd;
    }

    /** One past the largest id ever assigned (monotone: grows on
     *  addModule, never shrinks). Per-block side tables size to it. */
    BlockId blockLimit() const
    {
        return static_cast<BlockId>(meta_.size());
    }

    /**
     * The id range [first, last) assigned to mapped module @p module.
     * @return false when the module is not currently indexed.
     */
    bool moduleRange(ModuleId module, BlockId &first,
                     BlockId &last) const;

    /** Number of currently mapped (non-retired) blocks. */
    std::size_t liveBlockCount() const;

  private:
    /** Per-mapped-module lookup table: one BlockId slot per code
     *  byte, exact block starts only. */
    struct Range
    {
        isa::GuestAddr base = 0;
        isa::GuestAddr end = 0;
        ModuleId module = kInvalidModule;
        BlockId firstId = kInvalidBlockId;
        BlockId lastId = kInvalidBlockId; ///< one past the last id
        std::vector<BlockId> offsetToId;
    };

    const Range *rangeOf(isa::GuestAddr addr) const
    {
        if (hint_ < ranges_.size()) {
            const Range &hinted = ranges_[hint_];
            if (addr >= hinted.base && addr < hinted.end) {
                return &hinted;
            }
        }
        for (std::size_t i = 0; i < ranges_.size(); ++i) {
            if (addr >= ranges_[i].base && addr < ranges_[i].end) {
                hint_ = i;
                return &ranges_[i];
            }
        }
        return nullptr;
    }

    std::vector<PredecodedInst> code_;
    std::vector<BlockMeta> meta_;
    std::vector<Range> ranges_;
    mutable std::size_t hint_ = 0;
};

} // namespace gencache::guest

#endif // GENCACHE_GUEST_BLOCK_INDEX_H
