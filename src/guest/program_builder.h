/**
 * @file
 * A small assembler-like API for constructing guest modules.
 *
 * Blocks are created with symbolic labels; control-flow instructions may
 * target labels of blocks that do not yet have addresses. finalize()
 * lays the blocks out contiguously from the module base (in creation
 * order) and patches every label reference to its concrete address.
 */

#ifndef GENCACHE_GUEST_PROGRAM_BUILDER_H
#define GENCACHE_GUEST_PROGRAM_BUILDER_H

#include <cstdint>
#include <vector>

#include "guest/module.h"

namespace gencache::guest {

/** Symbolic handle to a block under construction. */
struct BlockLabel
{
    std::uint32_t index = ~0u;

    bool valid() const { return index != ~0u; }
};

/**
 * Builds the blocks of one module. Typical use:
 *
 * @code
 * ModuleBuilder builder(module);
 * BlockLabel head = builder.createBlock();
 * BlockLabel body = builder.createBlock();
 * builder.at(head).movi(0, 100).jump(body);
 * builder.at(body).addi(0, 0, -1).branchNz(0, body);
 * builder.finalize();
 * @endcode
 */
class ModuleBuilder
{
  public:
    /** Builds into @p module, which must currently be empty. */
    explicit ModuleBuilder(GuestModule &module);

    /** Create a new, empty block and return its label. */
    BlockLabel createBlock();

    /** Select the block that subsequent emit calls append to. */
    ModuleBuilder &at(BlockLabel label);

    /// @name Instruction emitters (append to the selected block).
    /// @{
    ModuleBuilder &nop();
    ModuleBuilder &add(unsigned dst, unsigned src1, unsigned src2);
    ModuleBuilder &sub(unsigned dst, unsigned src1, unsigned src2);
    ModuleBuilder &mul(unsigned dst, unsigned src1, unsigned src2);
    ModuleBuilder &addi(unsigned dst, unsigned src1, std::int64_t imm);
    ModuleBuilder &movi(unsigned dst, std::int64_t imm);
    ModuleBuilder &mov(unsigned dst, unsigned src1);
    ModuleBuilder &load(unsigned dst, unsigned base, std::int64_t off);
    ModuleBuilder &store(unsigned base, std::int64_t off, unsigned src);
    /// @}

    /// @name Terminators targeting labels in this module.
    /// @{
    ModuleBuilder &jump(BlockLabel target);
    ModuleBuilder &branchNz(unsigned src, BlockLabel target);
    ModuleBuilder &branchZ(unsigned src, BlockLabel target);
    ModuleBuilder &call(BlockLabel target);
    /// @}

    /// @name Terminators targeting absolute guest addresses
    /// (cross-module calls) or with no target.
    /// @{
    ModuleBuilder &jumpAbs(isa::GuestAddr target);
    ModuleBuilder &callAbs(isa::GuestAddr target);
    ModuleBuilder &jumpReg(unsigned src);
    ModuleBuilder &callReg(unsigned src);
    ModuleBuilder &ret();
    ModuleBuilder &halt();
    /// @}

    /** Lay out all blocks, patch label targets, and add the blocks to
     *  the module. The builder must not be reused afterwards.
     *  @return the concrete start address of each created block. */
    std::vector<isa::GuestAddr> finalize();

    /** @return the concrete address of @p label; valid post-finalize. */
    isa::GuestAddr addrOf(BlockLabel label) const;

  private:
    struct Fixup
    {
        std::uint32_t block;
        std::uint32_t inst;
        std::uint32_t targetLabel;
    };

    isa::BasicBlock &current();
    void emit(const isa::Instruction &inst);
    void emitLabelTarget(isa::Instruction inst, BlockLabel target);

    GuestModule &module_;
    std::vector<isa::BasicBlock> blocks_;
    std::vector<Fixup> fixups_;
    std::vector<isa::GuestAddr> addrs_;
    std::uint32_t currentBlock_ = ~0u;
    bool finalized_ = false;
};

} // namespace gencache::guest

#endif // GENCACHE_GUEST_PROGRAM_BUILDER_H
