#include "guest/address_space.h"

#include <sstream>

#include "support/format.h"
#include "support/logging.h"

namespace gencache::guest {

void
AddressSpace::map(const GuestModule &module)
{
    if (isMapped(module.id())) {
        GENCACHE_PANIC("module '{}' already mapped", module.name());
    }
    isa::GuestAddr base = module.baseAddr();
    isa::GuestAddr end = module.endAddr();
    auto next = byBase_.lower_bound(base);
    if (next != byBase_.end() && next->first < end) {
        GENCACHE_PANIC("mapping '{}' overlaps '{}'", module.name(),
                       next->second->name());
    }
    if (next != byBase_.begin()) {
        auto prev = std::prev(next);
        if (prev->second->endAddr() > base) {
            GENCACHE_PANIC("mapping '{}' overlaps '{}'", module.name(),
                           prev->second->name());
        }
    }
    byBase_.emplace(base, &module);
    index_.addModule(module);
    for (const auto &observer : observers_) {
        observer(module, true);
    }
}

void
AddressSpace::unmap(ModuleId id)
{
    for (auto it = byBase_.begin(); it != byBase_.end(); ++it) {
        if (it->second->id() == id) {
            const GuestModule &module = *it->second;
            byBase_.erase(it);
            index_.removeModule(id);
            for (const auto &observer : observers_) {
                observer(module, false);
            }
            return;
        }
    }
    GENCACHE_PANIC("unmap of module id {} that is not mapped", id);
}

bool
AddressSpace::isMapped(ModuleId id) const
{
    for (const auto &[base, module] : byBase_) {
        if (module->id() == id) {
            return true;
        }
    }
    return false;
}

const GuestModule *
AddressSpace::moduleAt(isa::GuestAddr addr) const
{
    auto it = byBase_.upper_bound(addr);
    if (it == byBase_.begin()) {
        return nullptr;
    }
    --it;
    return it->second->containsAddr(addr) ? it->second : nullptr;
}

const isa::BasicBlock *
AddressSpace::blockAt(isa::GuestAddr addr) const
{
    const GuestModule *module = moduleAt(addr);
    return module ? module->findBlock(addr) : nullptr;
}

namespace {

std::string
hex(isa::GuestAddr addr)
{
    std::ostringstream oss;
    oss << "0x" << std::hex << addr;
    return oss.str();
}

} // namespace

std::string
AddressSpace::describeAddr(isa::GuestAddr addr) const
{
    if (const GuestModule *module = moduleAt(addr)) {
        return format("inside module '{}' [{}..{}) but not at a block "
                      "start",
                      module->name(), hex(module->baseAddr()),
                      hex(module->endAddr()));
    }
    if (byBase_.empty()) {
        return "no modules mapped";
    }
    // Not inside any mapping: report the nearest mapped module on
    // each side so the caller can see which unmap (or bad jump)
    // produced the stray address.
    auto above = byBase_.upper_bound(addr);
    std::string desc = format("{} mapped modules, nearest:",
                              byBase_.size());
    if (above != byBase_.begin()) {
        const GuestModule *below = std::prev(above)->second;
        desc += format(" '{}' [{}..{}) below", below->name(),
                       hex(below->baseAddr()), hex(below->endAddr()));
    }
    if (above != byBase_.end()) {
        const GuestModule *module = above->second;
        desc += format("{} '{}' [{}..{}) above",
                       above == byBase_.begin() ? "" : ",",
                       module->name(), hex(module->baseAddr()),
                       hex(module->endAddr()));
    }
    return desc;
}

void
AddressSpace::addObserver(MapObserver observer)
{
    observers_.push_back(std::move(observer));
}

std::vector<const GuestModule *>
AddressSpace::mappedModules() const
{
    std::vector<const GuestModule *> out;
    out.reserve(byBase_.size());
    for (const auto &[base, module] : byBase_) {
        out.push_back(module);
    }
    return out;
}

std::uint64_t
AddressSpace::mappedCodeBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[base, module] : byBase_) {
        total += module->sizeBytes();
    }
    return total;
}

} // namespace gencache::guest
