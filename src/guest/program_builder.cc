#include "guest/program_builder.h"

#include "support/logging.h"

namespace gencache::guest {

ModuleBuilder::ModuleBuilder(GuestModule &module)
    : module_(module)
{
    if (module_.blockCount() != 0) {
        GENCACHE_PANIC("ModuleBuilder on non-empty module '{}'",
                       module_.name());
    }
}

BlockLabel
ModuleBuilder::createBlock()
{
    blocks_.emplace_back();
    BlockLabel label;
    label.index = static_cast<std::uint32_t>(blocks_.size() - 1);
    if (currentBlock_ == ~0u) {
        currentBlock_ = label.index;
    }
    return label;
}

ModuleBuilder &
ModuleBuilder::at(BlockLabel label)
{
    if (!label.valid() || label.index >= blocks_.size()) {
        GENCACHE_PANIC("ModuleBuilder::at: invalid label");
    }
    currentBlock_ = label.index;
    return *this;
}

isa::BasicBlock &
ModuleBuilder::current()
{
    if (finalized_) {
        GENCACHE_PANIC("ModuleBuilder used after finalize");
    }
    if (currentBlock_ == ~0u || currentBlock_ >= blocks_.size()) {
        GENCACHE_PANIC("ModuleBuilder: no block selected");
    }
    return blocks_[currentBlock_];
}

void
ModuleBuilder::emit(const isa::Instruction &inst)
{
    current().append(inst);
}

void
ModuleBuilder::emitLabelTarget(isa::Instruction inst, BlockLabel target)
{
    if (!target.valid() || target.index >= blocks_.size()) {
        GENCACHE_PANIC("ModuleBuilder: invalid target label");
    }
    isa::BasicBlock &block = current();
    fixups_.push_back(
        Fixup{currentBlock_,
              static_cast<std::uint32_t>(block.instructionCount()),
              target.index});
    block.append(inst);
}

ModuleBuilder &
ModuleBuilder::nop()
{
    emit(isa::makeNop());
    return *this;
}

ModuleBuilder &
ModuleBuilder::add(unsigned dst, unsigned src1, unsigned src2)
{
    emit(isa::makeAdd(dst, src1, src2));
    return *this;
}

ModuleBuilder &
ModuleBuilder::sub(unsigned dst, unsigned src1, unsigned src2)
{
    emit(isa::makeSub(dst, src1, src2));
    return *this;
}

ModuleBuilder &
ModuleBuilder::mul(unsigned dst, unsigned src1, unsigned src2)
{
    emit(isa::makeMul(dst, src1, src2));
    return *this;
}

ModuleBuilder &
ModuleBuilder::addi(unsigned dst, unsigned src1, std::int64_t imm)
{
    emit(isa::makeAddImm(dst, src1, imm));
    return *this;
}

ModuleBuilder &
ModuleBuilder::movi(unsigned dst, std::int64_t imm)
{
    emit(isa::makeMovImm(dst, imm));
    return *this;
}

ModuleBuilder &
ModuleBuilder::mov(unsigned dst, unsigned src1)
{
    emit(isa::makeMov(dst, src1));
    return *this;
}

ModuleBuilder &
ModuleBuilder::load(unsigned dst, unsigned base, std::int64_t off)
{
    emit(isa::makeLoad(dst, base, off));
    return *this;
}

ModuleBuilder &
ModuleBuilder::store(unsigned base, std::int64_t off, unsigned src)
{
    emit(isa::makeStore(base, off, src));
    return *this;
}

ModuleBuilder &
ModuleBuilder::jump(BlockLabel target)
{
    emitLabelTarget(isa::makeJump(0), target);
    return *this;
}

ModuleBuilder &
ModuleBuilder::branchNz(unsigned src, BlockLabel target)
{
    emitLabelTarget(isa::makeBranchNz(src, 0), target);
    return *this;
}

ModuleBuilder &
ModuleBuilder::branchZ(unsigned src, BlockLabel target)
{
    emitLabelTarget(isa::makeBranchZ(src, 0), target);
    return *this;
}

ModuleBuilder &
ModuleBuilder::call(BlockLabel target)
{
    emitLabelTarget(isa::makeCall(0), target);
    return *this;
}

ModuleBuilder &
ModuleBuilder::jumpAbs(isa::GuestAddr target)
{
    emit(isa::makeJump(target));
    return *this;
}

ModuleBuilder &
ModuleBuilder::callAbs(isa::GuestAddr target)
{
    emit(isa::makeCall(target));
    return *this;
}

ModuleBuilder &
ModuleBuilder::jumpReg(unsigned src)
{
    emit(isa::makeJumpReg(src));
    return *this;
}

ModuleBuilder &
ModuleBuilder::callReg(unsigned src)
{
    emit(isa::makeCallReg(src));
    return *this;
}

ModuleBuilder &
ModuleBuilder::ret()
{
    emit(isa::makeReturn());
    return *this;
}

ModuleBuilder &
ModuleBuilder::halt()
{
    emit(isa::makeHalt());
    return *this;
}

std::vector<isa::GuestAddr>
ModuleBuilder::finalize()
{
    if (finalized_) {
        GENCACHE_PANIC("ModuleBuilder::finalize called twice");
    }
    finalized_ = true;

    // Lay out blocks contiguously in creation order.
    addrs_.resize(blocks_.size());
    isa::GuestAddr addr = module_.baseAddr();
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        if (!blocks_[i].isTerminated()) {
            GENCACHE_PANIC("unterminated block {} in module '{}'", i,
                           module_.name());
        }
        blocks_[i].setStartAddr(addr);
        addrs_[i] = addr;
        addr += blocks_[i].sizeBytes();
    }

    // Patch label references now that addresses are known. Instructions
    // are stored by value, so rebuild the patched blocks.
    for (const Fixup &fixup : fixups_) {
        isa::BasicBlock &block = blocks_[fixup.block];
        isa::BasicBlock patched(block.startAddr());
        std::uint32_t index = 0;
        for (isa::Instruction inst : block.instructions()) {
            if (index == fixup.inst) {
                inst.target = addrs_[fixup.targetLabel];
            }
            patched.append(inst);
            ++index;
        }
        block = std::move(patched);
    }

    for (auto &block : blocks_) {
        module_.addBlock(std::move(block));
    }
    blocks_.clear();
    return addrs_;
}

isa::GuestAddr
ModuleBuilder::addrOf(BlockLabel label) const
{
    if (!finalized_) {
        GENCACHE_PANIC("ModuleBuilder::addrOf before finalize");
    }
    if (!label.valid() || label.index >= addrs_.size()) {
        GENCACHE_PANIC("ModuleBuilder::addrOf: invalid label");
    }
    return addrs_[label.index];
}

} // namespace gencache::guest
