/**
 * @file
 * The guest address space: which modules are currently mapped.
 *
 * Unmapping a module is the paper's §3.4 event: any code traces derived
 * from the unmapped range become stale and must be deleted from the
 * code cache immediately. Observers (the runtime, the simulator) can
 * subscribe to map/unmap notifications.
 */

#ifndef GENCACHE_GUEST_ADDRESS_SPACE_H
#define GENCACHE_GUEST_ADDRESS_SPACE_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "guest/block_index.h"
#include "guest/module.h"

namespace gencache::guest {

/** Tracks the set of mapped modules and resolves code addresses. */
class AddressSpace
{
  public:
    /** Callback invoked on map/unmap; @p mapped is true for map. */
    using MapObserver =
        std::function<void(const GuestModule &, bool mapped)>;

    AddressSpace() = default;

    /** Map @p module; its range must not overlap any mapped module.
     *  The module must outlive this address space. */
    void map(const GuestModule &module);

    /** Unmap the module with id @p id; no-op arguments panic. */
    void unmap(ModuleId id);

    /** @return true when module @p id is currently mapped. */
    bool isMapped(ModuleId id) const;

    /** @return the mapped module containing @p addr, or nullptr. */
    const GuestModule *moduleAt(isa::GuestAddr addr) const;

    /** @return the block starting at @p addr in a mapped module. */
    const isa::BasicBlock *blockAt(isa::GuestAddr addr) const;

    /** @return the dense id of the block starting at @p addr, or
     *  kInvalidBlockId (fast-path equivalent of blockAt). O(1). */
    BlockId blockIdAt(isa::GuestAddr addr) const
    {
        return index_.blockIdAt(addr);
    }

    /** The dense block index / predecoded code stream, maintained by
     *  map()/unmap(). */
    const BlockIndex &blockIndex() const { return index_; }

    /** The dense id range [first, last) of mapped module @p module;
     *  false when it is not mapped. */
    bool moduleBlockRange(ModuleId module, BlockId &first,
                          BlockId &last) const
    {
        return index_.moduleRange(module, first, last);
    }

    /** Human-readable description of where @p addr falls relative to
     *  the current mappings (for panic messages): the containing
     *  module and its bounds, or the nearest mapped module. */
    std::string describeAddr(isa::GuestAddr addr) const;

    /** Register an observer for map/unmap events. */
    void addObserver(MapObserver observer);

    /** @return currently mapped modules in base-address order. */
    std::vector<const GuestModule *> mappedModules() const;

    /** @return total mapped code bytes. */
    std::uint64_t mappedCodeBytes() const;

  private:
    std::map<isa::GuestAddr, const GuestModule *> byBase_;
    std::vector<MapObserver> observers_;
    BlockIndex index_;
};

} // namespace gencache::guest

#endif // GENCACHE_GUEST_ADDRESS_SPACE_H
