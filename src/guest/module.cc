#include "guest/module.h"

#include "support/logging.h"

namespace gencache::guest {

GuestModule::GuestModule(ModuleId id, std::string name,
                         isa::GuestAddr base, bool transient)
    : id_(id), name_(std::move(name)), base_(base),
      transient_(transient), uid_(moduleUidOf(name_))
{
}

void
GuestModule::addBlock(isa::BasicBlock block)
{
    if (block.startAddr() < base_) {
        GENCACHE_PANIC("block at {} precedes module '{}' base {}",
                       block.startAddr(), name_, base_);
    }
    if (!block.isTerminated()) {
        GENCACHE_PANIC("unterminated block at {} in module '{}'",
                       block.startAddr(), name_);
    }
    isa::GuestAddr start = block.startAddr();
    isa::GuestAddr end = block.endAddr();
    auto next = blocks_.lower_bound(start);
    if (next != blocks_.end() && next->second.startAddr() < end) {
        GENCACHE_PANIC("block [{}, {}) overlaps block at {} in '{}'",
                       start, end, next->second.startAddr(), name_);
    }
    if (next != blocks_.begin()) {
        auto prev = std::prev(next);
        if (prev->second.endAddr() > start) {
            GENCACHE_PANIC("block [{}, {}) overlaps block at {} in '{}'",
                           start, end, prev->second.startAddr(), name_);
        }
    }
    blocks_.emplace(start, std::move(block));
}

const isa::BasicBlock *
GuestModule::findBlock(isa::GuestAddr addr) const
{
    auto it = blocks_.find(addr);
    return it == blocks_.end() ? nullptr : &it->second;
}

bool
GuestModule::containsAddr(isa::GuestAddr addr) const
{
    return addr >= base_ && addr < endAddr();
}

std::uint64_t
GuestModule::sizeBytes() const
{
    if (blocks_.empty()) {
        return 0;
    }
    return blocks_.rbegin()->second.endAddr() - base_;
}

} // namespace gencache::guest
