#include "guest/program.h"

#include "support/logging.h"

namespace gencache::guest {

GuestModule &
GuestProgram::addModule(std::string name, isa::GuestAddr base,
                        bool transient)
{
    ModuleId id = static_cast<ModuleId>(modules_.size());
    for (const auto &mod : modules_) {
        if (mod->name() == name) {
            GENCACHE_PANIC("duplicate module name '{}'", name);
        }
    }
    modules_.push_back(
        std::make_unique<GuestModule>(id, std::move(name), base,
                                      transient));
    return *modules_.back();
}

GuestModule *
GuestProgram::findModule(ModuleId id)
{
    if (id >= modules_.size()) {
        return nullptr;
    }
    return modules_[id].get();
}

const GuestModule *
GuestProgram::findModule(ModuleId id) const
{
    if (id >= modules_.size()) {
        return nullptr;
    }
    return modules_[id].get();
}

GuestModule *
GuestProgram::findModule(const std::string &name)
{
    for (auto &mod : modules_) {
        if (mod->name() == name) {
            return mod.get();
        }
    }
    return nullptr;
}

std::uint64_t
GuestProgram::codeFootprintBytes() const
{
    std::uint64_t total = 0;
    for (const auto &mod : modules_) {
        total += mod->sizeBytes();
    }
    return total;
}

} // namespace gencache::guest
