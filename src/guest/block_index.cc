#include "guest/block_index.h"

#include "support/logging.h"

namespace gencache::guest {

void
BlockIndex::addModule(const GuestModule &module)
{
    for (const Range &range : ranges_) {
        if (range.module == module.id()) {
            GENCACHE_PANIC("module '{}' already indexed", module.name());
        }
    }

    Range range;
    range.base = module.baseAddr();
    range.end = module.endAddr();
    range.module = module.id();
    range.firstId = blockLimit();
    range.offsetToId.assign(range.end - range.base, kInvalidBlockId);

    for (const auto &[start, block] : module.blocks()) {
        BlockId id = blockLimit();
        BlockMeta meta;
        meta.instBegin = static_cast<std::uint32_t>(code_.size());
        meta.startAddr = start;
        meta.sizeBytes = block.sizeBytes();
        meta.module = module.id();

        isa::GuestAddr addr = start;
        for (const isa::Instruction &inst : block.instructions()) {
            PredecodedInst pre;
            pre.addr = addr;
            pre.fallThrough = addr + inst.sizeBytes();
            pre.target = inst.target;
            pre.imm = inst.imm;
            pre.opcode = inst.opcode;
            pre.dst = inst.dst;
            pre.src1 = inst.src1;
            pre.src2 = inst.src2;
            code_.push_back(pre);
            addr = pre.fallThrough;
        }
        meta.instEnd = static_cast<std::uint32_t>(code_.size());
        meta_.push_back(meta);
        range.offsetToId[start - range.base] = id;
    }
    range.lastId = blockLimit();
    ranges_.push_back(std::move(range));
}

void
BlockIndex::removeModule(ModuleId module)
{
    for (std::size_t i = 0; i < ranges_.size(); ++i) {
        if (ranges_[i].module != module) {
            continue;
        }
        for (BlockId id = ranges_[i].firstId; id < ranges_[i].lastId;
             ++id) {
            meta_[id].module = kInvalidModule;
        }
        ranges_.erase(ranges_.begin() +
                      static_cast<std::ptrdiff_t>(i));
        hint_ = 0;
        return;
    }
    GENCACHE_PANIC("removeModule of module id {} that is not indexed",
                   module);
}

bool
BlockIndex::moduleRange(ModuleId module, BlockId &first,
                        BlockId &last) const
{
    for (const Range &range : ranges_) {
        if (range.module == module) {
            first = range.firstId;
            last = range.lastId;
            return true;
        }
    }
    return false;
}

std::size_t
BlockIndex::liveBlockCount() const
{
    std::size_t count = 0;
    for (const Range &range : ranges_) {
        count += range.lastId - range.firstId;
    }
    return count;
}

} // namespace gencache::guest
