/**
 * @file
 * Guest modules: the executable and its dynamically linked libraries.
 *
 * A module owns a set of basic blocks laid out in a contiguous guest
 * address range. Modules marked transient model Windows DLLs that the
 * application loads and unloads during execution — the behaviour that
 * forces program-forced evictions from the code cache (paper §3.4).
 */

#ifndef GENCACHE_GUEST_MODULE_H
#define GENCACHE_GUEST_MODULE_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "codecache/fragment.h"
#include "isa/basic_block.h"

namespace gencache::guest {

/** Identifier of a guest module, unique within a program. */
using ModuleId = std::uint32_t;

/** Sentinel for "no module". */
constexpr ModuleId kInvalidModule = ~0u;

/**
 * Process-independent uid of the module named @p name (FNV-1a of the
 * name — cache::moduleUidOfName), so every process that maps
 * "user32.dll" derives the same cache::ModuleUid without
 * coordination.
 */
constexpr cache::ModuleUid moduleUidOf(std::string_view name)
{
    return cache::moduleUidOfName(name);
}

/** A contiguous range of guest code (EXE image or DLL). */
class GuestModule
{
  public:
    /**
     * @param id unique module id
     * @param name human-readable name (e.g. "user32.dll")
     * @param base guest base address of the module's code
     * @param transient true when the module may be unmapped at runtime
     */
    GuestModule(ModuleId id, std::string name, isa::GuestAddr base,
                bool transient = false);

    ModuleId id() const { return id_; }
    const std::string &name() const { return name_; }
    isa::GuestAddr baseAddr() const { return base_; }
    bool transient() const { return transient_; }

    /** Process-independent identity (moduleUidOf the name): equal
     *  across processes mapping the same image, unlike id(). */
    cache::ModuleUid uid() const { return uid_; }

    /** Add a block; its address range must lie at/after the base and
     *  must not overlap an existing block. */
    void addBlock(isa::BasicBlock block);

    /** @return the block starting exactly at @p addr, or nullptr. */
    const isa::BasicBlock *findBlock(isa::GuestAddr addr) const;

    /** @return true when @p addr falls inside this module's extent. */
    bool containsAddr(isa::GuestAddr addr) const;

    /** @return bytes from base to the end of the last block. */
    std::uint64_t sizeBytes() const;

    /** @return one-past-the-end address of the module's code. */
    isa::GuestAddr endAddr() const { return base_ + sizeBytes(); }

    std::size_t blockCount() const { return blocks_.size(); }

    const std::map<isa::GuestAddr, isa::BasicBlock> &blocks() const
    {
        return blocks_;
    }

  private:
    ModuleId id_;
    std::string name_;
    isa::GuestAddr base_;
    bool transient_;
    cache::ModuleUid uid_;
    std::map<isa::GuestAddr, isa::BasicBlock> blocks_;
};

} // namespace gencache::guest

#endif // GENCACHE_GUEST_MODULE_H
