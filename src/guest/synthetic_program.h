/**
 * @file
 * Deterministic generation of synthetic guest programs.
 *
 * Generated programs exhibit the structure the paper's workloads have:
 * phased execution (interactive "tasks"), hot shared functions that stay
 * live for the whole run, phase-local functions that die with their
 * phase, and transient DLL modules that can be unmapped once their last
 * phase completes. Programs always terminate when interpreted.
 *
 * Convention: the guest writes the current phase number to register r13
 * at every phase start, so harnesses can track phase boundaries and
 * unmap DLLs whose last phase has passed.
 */

#ifndef GENCACHE_GUEST_SYNTHETIC_PROGRAM_H
#define GENCACHE_GUEST_SYNTHETIC_PROGRAM_H

#include <cstdint>
#include <vector>

#include "guest/program.h"
#include "support/rng.h"

namespace gencache::guest {

/** Register the generated guest uses to publish its current phase. */
constexpr unsigned kPhaseRegister = 13;

/** Tuning knobs for SyntheticProgramGenerator. */
struct SyntheticProgramConfig
{
    std::uint64_t seed = 1;        ///< RNG seed; same seed => same program
    unsigned phases = 3;           ///< number of execution phases
    unsigned functionsPerPhase = 4; ///< phase-local functions per phase
    unsigned sharedFunctions = 2;  ///< hot functions called in all phases
    unsigned dllCount = 2;         ///< transient modules hosting phase code
    unsigned blocksPerFunction = 4; ///< body blocks per function
    unsigned phaseIterations = 10; ///< loop count of each phase
    unsigned innerIterations = 8;  ///< loop count inside each function
};

/** Everything a harness needs to run a generated program. */
struct SyntheticProgram
{
    GuestProgram program;
    /** For each transient DLL module: the last phase (0-based) in which
     *  any of its functions is called; safe to unmap afterwards. */
    std::vector<std::pair<ModuleId, unsigned>> dllLastPhase;
};

/**
 * Build a synthetic program from @p config. Deterministic in the seed.
 */
SyntheticProgram generateSyntheticProgram(
    const SyntheticProgramConfig &config);

} // namespace gencache::guest

#endif // GENCACHE_GUEST_SYNTHETIC_PROGRAM_H
