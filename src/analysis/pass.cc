#include "analysis/pass.h"

#include "analysis/cache_passes.h"
#include "analysis/cfg_passes.h"
#include "analysis/frontend_passes.h"
#include "analysis/link_passes.h"
#include "analysis/shared_passes.h"
#include "analysis/superblock_passes.h"
#include "runtime/runtime.h"

namespace gencache::analysis {

AnalysisInput
AnalysisInput::forRuntime(const guest::GuestProgram &program,
                          const runtime::Runtime &runtime)
{
    AnalysisInput input;
    input.program = &program;
    input.runtime = &runtime;
    input.manager = &runtime.manager();
    input.linker = &runtime.linker();
    return input;
}

AnalysisInput
AnalysisInput::forManager(const cache::CacheManager &manager)
{
    AnalysisInput input;
    input.manager = &manager;
    return input;
}

AnalysisInput
AnalysisInput::forSharedStore(const cache::SharedCodeStore &store,
                              unsigned fleet_processes)
{
    AnalysisInput input;
    input.sharedStore = &store;
    input.fleetProcesses = fleet_processes;
    return input;
}

std::vector<std::unique_ptr<Pass>>
makeAllPasses()
{
    std::vector<std::unique_ptr<Pass>> passes;
    passes.push_back(std::make_unique<CfgWellFormedPass>());
    passes.push_back(std::make_unique<CfgReachabilityPass>());
    passes.push_back(std::make_unique<SuperblockPass>());
    passes.push_back(std::make_unique<LinkGraphPass>());
    passes.push_back(std::make_unique<FrontendPass>());
    passes.push_back(std::make_unique<CacheStatePass>());
    passes.push_back(std::make_unique<SharedStorePass>());
    return passes;
}

void
runPasses(const AnalysisInput &input, DiagnosticEngine &out,
          bool cheap_only)
{
    for (const auto &pass : makeAllPasses()) {
        if (cheap_only && !pass->cheap()) {
            continue;
        }
        out.setCurrentPass(pass->name());
        pass->run(input, out);
    }
}

} // namespace gencache::analysis
