/**
 * @file
 * Address-indexed view of a guest program, shared by the CFG and
 * superblock passes: every pass that must resolve a guest address to a
 * basic block (branch targets, fall-throughs, trace paths, side-exit
 * targets) builds one ProgramIndex and queries it, instead of probing
 * modules one by one.
 */

#ifndef GENCACHE_ANALYSIS_PROGRAM_INDEX_H
#define GENCACHE_ANALYSIS_PROGRAM_INDEX_H

#include <map>

#include "guest/program.h"

namespace gencache::analysis {

/** Block-start lookup over all modules of a program (mapped or not). */
class ProgramIndex
{
  public:
    explicit ProgramIndex(const guest::GuestProgram &program);

    /** @return the block starting exactly at @p addr, or nullptr. */
    const isa::BasicBlock *blockAt(isa::GuestAddr addr) const;

    /** @return the module owning the block at @p addr, or nullptr. */
    const guest::GuestModule *moduleAt(isa::GuestAddr addr) const;

    std::size_t blockCount() const { return byStart_.size(); }

    /** Visit all (address, module, block) triples in address order. */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        for (const auto &[addr, entry] : byStart_) {
            fn(addr, *entry.module, *entry.block);
        }
    }

  private:
    struct Entry
    {
        const guest::GuestModule *module = nullptr;
        const isa::BasicBlock *block = nullptr;
    };

    std::map<isa::GuestAddr, Entry> byStart_;
};

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_PROGRAM_INDEX_H
