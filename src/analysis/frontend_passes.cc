#include "analysis/frontend_passes.h"

#include <unordered_set>

#include "guest/address_space.h"
#include "runtime/linker.h"
#include "runtime/runtime.h"
#include "support/format.h"

namespace gencache::analysis {
namespace {

/** The successor slot the link graph implies for @p node exiting to
 *  @p target: the slot of the resident trace at @p target when a
 *  patched edge to it exists, else kInvalidSlot. */
runtime::TraceSlot
impliedSlot(const runtime::TraceLinker &linker,
            const runtime::TraceLinker::Node &node,
            isa::GuestAddr target)
{
    auto hit = linker.entryIndex().find(target);
    if (hit == linker.entryIndex().end()) {
        return runtime::kInvalidSlot;
    }
    if (node.outgoing.count(hit->second) == 0) {
        return runtime::kInvalidSlot;
    }
    return linker.nodes().at(hit->second).slot;
}

} // namespace

void
checkExitCaches(const runtime::TraceLinker &linker,
                DiagnosticEngine &out)
{
    const auto &caches = linker.exitCaches();
    std::unordered_set<runtime::TraceSlot> residentSlots;
    for (const auto &[id, node] : linker.nodes()) {
        residentSlots.insert(node.slot);
        std::string where = format("trace {}", id);
        if (node.slot == runtime::kInvalidSlot ||
            node.slot >= caches.size()) {
            out.report(Severity::Error, "fe-exit-shape", where,
                       "resident trace has no direct-chaining exit "
                       "cache");
            continue;
        }
        const runtime::TraceLinker::ExitCache &cache =
            caches[node.slot];
        if (cache.targets != node.exitTargets ||
            cache.slots.size() != cache.targets.size()) {
            out.report(Severity::Error, "fe-exit-shape", where,
                       format("exit cache shape ({} targets, {} "
                              "slots) does not mirror the node's {} "
                              "exit targets",
                              cache.targets.size(), cache.slots.size(),
                              node.exitTargets.size()));
            continue;
        }
        for (std::size_t i = 0; i < cache.targets.size(); ++i) {
            runtime::TraceSlot expected =
                impliedSlot(linker, node, cache.targets[i]);
            if (cache.slots[i] != expected) {
                out.report(
                    Severity::Error, "fe-exit-slot", where,
                    format("cached successor slot for exit {} is {} "
                           "but the link graph implies {}",
                           hexAddr(cache.targets[i]),
                           static_cast<std::int32_t>(cache.slots[i]),
                           static_cast<std::int32_t>(expected)));
            }
        }
    }

    // An evicted trace must not leave a stale cached jump behind.
    for (std::size_t slot = 0; slot < caches.size(); ++slot) {
        if (residentSlots.count(
                static_cast<runtime::TraceSlot>(slot)) == 0 &&
            !caches[slot].targets.empty()) {
            out.report(Severity::Error, "fe-exit-shape",
                       format("trace slot {}", slot),
                       "non-resident trace still has a populated exit "
                       "cache");
        }
    }
}

void
FrontendPass::run(const AnalysisInput &input,
                  DiagnosticEngine &out) const
{
    const runtime::TraceLinker *linker = input.linker;
    if (linker == nullptr && input.runtime != nullptr) {
        linker = &input.runtime->linker();
    }
    if (linker != nullptr) {
        checkExitCaches(*linker, out);
    }

    if (input.runtime == nullptr) {
        return;
    }
    const runtime::Runtime &rt = *input.runtime;
    const guest::AddressSpace &space = rt.space();
    const guest::BlockIndex &index = space.blockIndex();

    // Dense block ids round-trip: every block of every mapped module
    // resolves to an id whose metadata describes exactly that block.
    for (const guest::GuestModule *module : space.mappedModules()) {
        for (const auto &[start, block] : module->blocks()) {
            std::string where =
                format("module '{}' block {}", module->name(),
                       hexAddr(start));
            guest::BlockId id = space.blockIdAt(start);
            if (id == guest::kInvalidBlockId) {
                out.report(Severity::Error, "fe-block-roundtrip",
                           where,
                           "mapped block has no dense block id");
                continue;
            }
            const guest::BlockMeta &meta = index.meta(id);
            if (meta.startAddr != start ||
                meta.module != module->id() ||
                meta.sizeBytes != block.sizeBytes() ||
                meta.instEnd - meta.instBegin !=
                    block.instructionCount()) {
                out.report(Severity::Error, "fe-block-roundtrip",
                           where,
                           format("block id {} metadata does not "
                                  "round-trip (start {}, module {}, "
                                  "{} bytes, {} insts)",
                                  id, hexAddr(meta.startAddr),
                                  meta.module, meta.sizeBytes,
                                  meta.instEnd - meta.instBegin));
            }
        }
    }

    // Dispatch table vs. live traces, both directions.
    const auto &table = rt.dispatchTable();
    for (std::size_t bid = 0; bid < table.size(); ++bid) {
        cache::TraceId tid = table[bid];
        if (tid == cache::kInvalidTrace) {
            continue;
        }
        std::string where = format("block id {}", bid);
        auto it = rt.traces().find(tid);
        if (it == rt.traces().end()) {
            out.report(Severity::Error, "fe-dispatch-stale", where,
                       format("dispatch table names trace {} which "
                              "no longer exists",
                              tid));
            continue;
        }
        if (space.blockIdAt(it->second.entry) != bid) {
            out.report(Severity::Error, "fe-dispatch-stale", where,
                       format("dispatch table names trace {} whose "
                              "entry {} resolves elsewhere",
                              tid, hexAddr(it->second.entry)));
        }
    }
    for (const auto &[tid, trace] : rt.traces()) {
        std::string where = format("trace {}", tid);
        guest::BlockId bid = space.blockIdAt(trace.entry);
        if (bid == guest::kInvalidBlockId ||
            bid >= table.size() || table[bid] != tid) {
            out.report(Severity::Error, "fe-dispatch-missing", where,
                       format("live trace entry {} is not dispatched "
                              "to it through the dense table",
                              hexAddr(trace.entry)));
        }
    }
}

} // namespace gencache::analysis
