#include "analysis/link_passes.h"

#include <algorithm>

#include "codecache/cache_manager.h"
#include "runtime/linker.h"
#include "runtime/runtime.h"
#include "support/format.h"

namespace gencache::analysis {
namespace {

std::string
nodeLocation(cache::TraceId id)
{
    return format("trace {}", id);
}

} // namespace

void
LinkGraphPass::run(const AnalysisInput &input,
                   DiagnosticEngine &out) const
{
    const runtime::TraceLinker *linker = input.linker;
    if (linker == nullptr && input.runtime != nullptr) {
        linker = &input.runtime->linker();
    }
    if (linker == nullptr) {
        return;
    }
    const cache::CacheManager *manager = input.manager;
    if (manager == nullptr && input.runtime != nullptr) {
        manager = &input.runtime->manager();
    }

    const auto &nodes = linker->nodes();
    const auto &by_entry = linker->entryIndex();

    for (const auto &[id, node] : nodes) {
        std::string where = nodeLocation(id);

        // Unlink-on-evict completeness: a node for a trace the cache
        // no longer holds means eviction forgot to tell the linker.
        if (manager != nullptr && !manager->contains(id)) {
            out.report(Severity::Error, "link-stale-node", where,
                       "linker node for a trace that is not resident "
                       "in any cache");
        }

        // Edge symmetry, residency of both endpoints, and the side
        // exit that justifies each edge.
        for (cache::TraceId to : node.outgoing) {
            auto target = nodes.find(to);
            if (target == nodes.end()) {
                out.report(Severity::Error, "link-dangling", where,
                           format("patched edge to trace {} which has "
                                  "no linker node",
                                  to));
                continue;
            }
            if (manager != nullptr && !manager->contains(to)) {
                out.report(Severity::Error, "link-dangling", where,
                           format("patched edge to non-resident "
                                  "trace {}",
                                  to));
            }
            if (target->second.incoming.count(id) == 0) {
                out.report(Severity::Error, "link-asym", where,
                           format("outgoing edge to trace {} missing "
                                  "from its incoming set",
                                  to));
            }
            if (std::find(node.exitTargets.begin(),
                          node.exitTargets.end(),
                          target->second.entry) ==
                node.exitTargets.end()) {
                out.report(Severity::Error, "link-edge-no-exit", where,
                           format("patched edge to trace {} but no "
                                  "side exit targets its entry {}",
                                  to, hexAddr(target->second.entry)));
            }
        }
        for (cache::TraceId from : node.incoming) {
            auto source = nodes.find(from);
            if (source == nodes.end()) {
                out.report(Severity::Error, "link-dangling", where,
                           format("incoming edge from trace {} which "
                                  "has no linker node",
                                  from));
                continue;
            }
            if (source->second.outgoing.count(id) == 0) {
                out.report(Severity::Error, "link-asym", where,
                           format("incoming edge from trace {} "
                                  "missing from its outgoing set",
                                  from));
            }
        }

        // Entry-index agreement (node -> index direction).
        auto entry_it = by_entry.find(node.entry);
        if (entry_it == by_entry.end() || entry_it->second != id) {
            out.report(Severity::Error, "link-entry-stale", where,
                       format("entry {} does not map back to this "
                              "trace in the entry index",
                              hexAddr(node.entry)));
        }

        // Missed linking opportunity: a side exit aimed at a resident
        // entry should have been patched.
        for (isa::GuestAddr exit : node.exitTargets) {
            auto hit = by_entry.find(exit);
            if (hit != by_entry.end() &&
                node.outgoing.count(hit->second) == 0) {
                out.report(Severity::Warning, "link-unpatched", where,
                           format("side exit {} targets resident "
                                  "trace {} but no edge is patched",
                                  hexAddr(exit), hit->second));
            }
        }
    }

    // Entry-index agreement (index -> node direction).
    for (const auto &[entry, id] : by_entry) {
        auto it = nodes.find(id);
        if (it == nodes.end() || it->second.entry != entry) {
            out.report(Severity::Error, "link-entry-stale",
                       nodeLocation(id),
                       format("entry index maps {} to a node that "
                              "does not exist or disagrees",
                              hexAddr(entry)));
        }
    }

    // A resident trace the linker never saw cannot be linked to or
    // from — legal but a lost optimization, so only a warning.
    if (input.runtime != nullptr && manager != nullptr) {
        for (const auto &[id, trace] : input.runtime->traces()) {
            if (manager->contains(id) && nodes.find(id) == nodes.end()) {
                out.report(Severity::Warning, "link-missing-node",
                           nodeLocation(id),
                           "trace is cache-resident but unknown to "
                           "the linker");
            }
        }
    }
}

} // namespace gencache::analysis
