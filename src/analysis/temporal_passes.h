/**
 * @file
 * Temporal invariant engine over cache event streams (gencheck v2).
 *
 * The §8 passes validate point-in-time snapshots; a manager that
 * transiently violates a lifecycle invariant *between* snapshots
 * passes them clean. TemporalChecker closes that gap: it is a
 * CacheEventListener that consumes the manager's event stream —
 * online under GENCACHE_CHECK (attachPhaseChecks tees it beside the
 * simulator's cost accountant) or offline over a recorded gclog
 * journal replay (gencheck --journal) — and maintains a per-trace
 * lifecycle state machine checking LTL-style properties with stable
 * `tmp-*` IDs:
 *
 *  - residency: no hit after evict, no miss while resident, no
 *    double-residency across tiers, evictions only of residents, and
 *    every event's tier must match the trace's tracked residency;
 *  - promotion protocol: an onEvict(PromotionMove) must be followed
 *    immediately by the matching onPromote (Figure 8 emits them as a
 *    pair), and promotions must climb exactly one tier per the
 *    pipeline order (generation monotonicity);
 *  - module unload completeness: after invalidateModule's
 *    onModuleUnload marker, no fragment of that module may remain
 *    resident, and every Unmap eviction must be claimed by a marker
 *    within a bounded event window;
 *  - conservation: at every checkpoint, the event-derived per-tier
 *    flow counters must reproduce the manager's own statistics
 *    (inserts = evictions + residents + unloads per tier) and the
 *    state machine's residency must equal the subject's actual
 *    residency (leak detection in both directions);
 *  - fast-replay sidecar: at every residency transition of a
 *    fast-replay pipeline the dense HotSlot must agree with the
 *    authoritative residency (delta reconciliation, §12);
 *  - time: event timestamps never regress.
 *
 * Binding a subject pipeline (bindSubject) upgrades the checker from
 * stream-local checks to full cross-validation; it requires that the
 * checker observed every event since the pipeline was empty.
 */

#ifndef GENCACHE_ANALYSIS_TEMPORAL_PASSES_H
#define GENCACHE_ANALYSIS_TEMPORAL_PASSES_H

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.h"
#include "codecache/cache_manager.h"
#include "codecache/tier_pipeline.h"

namespace gencache::tracelog {
class AccessLog;
}

namespace gencache::analysis {

/** Tuning of one TemporalChecker instance. */
struct TemporalOptions
{
    /** Register for hit/miss callbacks. Disable to stay eligible as
     *  a fast-replay listener (the blocked kernel serves hits from
     *  the sidecar and emits no per-hit events), trading the
     *  hit/miss residency checks for sidecar reconciliation. */
    bool observeHitsMisses = true;

    /** Panic (GENCACHE_PANIC) with a full report as soon as any
     *  error-severity finding lands — the GENCACHE_CHECK online
     *  mode. Off: findings accumulate in the engine (CLI mode). */
    bool enforce = false;

    /** Per-check-ID diagnostic cap; further findings of an ID are
     *  counted but not materialized (keeps corrupted-journal reports
     *  readable). 0 = unlimited. */
    std::size_t maxPerCheck = 16;

    /** Maximum number of events between an Unmap eviction and the
     *  onModuleUnload marker that claims it (tmp-unload-window).
     *  The pipeline emits the marker directly after the evictions,
     *  so any slack here only absorbs interleaved streams. */
    std::uint64_t unloadWindowEvents = 4096;
};

/**
 * Per-trace lifecycle state machine over a cache event stream.
 *
 * Attach with CacheManager::setListener (or through
 * CacheSimulator::setProbeListener to keep the cost accountant), feed
 * it a run, then call finish(). checkpoint() runs the non-destructive
 * cross-checks alone and is safe at any event boundary (the
 * GENCACHE_CHECK phase hook calls it at module load/unload edges).
 */
class TemporalChecker : public cache::CacheEventListener
{
  public:
    explicit TemporalChecker(DiagnosticEngine &out,
                             TemporalOptions options = {});

    /** Cross-validate against @p pipeline (residency, stats
     *  conservation, sidecar slots). The checker must see every event
     *  from the pipeline's empty state on; nullptr unbinds. */
    void bindSubject(const cache::TierPipeline *pipeline);

    const cache::TierPipeline *subject() const { return subject_; }

    // --- CacheEventListener ---
    void onMiss(cache::TraceId id, TimeUs now) override;
    void onHit(cache::TraceId id, cache::Generation gen,
               TimeUs now) override;
    void onInsert(const cache::Fragment &frag, cache::Generation gen,
                  TimeUs now) override;
    void onEvict(const cache::Fragment &frag, cache::Generation gen,
                 cache::EvictReason reason, TimeUs now) override;
    void onPromote(const cache::Fragment &frag, cache::Generation from,
                   cache::Generation to, TimeUs now) override;
    void onModuleUnload(cache::ModuleId module, TimeUs now) override;

    /** Non-destructive cross-checks (flow conservation + residency
     *  agreement with the bound subject). Call at quiescent points:
     *  never between the two halves of a promotion pair. */
    void checkpoint();

    /** End-of-run: checkpoint() plus stream-final checks (dangling
     *  promotion halves, unclaimed unload windows). The checker stays
     *  attachable afterwards, but state is not reset. */
    void finish();

    /** Events observed so far (all kinds). */
    std::uint64_t eventCount() const { return events_; }

    /** Residents the state machine currently tracks. */
    std::size_t trackedResidents() const { return resident_.size(); }

  private:
    struct TraceState
    {
        cache::Generation gen = cache::Generation::Unified;
        cache::ModuleId module = cache::kNoModule;
    };

    struct TierFlow
    {
        std::uint64_t inserts = 0;
        std::uint64_t hits = 0;
        std::uint64_t promotionsIn = 0;
        std::uint64_t promotionsOut = 0;
        std::uint64_t deletions = 0;     ///< destructive non-Unmap
        std::uint64_t unmapDeletions = 0;
    };

    struct PendingPromotion
    {
        cache::TraceId id = 0;
        cache::Generation from = cache::Generation::Unified;
        bool active = false;
    };

    struct UnloadWindow
    {
        std::uint64_t firstEvent = 0; ///< index of first Unmap evict
        std::uint64_t lastEvent = 0;  ///< index of latest Unmap evict;
                                      ///< the claim window runs from
                                      ///< here so large modules don't
                                      ///< outrun it mid-invalidation
        std::uint64_t evictions = 0;
    };

    void report(std::string_view check_id, std::string location,
                std::string message);
    void noteEvent(TimeUs now);
    /** tmp-promote-protocol when a PromotionMove evict was not
     *  followed immediately by its onPromote. */
    void expectNoPendingPromotion(const char *context);
    /** Pipeline tier index of @p gen under the bound subject, or -1
     *  when unbound / the label is foreign to the subject. */
    int tierIndexOf(cache::Generation gen) const;
    void checkSidecar(cache::TraceId id, cache::Generation gen,
                      bool expect_resident, const char *context);
    void checkFlowAgainstSubject();
    void checkResidencyAgainstSubject();

    DiagnosticEngine &out_;
    TemporalOptions options_;
    const cache::TierPipeline *subject_ = nullptr;

    std::unordered_map<cache::TraceId, TraceState> resident_;
    std::map<cache::Generation, TierFlow> flow_;
    PendingPromotion pendingPromotion_;
    std::map<cache::ModuleId, UnloadWindow> pendingUnloads_;
    bool sawUnloadMarker_ = false;
    bool sawInsert_ = false;
    cache::Generation entryGen_ = cache::Generation::Unified;
    TimeUs lastTime_ = 0;
    bool sawEvent_ = false;
    std::uint64_t events_ = 0;
    std::uint64_t misses_ = 0;
    std::unordered_map<std::string_view, std::size_t> reported_;
};

/**
 * Rank of @p gen in the Figure-8 cascade order: Nursery before
 * Probation/Tier1..Tier6 before Persistent. Used for monotonicity
 * when no subject pipeline is bound (bound checkers demand exact
 * one-tier adjacency instead). Unified never promotes and ranks 0.
 */
int generationRank(cache::Generation gen);

/**
 * Offline temporal check: replay @p log against @p manager with a
 * TemporalChecker attached as the simulator's probe listener
 * (gencheck --journal). When the manager is a TierPipeline (every
 * production manager is) the checker binds it as its subject and runs
 * the full cross-validation; finish() is called at the end of the
 * replay. Findings land in @p out.
 *
 * @return the number of cache events the checker observed.
 */
std::uint64_t runTemporalReplay(const tracelog::AccessLog &log,
                                cache::CacheManager &manager,
                                DiagnosticEngine &out,
                                TemporalOptions options = {});

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_TEMPORAL_PASSES_H
