/**
 * @file
 * Pass framework of the gencheck static analyzer.
 *
 * An AnalysisInput bundles (optional) views of one system under
 * analysis: the guest program, the runtime that executed it, the cache
 * manager, and the trace linker. Each Pass inspects whatever subset it
 * understands and reports findings through the shared
 * DiagnosticEngine; a pass whose subject is absent from the input is a
 * silent no-op, so the same driver serves whole-system checks (CLI),
 * simulator-only checks (manager alone), and phase-boundary checks.
 *
 * Passes are split into *cheap* ones — linear in live cache/link state
 * and safe to run at every simulator phase boundary under
 * GENCACHE_CHECK=1 — and whole-program ones (CFG reachability), which
 * gencheck runs once per workload.
 */

#ifndef GENCACHE_ANALYSIS_PASS_H
#define GENCACHE_ANALYSIS_PASS_H

#include <memory>
#include <vector>

#include "analysis/diagnostics.h"

namespace gencache::cache {
class CacheManager;
class SharedCodeStore;
} // namespace gencache::cache

namespace gencache::guest {
class GuestProgram;
} // namespace gencache::guest

namespace gencache::runtime {
class Runtime;
class TraceLinker;
} // namespace gencache::runtime

namespace gencache::analysis {

/** Everything a pass may look at; null fields are simply skipped. */
struct AnalysisInput
{
    const guest::GuestProgram *program = nullptr;
    const runtime::Runtime *runtime = nullptr;
    const cache::CacheManager *manager = nullptr;
    const runtime::TraceLinker *linker = nullptr;

    /** The cross-process shared tier of a fleet run, checked by the
     *  shr-* passes. Must be quiescent (no concurrent mutators). */
    const cache::SharedCodeStore *sharedStore = nullptr;
    /** Processes in the fleet that fed sharedStore; bounds the attach
     *  masks. 0 falls back to the store's own process limit. */
    unsigned fleetProcesses = 0;

    /** Input over a finished (or paused) live runtime. */
    static AnalysisInput forRuntime(const guest::GuestProgram &program,
                                    const runtime::Runtime &runtime);

    /** Input over a trace-driven simulation's cache manager. */
    static AnalysisInput forManager(const cache::CacheManager &manager);

    /** Input over a fleet's shared store alone. */
    static AnalysisInput
    forSharedStore(const cache::SharedCodeStore &store,
                   unsigned fleet_processes = 0);
};

/** One invariant-analysis pass. */
class Pass
{
  public:
    virtual ~Pass() = default;

    Pass() = default;
    Pass(const Pass &) = delete;
    Pass &operator=(const Pass &) = delete;

    /** Stable pass name, e.g. "cfg-wellformed". */
    virtual const char *name() const = 0;

    /** True when the pass is linear in live state and safe to run at
     *  every phase boundary (GENCACHE_CHECK=1). */
    virtual bool cheap() const { return true; }

    /** Inspect @p input, reporting findings to @p out. */
    virtual void run(const AnalysisInput &input,
                     DiagnosticEngine &out) const = 0;
};

/** The full pass pipeline, in execution order. */
std::vector<std::unique_ptr<Pass>> makeAllPasses();

/** Run every pass (or only the cheap ones) over @p input. The engine's
 *  current-pass label is maintained per pass. */
void runPasses(const AnalysisInput &input, DiagnosticEngine &out,
               bool cheap_only = false);

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_PASS_H
