/**
 * @file
 * Static topology/config linter (gencheck v2).
 *
 * A TierTopology is a value-type config: fractions, edge specs, one
 * local policy, one pin rule. Building it (tierSpecs/build) fatal()s
 * on ill-formed input, which is the wrong failure mode for a sweep
 * that enumerates a thousand configs or a user typing one at the CLI.
 * lintTopology() predicts every such fatal *statically* — without
 * constructing a cache — and additionally flags configs that would
 * build fine but can never behave as written (tiers no fragment can
 * reach, promotion edges that can never fire, pin handling that is
 * vacuous or self-defeating). Findings carry stable `topo-*` IDs from
 * the check registry; sim::tournament pre-lints its enumeration with
 * this and rejects dirty configs up front.
 *
 * explainFastReplay() answers gencheck's explain mode: whether a
 * topology is eligible for the TierPipeline hot-slot fast path
 * (enableFastReplay), and if not, which properties block it.
 */

#ifndef GENCACHE_ANALYSIS_TOPOLOGY_PASSES_H
#define GENCACHE_ANALYSIS_TOPOLOGY_PASSES_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "codecache/tier_pipeline.h"

namespace gencache::analysis {

/**
 * Lint @p topo statically (budget-independent checks only).
 *
 * Reports through @p out under pass "topo". @return true when no
 * error-severity finding was added (warnings alone keep a config
 * buildable).
 */
bool lintTopology(const cache::TierTopology &topo, DiagnosticEngine &out);

/**
 * Lint @p topo against a concrete @p budget_bytes: the
 * budget-independent checks plus an exact replay of the
 * tierSpecs(budget) byte split, predicting its fatals
 * (budget too small for the tier count, shares that round to zero,
 * fractions that leave no bytes for the last tier).
 */
bool lintTopology(const cache::TierTopology &topo,
                  std::uint64_t budget_bytes, DiagnosticEngine &out);

/** Sum of all fractions below which topo-fraction-sum-low warns that
 *  the last tier silently absorbs the slack. */
constexpr double kFractionSumLowThreshold = 0.9;

/** Answer of explainFastReplay(). */
struct FastPathExplanation
{
    /** True when TierPipeline::enableFastReplay would accept a
     *  pipeline built from the topology — provided the attached
     *  listener also declines hit/miss events (a runtime property a
     *  static explanation cannot see; see listenerCaveat). */
    bool eligible = true;

    /** One human-readable sentence per blocking property (empty when
     *  eligible). */
    std::vector<std::string> blockers;

    /** The runtime condition the static answer is contingent on. */
    std::string listenerCaveat;
};

/**
 * Explain hot-slot fast-path eligibility of @p topo: mirrors
 * TierPipeline::enableFastReplay's config-derived conditions (no
 * touch-observing local policy; every hit-observing edge a plain
 * non-eager threshold).
 */
FastPathExplanation explainFastReplay(const cache::TierTopology &topo);

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_TOPOLOGY_PASSES_H
