/**
 * @file
 * Link-graph pass family: the trace linker vs. real cache residency.
 *
 * The linker patches direct jumps between resident traces (paper
 * §5.4); eviction must unpatch every edge touching the victim, and
 * promotion must re-patch edges at the new location without changing
 * the graph. This pass re-derives those obligations from raw state:
 *
 *  - every linker node corresponds to a cache-resident fragment, and
 *    both endpoints of every patched edge are resident (a violation is
 *    a jump into freed cache memory);
 *  - the edge relation is symmetric (a's outgoing edge to b is b's
 *    incoming edge from a) and every edge is justified by a side exit
 *    of the source targeting the destination's entry;
 *  - the entry index agrees with the node table in both directions;
 *  - conversely, a resident trace the linker has never seen, or a
 *    side exit aimed at a resident entry without a patched edge, is
 *    reported as a (non-fatal) missed linking opportunity.
 *
 * Check IDs: link-dangling, link-stale-node, link-missing-node,
 * link-asym, link-edge-no-exit, link-entry-stale, link-unpatched.
 */

#ifndef GENCACHE_ANALYSIS_LINK_PASSES_H
#define GENCACHE_ANALYSIS_LINK_PASSES_H

#include "analysis/pass.h"

namespace gencache::analysis {

/** Validates the link graph against cache residency. Cheap: linear in
 *  nodes + edges, so it runs at phase boundaries. */
class LinkGraphPass : public Pass
{
  public:
    const char *name() const override { return "link-graph"; }
    void run(const AnalysisInput &input,
             DiagnosticEngine &out) const override;
};

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_LINK_PASSES_H
