#include "analysis/temporal_passes.h"

#include "sim/simulator.h"
#include "support/format.h"
#include "support/logging.h"

namespace gencache::analysis {

int
generationRank(cache::Generation gen)
{
    using cache::Generation;
    switch (gen) {
      case Generation::Unified: return 0;
      case Generation::Nursery: return 0;
      case Generation::Probation: return 1;
      case Generation::Tier1: return 1;
      case Generation::Tier2: return 2;
      case Generation::Tier3: return 3;
      case Generation::Tier4: return 4;
      case Generation::Tier5: return 5;
      case Generation::Tier6: return 6;
      case Generation::Persistent: return 7;
      case Generation::Shared: return 8;
    }
    GENCACHE_PANIC("unknown generation {}", static_cast<int>(gen));
}

TemporalChecker::TemporalChecker(DiagnosticEngine &out,
                                 TemporalOptions options)
    : cache::CacheEventListener(options.observeHitsMisses,
                                options.observeHitsMisses),
      out_(out), options_(options)
{
}

void
TemporalChecker::bindSubject(const cache::TierPipeline *pipeline)
{
    subject_ = pipeline;
}

int
TemporalChecker::tierIndexOf(cache::Generation gen) const
{
    if (subject_ == nullptr) {
        return -1;
    }
    for (std::size_t i = 0; i < subject_->tierCount(); ++i) {
        if (subject_->tierLabel(i) == gen) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

void
TemporalChecker::report(std::string_view check_id, std::string location,
                        std::string message)
{
    std::size_t &count = reported_[check_id];
    ++count;
    if (options_.maxPerCheck != 0 && count > options_.maxPerCheck) {
        return; // capped: counted but not materialized
    }
    out_.setCurrentPass("temporal");
    out_.report(Severity::Error, std::string(check_id),
                std::move(location), std::move(message));
    if (options_.enforce) {
        GENCACHE_PANIC("temporal invariant violated at event {}:\n{}",
                       events_, out_.textReport());
    }
}

void
TemporalChecker::noteEvent(TimeUs now)
{
    ++events_;
    if (sawEvent_ && now < lastTime_) {
        report("tmp-time-regression", format("event {}", events_),
               format("timestamp {} after {}", now, lastTime_));
    }
    sawEvent_ = true;
    if (now > lastTime_) {
        lastTime_ = now;
    }
    // Unmap evictions must be claimed by an onModuleUnload marker
    // within the window. Only armed once markers are known to be in
    // use (a bound subject always emits them) so marker-less legacy
    // streams don't false-positive.
    if ((subject_ != nullptr || sawUnloadMarker_) &&
        !pendingUnloads_.empty()) {
        for (auto it = pendingUnloads_.begin();
             it != pendingUnloads_.end();) {
            if (events_ - it->second.lastEvent >
                options_.unloadWindowEvents) {
                report("tmp-unload-window",
                       format("module {}", it->first),
                       format("{} unmap eviction(s) not claimed by a "
                              "module-unload marker within {} events",
                              it->second.evictions,
                              options_.unloadWindowEvents));
                it = pendingUnloads_.erase(it);
            } else {
                ++it;
            }
        }
    }
}

void
TemporalChecker::expectNoPendingPromotion(const char *context)
{
    if (!pendingPromotion_.active) {
        return;
    }
    report("tmp-promote-protocol",
           format("trace {}", pendingPromotion_.id),
           format("PromotionMove eviction from {} not followed by its "
                  "onPromote (next event: {})",
                  cache::generationName(pendingPromotion_.from),
                  context));
    pendingPromotion_.active = false;
}

void
TemporalChecker::checkSidecar(cache::TraceId id, cache::Generation gen,
                              bool expect_resident, const char *context)
{
    if (subject_ == nullptr || !subject_->fastReplayEnabled()) {
        return;
    }
    const int tier = expect_resident ? tierIndexOf(gen) : 0;
    if (expect_resident && tier < 0) {
        return; // foreign label already diagnosed elsewhere
    }
    const std::uint8_t want =
        expect_resident ? static_cast<std::uint8_t>(tier + 1) : 0;
    const cache::TierPipeline::HotSlot slot = subject_->fastSlotOf(id);
    if (slot.tierPlusOne != want) {
        report("tmp-sidecar-desync", format("trace {}", id),
               format("hot slot holds tier+1 {} but {} implies {} "
                      "(pending delta {})",
                      slot.tierPlusOne, context, want, slot.delta));
    }
}

void
TemporalChecker::onMiss(cache::TraceId id, TimeUs now)
{
    noteEvent(now);
    expectNoPendingPromotion("miss");
    ++misses_;
    if (resident_.find(id) != resident_.end()) {
        report("tmp-miss-resident", format("trace {}", id),
               format("miss reported while resident in {}",
                      cache::generationName(resident_[id].gen)));
    }
}

void
TemporalChecker::onHit(cache::TraceId id, cache::Generation gen,
                       TimeUs now)
{
    noteEvent(now);
    expectNoPendingPromotion("hit");
    flow_[gen].hits += 1;
    auto it = resident_.find(id);
    if (it == resident_.end()) {
        report("tmp-use-after-evict", format("trace {}", id),
               format("hit in {} but the trace is not resident",
                      cache::generationName(gen)));
        return;
    }
    if (it->second.gen != gen) {
        report("tmp-hit-tier-mismatch", format("trace {}", id),
               format("hit names {} but the trace resides in {}",
                      cache::generationName(gen),
                      cache::generationName(it->second.gen)));
    }
}

void
TemporalChecker::onInsert(const cache::Fragment &frag,
                          cache::Generation gen, TimeUs now)
{
    noteEvent(now);
    expectNoPendingPromotion("insert");
    auto it = resident_.find(frag.id);
    if (it != resident_.end()) {
        report("tmp-double-residency", format("trace {}", frag.id),
               format("inserted into {} while already resident in {}",
                      cache::generationName(gen),
                      cache::generationName(it->second.gen)));
    }
    if (subject_ != nullptr) {
        if (tierIndexOf(gen) != 0) {
            report("tmp-insert-tier", format("trace {}", frag.id),
                   format("fresh insert into {} but the pipeline's "
                          "entry tier is {}",
                          cache::generationName(gen),
                          cache::generationName(subject_->tierLabel(0))));
        }
    } else if (!sawInsert_) {
        sawInsert_ = true;
        entryGen_ = gen;
    } else if (gen != entryGen_) {
        report("tmp-insert-tier", format("trace {}", frag.id),
               format("fresh insert into {} but earlier inserts "
                      "entered at {}",
                      cache::generationName(gen),
                      cache::generationName(entryGen_)));
    }
    resident_[frag.id] = TraceState{gen, frag.module};
    flow_[gen].inserts += 1;
    checkSidecar(frag.id, gen, true, "insert");
}

void
TemporalChecker::onEvict(const cache::Fragment &frag,
                         cache::Generation gen,
                         cache::EvictReason reason, TimeUs now)
{
    noteEvent(now);
    expectNoPendingPromotion("evict");
    auto it = resident_.find(frag.id);
    if (it == resident_.end()) {
        report("tmp-evict-absent", format("trace {}", frag.id),
               format("evicted from {} ({}) but the trace is not "
                      "resident",
                      cache::generationName(gen),
                      cache::evictReasonName(reason)));
        return;
    }
    if (it->second.gen != gen) {
        report("tmp-evict-tier-mismatch", format("trace {}", frag.id),
               format("evicted from {} ({}) but the trace resides "
                      "in {}",
                      cache::generationName(gen),
                      cache::evictReasonName(reason),
                      cache::generationName(it->second.gen)));
    }
    if (reason == cache::EvictReason::PromotionMove) {
        // The matching onPromote must be the very next event; the
        // residency moves there (the pipeline has already placed the
        // fragment in the destination tier when this event fires).
        pendingPromotion_ = PendingPromotion{frag.id, gen, true};
        return;
    }
    if (reason == cache::EvictReason::Unmap) {
        flow_[gen].unmapDeletions += 1;
        UnloadWindow &window = pendingUnloads_[frag.module];
        if (window.evictions == 0) {
            window.firstEvent = events_;
        }
        window.lastEvent = events_;
        window.evictions += 1;
    } else {
        flow_[gen].deletions += 1;
    }
    resident_.erase(it);
    checkSidecar(frag.id, gen, false, "evict");
}

void
TemporalChecker::onPromote(const cache::Fragment &frag,
                           cache::Generation from, cache::Generation to,
                           TimeUs now)
{
    noteEvent(now);
    if (!pendingPromotion_.active || pendingPromotion_.id != frag.id ||
        pendingPromotion_.from != from) {
        report("tmp-promote-protocol", format("trace {}", frag.id),
               pendingPromotion_.active
                   ? format("onPromote {} -> {} does not match the "
                            "pending PromotionMove eviction of trace "
                            "{} from {}",
                            cache::generationName(from),
                            cache::generationName(to),
                            pendingPromotion_.id,
                            cache::generationName(pendingPromotion_.from))
                   : format("onPromote {} -> {} without a preceding "
                            "PromotionMove eviction",
                            cache::generationName(from),
                            cache::generationName(to)));
    }
    pendingPromotion_.active = false;

    if (subject_ != nullptr) {
        const int src = tierIndexOf(from);
        const int dst = tierIndexOf(to);
        if (src < 0 || dst < 0 || dst != src + 1) {
            report("tmp-promote-order", format("trace {}", frag.id),
                   format("promotion {} -> {} is not a one-tier "
                          "advance of pipeline '{}'",
                          cache::generationName(from),
                          cache::generationName(to),
                          subject_->name()));
        }
    } else if (generationRank(to) <= generationRank(from)) {
        report("tmp-promote-order", format("trace {}", frag.id),
               format("promotion {} -> {} moves against the cascade "
                      "order",
                      cache::generationName(from),
                      cache::generationName(to)));
    }

    auto it = resident_.find(frag.id);
    if (it == resident_.end()) {
        // The PromotionMove evict was missing or named an absent
        // trace; re-track so later events diagnose coherently.
        resident_[frag.id] = TraceState{to, frag.module};
    } else {
        it->second.gen = to;
    }
    flow_[from].promotionsOut += 1;
    flow_[to].promotionsIn += 1;
    checkSidecar(frag.id, to, true, "promote");
}

void
TemporalChecker::onModuleUnload(cache::ModuleId module, TimeUs now)
{
    noteEvent(now);
    expectNoPendingPromotion("module-unload");
    sawUnloadMarker_ = true;
    pendingUnloads_.erase(module);
    std::size_t leaked = 0;
    for (const auto &[id, state] : resident_) {
        if (state.module != module) {
            continue;
        }
        ++leaked;
        report("tmp-unload-incomplete", format("trace {}", id),
               format("still resident in {} at the unload marker of "
                      "module {}",
                      cache::generationName(state.gen), module));
    }
    (void)leaked;
}

void
TemporalChecker::checkFlowAgainstSubject()
{
    const cache::TierPipeline &pipe = *subject_;
    const cache::ManagerStats &stats = pipe.stats();

    TierFlow total;
    for (const auto &[gen, f] : flow_) {
        (void)gen;
        total.inserts += f.inserts;
        total.hits += f.hits;
        total.promotionsIn += f.promotionsIn;
        total.promotionsOut += f.promotionsOut;
        total.deletions += f.deletions;
        total.unmapDeletions += f.unmapDeletions;
    }

    auto flow_mismatch = [&](std::string where, std::string what,
                             std::uint64_t expected,
                             std::uint64_t observed) {
        report("tmp-flow", std::move(where),
               format("{}: manager counted {} but the event stream "
                      "implies {}",
                      what, expected, observed));
    };

    if (stats.inserts != total.inserts) {
        flow_mismatch(pipe.name(), "inserts", stats.inserts,
                      total.inserts);
    }
    if (stats.promotions != total.promotionsOut ||
        total.promotionsIn != total.promotionsOut) {
        flow_mismatch(pipe.name(), "promotions", stats.promotions,
                      total.promotionsOut);
    }
    if (stats.deletions != total.deletions) {
        flow_mismatch(pipe.name(), "deletions", stats.deletions,
                      total.deletions);
    }
    if (stats.unmapDeletions != total.unmapDeletions) {
        flow_mismatch(pipe.name(), "unmap deletions",
                      stats.unmapDeletions, total.unmapDeletions);
    }
    if (options_.observeHitsMisses) {
        if (stats.hits != total.hits) {
            flow_mismatch(pipe.name(), "hits", stats.hits, total.hits);
        }
        if (stats.misses != misses_) {
            flow_mismatch(pipe.name(), "misses", stats.misses,
                          misses_);
        }
    }

    // Per-tier conservation: what entered a tier (fresh inserts at
    // the entry tier, promotions elsewhere) minus what left it
    // (deletions, unmaps, promotions out) must equal its current
    // population — and every counter must agree with the pipeline's
    // own per-tier statistics.
    for (std::size_t i = 0; i < pipe.tierCount(); ++i) {
        const cache::Generation label = pipe.tierLabel(i);
        const char *label_name = cache::generationName(label);
        const cache::GenerationStats &ts = pipe.tierStats(i);
        auto it = flow_.find(label);
        const TierFlow f = it == flow_.end() ? TierFlow{} : it->second;

        if (ts.promotionsIn != f.promotionsIn) {
            flow_mismatch(label_name, "promotions in",
                          ts.promotionsIn, f.promotionsIn);
        }
        if (ts.promotionsOut != f.promotionsOut) {
            flow_mismatch(label_name, "promotions out",
                          ts.promotionsOut, f.promotionsOut);
        }
        if (ts.deletions != f.deletions + f.unmapDeletions) {
            flow_mismatch(label_name, "deletions", ts.deletions,
                          f.deletions + f.unmapDeletions);
        }
        if (options_.observeHitsMisses && ts.hits != f.hits) {
            flow_mismatch(label_name, "hits", ts.hits, f.hits);
        }

        const std::uint64_t entered = f.inserts + f.promotionsIn;
        const std::uint64_t left =
            f.deletions + f.unmapDeletions + f.promotionsOut;
        std::uint64_t tracked = 0;
        for (const auto &[id, state] : resident_) {
            (void)id;
            if (state.gen == label) {
                ++tracked;
            }
        }
        if (entered < left || entered - left != tracked ||
            tracked != pipe.tierCache(i).fragmentCount()) {
            report("tmp-flow", label_name,
                   format("conservation broken: {} entered, {} left, "
                          "{} tracked resident, {} actually resident",
                          entered, left, tracked,
                          pipe.tierCache(i).fragmentCount()));
        }
    }
}

void
TemporalChecker::checkResidencyAgainstSubject()
{
    const cache::TierPipeline &pipe = *subject_;
    for (const auto &[id, state] : resident_) {
        if (!pipe.contains(id)) {
            report("tmp-leak", format("trace {}", id),
                   format("event stream left it resident in {} but "
                          "the pipeline no longer holds it",
                          cache::generationName(state.gen)));
            continue;
        }
        const std::size_t tier = pipe.tierOf(id);
        if (pipe.tierLabel(tier) != state.gen) {
            report("tmp-leak", format("trace {}", id),
                   format("event stream places it in {} but the "
                          "pipeline holds it in {}",
                          cache::generationName(state.gen),
                          cache::generationName(pipe.tierLabel(tier))));
        }
    }
    for (std::size_t i = 0; i < pipe.tierCount(); ++i) {
        pipe.tierCache(i).forEach([&](const cache::Fragment &frag) {
            if (resident_.find(frag.id) == resident_.end()) {
                report("tmp-leak", format("trace {}", frag.id),
                       format("resident in {} but the event stream "
                              "never saw it enter",
                              cache::generationName(pipe.tierLabel(i))));
            }
        });
    }
}

void
TemporalChecker::checkpoint()
{
    if (pendingPromotion_.active) {
        // A checkpoint can only run at a quiescent event boundary;
        // half a promotion pair means the stream was cut mid-pair.
        expectNoPendingPromotion("checkpoint");
    }
    if (subject_ == nullptr) {
        return;
    }
    checkFlowAgainstSubject();
    checkResidencyAgainstSubject();
}

void
TemporalChecker::finish()
{
    checkpoint();
    if (subject_ != nullptr || sawUnloadMarker_) {
        for (const auto &[module, window] : pendingUnloads_) {
            report("tmp-unload-window", format("module {}", module),
                   format("{} unmap eviction(s) never claimed by a "
                          "module-unload marker",
                          window.evictions));
        }
        pendingUnloads_.clear();
    }
}

std::uint64_t
runTemporalReplay(const tracelog::AccessLog &log,
                  cache::CacheManager &manager, DiagnosticEngine &out,
                  TemporalOptions options)
{
    TemporalChecker checker(out, options);
    checker.bindSubject(dynamic_cast<const cache::TierPipeline *>(&manager));
    sim::CacheSimulator simulator(manager);
    simulator.setProbeListener(&checker);
    simulator.run(log);
    checker.finish();
    simulator.setProbeListener(nullptr);
    return checker.eventCount();
}

} // namespace gencache::analysis
