#include "analysis/topology_passes.h"

#include <cmath>

#include "codecache/local_cache.h"
#include "support/format.h"

namespace gencache::analysis {

namespace {

const char *
edgeRuleName(cache::EdgeSpec::Rule rule)
{
    using Rule = cache::EdgeSpec::Rule;
    switch (rule) {
      case Rule::AlwaysPromote: return "always-promote";
      case Rule::AlwaysDelete: return "always-delete";
      case Rule::Threshold: return "threshold";
      case Rule::Temperature: return "temperature";
    }
    return "?";
}

class TopologyLinter
{
  public:
    TopologyLinter(const cache::TierTopology &topo, DiagnosticEngine &out)
        : topo_(topo), out_(out)
    {
    }

    bool run()
    {
        out_.setCurrentPass("topo");
        const std::size_t before = out_.errorCount();
        checkShape();
        if (!topo_.fractions.empty()) {
            checkFractions();
            checkPolicies();
            checkEdges();
            checkPins();
        }
        return out_.errorCount() == before;
    }

    bool runWithBudget(std::uint64_t budget)
    {
        const bool clean = run();
        out_.setCurrentPass("topo");
        const std::size_t before = out_.errorCount();
        checkBudget(budget);
        return clean && out_.errorCount() == before;
    }

  private:
    void report(Severity severity, std::string_view check,
                std::string location, std::string message)
    {
        out_.report(severity, std::string(check), std::move(location),
                    std::move(message));
    }

    std::string tierLoc(std::size_t tier) const
    {
        return format("{}: tier {}", topo_.name, tier);
    }

    std::string edgeLoc(std::size_t edge) const
    {
        return format("{}: edge {} -> {}", topo_.name, edge, edge + 1);
    }

    std::size_t tierCount() const { return topo_.fractions.size(); }

    /** True when a fragment can ever reside in @p tier: fresh inserts
     *  only land in tier 0, so every edge below must be able to move
     *  fragments up, which an always-delete edge never does (neither
     *  on eviction nor eagerly — the rule has no eager variant). */
    bool tierReachable(std::size_t tier) const
    {
        for (std::size_t i = 0; i < tier && i < topo_.edges.size();
             ++i) {
            if (topo_.edges[i].rule ==
                cache::EdgeSpec::Rule::AlwaysDelete) {
                return false;
            }
        }
        return true;
    }

    void checkShape()
    {
        if (topo_.fractions.empty()) {
            report(Severity::Error, "topo-no-tiers", topo_.name,
                   "no tier fractions; a pipeline needs at least one "
                   "tier");
            return;
        }
        if (tierCount() > cache::kMaxTiers) {
            report(Severity::Error, "topo-too-deep", topo_.name,
                   format("{} tiers but pipelines support at most {}",
                          tierCount(), cache::kMaxTiers));
        }
        if (topo_.edges.size() != tierCount() - 1) {
            report(Severity::Error, "topo-edge-count", topo_.name,
                   format("{} tiers need {} promotion edges, got {}",
                          tierCount(), tierCount() - 1,
                          topo_.edges.size()));
        }
    }

    void checkFractions()
    {
        double sum = 0.0;
        double sum_but_last = 0.0;
        bool range_clean = true;
        for (std::size_t i = 0; i < tierCount(); ++i) {
            const double frac = topo_.fractions[i];
            if (!std::isfinite(frac) || frac <= 0.0 || frac > 1.0) {
                report(Severity::Error, "topo-fraction-range",
                       tierLoc(i),
                       format("fraction {} is not in (0, 1]", frac));
                range_clean = false;
                continue;
            }
            sum += frac;
            if (i + 1 < tierCount()) {
                sum_but_last += frac;
            }
        }
        if (!range_clean) {
            return; // sums over bad fractions are noise
        }
        // tierSpecs assigns llround(total * frac) to every tier but
        // the last, then hands the last tier the remainder; when the
        // leading fractions already claim the whole budget there is
        // no remainder to hand out, at any budget.
        if (tierCount() > 1 && sum_but_last >= 1.0) {
            report(Severity::Error, "topo-fraction-sum", topo_.name,
                   format("fractions before the last tier sum to {}; "
                          "no budget remains for the last tier",
                          sum_but_last));
        } else if (sum < kFractionSumLowThreshold) {
            report(Severity::Warning, "topo-fraction-sum-low",
                   topo_.name,
                   format("fractions sum to {}; the last tier "
                          "silently absorbs the remaining {} of the "
                          "budget",
                          sum, 1.0 - sum));
        }
    }

    void checkPolicies()
    {
        if (topo_.policy == cache::LocalPolicy::Unbounded &&
            tierCount() > 1) {
            report(Severity::Error, "topo-unbounded-multi", topo_.name,
                   format("unbounded tiers are only legal in a "
                          "single-tier pipeline ({} tiers here)",
                          tierCount()));
        }
    }

    void checkEdges()
    {
        const std::size_t edges =
            std::min(topo_.edges.size(),
                     tierCount() > 0 ? tierCount() - 1 : 0);
        for (std::size_t i = 0; i < edges; ++i) {
            const cache::EdgeSpec &edge = topo_.edges[i];
            using Rule = cache::EdgeSpec::Rule;
            if (edge.rule == Rule::Temperature &&
                edge.halfLifeUs == 0) {
                report(Severity::Error, "topo-temp-halflife",
                       edgeLoc(i),
                       "temperature decay needs a positive half-life");
            }
            if ((edge.rule == Rule::Threshold ||
                 edge.rule == Rule::Temperature) &&
                edge.threshold == 0) {
                report(Severity::Warning, "topo-threshold-zero",
                       edgeLoc(i),
                       format("{} edge with threshold 0 admits every "
                              "victim; spell it always-promote",
                              edgeRuleName(edge.rule)));
            }
            if (!tierReachable(i)) {
                report(Severity::Error, "topo-edge-never-fires",
                       edgeLoc(i),
                       format("source tier {} is unreachable, so this "
                              "{} edge can never see a victim",
                              i, edgeRuleName(edge.rule)));
            }
        }
        for (std::size_t tier = 1; tier < tierCount(); ++tier) {
            if (tier - 1 < topo_.edges.size() && !tierReachable(tier)) {
                report(Severity::Error, "topo-unreachable-tier",
                       tierLoc(tier),
                       "behind an always-delete edge; no fragment can "
                       "ever reach it (its capacity is wasted)");
            }
        }
    }

    void checkPins()
    {
        if (topo_.pins != cache::PinHandling::Shed) {
            return;
        }
        if (tierCount() == 1) {
            report(Severity::Warning, "topo-pin-shed-single",
                   topo_.name,
                   "pin shedding applies on promotion, but a "
                   "single-tier pipeline never promotes");
        } else if (topo_.policy == cache::LocalPolicy::PreemptiveFlush) {
            report(Severity::Warning, "topo-pin-shed-flush", topo_.name,
                   "promotion sheds the pin right before the fragment "
                   "enters a preemptive-flush tier, so pinned code "
                   "loses its flush protection by being promoted");
        }
    }

    void checkBudget(std::uint64_t budget)
    {
        // Only meaningful when the shape and fractions are sane;
        // otherwise the split below would double-report their causes.
        if (topo_.fractions.empty() ||
            topo_.edges.size() != tierCount() - 1) {
            return;
        }
        if (budget < tierCount()) {
            report(Severity::Error, "topo-zero-capacity", topo_.name,
                   format("budget of {} byte(s) cannot give each of "
                          "{} tiers a positive capacity",
                          budget, tierCount()));
            return;
        }
        // Exact replay of TierTopology::tierSpecs' byte split.
        std::uint64_t assigned = 0;
        for (std::size_t i = 0; i + 1 < tierCount(); ++i) {
            const double frac = topo_.fractions[i];
            if (!std::isfinite(frac) || frac <= 0.0) {
                return; // topo-fraction-range already fired
            }
            std::uint64_t bytes = static_cast<std::uint64_t>(
                std::llround(static_cast<double>(budget) * frac));
            if (bytes == 0) {
                report(Severity::Error, "topo-zero-capacity",
                       tierLoc(i),
                       format("share {} of {} bytes rounds to zero",
                              frac, budget));
                bytes = 1; // the clamp tierSpecs would apply
            }
            assigned += bytes;
        }
        if (tierCount() > 1 && assigned >= budget) {
            report(Severity::Error, "topo-fraction-sum", topo_.name,
                   format("rounded shares assign {} of {} bytes "
                          "before the last tier; no budget remains "
                          "for it",
                          assigned, budget));
        }
    }

    const cache::TierTopology &topo_;
    DiagnosticEngine &out_;
};

} // namespace

bool
lintTopology(const cache::TierTopology &topo, DiagnosticEngine &out)
{
    return TopologyLinter(topo, out).run();
}

bool
lintTopology(const cache::TierTopology &topo, std::uint64_t budget_bytes,
             DiagnosticEngine &out)
{
    return TopologyLinter(topo, out).runWithBudget(budget_bytes);
}

FastPathExplanation
explainFastReplay(const cache::TierTopology &topo)
{
    FastPathExplanation answer;
    answer.listenerCaveat =
        "the attached event listener declines hit/miss events "
        "(the fast path serves hits without emitting them)";
    if (cache::localPolicyObservesTouch(topo.policy)) {
        answer.eligible = false;
        answer.blockers.push_back(format(
            "local policy {} updates replacement state on touch; the "
            "fast path never delivers touches",
            cache::localPolicyName(topo.policy)));
    }
    for (std::size_t i = 0; i < topo.edges.size(); ++i) {
        const cache::EdgeSpec &edge = topo.edges[i];
        using Rule = cache::EdgeSpec::Rule;
        if (edge.rule == Rule::Temperature) {
            answer.eligible = false;
            answer.blockers.push_back(format(
                "edge {} -> {} uses temperature decay, which must "
                "observe every hit's timestamp",
                i, i + 1));
        } else if (edge.rule == Rule::Threshold && edge.eager) {
            answer.eligible = false;
            answer.blockers.push_back(format(
                "edge {} -> {} upgrades eagerly on hit; the fast "
                "path only defers plain threshold counting",
                i, i + 1));
        }
    }
    return answer;
}

} // namespace gencache::analysis
