/**
 * @file
 * Cache-state pass family: storage-level invariants of the code caches.
 *
 * Re-derives, from raw introspection state, everything the cache layer
 * promises the rest of the system:
 *
 *  - PseudoCircularCache / CacheRegion (§4.3): the rotated split pair
 *    is sorted, every fragment sits in the correct half, fragments
 *    never overlap or leave the region, the id index and byte/pinned
 *    accounting agree with the fragments actually present.
 *  - ListCache (FIFO/LRU/flush/unbounded): the victim ring is a
 *    well-formed doubly linked list, the free list is disjoint from it
 *    and together they cover the slab, and index/byte accounting
 *    agree.
 *  - TierPipeline (§5, Figure 8, generalized to any tier count —
 *    covering GenerationalCacheManager, UnifiedCacheManager, and every
 *    TierTopology): every trace is resident in exactly one tier, the
 *    residency index matches the caches, and the promotion counters
 *    obey the cascade's conservation identities (nothing flows into
 *    the first tier or out of the last, counts match across adjacent
 *    tiers, the manager total is the sum of tier admissions).
 *
 * Check IDs: region-unsorted, region-split, region-overlap,
 * region-oob, region-pointer-oob, region-index, region-bytes,
 * region-pinned-count, list-ring-broken, list-free-broken, list-index,
 * list-bytes, list-over-capacity, cache-bytes, cache-over-capacity,
 * tier-dup-residency, tier-index-mismatch, tier-flow. The pre-pipeline
 * IDs gen-dup-residency / gen-index-mismatch / gen-flow remain valid
 * aliases of the tier-* IDs (DiagnosticEngine canonicalizes both
 * spellings).
 */

#ifndef GENCACHE_ANALYSIS_CACHE_PASSES_H
#define GENCACHE_ANALYSIS_CACHE_PASSES_H

#include <string>

#include "analysis/pass.h"

namespace gencache::cache {
class LocalCache;
} // namespace gencache::cache

namespace gencache::analysis {

/** Validates the cache manager's storage state. Cheap: linear in
 *  resident fragments, so it runs at phase boundaries. */
class CacheStatePass : public Pass
{
  public:
    const char *name() const override { return "cache-state"; }
    void run(const AnalysisInput &input,
             DiagnosticEngine &out) const override;
};

/** Check one local cache directly (test support). @p where prefixes
 *  diagnostic locations, e.g. "nursery". */
void checkLocalCache(const cache::LocalCache &cache,
                     const std::string &where, DiagnosticEngine &out);

/** Run the cache-state pass over @p manager alone (test support). */
void checkCacheState(const cache::CacheManager &manager,
                     DiagnosticEngine &out);

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_CACHE_PASSES_H
