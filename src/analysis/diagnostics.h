/**
 * @file
 * Shared diagnostic engine of the gencheck static analyzer.
 *
 * Every invariant checker (src/analysis passes) reports findings
 * through one DiagnosticEngine: a stable check ID (e.g.
 * "gen-dup-residency"), a severity, a human-readable location, and a
 * message. The engine renders the collected findings as a text report
 * for terminals and as JSON for tooling, and answers the aggregate
 * questions ("any errors?") that drive gencheck's exit status and the
 * GENCACHE_CHECK phase-boundary hook.
 */

#ifndef GENCACHE_ANALYSIS_DIAGNOSTICS_H
#define GENCACHE_ANALYSIS_DIAGNOSTICS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gencache::analysis {

/** How bad a finding is. */
enum class Severity : std::uint8_t {
    Note,    ///< informational; never fails a run
    Warning, ///< suspicious structure, not a correctness violation
    Error,   ///< a paper invariant is violated
};

/** @return printable lowercase name of @p severity. */
const char *severityName(Severity severity);

/** One finding of a static-analysis pass. */
struct Diagnostic
{
    std::string checkId;  ///< stable ID, e.g. "link-dangling"
    Severity severity = Severity::Error;
    std::string pass;     ///< pass that produced the finding
    std::string location; ///< subject, e.g. "trace 17" or "nursery"
    std::string message;  ///< what is wrong
};

/** Collects diagnostics and renders reports. */
class DiagnosticEngine
{
  public:
    DiagnosticEngine() = default;

    /** Name attached to subsequently reported diagnostics (set by the
     *  pass driver before each pass runs). */
    void setCurrentPass(std::string name) { pass_ = std::move(name); }
    const std::string &currentPass() const { return pass_; }

    /** Record one finding under the current pass. */
    void report(Severity severity, std::string check_id,
                std::string location, std::string message);

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diagnostics_;
    }

    bool empty() const { return diagnostics_.empty(); }
    std::size_t size() const { return diagnostics_.size(); }

    /** Number of findings at exactly @p severity. */
    std::size_t count(Severity severity) const;

    /** Number of findings at severity >= Error. */
    std::size_t errorCount() const { return count(Severity::Error); }

    /** @return true when any finding carries check ID @p id (alias
     *  spellings match, see canonicalCheckId). */
    bool hasCheck(std::string_view id) const;

    /** Findings carrying check ID @p id (alias spellings match). */
    std::vector<Diagnostic> findingsOf(std::string_view id) const;

    /** Multi-line human-readable report (one line per finding plus a
     *  summary line); "no diagnostics" when clean. */
    std::string textReport() const;

    /** JSON object: {"diagnostics": [...], "counts": {...}}. */
    std::string jsonReport() const;

    /** Drop all findings (the engine is reusable across subjects). */
    void clear() { diagnostics_.clear(); }

  private:
    std::string pass_;
    std::vector<Diagnostic> diagnostics_;
};

/**
 * Registry entry of one check ID.
 *
 * Every check a pass can report is registered here with its canonical
 * ID, the one severity it reports at, the pass family that owns it,
 * and a one-line summary. The registry is the machine-readable twin
 * of the DESIGN.md §8/§13 inventory tables: a drift test
 * (tests/test_check_registry.cc) cross-checks the two in both
 * directions, and `gencheck --list-checks` dumps the registry as
 * JSON. DiagnosticEngine::report panics on IDs (or severities) that
 * are not registered, so a new check cannot ship undocumented.
 */
struct CheckInfo
{
    std::string_view id;       ///< canonical check ID
    Severity severity;         ///< the severity this check reports at
    std::string_view family;   ///< owning pass family ("cfg", "tmp", ...)
    std::string_view summary;  ///< one-line invariant description
};

/** All registered checks, ordered by family then ID. */
const std::vector<CheckInfo> &checkRegistry();

/** Registry entry for @p id (alias spellings accepted), or nullptr
 *  when @p id is not a registered check. */
const CheckInfo *findCheckInfo(std::string_view id);

/** JSON array of the whole registry (gencheck --list-checks). */
std::string checkRegistryJson();

/**
 * Canonical spelling of check ID @p id.
 *
 * The generation-specific cache-state checks generalized to
 * tier-indexed passes when the managers became TierPipeline
 * topologies; their historical gen-* IDs remain supported aliases of
 * the tier-* IDs so existing tooling and suppression lists keep
 * working. Unknown IDs canonicalize to themselves.
 */
std::string_view canonicalCheckId(std::string_view id);

/** Escape @p text for embedding in a JSON string literal. */
std::string jsonEscape(std::string_view text);

/** @return @p addr as "0x<hex>" (diagnostic location rendering). */
std::string hexAddr(std::uint64_t addr);

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_DIAGNOSTICS_H
