/**
 * @file
 * Front-end fast-path pass family: the dense dispatch/chaining state
 * vs. the authoritative hash-map state it mirrors.
 *
 * The predecoded front end replaces per-block hash lookups with dense
 * arrays: the AddressSpace block index (guest addr -> block id ->
 * predecoded stream), the runtime's flat dispatch table (block id ->
 * trace id), and the linker's per-trace cached successor slots
 * (direct chaining). Each mirror is redundant with a slower structure
 * that stays authoritative — module block maps, traceIdOfEntry_, the
 * link graph — so every inconsistency is a real bug (a stale patched
 * jump, a dispatch into a dead trace, a block id resolving to the
 * wrong code). This pass re-derives each mirror from its source:
 *
 *  - every linked exit's cached successor slot matches what
 *    `TraceLinker::nodes()` implies (patched edge to the resident
 *    trace at that exit target, or no slot), and the cached target
 *    list mirrors the node's exit targets;
 *  - every dense block id round-trips through the AddressSpace index
 *    (module block -> id -> identical metadata), and the predecoded
 *    stream has the block's instruction count;
 *  - the flat dispatch table and the live trace set agree in both
 *    directions.
 *
 * Check IDs: fe-exit-shape, fe-exit-slot, fe-block-roundtrip,
 * fe-dispatch-stale, fe-dispatch-missing.
 */

#ifndef GENCACHE_ANALYSIS_FRONTEND_PASSES_H
#define GENCACHE_ANALYSIS_FRONTEND_PASSES_H

#include "analysis/pass.h"

namespace gencache::runtime {
class TraceLinker;
} // namespace gencache::runtime

namespace gencache::analysis {

/** Validates the front-end fast-path mirrors. Cheap: linear in
 *  resident traces, exits, and mapped blocks, so it runs at phase
 *  boundaries. */
class FrontendPass : public Pass
{
  public:
    const char *name() const override { return "frontend"; }
    void run(const AnalysisInput &input,
             DiagnosticEngine &out) const override;
};

/** Run only the exit-cache checks over @p linker (test support). */
void checkExitCaches(const runtime::TraceLinker &linker,
                     DiagnosticEngine &out);

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_FRONTEND_PASSES_H
