#include "analysis/diagnostics.h"

#include <cstdio>
#include <sstream>

#include "support/logging.h"

namespace gencache::analysis {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    GENCACHE_PANIC("unknown severity {}", static_cast<int>(severity));
}

void
DiagnosticEngine::report(Severity severity, std::string check_id,
                         std::string location, std::string message)
{
    Diagnostic diag;
    diag.checkId = std::move(check_id);
    diag.severity = severity;
    diag.pass = pass_;
    diag.location = std::move(location);
    diag.message = std::move(message);
    diagnostics_.push_back(std::move(diag));
}

std::size_t
DiagnosticEngine::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &diag : diagnostics_) {
        if (diag.severity == severity) {
            ++n;
        }
    }
    return n;
}

std::string_view
canonicalCheckId(std::string_view id)
{
    if (id == "gen-dup-residency") {
        return "tier-dup-residency";
    }
    if (id == "gen-index-mismatch") {
        return "tier-index-mismatch";
    }
    if (id == "gen-flow") {
        return "tier-flow";
    }
    return id;
}

bool
DiagnosticEngine::hasCheck(std::string_view id) const
{
    std::string_view canonical = canonicalCheckId(id);
    for (const Diagnostic &diag : diagnostics_) {
        if (canonicalCheckId(diag.checkId) == canonical) {
            return true;
        }
    }
    return false;
}

std::vector<Diagnostic>
DiagnosticEngine::findingsOf(std::string_view id) const
{
    std::string_view canonical = canonicalCheckId(id);
    std::vector<Diagnostic> found;
    for (const Diagnostic &diag : diagnostics_) {
        if (canonicalCheckId(diag.checkId) == canonical) {
            found.push_back(diag);
        }
    }
    return found;
}

std::string
DiagnosticEngine::textReport() const
{
    if (diagnostics_.empty()) {
        return "no diagnostics\n";
    }
    std::ostringstream out;
    for (const Diagnostic &diag : diagnostics_) {
        out << severityName(diag.severity) << " [" << diag.checkId
            << "] " << diag.location << ": " << diag.message;
        if (!diag.pass.empty()) {
            out << " (" << diag.pass << ")";
        }
        out << "\n";
    }
    out << diagnostics_.size() << " diagnostic"
        << (diagnostics_.size() == 1 ? "" : "s") << " ("
        << count(Severity::Error) << " error, "
        << count(Severity::Warning) << " warning, "
        << count(Severity::Note) << " note)\n";
    return out.str();
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
DiagnosticEngine::jsonReport() const
{
    std::ostringstream out;
    out << "{\"diagnostics\": [";
    bool first = true;
    for (const Diagnostic &diag : diagnostics_) {
        if (!first) {
            out << ", ";
        }
        first = false;
        out << "{\"check\": \"" << jsonEscape(diag.checkId)
            << "\", \"severity\": \"" << severityName(diag.severity)
            << "\", \"pass\": \"" << jsonEscape(diag.pass)
            << "\", \"location\": \"" << jsonEscape(diag.location)
            << "\", \"message\": \"" << jsonEscape(diag.message)
            << "\"}";
    }
    out << "], \"counts\": {\"error\": " << count(Severity::Error)
        << ", \"warning\": " << count(Severity::Warning)
        << ", \"note\": " << count(Severity::Note) << "}}";
    return out.str();
}

std::string
hexAddr(std::uint64_t addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace gencache::analysis
