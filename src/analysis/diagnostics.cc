#include "analysis/diagnostics.h"

#include <cstdio>
#include <sstream>

#include "support/logging.h"

namespace gencache::analysis {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    GENCACHE_PANIC("unknown severity {}", static_cast<int>(severity));
}

const std::vector<CheckInfo> &
checkRegistry()
{
    // Ordered by family, then ID. The severity is the ONE severity
    // the check reports at; report() enforces both the ID and the
    // severity, and tests/test_check_registry.cc keeps this table in
    // lockstep with the DESIGN.md §8/§13 inventory.
    static const std::vector<CheckInfo> registry = {
        // CFG passes (whole-program).
        {"cfg-no-entry", Severity::Warning, "cfg",
         "program has no entry point set"},
        {"cfg-entry-unmapped", Severity::Error, "cfg",
         "entry address is not a block start in any module"},
        {"cfg-module-overlap", Severity::Error, "cfg",
         "two modules' address extents intersect"},
        {"cfg-empty-module", Severity::Warning, "cfg",
         "module maps no blocks"},
        {"cfg-block-empty", Severity::Error, "cfg",
         "basic block with zero instructions"},
        {"cfg-block-unterminated", Severity::Error, "cfg",
         "block does not end in control flow"},
        {"cfg-dangling-target", Severity::Error, "cfg",
         "direct branch/call target is no block start"},
        {"cfg-fallthrough-invalid", Severity::Error, "cfg",
         "fall-through address is no block start"},
        {"cfg-unreachable", Severity::Warning, "cfg",
         "block unreachable from entry + address-taken roots"},
        {"cfg-orphan-module", Severity::Warning, "cfg",
         "entire non-entry module unreachable"},
        // Superblock passes (whole-program).
        {"sb-empty", Severity::Error, "sb",
         "trace with an empty block path"},
        {"sb-zero-size", Severity::Error, "sb",
         "trace with zero code bytes"},
        {"sb-multi-entry", Severity::Error, "sb",
         "block address repeats on the path"},
        {"sb-broken-path", Severity::Error, "sb",
         "path not a valid CFG walk"},
        {"sb-module-mismatch", Severity::Error, "sb",
         "path block owned by a different module than the trace claims"},
        {"sb-exit-invalid", Severity::Error, "sb",
         "exit target is neither a block start nor a live trace entry"},
        // Link-graph passes (cheap).
        {"link-dangling", Severity::Error, "link",
         "edge references a missing or non-resident trace"},
        {"link-stale-node", Severity::Error, "link",
         "linker node for a trace the cache no longer holds"},
        {"link-missing-node", Severity::Warning, "link",
         "resident runtime trace unknown to the linker"},
        {"link-asym", Severity::Error, "link",
         "outgoing edge without matching incoming backref"},
        {"link-edge-no-exit", Severity::Error, "link",
         "edge exists but no exit target reaches the target's entry"},
        {"link-entry-stale", Severity::Error, "link",
         "entry-address index disagrees with the node set"},
        {"link-unpatched", Severity::Warning, "link",
         "exit targets a resident trace's entry but was never patched"},
        // Front-end passes (cheap).
        {"fe-exit-shape", Severity::Error, "fe",
         "per-trace exit cache missing or shaped unlike the exits"},
        {"fe-exit-slot", Severity::Error, "fe",
         "cached successor slot disagrees with the link graph"},
        {"fe-block-roundtrip", Severity::Error, "fe",
         "block dense id does not round-trip through the index"},
        {"fe-dispatch-stale", Severity::Error, "fe",
         "dense dispatch table names a dead or relocated trace"},
        {"fe-dispatch-missing", Severity::Error, "fe",
         "live trace not reachable through the dense dispatch table"},
        // Cache-state passes (cheap).
        {"region-split", Severity::Error, "region",
         "fragment on the wrong side of the allocation pointer"},
        {"region-unsorted", Severity::Error, "region",
         "half of the region out of address order"},
        {"region-overlap", Severity::Error, "region",
         "two fragments' byte ranges intersect"},
        {"region-oob", Severity::Error, "region",
         "fragment outside [0, capacity)"},
        {"region-pointer-oob", Severity::Error, "region",
         "allocation pointer beyond capacity"},
        {"region-index", Severity::Error, "region",
         "id->address index disagrees with storage"},
        {"region-bytes", Severity::Error, "region",
         "byte accounting != sum of fragment sizes"},
        {"region-pinned-count", Severity::Error, "region",
         "pinned count != pinned fragments"},
        {"list-ring-broken", Severity::Error, "list",
         "victim ring cyclic or inconsistent"},
        {"list-free-broken", Severity::Error, "list",
         "free list cyclic, out of bounds, or overlapping live slots"},
        {"list-index", Severity::Error, "list",
         "id->slot index disagrees with slab"},
        {"list-bytes", Severity::Error, "list",
         "byte accounting != sum of live fragments"},
        {"list-over-capacity", Severity::Error, "list",
         "used bytes exceed capacity"},
        {"cache-bytes", Severity::Error, "cache",
         "byte accounting mismatch (generic fallback)"},
        {"cache-over-capacity", Severity::Error, "cache",
         "over capacity (generic fallback)"},
        {"tier-dup-residency", Severity::Error, "tier",
         "trace resident in two tiers at once"},
        {"tier-index-mismatch", Severity::Error, "tier",
         "residency index disagrees with actual residency"},
        {"tier-flow", Severity::Error, "tier",
         "promotion-flow identity broken"},
        // Shared-store passes (cross-process tier, fleet runs).
        {"shr-shard-owner", Severity::Error, "shr",
         "entry resident in a shard other than shardOf(key)"},
        {"shr-bytes", Severity::Error, "shr",
         "used/claimed byte accounting != sums over entries"},
        {"shr-over-budget", Severity::Error, "shr",
         "shard resident bytes exceed the shard budget"},
        {"shr-orphan", Severity::Error, "shr",
         "resident entry with no attached process"},
        {"shr-attach-bounds", Severity::Error, "shr",
         "attach mask outside the fleet or popcount drift"},
        {"shr-unmap-stale", Severity::Error, "shr",
         "entry of an invalidated module predates the invalidation"},
        // Temporal passes (event streams, online + offline).
        {"tmp-use-after-evict", Severity::Error, "tmp",
         "hit reported for a trace that is not resident"},
        {"tmp-miss-resident", Severity::Error, "tmp",
         "miss reported for a resident trace"},
        {"tmp-hit-tier-mismatch", Severity::Error, "tmp",
         "hit names a tier other than the trace's residency"},
        {"tmp-double-residency", Severity::Error, "tmp",
         "insert of a trace that is already resident"},
        {"tmp-insert-tier", Severity::Error, "tmp",
         "fresh insert lands in a tier other than the entry tier"},
        {"tmp-evict-absent", Severity::Error, "tmp",
         "evict reported for a trace that is not resident"},
        {"tmp-evict-tier-mismatch", Severity::Error, "tmp",
         "evict names a tier other than the trace's residency"},
        {"tmp-promote-protocol", Severity::Error, "tmp",
         "promotion not bracketed by its PromotionMove evict"},
        {"tmp-promote-order", Severity::Error, "tmp",
         "promotion violates tier monotonicity (Figure 8 cascade)"},
        {"tmp-unload-incomplete", Severity::Error, "tmp",
         "fragments of an unloaded module still resident at the marker"},
        {"tmp-unload-window", Severity::Error, "tmp",
         "unmap eviction not claimed by a module-unload marker in time"},
        {"tmp-flow", Severity::Error, "tmp",
         "event stream disagrees with the manager's flow counters"},
        {"tmp-leak", Severity::Error, "tmp",
         "end-of-run residency disagrees with the event stream"},
        {"tmp-time-regression", Severity::Error, "tmp",
         "event timestamps moved backwards"},
        {"tmp-sidecar-desync", Severity::Error, "tmp",
         "fast-replay sidecar slot disagrees at a residency transition"},
        // Topology linter (static, configs never run).
        {"topo-no-tiers", Severity::Error, "topo",
         "topology has no tiers"},
        {"topo-edge-count", Severity::Error, "topo",
         "edge count is not tier count - 1"},
        {"topo-too-deep", Severity::Error, "topo",
         "more tiers than the pipeline supports"},
        {"topo-fraction-range", Severity::Error, "topo",
         "tier fraction non-positive, above 1, or not finite"},
        {"topo-fraction-sum", Severity::Error, "topo",
         "fractions leave no budget for the last tier"},
        {"topo-zero-capacity", Severity::Error, "topo",
         "tier share rounds to zero bytes under the budget"},
        {"topo-unbounded-multi", Severity::Error, "topo",
         "unbounded local policy in a multi-tier topology"},
        {"topo-unreachable-tier", Severity::Error, "topo",
         "tier behind an always-delete edge can never be reached"},
        {"topo-edge-never-fires", Severity::Error, "topo",
         "promotion edge whose source can never evict into it"},
        {"topo-temp-halflife", Severity::Error, "topo",
         "temperature edge with a zero half-life"},
        {"topo-threshold-zero", Severity::Warning, "topo",
         "threshold 0 makes the edge identical to always-promote"},
        {"topo-pin-shed-single", Severity::Warning, "topo",
         "pin shedding configured where no promotion can occur"},
        {"topo-pin-shed-flush", Severity::Warning, "topo",
         "pin shedding feeds a preemptive-flush tier"},
        {"topo-fraction-sum-low", Severity::Warning, "topo",
         "fractions sum well below 1; last tier absorbs the rest"},
    };
    return registry;
}

const CheckInfo *
findCheckInfo(std::string_view id)
{
    std::string_view canonical = canonicalCheckId(id);
    for (const CheckInfo &info : checkRegistry()) {
        if (info.id == canonical) {
            return &info;
        }
    }
    return nullptr;
}

std::string
checkRegistryJson()
{
    std::ostringstream out;
    out << "[";
    bool first = true;
    for (const CheckInfo &info : checkRegistry()) {
        if (!first) {
            out << ", ";
        }
        first = false;
        out << "{\"id\": \"" << jsonEscape(info.id)
            << "\", \"severity\": \"" << severityName(info.severity)
            << "\", \"family\": \"" << jsonEscape(info.family)
            << "\", \"summary\": \"" << jsonEscape(info.summary)
            << "\"}";
    }
    out << "]";
    return out.str();
}

void
DiagnosticEngine::report(Severity severity, std::string check_id,
                         std::string location, std::string message)
{
    const CheckInfo *info = findCheckInfo(check_id);
    if (info == nullptr) {
        GENCACHE_PANIC("report of unregistered check ID '{}' "
                       "(register it in checkRegistry() and document "
                       "it in DESIGN.md)", check_id);
    }
    if (info->severity != severity) {
        GENCACHE_PANIC("check '{}' reported at severity {} but is "
                       "registered at {}", check_id,
                       severityName(severity),
                       severityName(info->severity));
    }
    Diagnostic diag;
    diag.checkId = std::move(check_id);
    diag.severity = severity;
    diag.pass = pass_;
    diag.location = std::move(location);
    diag.message = std::move(message);
    diagnostics_.push_back(std::move(diag));
}

std::size_t
DiagnosticEngine::count(Severity severity) const
{
    std::size_t n = 0;
    for (const Diagnostic &diag : diagnostics_) {
        if (diag.severity == severity) {
            ++n;
        }
    }
    return n;
}

std::string_view
canonicalCheckId(std::string_view id)
{
    if (id == "gen-dup-residency") {
        return "tier-dup-residency";
    }
    if (id == "gen-index-mismatch") {
        return "tier-index-mismatch";
    }
    if (id == "gen-flow") {
        return "tier-flow";
    }
    return id;
}

bool
DiagnosticEngine::hasCheck(std::string_view id) const
{
    std::string_view canonical = canonicalCheckId(id);
    for (const Diagnostic &diag : diagnostics_) {
        if (canonicalCheckId(diag.checkId) == canonical) {
            return true;
        }
    }
    return false;
}

std::vector<Diagnostic>
DiagnosticEngine::findingsOf(std::string_view id) const
{
    std::string_view canonical = canonicalCheckId(id);
    std::vector<Diagnostic> found;
    for (const Diagnostic &diag : diagnostics_) {
        if (canonicalCheckId(diag.checkId) == canonical) {
            found.push_back(diag);
        }
    }
    return found;
}

std::string
DiagnosticEngine::textReport() const
{
    if (diagnostics_.empty()) {
        return "no diagnostics\n";
    }
    std::ostringstream out;
    for (const Diagnostic &diag : diagnostics_) {
        out << severityName(diag.severity) << " [" << diag.checkId
            << "] " << diag.location << ": " << diag.message;
        if (!diag.pass.empty()) {
            out << " (" << diag.pass << ")";
        }
        out << "\n";
    }
    out << diagnostics_.size() << " diagnostic"
        << (diagnostics_.size() == 1 ? "" : "s") << " ("
        << count(Severity::Error) << " error, "
        << count(Severity::Warning) << " warning, "
        << count(Severity::Note) << " note)\n";
    return out.str();
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
DiagnosticEngine::jsonReport() const
{
    std::ostringstream out;
    out << "{\"diagnostics\": [";
    bool first = true;
    for (const Diagnostic &diag : diagnostics_) {
        if (!first) {
            out << ", ";
        }
        first = false;
        out << "{\"check\": \"" << jsonEscape(diag.checkId)
            << "\", \"severity\": \"" << severityName(diag.severity)
            << "\", \"pass\": \"" << jsonEscape(diag.pass)
            << "\", \"location\": \"" << jsonEscape(diag.location)
            << "\", \"message\": \"" << jsonEscape(diag.message)
            << "\"}";
    }
    out << "], \"counts\": {\"error\": " << count(Severity::Error)
        << ", \"warning\": " << count(Severity::Warning)
        << ", \"note\": " << count(Severity::Note) << "}}";
    return out.str();
}

std::string
hexAddr(std::uint64_t addr)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace gencache::analysis
