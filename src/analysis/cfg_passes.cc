#include "analysis/cfg_passes.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "analysis/program_index.h"
#include "support/format.h"

namespace gencache::analysis {
namespace {

std::string
blockLocation(const guest::GuestModule &module,
              const isa::BasicBlock &block)
{
    return format("module {} block {}", module.name(),
                  hexAddr(block.startAddr()));
}

/** True when @p op transfers control to its encoded direct target. */
bool
hasDirectTarget(isa::Opcode op)
{
    return op == isa::Opcode::Jump || op == isa::Opcode::Call ||
           isa::isConditionalBranch(op);
}

/** True when execution can continue at the address past the
 *  terminator: the not-taken path of a conditional, or the return
 *  site of a call. */
bool
hasFallThrough(isa::Opcode op)
{
    return isa::isConditionalBranch(op) || op == isa::Opcode::Call ||
           op == isa::Opcode::CallReg;
}

} // namespace

void
CfgWellFormedPass::run(const AnalysisInput &input,
                       DiagnosticEngine &out) const
{
    if (input.program == nullptr) {
        return;
    }
    const guest::GuestProgram &program = *input.program;
    ProgramIndex index(program);

    if (program.entry() == 0) {
        out.report(Severity::Warning, "cfg-no-entry", "program",
                   "program entry point is unset");
    } else if (index.blockAt(program.entry()) == nullptr) {
        out.report(Severity::Error, "cfg-entry-unmapped", "program",
                   format("entry {} is not a block start",
                          hexAddr(program.entry())));
    }

    // Cross-module extent overlap.
    std::vector<const guest::GuestModule *> modules;
    for (const auto &module : program.modules()) {
        modules.push_back(module.get());
    }
    std::sort(modules.begin(), modules.end(),
              [](const guest::GuestModule *a,
                 const guest::GuestModule *b) {
                  return a->baseAddr() < b->baseAddr();
              });
    for (std::size_t i = 0; i + 1 < modules.size(); ++i) {
        if (modules[i]->blockCount() == 0 ||
            modules[i + 1]->blockCount() == 0) {
            continue;
        }
        if (modules[i]->endAddr() > modules[i + 1]->baseAddr()) {
            out.report(Severity::Error, "cfg-module-overlap",
                       format("module {}", modules[i]->name()),
                       format("extent [{}, {}) overlaps module {}",
                              hexAddr(modules[i]->baseAddr()),
                              hexAddr(modules[i]->endAddr()),
                              modules[i + 1]->name()));
        }
    }

    for (const auto &module : program.modules()) {
        if (module->blockCount() == 0) {
            out.report(Severity::Warning, "cfg-empty-module",
                       format("module {}", module->name()),
                       "module contains no basic blocks");
            continue;
        }
        for (const auto &[addr, block] : module->blocks()) {
            std::string where = blockLocation(*module, block);
            if (block.empty()) {
                out.report(Severity::Error, "cfg-block-empty", where,
                           "block has no instructions");
                continue;
            }
            if (!block.isTerminated()) {
                out.report(Severity::Error, "cfg-block-unterminated",
                           where,
                           "block does not end in control flow");
                continue;
            }
            const isa::Instruction &term = block.terminator();
            if (hasDirectTarget(term.opcode) &&
                index.blockAt(term.target) == nullptr) {
                out.report(Severity::Error, "cfg-dangling-target",
                           where,
                           format("{} target {} is not a block start",
                                  isa::opcodeName(term.opcode),
                                  hexAddr(term.target)));
            }
            if (hasFallThrough(term.opcode) &&
                index.blockAt(block.fallThroughAddr()) == nullptr) {
                out.report(Severity::Error, "cfg-fallthrough-invalid",
                           where,
                           format("fall-through {} is not a block "
                                  "start",
                                  hexAddr(block.fallThroughAddr())));
            }
        }
    }
}

void
CfgReachabilityPass::run(const AnalysisInput &input,
                         DiagnosticEngine &out) const
{
    if (input.program == nullptr) {
        return;
    }
    const guest::GuestProgram &program = *input.program;
    ProgramIndex index(program);
    if (index.blockCount() == 0) {
        return;
    }

    // Roots: the program entry plus every address-taken block — a
    // block whose start address appears as an immediate (the static
    // approximation of indirect-transfer targets).
    std::deque<isa::GuestAddr> frontier;
    std::unordered_set<isa::GuestAddr> reached;
    auto enqueue = [&](isa::GuestAddr addr) {
        if (index.blockAt(addr) != nullptr &&
            reached.insert(addr).second) {
            frontier.push_back(addr);
        }
    };
    enqueue(program.entry());
    index.forEach([&](isa::GuestAddr, const guest::GuestModule &,
                      const isa::BasicBlock &block) {
        for (const isa::Instruction &inst : block.instructions()) {
            if ((inst.opcode == isa::Opcode::MovImm ||
                 inst.opcode == isa::Opcode::AddImm) &&
                inst.imm > 0) {
                enqueue(static_cast<isa::GuestAddr>(inst.imm));
            }
        }
    });

    while (!frontier.empty()) {
        isa::GuestAddr addr = frontier.front();
        frontier.pop_front();
        const isa::BasicBlock *block = index.blockAt(addr);
        if (block == nullptr || !block->isTerminated()) {
            continue;
        }
        const isa::Instruction &term = block->terminator();
        if (hasDirectTarget(term.opcode)) {
            enqueue(term.target);
        }
        if (hasFallThrough(term.opcode)) {
            enqueue(block->fallThroughAddr());
        }
    }

    // Report whole modules first, then stray blocks elsewhere.
    const guest::GuestModule *entryModule =
        index.moduleAt(program.entry());
    for (const auto &module : program.modules()) {
        if (module->blockCount() == 0) {
            continue;
        }
        bool any_reached = false;
        for (const auto &[addr, block] : module->blocks()) {
            if (reached.count(addr) != 0) {
                any_reached = true;
                break;
            }
        }
        if (!any_reached && module.get() != entryModule) {
            out.report(Severity::Warning, "cfg-orphan-module",
                       format("module {}", module->name()),
                       "no block of this module is reachable from "
                       "the program entry");
            continue;
        }
        for (const auto &[addr, block] : module->blocks()) {
            if (reached.count(addr) == 0) {
                out.report(Severity::Warning, "cfg-unreachable",
                           blockLocation(*module, block),
                           "block is unreachable from the program "
                           "entry");
            }
        }
    }
}

void
checkProgram(const guest::GuestProgram &program, DiagnosticEngine &out)
{
    AnalysisInput input;
    input.program = &program;
    CfgWellFormedPass wellformed;
    out.setCurrentPass(wellformed.name());
    wellformed.run(input, out);
    CfgReachabilityPass reachability;
    out.setCurrentPass(reachability.name());
    reachability.run(input, out);
}

} // namespace gencache::analysis
