#include "analysis/superblock_passes.h"

#include <unordered_set>

#include "analysis/program_index.h"
#include "runtime/linker.h"
#include "runtime/runtime.h"
#include "support/format.h"

namespace gencache::analysis {
namespace {

std::string
traceLocation(const runtime::Trace &trace)
{
    return format("trace {} entry {}", trace.id, hexAddr(trace.entry));
}

/** True when block @p a's terminator can transfer directly to
 *  @p next — the condition for a valid interior trace edge. */
bool
validInteriorEdge(const isa::Instruction &term, isa::GuestAddr fall,
                  isa::GuestAddr next)
{
    switch (term.opcode) {
      case isa::Opcode::Jump:
      case isa::Opcode::Call:
        return next == term.target;
      case isa::Opcode::BranchNz:
      case isa::Opcode::BranchZ:
        return next == term.target || next == fall;
      default:
        return false;
    }
}

void
checkTraceAgainst(const runtime::Trace &trace, const ProgramIndex &index,
                  const runtime::TraceLinker *linker,
                  DiagnosticEngine &out)
{
    std::string where = traceLocation(trace);

    if (trace.blockAddrs.empty()) {
        out.report(Severity::Error, "sb-empty", where,
                   "trace has no blocks");
        return;
    }
    if (trace.sizeBytes == 0) {
        out.report(Severity::Error, "sb-zero-size", where,
                   "trace occupies zero cache bytes");
    }
    if (trace.blockAddrs.size() > runtime::kMaxTraceBlocks) {
        out.report(Severity::Error, "sb-broken-path", where,
                   format("path has {} blocks, above the {}-block cap",
                          trace.blockAddrs.size(),
                          runtime::kMaxTraceBlocks));
    }
    if (trace.blockAddrs.front() != trace.entry) {
        out.report(Severity::Error, "sb-broken-path", where,
                   format("path starts at {}, not at the trace entry",
                          hexAddr(trace.blockAddrs.front())));
    }

    // Single entry: a repeated block address means the recorded path
    // re-enters the trace body, i.e. a second entry point.
    std::unordered_set<isa::GuestAddr> seen;
    for (isa::GuestAddr addr : trace.blockAddrs) {
        if (!seen.insert(addr).second) {
            out.report(Severity::Error, "sb-multi-entry", where,
                       format("block {} appears more than once on the "
                              "path",
                              hexAddr(addr)));
        }
    }

    // Path connectivity and module containment.
    for (std::size_t i = 0; i < trace.blockAddrs.size(); ++i) {
        isa::GuestAddr addr = trace.blockAddrs[i];
        const isa::BasicBlock *block = index.blockAt(addr);
        if (block == nullptr) {
            out.report(Severity::Error, "sb-broken-path", where,
                       format("path block {} is not a block of the "
                              "program",
                              hexAddr(addr)));
            continue;
        }
        const guest::GuestModule *module = index.moduleAt(addr);
        if (module != nullptr && module->id() != trace.module) {
            out.report(Severity::Error, "sb-module-mismatch", where,
                       format("path block {} belongs to module {}, "
                              "trace claims module {}",
                              hexAddr(addr), module->id(),
                              trace.module));
        }
        if (i + 1 == trace.blockAddrs.size()) {
            break; // the last block may end any way it likes
        }
        if (!block->isTerminated()) {
            out.report(Severity::Error, "sb-broken-path", where,
                       format("interior block {} is unterminated",
                              hexAddr(addr)));
            continue;
        }
        const isa::Instruction &term = block->terminator();
        if (isa::isIndirect(term.opcode)) {
            out.report(Severity::Error, "sb-broken-path", where,
                       format("interior block {} ends in an indirect "
                              "transfer ({})",
                              hexAddr(addr),
                              isa::opcodeName(term.opcode)));
            continue;
        }
        isa::GuestAddr next = trace.blockAddrs[i + 1];
        if (!validInteriorEdge(term, block->fallThroughAddr(), next)) {
            out.report(Severity::Error, "sb-broken-path", where,
                       format("block {} ({}) cannot transfer to next "
                              "path block {}",
                              hexAddr(addr),
                              isa::opcodeName(term.opcode),
                              hexAddr(next)));
        }
    }

    // Side exits must land somewhere real: a block start of the guest
    // program (its module may be currently unmapped — exits survive a
    // DLL unload until the trace itself is invalidated) or the entry
    // of a live trace.
    for (isa::GuestAddr target : trace.exitTargets) {
        bool known_block = index.blockAt(target) != nullptr;
        bool live_trace =
            linker != nullptr &&
            linker->traceAt(target) != cache::kInvalidTrace;
        if (!known_block && !live_trace) {
            out.report(Severity::Error, "sb-exit-invalid", where,
                       format("exit target {} is neither a program "
                              "block nor a live trace entry",
                              hexAddr(target)));
        }
    }
}

} // namespace

void
SuperblockPass::run(const AnalysisInput &input,
                    DiagnosticEngine &out) const
{
    if (input.runtime == nullptr || input.program == nullptr) {
        return;
    }
    ProgramIndex index(*input.program);
    const runtime::TraceLinker *linker =
        input.linker != nullptr ? input.linker
                                : &input.runtime->linker();
    for (const auto &[id, trace] : input.runtime->traces()) {
        checkTraceAgainst(trace, index, linker, out);
    }
}

void
checkTrace(const runtime::Trace &trace,
           const guest::GuestProgram &program,
           const runtime::TraceLinker *linker, DiagnosticEngine &out)
{
    ProgramIndex index(program);
    SuperblockPass pass;
    out.setCurrentPass(pass.name());
    checkTraceAgainst(trace, index, linker, out);
}

} // namespace gencache::analysis
