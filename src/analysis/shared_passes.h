/**
 * @file
 * Shared-store pass family: invariants of the cross-process tier.
 *
 * The SharedCodeStore (codecache/shared_store.h) is the one piece of
 * cache state that several processes mutate at once, so its end state
 * is re-derived here from first principles rather than trusted:
 *
 *  - shard ownership is a pure function of the canonical key
 *    (SharedCodeStore::shardOf), so every resident entry must sit in
 *    exactly the shard that function names;
 *  - the store's byte accounting — both the single-copy resident
 *    bytes and the per-attachment claimed bytes behind the dedup
 *    metric — must equal the sums over the entries actually present,
 *    and no shard may exceed its budget slice;
 *  - every entry must be attached by at least one fleet process, and
 *    its attach mask must stay inside the fleet (popcount matching
 *    the cached attach count);
 *  - cross-process invalidation must be complete: after
 *    invalidateModule(uid), any surviving entry of that module must
 *    have been inserted *after* the invalidation's store tick — an
 *    older survivor means some shard missed the sweep.
 *
 * Check IDs: shr-shard-owner, shr-bytes, shr-over-budget, shr-orphan,
 * shr-attach-bounds, shr-unmap-stale.
 */

#ifndef GENCACHE_ANALYSIS_SHARED_PASSES_H
#define GENCACHE_ANALYSIS_SHARED_PASSES_H

#include "analysis/pass.h"

namespace gencache::cache {
class SharedCodeStore;
} // namespace gencache::cache

namespace gencache::analysis {

/** Validates a quiescent SharedCodeStore. Cheap: linear in resident
 *  entries. Runs only when AnalysisInput.sharedStore is set. */
class SharedStorePass : public Pass
{
  public:
    const char *name() const override { return "shared-store"; }
    void run(const AnalysisInput &input,
             DiagnosticEngine &out) const override;
};

/** Run the shared-store pass over @p store alone (test support).
 *  @p fleet_processes bounds the attach masks; 0 falls back to the
 *  store's own process limit. */
void checkSharedStore(const cache::SharedCodeStore &store,
                      unsigned fleet_processes, DiagnosticEngine &out);

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_SHARED_PASSES_H
