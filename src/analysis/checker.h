/**
 * @file
 * Front door of the gencheck static analyzer.
 *
 * Two ways in:
 *
 *  - Whole-workload checks: checkRuntime / checkManager run the full
 *    pass pipeline over a finished run and return the diagnostics
 *    (what the gencheck CLI prints and tests golden-match).
 *  - Phase-boundary checks: attachPhaseChecks installs a checkpoint
 *    hook on a Runtime or CacheSimulator that runs the *cheap* passes
 *    (link graph + cache state) after every module load/unload and at
 *    the end of each run, panicking on the first error. The hook is
 *    only installed when the GENCACHE_CHECK environment variable is
 *    truthy, so instrumented tests cost nothing by default.
 */

#ifndef GENCACHE_ANALYSIS_CHECKER_H
#define GENCACHE_ANALYSIS_CHECKER_H

#include "analysis/pass.h"

namespace gencache::sim {
class CacheSimulator;
} // namespace gencache::sim

namespace gencache::analysis {

/** @return true when GENCACHE_CHECK is set to a truthy value (not
 *  empty, "0", "false", or "off"). */
bool checkingEnabled();

/** Run every pass over a finished runtime and its program. */
DiagnosticEngine checkRuntime(const guest::GuestProgram &program,
                              const runtime::Runtime &runtime);

/** Run every applicable pass over a cache manager alone. */
DiagnosticEngine checkManager(const cache::CacheManager &manager);

/**
 * Install the GENCACHE_CHECK phase-boundary hook on @p runtime. Cheap
 * passes run at every checkpoint; any error-severity finding panics
 * with the full text report.
 * @return true when the hook was installed (checking is enabled).
 */
bool attachPhaseChecks(runtime::Runtime &runtime);

/** Same, for a trace-driven simulation. */
bool attachPhaseChecks(sim::CacheSimulator &simulator);

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_CHECKER_H
