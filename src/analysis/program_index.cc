#include "analysis/program_index.h"

namespace gencache::analysis {

ProgramIndex::ProgramIndex(const guest::GuestProgram &program)
{
    for (const auto &module : program.modules()) {
        for (const auto &[addr, block] : module->blocks()) {
            byStart_.emplace(addr, Entry{module.get(), &block});
        }
    }
}

const isa::BasicBlock *
ProgramIndex::blockAt(isa::GuestAddr addr) const
{
    auto it = byStart_.find(addr);
    return it == byStart_.end() ? nullptr : it->second.block;
}

const guest::GuestModule *
ProgramIndex::moduleAt(isa::GuestAddr addr) const
{
    auto it = byStart_.find(addr);
    return it == byStart_.end() ? nullptr : it->second.module;
}

} // namespace gencache::analysis
