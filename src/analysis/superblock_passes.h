/**
 * @file
 * Superblock pass family: structural checks over built traces.
 *
 * A trace is a single-entry multiple-exit superblock selected by NET
 * (paper §4.1). This pass re-validates every live trace of a runtime
 * against the guest program it was selected from:
 *
 *  - the recorded path is connected (each block's terminator can
 *    actually transfer to the next block on the path) and contains no
 *    interior indirect transfer;
 *  - single entry: no block address repeats along the path (a repeat
 *    means the path re-enters the trace body — a second entry);
 *  - every side-exit target is either a block start of the program
 *    (mapped or unmapped module) or the entry of a live trace;
 *  - all blocks belong to the trace's module (traces stop at module
 *    boundaries) and the trace has a non-zero footprint.
 *
 * Check IDs: sb-empty, sb-zero-size, sb-multi-entry, sb-broken-path,
 * sb-module-mismatch, sb-exit-invalid.
 */

#ifndef GENCACHE_ANALYSIS_SUPERBLOCK_PASSES_H
#define GENCACHE_ANALYSIS_SUPERBLOCK_PASSES_H

#include "analysis/pass.h"
#include "guest/program.h"
#include "runtime/trace.h"

namespace gencache::runtime {
class TraceLinker;
} // namespace gencache::runtime

namespace gencache::analysis {

/** Validates every live trace of the input runtime. */
class SuperblockPass : public Pass
{
  public:
    const char *name() const override { return "superblock"; }
    bool cheap() const override { return false; }
    void run(const AnalysisInput &input,
             DiagnosticEngine &out) const override;
};

/**
 * Check one trace directly (test support). @p linker may be null; when
 * present, side exits may also resolve to live trace entries.
 */
void checkTrace(const runtime::Trace &trace,
                const guest::GuestProgram &program,
                const runtime::TraceLinker *linker,
                DiagnosticEngine &out);

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_SUPERBLOCK_PASSES_H
