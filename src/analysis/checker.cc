#include "analysis/checker.h"

#include <cstdlib>
#include <memory>
#include <string_view>

#include "analysis/temporal_passes.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "support/logging.h"

namespace gencache::analysis {
namespace {

void
enforce(const DiagnosticEngine &engine, const char *context)
{
    if (engine.errorCount() > 0) {
        GENCACHE_PANIC("GENCACHE_CHECK: invariant violation at {}\n{}",
                       context, engine.textReport());
    }
}

} // namespace

bool
checkingEnabled()
{
    const char *value = std::getenv("GENCACHE_CHECK");
    if (value == nullptr) {
        return false;
    }
    std::string_view v(value);
    return !v.empty() && v != "0" && v != "false" && v != "off";
}

DiagnosticEngine
checkRuntime(const guest::GuestProgram &program,
             const runtime::Runtime &runtime)
{
    DiagnosticEngine engine;
    runPasses(AnalysisInput::forRuntime(program, runtime), engine);
    return engine;
}

DiagnosticEngine
checkManager(const cache::CacheManager &manager)
{
    DiagnosticEngine engine;
    runPasses(AnalysisInput::forManager(manager), engine);
    return engine;
}

bool
attachPhaseChecks(runtime::Runtime &runtime)
{
    if (!checkingEnabled()) {
        return false;
    }
    runtime.setCheckpointHook([](const runtime::Runtime &rt) {
        DiagnosticEngine engine;
        AnalysisInput input;
        input.runtime = &rt;
        input.manager = &rt.manager();
        input.linker = &rt.linker();
        runPasses(input, engine, /*cheap_only=*/true);
        enforce(engine, "runtime phase boundary");
    });
    return true;
}

bool
attachPhaseChecks(sim::CacheSimulator &simulator)
{
    if (!checkingEnabled()) {
        return false;
    }
    // Beyond the snapshot passes, GENCACHE_CHECK runs the temporal
    // invariant engine online: a TemporalChecker is teed beside the
    // simulator's cost accountant and panics on the first violation
    // (enforce mode). The checkpoint-hook closure owns it, so it
    // lives exactly as long as the hook; the manager must still be
    // empty here (the checker needs the whole event stream).
    TemporalOptions options;
    options.enforce = true;
    auto engine = std::make_shared<DiagnosticEngine>();
    auto temporal =
        std::make_shared<TemporalChecker>(*engine, options);
    temporal->bindSubject(dynamic_cast<const cache::TierPipeline *>(
        &simulator.manager()));
    simulator.setProbeListener(temporal.get());
    simulator.setCheckpointHook(
        [engine, temporal](const cache::CacheManager &manager,
                           TimeUs) {
            DiagnosticEngine snapshot;
            runPasses(AnalysisInput::forManager(manager), snapshot,
                      /*cheap_only=*/true);
            enforce(snapshot, "simulator phase boundary");
            temporal->checkpoint(); // panics itself in enforce mode
        });
    return true;
}

} // namespace gencache::analysis
