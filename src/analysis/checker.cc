#include "analysis/checker.h"

#include <cstdlib>
#include <string_view>

#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "support/logging.h"

namespace gencache::analysis {
namespace {

void
enforce(const DiagnosticEngine &engine, const char *context)
{
    if (engine.errorCount() > 0) {
        GENCACHE_PANIC("GENCACHE_CHECK: invariant violation at {}\n{}",
                       context, engine.textReport());
    }
}

} // namespace

bool
checkingEnabled()
{
    const char *value = std::getenv("GENCACHE_CHECK");
    if (value == nullptr) {
        return false;
    }
    std::string_view v(value);
    return !v.empty() && v != "0" && v != "false" && v != "off";
}

DiagnosticEngine
checkRuntime(const guest::GuestProgram &program,
             const runtime::Runtime &runtime)
{
    DiagnosticEngine engine;
    runPasses(AnalysisInput::forRuntime(program, runtime), engine);
    return engine;
}

DiagnosticEngine
checkManager(const cache::CacheManager &manager)
{
    DiagnosticEngine engine;
    runPasses(AnalysisInput::forManager(manager), engine);
    return engine;
}

bool
attachPhaseChecks(runtime::Runtime &runtime)
{
    if (!checkingEnabled()) {
        return false;
    }
    runtime.setCheckpointHook([](const runtime::Runtime &rt) {
        DiagnosticEngine engine;
        AnalysisInput input;
        input.runtime = &rt;
        input.manager = &rt.manager();
        input.linker = &rt.linker();
        runPasses(input, engine, /*cheap_only=*/true);
        enforce(engine, "runtime phase boundary");
    });
    return true;
}

bool
attachPhaseChecks(sim::CacheSimulator &simulator)
{
    if (!checkingEnabled()) {
        return false;
    }
    simulator.setCheckpointHook(
        [](const cache::CacheManager &manager, TimeUs) {
            DiagnosticEngine engine;
            runPasses(AnalysisInput::forManager(manager), engine,
                      /*cheap_only=*/true);
            enforce(engine, "simulator phase boundary");
        });
    return true;
}

} // namespace gencache::analysis
