#include "analysis/cache_passes.h"

#include <unordered_map>
#include <unordered_set>

#include "codecache/cache_manager.h"
#include "codecache/list_cache.h"
#include "codecache/pseudo_circular_cache.h"
#include "codecache/tier_pipeline.h"
#include "runtime/runtime.h"
#include "support/format.h"

namespace gencache::analysis {
namespace {

/** Pseudo-circular region invariants (§4.3). */
void
checkRegion(const cache::CacheRegion &region, const std::string &where,
            DiagnosticEngine &out)
{
    const auto &below = region.belowHalf();
    const auto &above = region.aboveHalf();
    std::uint64_t pointer = region.pointer();

    if (region.capacity() > 0 && pointer >= region.capacity()) {
        out.report(Severity::Error, "region-pointer-oob", where,
                   format("allocation pointer {} is at/past the "
                          "region capacity {}",
                          pointer, region.capacity()));
    }

    // Half membership and per-half ordering.
    for (std::size_t i = 0; i < below.size(); ++i) {
        if (below[i].addr >= pointer) {
            out.report(Severity::Error, "region-split", where,
                       format("fragment {} at offset {} sits in the "
                              "below-pointer half but is not below "
                              "the pointer ({})",
                              below[i].id, below[i].addr, pointer));
        }
        if (i > 0 && below[i - 1].addr >= below[i].addr) {
            out.report(Severity::Error, "region-unsorted", where,
                       format("below-pointer half not strictly "
                              "ascending at fragment {}",
                              below[i].id));
        }
    }
    for (std::size_t i = 0; i < above.size(); ++i) {
        if (above[i].addr < pointer) {
            out.report(Severity::Error, "region-split", where,
                       format("fragment {} at offset {} sits in the "
                              "above-pointer half but is below the "
                              "pointer ({})",
                              above[i].id, above[i].addr, pointer));
        }
        if (i > 0 && above[i - 1].addr <= above[i].addr) {
            out.report(Severity::Error, "region-unsorted", where,
                       format("above-pointer half not strictly "
                              "descending at fragment {}",
                              above[i].id));
        }
    }

    // Merge into address order (below ascending, then above reversed)
    // for extent and overlap checks, accumulating the accounting.
    std::vector<const cache::Fragment *> ordered;
    ordered.reserve(below.size() + above.size());
    for (const cache::Fragment &frag : below) {
        ordered.push_back(&frag);
    }
    for (auto it = above.rbegin(); it != above.rend(); ++it) {
        ordered.push_back(&*it);
    }
    std::uint64_t sum_bytes = 0;
    std::size_t pinned = 0;
    const cache::Fragment *prev = nullptr;
    for (const cache::Fragment *frag : ordered) {
        sum_bytes += frag->sizeBytes;
        pinned += frag->pinned ? 1 : 0;
        if (frag->addr + frag->sizeBytes > region.capacity()) {
            out.report(Severity::Error, "region-oob", where,
                       format("fragment {} extends to offset {} past "
                              "the region capacity {}",
                              frag->id, frag->addr + frag->sizeBytes,
                              region.capacity()));
        }
        if (prev != nullptr &&
            prev->addr + prev->sizeBytes > frag->addr) {
            out.report(Severity::Error, "region-overlap", where,
                       format("fragments {} and {} overlap at offset "
                              "{}",
                              prev->id, frag->id, frag->addr));
        }
        const cache::CacheRegion::AddrEntry *indexed =
            region.addrIndex().find(frag->id);
        if (indexed == nullptr) {
            out.report(Severity::Error, "region-index", where,
                       format("fragment {} is resident but missing "
                              "from the address index",
                              frag->id));
        } else if (indexed->addr != frag->addr) {
            out.report(Severity::Error, "region-index", where,
                       format("fragment {} placed at offset {} but "
                              "indexed at {}",
                              frag->id, frag->addr, indexed->addr));
        }
        prev = frag;
    }
    if (region.addrIndex().size() != ordered.size()) {
        out.report(Severity::Error, "region-index", where,
                   format("address index holds {} entries but {} "
                          "fragments are resident",
                          region.addrIndex().size(), ordered.size()));
    }
    if (sum_bytes != region.usedBytes()) {
        out.report(Severity::Error, "region-bytes", where,
                   format("resident fragments sum to {} bytes but "
                          "usedBytes reports {}",
                          sum_bytes, region.usedBytes()));
    }
    if (pinned != region.pinnedResidentCount()) {
        out.report(Severity::Error, "region-pinned-count", where,
                   format("{} pinned fragments resident but the "
                          "pinned count says {}",
                          pinned, region.pinnedResidentCount()));
    }
}

/** Slab ring + free list invariants of the list caches. */
void
checkListCache(const cache::ListCache &cache, const std::string &where,
               DiagnosticEngine &out)
{
    std::size_t slab = cache.slabSize();
    auto valid_slot = [slab](std::uint32_t n) {
        return n == cache::ListCache::kNil ||
               static_cast<std::size_t>(n) < slab;
    };

    // Walk the victim ring head -> tail, bounding the walk by the slab
    // size so a cycle is diagnosed instead of looped on.
    std::unordered_set<std::uint32_t> live;
    std::uint64_t sum_bytes = 0;
    bool ring_ok = true;
    std::uint32_t n = cache.headSlot();
    std::uint32_t prev = cache::ListCache::kNil;
    while (n != cache::ListCache::kNil) {
        if (!valid_slot(n)) {
            out.report(Severity::Error, "list-ring-broken", where,
                       format("victim list reaches slot {} outside "
                              "the {}-slot slab",
                              n, slab));
            ring_ok = false;
            break;
        }
        if (!live.insert(n).second) {
            out.report(Severity::Error, "list-ring-broken", where,
                       format("victim list cycles back to slot {}",
                              n));
            ring_ok = false;
            break;
        }
        const cache::ListCache::Node &node = cache.slot(n);
        if (node.prev != prev) {
            out.report(Severity::Error, "list-ring-broken", where,
                       format("slot {} back-link is {} but should be "
                              "{}",
                              n, node.prev, prev));
            ring_ok = false;
        }
        sum_bytes += node.frag.sizeBytes;
        prev = n;
        n = node.next;
    }
    if (ring_ok && prev != cache.tailSlot()) {
        out.report(Severity::Error, "list-ring-broken", where,
                   format("victim list ends at slot {} but the tail "
                          "pointer says {}",
                          prev, cache.tailSlot()));
        ring_ok = false;
    }
    if (ring_ok && live.size() != cache.fragmentCount()) {
        out.report(Severity::Error, "list-ring-broken", where,
                   format("victim list holds {} slots but the cache "
                          "counts {} fragments",
                          live.size(), cache.fragmentCount()));
    }

    // Free-list walk: bounded, disjoint from the ring, and together
    // with it covering the slab.
    std::size_t free_count = 0;
    n = cache.freeHeadSlot();
    std::unordered_set<std::uint32_t> free_seen;
    while (n != cache::ListCache::kNil) {
        if (!valid_slot(n)) {
            out.report(Severity::Error, "list-free-broken", where,
                       format("free list reaches slot {} outside the "
                              "{}-slot slab",
                              n, slab));
            break;
        }
        if (!free_seen.insert(n).second) {
            out.report(Severity::Error, "list-free-broken", where,
                       format("free list cycles back to slot {}", n));
            break;
        }
        if (live.count(n) != 0) {
            out.report(Severity::Error, "list-free-broken", where,
                       format("slot {} is on both the victim list and "
                              "the free list",
                              n));
        }
        ++free_count;
        n = cache.slot(n).next;
    }
    if (ring_ok && free_seen.size() == free_count &&
        live.size() + free_count != slab) {
        out.report(Severity::Error, "list-free-broken", where,
                   format("{} live + {} free slots do not cover the "
                          "{}-slot slab",
                          live.size(), free_count, slab));
    }

    // Id index vs. ring membership.
    cache.slotIndex().forEach([&](cache::TraceId id,
                                  std::uint32_t slot) {
        if (!valid_slot(slot) || slot == cache::ListCache::kNil) {
            out.report(Severity::Error, "list-index", where,
                       format("trace {} indexed at invalid slot {}",
                              id, slot));
            return;
        }
        if (cache.slot(slot).frag.id != id) {
            out.report(Severity::Error, "list-index", where,
                       format("trace {} indexed at slot {} which "
                              "holds trace {}",
                              id, slot, cache.slot(slot).frag.id));
        }
        if (ring_ok && live.count(slot) == 0) {
            out.report(Severity::Error, "list-index", where,
                       format("trace {} indexed at slot {} which is "
                              "not on the victim list",
                              id, slot));
        }
    });
    if (cache.slotIndex().size() != cache.fragmentCount()) {
        out.report(Severity::Error, "list-index", where,
                   format("index holds {} entries but the cache "
                          "counts {} fragments",
                          cache.slotIndex().size(),
                          cache.fragmentCount()));
    }

    if (ring_ok && sum_bytes != cache.usedBytes()) {
        out.report(Severity::Error, "list-bytes", where,
                   format("resident fragments sum to {} bytes but "
                          "usedBytes reports {}",
                          sum_bytes, cache.usedBytes()));
    }
    if (cache.capacity() > 0 && cache.usedBytes() > cache.capacity()) {
        out.report(Severity::Error, "list-over-capacity", where,
                   format("usedBytes {} exceeds capacity {}",
                          cache.usedBytes(), cache.capacity()));
    }
}

/** Fallback for unknown LocalCache implementations. */
void
checkGenericCache(const cache::LocalCache &cache,
                  const std::string &where, DiagnosticEngine &out)
{
    std::uint64_t sum_bytes = 0;
    cache.forEach([&](const cache::Fragment &frag) {
        sum_bytes += frag.sizeBytes;
    });
    if (sum_bytes != cache.usedBytes()) {
        out.report(Severity::Error, "cache-bytes", where,
                   format("resident fragments sum to {} bytes but "
                          "usedBytes reports {}",
                          sum_bytes, cache.usedBytes()));
    }
    if (cache.capacity() > 0 && cache.usedBytes() > cache.capacity()) {
        out.report(Severity::Error, "cache-over-capacity", where,
                   format("usedBytes {} exceeds capacity {}",
                          cache.usedBytes(), cache.capacity()));
    }
}

/** Promotion-flow conservation across the cascade: nothing flows
 *  into the first tier or out of the last, every edge conserves, and
 *  the manager total is the sum of tier admissions. */
void
checkTierFlow(const cache::TierPipeline &pipeline,
              DiagnosticEngine &out)
{
    std::size_t tiers = pipeline.tierCount();
    auto tier_name = [&](std::size_t tier) {
        return cache::generationName(pipeline.tierLabel(tier));
    };
    auto flow = [&](bool ok, std::string message) {
        if (!ok) {
            out.report(Severity::Error, "tier-flow", pipeline.name(),
                       std::move(message));
        }
    };
    std::uint64_t admitted = 0;
    for (std::size_t tier = 1; tier < tiers; ++tier) {
        admitted += pipeline.tierStats(tier).promotionsIn;
    }
    flow(pipeline.tierStats(0).promotionsIn == 0,
         format("{} reports {} inbound promotions; nothing promotes "
                "into the first tier",
                tier_name(0), pipeline.tierStats(0).promotionsIn));
    flow(pipeline.tierStats(tiers - 1).promotionsOut == 0,
         format("{} reports {} outbound promotions; nothing promotes "
                "out of the last tier",
                tier_name(tiers - 1),
                pipeline.tierStats(tiers - 1).promotionsOut));
    for (std::size_t tier = 0; tier + 1 < tiers; ++tier) {
        flow(pipeline.tierStats(tier + 1).promotionsIn ==
                 pipeline.tierStats(tier).promotionsOut,
             format("{} promoted {} out but {} admitted {}",
                    tier_name(tier),
                    pipeline.tierStats(tier).promotionsOut,
                    tier_name(tier + 1),
                    pipeline.tierStats(tier + 1).promotionsIn));
    }
    flow(pipeline.stats().promotions == admitted,
         format("manager counts {} promotions but the tiers admitted "
                "{}",
                pipeline.stats().promotions, admitted));
}

/** Tier-pipeline invariants, generalizing the Figure 8 hierarchy
 *  checks to any tier count (a 3-tier pipeline is the paper's
 *  generational trio, a single tier the unified baseline). */
void
checkTierPipeline(const cache::TierPipeline &pipeline,
                  DiagnosticEngine &out)
{
    std::size_t tiers = pipeline.tierCount();
    auto tier_name = [&](std::size_t tier) {
        return cache::generationName(pipeline.tierLabel(tier));
    };

    // Per-tier storage + exactly-one-residency across the pipeline.
    std::unordered_map<cache::TraceId, std::size_t> resident;
    for (std::size_t tier = 0; tier < tiers; ++tier) {
        const cache::LocalCache &local = pipeline.tierCache(tier);
        checkLocalCache(local, tier_name(tier), out);
        local.forEach([&](const cache::Fragment &frag) {
            auto [it, fresh] = resident.emplace(frag.id, tier);
            if (!fresh) {
                out.report(Severity::Error, "tier-dup-residency",
                           format("trace {}", frag.id),
                           format("resident in both {} and {}",
                                  tier_name(it->second),
                                  tier_name(tier)));
            }
        });
    }

    // Residency index vs. actual cache contents. Single-tier
    // pipelines keep no index (the tier is always 0); theirs must
    // stay empty.
    const auto &where = pipeline.residencyIndex();
    if (tiers == 1) {
        if (where.size() != 0) {
            out.report(Severity::Error, "tier-index-mismatch",
                       pipeline.name(),
                       format("single-tier pipeline carries {} "
                              "residency index entries",
                              where.size()));
        }
        checkTierFlow(pipeline, out);
        return;
    }
    for (const auto &[id, tier] : resident) {
        const cache::TierId *indexed = where.find(id);
        if (indexed == nullptr) {
            out.report(Severity::Error, "tier-index-mismatch",
                       format("trace {}", id),
                       format("resident in {} but absent from the "
                              "residency index",
                              tier_name(tier)));
        } else if (*indexed != tier) {
            out.report(Severity::Error, "tier-index-mismatch",
                       format("trace {}", id),
                       format("resident in {} but indexed in {}",
                              tier_name(tier),
                              tier_name(*indexed)));
        }
    }
    where.forEach([&](cache::TraceId id, const cache::TierId &tier) {
        if (resident.find(id) == resident.end()) {
            out.report(Severity::Error, "tier-index-mismatch",
                       format("trace {}", id),
                       format("indexed in {} but resident nowhere",
                              tier_name(tier)));
        }
    });

    checkTierFlow(pipeline, out);
}

} // namespace

void
checkLocalCache(const cache::LocalCache &cache,
                const std::string &where, DiagnosticEngine &out)
{
    if (const auto *pseudo =
            dynamic_cast<const cache::PseudoCircularCache *>(&cache)) {
        checkRegion(pseudo->region(), where, out);
        return;
    }
    if (const auto *list =
            dynamic_cast<const cache::ListCache *>(&cache)) {
        checkListCache(*list, where, out);
        return;
    }
    checkGenericCache(cache, where, out);
}

void
CacheStatePass::run(const AnalysisInput &input,
                    DiagnosticEngine &out) const
{
    const cache::CacheManager *manager = input.manager;
    if (manager == nullptr && input.runtime != nullptr) {
        manager = &input.runtime->manager();
    }
    if (manager == nullptr) {
        return;
    }
    if (const auto *pipeline =
            dynamic_cast<const cache::TierPipeline *>(manager)) {
        checkTierPipeline(*pipeline, out);
    }
}

void
checkCacheState(const cache::CacheManager &manager,
                DiagnosticEngine &out)
{
    AnalysisInput input;
    input.manager = &manager;
    CacheStatePass pass;
    out.setCurrentPass(pass.name());
    pass.run(input, out);
}

} // namespace gencache::analysis
