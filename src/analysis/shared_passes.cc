#include "analysis/shared_passes.h"

#include <bit>
#include <utility>
#include <vector>

#include "codecache/shared_store.h"
#include "support/format.h"

namespace gencache::analysis {
namespace {

using cache::SharedCodeStore;

std::string
entryLocation(unsigned shard, cache::TraceId key)
{
    return format("shard{}:{}", shard,
                  hexAddr(static_cast<std::uint64_t>(key)));
}

} // namespace

void
checkSharedStore(const SharedCodeStore &store, unsigned fleet_processes,
                 DiagnosticEngine &out)
{
    const unsigned shard_count = store.shardCount();
    const unsigned process_bound =
        fleet_processes > 0 ? fleet_processes : store.processLimit();

    // Snapshot first: forEachEntry holds a shard lock during the
    // callback and the store must not be reentered from it.
    std::vector<std::pair<unsigned, SharedCodeStore::Entry>> entries;
    store.forEachEntry(
        [&entries](unsigned shard, const SharedCodeStore::Entry &entry) {
            entries.emplace_back(shard, entry);
        });

    std::vector<std::uint64_t> shard_bytes(shard_count, 0);
    std::uint64_t sum_bytes = 0;
    std::uint64_t sum_claimed = 0;
    for (const auto &[shard, entry] : entries) {
        const unsigned owner =
            SharedCodeStore::shardOf(entry.key, shard_count);
        if (owner != shard) {
            out.report(Severity::Error, "shr-shard-owner",
                       entryLocation(shard, entry.key),
                       format("entry resident in shard {} but "
                              "shardOf() names shard {}",
                              shard, owner));
        }
        if (shard < shard_count) {
            shard_bytes[shard] += entry.sizeBytes;
        }
        sum_bytes += entry.sizeBytes;
        sum_claimed += static_cast<std::uint64_t>(entry.sizeBytes) *
                       entry.attachCount;

        const auto popcount = static_cast<std::uint32_t>(
            std::popcount(entry.attachedMask));
        if (entry.attachCount == 0 || entry.attachedMask == 0) {
            out.report(Severity::Error, "shr-orphan",
                       entryLocation(shard, entry.key),
                       "resident entry with no attached process");
        }
        if (popcount != entry.attachCount) {
            out.report(Severity::Error, "shr-attach-bounds",
                       entryLocation(shard, entry.key),
                       format("attach count {} disagrees with the "
                              "mask's {} set bits",
                              entry.attachCount, popcount));
        }
        if (process_bound < 64 &&
            (entry.attachedMask >> process_bound) != 0) {
            out.report(Severity::Error, "shr-attach-bounds",
                       entryLocation(shard, entry.key),
                       format("attach mask {} names a process "
                              "outside the fleet of {}",
                              hexAddr(entry.attachedMask),
                              process_bound));
        }

        // Invalidation completeness: a survivor of an invalidated
        // module must postdate the invalidation's store tick.
        const cache::ModuleUid uid = cache::traceIdUid(entry.key);
        const std::uint64_t invalidated =
            store.lastInvalidationTick(uid);
        if (invalidated != 0 && entry.insertTick <= invalidated) {
            out.report(Severity::Error, "shr-unmap-stale",
                       entryLocation(shard, entry.key),
                       format("entry of module {} inserted at tick "
                              "{} survived the invalidation at tick "
                              "{}",
                              hexAddr(uid), entry.insertTick,
                              invalidated));
        }
    }

    if (sum_bytes != store.usedBytes()) {
        out.report(Severity::Error, "shr-bytes", "store",
                   format("used-byte accounting {} != sum of entry "
                          "sizes {}",
                          store.usedBytes(), sum_bytes));
    }
    if (sum_claimed != store.claimedBytes()) {
        out.report(Severity::Error, "shr-bytes", "store",
                   format("claimed-byte accounting {} != sum of "
                          "size x attach count {}",
                          store.claimedBytes(), sum_claimed));
    }
    for (unsigned shard = 0; shard < shard_count; ++shard) {
        if (shard_bytes[shard] > store.shardCapacityBytes()) {
            out.report(Severity::Error, "shr-over-budget",
                       format("shard{}", shard),
                       format("resident bytes {} exceed the shard "
                              "budget {}",
                              shard_bytes[shard],
                              store.shardCapacityBytes()));
        }
    }
}

void
SharedStorePass::run(const AnalysisInput &input,
                     DiagnosticEngine &out) const
{
    if (input.sharedStore == nullptr) {
        return;
    }
    checkSharedStore(*input.sharedStore, input.fleetProcesses, out);
}

} // namespace gencache::analysis
