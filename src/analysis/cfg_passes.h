/**
 * @file
 * CFG pass family: structural checks over guest programs.
 *
 * Guest programs are the ground truth every trace is selected from
 * (paper §3): if their control-flow graph is malformed, every
 * downstream invariant is vacuous. Two passes:
 *
 *  - cfg-wellformed: per-block shape (emptiness, termination), direct
 *    branch/jump/call target resolution, conditional and call
 *    fall-through resolution, and cross-module extent overlap.
 *  - cfg-reachability: forward reachability from the program entry
 *    over direct edges, call fall-throughs, and address-taken
 *    constants; unreachable blocks and orphan modules are reported.
 *
 * Check IDs: cfg-no-entry, cfg-entry-unmapped, cfg-empty-module,
 * cfg-block-empty, cfg-block-unterminated, cfg-dangling-target,
 * cfg-fallthrough-invalid, cfg-module-overlap, cfg-unreachable,
 * cfg-orphan-module.
 */

#ifndef GENCACHE_ANALYSIS_CFG_PASSES_H
#define GENCACHE_ANALYSIS_CFG_PASSES_H

#include "analysis/pass.h"
#include "guest/program.h"

namespace gencache::analysis {

/** Block well-formedness and target/fall-through resolution. */
class CfgWellFormedPass : public Pass
{
  public:
    const char *name() const override { return "cfg-wellformed"; }
    bool cheap() const override { return false; }
    void run(const AnalysisInput &input,
             DiagnosticEngine &out) const override;
};

/** Unreachable-code and orphan-module detection. */
class CfgReachabilityPass : public Pass
{
  public:
    const char *name() const override { return "cfg-reachability"; }
    bool cheap() const override { return false; }
    void run(const AnalysisInput &input,
             DiagnosticEngine &out) const override;
};

/** Run both CFG passes over @p program directly (test support). */
void checkProgram(const guest::GuestProgram &program,
                  DiagnosticEngine &out);

} // namespace gencache::analysis

#endif // GENCACHE_ANALYSIS_CFG_PASSES_H
