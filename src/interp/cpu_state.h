/**
 * @file
 * Architectural state of the synthetic guest CPU.
 */

#ifndef GENCACHE_INTERP_CPU_STATE_H
#define GENCACHE_INTERP_CPU_STATE_H

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/instruction.h"

namespace gencache::interp {

/** Registers, sparse data memory, call stack, and the program counter. */
struct CpuState
{
    std::array<std::int64_t, isa::kNumRegs> regs{};
    std::unordered_map<isa::GuestAddr, std::int64_t> memory;
    std::vector<isa::GuestAddr> callStack;
    isa::GuestAddr pc = 0;
    bool halted = false;

    /** Reset everything and set the program counter to @p entry. */
    void reset(isa::GuestAddr entry);

    std::int64_t reg(unsigned index) const { return regs[index]; }
    void setReg(unsigned index, std::int64_t value)
    {
        regs[index] = value;
    }

    /** Load from sparse memory; unwritten addresses read as zero. */
    std::int64_t loadMem(isa::GuestAddr addr) const;
    void storeMem(isa::GuestAddr addr, std::int64_t value);
};

} // namespace gencache::interp

#endif // GENCACHE_INTERP_CPU_STATE_H
