/**
 * @file
 * Block-granular interpreter for the synthetic guest ISA.
 *
 * The dynamic optimizer interposes at basic-block boundaries, so the
 * interpreter's unit of work is one block: execute every instruction,
 * resolve the terminator, and report the next program counter. The
 * runtime uses this both to "interpret" cold code and to discover the
 * dynamic control flow that drives trace selection.
 */

#ifndef GENCACHE_INTERP_INTERPRETER_H
#define GENCACHE_INTERP_INTERPRETER_H

#include <cstdint>

#include "guest/address_space.h"
#include "interp/cpu_state.h"

namespace gencache::interp {

/** Outcome of executing one basic block. */
struct BlockResult
{
    isa::GuestAddr next = 0;       ///< next program counter
    std::uint64_t instructions = 0; ///< instructions retired
    bool halted = false;           ///< guest executed Halt
    bool takenBranch = false;      ///< terminator was a taken
                                   ///< conditional or any jump "up"
    bool backwardTransfer = false; ///< next < block start (loop edge)
};

/** Outcome of one trace-cache execution (Interpreter::executeTrace). */
struct TraceResult
{
    isa::GuestAddr next = 0;        ///< pc at trace exit
    std::uint64_t instructions = 0; ///< instructions retired
    bool halted = false;            ///< guest executed Halt
};

/** Executes guest code found through an AddressSpace. */
class Interpreter
{
  public:
    /** @param space resolves program counters to blocks; must outlive
     *  the interpreter. */
    explicit Interpreter(const guest::AddressSpace &space);

    /**
     * Execute the block at @p state.pc and advance the state.
     * Panics when the pc does not resolve to a mapped block (stale
     * code: the caller must guarantee mapped execution).
     */
    BlockResult executeBlock(CpuState &state);

    /**
     * Fast path: execute the predecoded block @p block (which must be
     * the dense id of the block at @p state.pc) and advance the state.
     * Bit-identical semantics and accounting to executeBlock(state) —
     * it merely reads the contiguous predecoded stream instead of
     * resolving the pc through the module maps and re-walking
     * `isa::Instruction` objects.
     */
    BlockResult executeBlock(CpuState &state, guest::BlockId block);

    /**
     * Fast path: execute a trace's flattened predecoded stream —
     * block @p b spans @p stream [block_end[b-1], block_end[b]) and
     * continues into block b+1 when its terminator resolves to
     * @p continuations [b] (the next block's start address). Stops at
     * the first off-path terminator, Halt, or the end of the last
     * block. Per-block semantics and accounting are bit-identical to
     * calling executeBlock once per block; only the lookups and the
     * per-block call overhead are gone.
     *
     * @param blocks number of blocks; must be at least 1, and
     *        @p continuations must have @p blocks - 1 entries.
     */
    TraceResult executeTrace(CpuState &state,
                             const guest::PredecodedInst *stream,
                             const std::uint32_t *block_end,
                             const isa::GuestAddr *continuations,
                             std::size_t blocks);

    /**
     * Run until Halt or until @p max_blocks blocks have executed.
     * @return total instructions retired.
     */
    std::uint64_t run(CpuState &state, std::uint64_t max_blocks);

    /** @return total instructions retired across all calls. */
    std::uint64_t instructionsRetired() const { return retired_; }

  private:
    const guest::AddressSpace &space_;
    std::uint64_t retired_ = 0;
};

} // namespace gencache::interp

#endif // GENCACHE_INTERP_INTERPRETER_H
