#include "interp/cpu_state.h"

namespace gencache::interp {

void
CpuState::reset(isa::GuestAddr entry)
{
    regs.fill(0);
    memory.clear();
    callStack.clear();
    pc = entry;
    halted = false;
}

std::int64_t
CpuState::loadMem(isa::GuestAddr addr) const
{
    auto it = memory.find(addr);
    return it == memory.end() ? 0 : it->second;
}

void
CpuState::storeMem(isa::GuestAddr addr, std::int64_t value)
{
    memory[addr] = value;
}

} // namespace gencache::interp
