#include "interp/interpreter.h"

#include "support/logging.h"

namespace gencache::interp {

using isa::wrapAdd;
using isa::wrapMul;
using isa::wrapSub;

namespace {

/**
 * Execute one instruction against @p state. Shared by the legacy
 * (`isa::Instruction`) and predecoded (`guest::PredecodedInst`) loops
 * so the two front ends cannot drift semantically: @p InstT only needs
 * the common operand fields, while @p addr / @p fall_through are
 * supplied by the caller (computed on the fly legacy-side, precomputed
 * fast-side).
 */
template <typename InstT>
inline void
step(CpuState &state, const InstT &inst, isa::GuestAddr addr,
     isa::GuestAddr fall_through, BlockResult &result)
{
    switch (inst.opcode) {
      case isa::Opcode::Nop:
        break;
      case isa::Opcode::Add:
        state.regs[inst.dst] =
            wrapAdd(state.regs[inst.src1], state.regs[inst.src2]);
        break;
      case isa::Opcode::Sub:
        state.regs[inst.dst] =
            wrapSub(state.regs[inst.src1], state.regs[inst.src2]);
        break;
      case isa::Opcode::Mul:
        state.regs[inst.dst] =
            wrapMul(state.regs[inst.src1], state.regs[inst.src2]);
        break;
      case isa::Opcode::AddImm:
        state.regs[inst.dst] =
            wrapAdd(state.regs[inst.src1], inst.imm);
        break;
      case isa::Opcode::MovImm:
        state.regs[inst.dst] = inst.imm;
        break;
      case isa::Opcode::Mov:
        state.regs[inst.dst] = state.regs[inst.src1];
        break;
      case isa::Opcode::Load:
        state.regs[inst.dst] = state.loadMem(
            static_cast<isa::GuestAddr>(
                wrapAdd(state.regs[inst.src1], inst.imm)));
        break;
      case isa::Opcode::Store:
        state.storeMem(
            static_cast<isa::GuestAddr>(
                wrapAdd(state.regs[inst.src1], inst.imm)),
            state.regs[inst.src2]);
        break;
      case isa::Opcode::Jump:
        result.next = inst.target;
        result.takenBranch = true;
        break;
      case isa::Opcode::BranchNz:
        if (state.regs[inst.src1] != 0) {
            result.next = inst.target;
            result.takenBranch = true;
        } else {
            result.next = fall_through;
        }
        break;
      case isa::Opcode::BranchZ:
        if (state.regs[inst.src1] == 0) {
            result.next = inst.target;
            result.takenBranch = true;
        } else {
            result.next = fall_through;
        }
        break;
      case isa::Opcode::JumpReg:
        result.next = static_cast<isa::GuestAddr>(
            state.regs[inst.src1]);
        result.takenBranch = true;
        break;
      case isa::Opcode::Call:
        state.callStack.push_back(fall_through);
        result.next = inst.target;
        result.takenBranch = true;
        break;
      case isa::Opcode::CallReg:
        state.callStack.push_back(fall_through);
        result.next = static_cast<isa::GuestAddr>(
            state.regs[inst.src1]);
        result.takenBranch = true;
        break;
      case isa::Opcode::Return:
        if (state.callStack.empty()) {
            GENCACHE_PANIC("return with empty call stack at {}",
                           addr);
        }
        result.next = state.callStack.back();
        state.callStack.pop_back();
        result.takenBranch = true;
        break;
      case isa::Opcode::Halt:
        result.halted = true;
        state.halted = true;
        result.next = addr;
        break;
    }
}

} // namespace

Interpreter::Interpreter(const guest::AddressSpace &space)
    : space_(space)
{
}

BlockResult
Interpreter::executeBlock(CpuState &state)
{
    if (state.halted) {
        GENCACHE_PANIC("executeBlock on a halted guest");
    }
    const isa::BasicBlock *block = space_.blockAt(state.pc);
    if (block == nullptr) {
        GENCACHE_PANIC("no mapped block at guest pc {} ({})", state.pc,
                       space_.describeAddr(state.pc));
    }

    BlockResult result;
    isa::GuestAddr addr = state.pc;

    for (const isa::Instruction &inst : block->instructions()) {
        ++result.instructions;
        isa::GuestAddr fall_through = addr + inst.sizeBytes();
        step(state, inst, addr, fall_through, result);
        addr = fall_through;
    }

    // A taken transfer to the block's own start (a self-loop) is a
    // backward edge too, hence <= rather than <.
    result.backwardTransfer = !result.halted && result.takenBranch &&
                              result.next <= block->startAddr();
    state.pc = result.next;
    retired_ += result.instructions;
    return result;
}

BlockResult
Interpreter::executeBlock(CpuState &state, guest::BlockId block)
{
    if (state.halted) {
        GENCACHE_PANIC("executeBlock on a halted guest");
    }
    const guest::BlockIndex &index = space_.blockIndex();
    const guest::BlockMeta &meta = index.meta(block);

    BlockResult result;
    const guest::PredecodedInst *end = index.instEnd(block);
    for (const guest::PredecodedInst *inst = index.instBegin(block);
         inst != end; ++inst) {
        ++result.instructions;
        step(state, *inst, inst->addr, inst->fallThrough, result);
    }

    result.backwardTransfer = !result.halted && result.takenBranch &&
                              result.next <= meta.startAddr;
    state.pc = result.next;
    retired_ += result.instructions;
    return result;
}

TraceResult
Interpreter::executeTrace(CpuState &state,
                          const guest::PredecodedInst *stream,
                          const std::uint32_t *block_end,
                          const isa::GuestAddr *continuations,
                          std::size_t blocks)
{
    if (state.halted) {
        GENCACHE_PANIC("executeTrace on a halted guest");
    }

    TraceResult out;
    const guest::PredecodedInst *inst = stream;
    std::size_t block = 0;
    for (;;) {
        // Segments are contiguous, so `inst` rolls straight from one
        // block's end into the next block's start.
        const guest::PredecodedInst *end = stream + block_end[block];
        BlockResult result;
        for (; inst != end; ++inst) {
            ++result.instructions;
            step(state, *inst, inst->addr, inst->fallThrough, result);
        }
        out.instructions += result.instructions;
        state.pc = result.next;
        if (result.halted) {
            out.halted = true;
            break;
        }
        if (block + 1 < blocks && result.next == continuations[block]) {
            ++block;
            continue;
        }
        break;
    }
    out.next = state.pc;
    retired_ += out.instructions;
    return out;
}

std::uint64_t
Interpreter::run(CpuState &state, std::uint64_t max_blocks)
{
    std::uint64_t start = retired_;
    for (std::uint64_t i = 0; i < max_blocks && !state.halted; ++i) {
        executeBlock(state);
    }
    return retired_ - start;
}

} // namespace gencache::interp
