/**
 * @file
 * Statistical access-log generation from benchmark profiles.
 *
 * The generator turns a BenchmarkProfile into a concrete, time-ordered
 * AccessLog with the same structure DynamoRIO's verbose logs gave the
 * paper's cache simulator:
 *
 *  - trace sizes are lognormal around the paper's 242-byte median;
 *  - trace creations stream in until the created-byte volume implied
 *    by the profile's unbounded-cache target is reached;
 *  - each trace receives a lifetime class (short / mid / long, Fig 6)
 *    determining its activity window, and a heavy-tailed execution
 *    count (long-lived loop traces execute hotMultiplier times more);
 *  - executions cluster around working-set centers inside the window,
 *    giving the temporal locality real programs exhibit;
 *  - interactive profiles host part of their traces in transient DLL
 *    modules with load/unload windows, producing the program-forced
 *    evictions of Fig 4;
 *  - a small fraction of traces is pinned briefly (undeletable
 *    traces, §4.2).
 *
 * Deterministic: a profile (including its seed) always yields the
 * identical log.
 */

#ifndef GENCACHE_WORKLOAD_GENERATOR_H
#define GENCACHE_WORKLOAD_GENERATOR_H

#include "support/rng.h"
#include "tracelog/event.h"
#include "workload/profile.h"

namespace gencache::workload {

/** Generate the access log of @p profile. */
tracelog::AccessLog generateWorkload(const BenchmarkProfile &profile);

/**
 * A fleet of interactive guest processes sharing DLLs.
 *
 * Each of the K processes gets its own AccessLog: a private
 * executable (uid salted per process) plus `sharedDlls` fleet-shared
 * libraries whose *names* — and therefore module uids — coincide
 * across processes. Each shared library's trace layout (sizes and
 * image offsets) is derived from an Rng seeded by the library's uid
 * alone, so every process that adopts a trace derives the identical
 * canonical (uid, offset) id — the coincidence the cross-process
 * shared store deduplicates. Processes differ in which subset of each
 * library they adopt and in their execution timing/volume.
 *
 * `unmapStorms` schedules fleet-wide churn: at each storm time every
 * process unloads one shared DLL and remaps it moments later
 * (plugin/extension reload behavior). The creates stay in the
 * pre-storm prefix — post-storm executions regenerate through the
 * replay miss path, like the paper's Fig 4 program-forced evictions.
 */
struct FleetWorkloadConfig
{
    unsigned processes = 8;
    unsigned sharedDlls = 4;
    double sharedLibKb = 160.0;  ///< trace bytes per shared library
    double privateKb = 160.0;    ///< per-process private trace bytes
    double adoptFrac = 0.75;     ///< library fraction each process runs
    double durationSec = 20.0;
    unsigned unmapStorms = 0;    ///< fleet-wide unload/remap waves
    double execsPerTraceMean = 40.0;
    std::uint64_t seed = 1;
    std::string namePrefix = "fleet";
};

/** Generate one AccessLog per fleet process (see FleetWorkloadConfig). */
std::vector<tracelog::AccessLog>
generateFleetWorkload(const FleetWorkloadConfig &config);

/** Trace-size distribution parameters (lognormal, byte clamps). */
struct TraceSizeModel
{
    double medianBytes = 242.0; ///< paper's cross-benchmark median
    double sigma = 0.55;
    std::uint32_t minBytes = 48;
    std::uint32_t maxBytes = 8192;
};

/** Draw one trace size. Exposed for tests. */
std::uint32_t sampleTraceSize(Rng &rng, const TraceSizeModel &model);

} // namespace gencache::workload

#endif // GENCACHE_WORKLOAD_GENERATOR_H
