/**
 * @file
 * Statistical access-log generation from benchmark profiles.
 *
 * The generator turns a BenchmarkProfile into a concrete, time-ordered
 * AccessLog with the same structure DynamoRIO's verbose logs gave the
 * paper's cache simulator:
 *
 *  - trace sizes are lognormal around the paper's 242-byte median;
 *  - trace creations stream in until the created-byte volume implied
 *    by the profile's unbounded-cache target is reached;
 *  - each trace receives a lifetime class (short / mid / long, Fig 6)
 *    determining its activity window, and a heavy-tailed execution
 *    count (long-lived loop traces execute hotMultiplier times more);
 *  - executions cluster around working-set centers inside the window,
 *    giving the temporal locality real programs exhibit;
 *  - interactive profiles host part of their traces in transient DLL
 *    modules with load/unload windows, producing the program-forced
 *    evictions of Fig 4;
 *  - a small fraction of traces is pinned briefly (undeletable
 *    traces, §4.2).
 *
 * Deterministic: a profile (including its seed) always yields the
 * identical log.
 */

#ifndef GENCACHE_WORKLOAD_GENERATOR_H
#define GENCACHE_WORKLOAD_GENERATOR_H

#include "support/rng.h"
#include "tracelog/event.h"
#include "workload/profile.h"

namespace gencache::workload {

/** Generate the access log of @p profile. */
tracelog::AccessLog generateWorkload(const BenchmarkProfile &profile);

/** Trace-size distribution parameters (lognormal, byte clamps). */
struct TraceSizeModel
{
    double medianBytes = 242.0; ///< paper's cross-benchmark median
    double sigma = 0.55;
    std::uint32_t minBytes = 48;
    std::uint32_t maxBytes = 8192;
};

/** Draw one trace size. Exposed for tests. */
std::uint32_t sampleTraceSize(Rng &rng, const TraceSizeModel &model);

} // namespace gencache::workload

#endif // GENCACHE_WORKLOAD_GENERATOR_H
