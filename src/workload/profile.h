/**
 * @file
 * Benchmark profiles: the statistical workload models standing in for
 * the paper's SPEC2000 reference runs and interactive Windows sessions
 * (Table 1).
 *
 * The original logs cannot be reproduced (2003-era Windows binaries,
 * manual user interaction, DynamoRIO on IA-32), so each benchmark is
 * described by the characteristics the paper publishes — unbounded
 * cache size (Fig 1), code expansion (Fig 2), trace insertion rate
 * (Fig 3, implied by size/duration), unmapped-memory fraction (Fig 4),
 * and trace lifetime mixture (Fig 6) — plus execution-volume knobs.
 * The generator (workload/generator.h) turns a profile into a concrete
 * access log; all headline numbers are then *measured* from that log,
 * never read back from the profile.
 */

#ifndef GENCACHE_WORKLOAD_PROFILE_H
#define GENCACHE_WORKLOAD_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace gencache::workload {

/** Which benchmark suite a profile belongs to. */
enum class Suite {
    SpecInt,     ///< SPEC CPU2000 integer
    SpecFp,      ///< SPEC CPU2000 floating point
    Interactive, ///< large interactive Windows applications (Table 1)
};

/** @return printable suite name. */
const char *suiteName(Suite suite);

/** Fractions of traces in each lifetime class (must sum to 1). */
struct LifetimeMix
{
    double shortFrac = 0.45; ///< lifetime < 20% of execution
    double midFrac = 0.13;   ///< lifetime in [20%, 80%)
    double longFrac = 0.42;  ///< lifetime >= 80% of execution
};

/** Statistical model of one benchmark's cache-access behaviour. */
struct BenchmarkProfile
{
    std::string name;
    std::string description; ///< Table 1 "Description" column
    Suite suite = Suite::SpecInt;

    double durationSec = 100.0;   ///< execution time (Table 1)
    double finalCacheKb = 500.0;  ///< unbounded-cache target (Fig 1)
    double codeExpansionPct = 500.0; ///< Fig 2 target
    double unmapFrac = 0.0;       ///< fraction of trace bytes in
                                  ///< transient DLLs (Fig 4)
    unsigned dllCount = 0;        ///< transient modules

    LifetimeMix mix;              ///< Fig 6 target shape

    double execsPerTraceMean = 60.0; ///< mean executions per trace
    double hotMultiplier = 8.0;   ///< long-lived traces execute this
                                  ///< many times more
    double clusterSpreadFrac = 0.02; ///< temporal locality tightness

    /** When true, mid-lived traces execute in one sustained plateau
     *  that outlasts a nursery+probation transit, then go cold. Such
     *  traces *earn* their promotion, then sit dead in the persistent
     *  cache, evicting genuinely long-lived code — promotion becomes
     *  pure overhead. This is the behaviour behind the paper's
     *  eon/vpr/applu outliers (§6.2). */
    bool pollutingMid = false;

    double pinFrac = 0.001;       ///< traces pinned briefly (§4.2)
    std::uint64_t seed = 1;       ///< generator seed
};

/** @return the 26 SPEC CPU2000 benchmark profiles. */
std::vector<BenchmarkProfile> spec2000Profiles();

/** @return the 12 interactive Windows application profiles (Table 1). */
std::vector<BenchmarkProfile> interactiveProfiles();

/** @return SPEC2000 followed by the interactive profiles. */
std::vector<BenchmarkProfile> allProfiles();

/** @return the profile named @p name; fatal() when unknown. */
BenchmarkProfile findProfile(const std::string &name);

} // namespace gencache::workload

#endif // GENCACHE_WORKLOAD_PROFILE_H
