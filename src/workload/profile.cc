#include "workload/profile.h"

#include "support/logging.h"

namespace gencache::workload {

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::SpecInt: return "SPECint2000";
      case Suite::SpecFp: return "SPECfp2000";
      case Suite::Interactive: return "Interactive";
    }
    GENCACHE_PANIC("unknown suite {}", static_cast<int>(suite));
}

namespace {

BenchmarkProfile
spec(const char *name, Suite suite, double duration_sec,
     double final_kb, double expansion_pct, LifetimeMix mix,
     double execs_per_trace, double hot_multiplier,
     std::uint64_t seed)
{
    BenchmarkProfile profile;
    profile.name = name;
    profile.description = "SPEC CPU2000";
    profile.suite = suite;
    profile.durationSec = duration_sec;
    profile.finalCacheKb = final_kb;
    profile.codeExpansionPct = expansion_pct;
    profile.unmapFrac = 0.0;
    profile.dllCount = 0;
    profile.mix = mix;
    profile.execsPerTraceMean = execs_per_trace;
    profile.hotMultiplier = hot_multiplier;
    profile.seed = seed;
    return profile;
}

BenchmarkProfile
interactive(const char *name, const char *description,
            double duration_sec, double final_mb, double expansion_pct,
            double unmap_frac, unsigned dll_count, LifetimeMix mix,
            double execs_per_trace, std::uint64_t seed)
{
    BenchmarkProfile profile;
    profile.name = name;
    profile.description = description;
    profile.suite = Suite::Interactive;
    profile.durationSec = duration_sec;
    profile.finalCacheKb = final_mb * 1024.0;
    profile.codeExpansionPct = expansion_pct;
    profile.unmapFrac = unmap_frac;
    profile.dllCount = dll_count;
    profile.mix = mix;
    profile.execsPerTraceMean = execs_per_trace;
    profile.hotMultiplier = 8.0;
    profile.seed = seed;
    return profile;
}

// Lifetime mixtures. The U-shape (Fig 6) is the default; a few
// benchmarks deviate to reproduce the paper's outliers: eon, vpr and
// applu prefer larger probation caches (mid-lived-heavy populations),
// and art is dominated by one long-lived loop nest.
constexpr LifetimeMix kSpecMix{0.42, 0.13, 0.45};
constexpr LifetimeMix kMidHeavyMix{0.27, 0.70, 0.03};
constexpr LifetimeMix kArtMix{0.06, 0.04, 0.90};
// Interactive populations are dominated by one-off UI paths (short)
// plus a core of GUI/event-loop traces that live for the whole
// session; the long-lived byte volume sits just inside the persistent
// cache share, which is what lets promotion stabilize (§6.1).
constexpr LifetimeMix kInteractiveMix{0.78, 0.04, 0.18};

} // namespace

std::vector<BenchmarkProfile>
spec2000Profiles()
{
    std::vector<BenchmarkProfile> profiles;
    const Suite I = Suite::SpecInt;
    const Suite F = Suite::SpecFp;

    // SPECint2000. Durations are free parameters (the paper reports
    // none for SPEC); they are chosen so size/duration reproduces the
    // Figure 3 insertion rates (gcc ~232 KB/s, perlbmk ~89 KB/s, the
    // rest below 5 KB/s).
    profiles.push_back(spec("gzip", I, 95, 180, 420,
                            {0.62, 0.02, 0.36}, 120, 12, 101));
    profiles.push_back(spec("vpr", I, 180, 420, 510, kMidHeavyMix,
                            12, 30, 102));
    profiles.back().pollutingMid = true;
    profiles.push_back(spec("gcc", I, 18.5, 4300, 640, kSpecMix,
                            25, 5, 103));
    profiles.push_back(spec("mcf", I, 130, 150, 380, kSpecMix,
                            60, 8, 104));
    profiles.push_back(spec("crafty", I, 250, 1100, 520,
                            {0.40, 0.12, 0.48}, 150, 10, 105));
    profiles.push_back(spec("parser", I, 200, 800, 460, kSpecMix,
                            50, 6, 106));
    profiles.push_back(spec("eon", I, 200, 900, 560, kMidHeavyMix,
                            12, 30, 107));
    profiles.back().pollutingMid = true;
    profiles.push_back(spec("perlbmk", I, 17, 1500, 700, kSpecMix,
                            25, 5, 108));
    profiles.push_back(spec("gap", I, 200, 900, 490, kSpecMix,
                            45, 6, 109));
    profiles.push_back(spec("vortex", I, 330, 1600, 610, kSpecMix,
                            40, 6, 110));
    profiles.push_back(spec("bzip2", I, 110, 160, 350, kSpecMix,
                            80, 10, 111));
    profiles.push_back(spec("twolf", I, 210, 480, 440, kSpecMix,
                            55, 8, 112));

    // SPECfp2000.
    profiles.push_back(spec("wupwise", F, 140, 260, 420, kSpecMix,
                            55, 8, 113));
    profiles.push_back(spec("swim", F, 120, 120, 300, kSpecMix,
                            70, 10, 114));
    profiles.push_back(spec("mgrid", F, 130, 140, 310, kSpecMix,
                            70, 10, 115));
    profiles.push_back(spec("applu", F, 160, 330, 450, kMidHeavyMix,
                            12, 30, 116));
    profiles.back().pollutingMid = true;
    profiles.push_back(spec("mesa", F, 220, 1000, 540, kSpecMix,
                            40, 6, 117));
    profiles.push_back(spec("galgel", F, 170, 420, 470, kSpecMix,
                            50, 8, 118));
    profiles.push_back(spec("art", F, 140, 80, 280, kArtMix,
                            120, 3, 119));
    profiles.push_back(spec("equake", F, 130, 200, 390, kSpecMix,
                            60, 8, 120));
    profiles.push_back(spec("facerec", F, 150, 380, 430, kSpecMix,
                            50, 8, 121));
    profiles.push_back(spec("ammp", F, 180, 350, 410, kSpecMix,
                            50, 8, 122));
    profiles.push_back(spec("lucas", F, 140, 180, 360, kSpecMix,
                            60, 8, 123));
    profiles.push_back(spec("fma3d", F, 260, 1200, 580, kSpecMix,
                            40, 6, 124));
    profiles.push_back(spec("sixtrack", F, 200, 900, 530, kSpecMix,
                            45, 7, 125));
    profiles.push_back(spec("apsi", F, 160, 690, 480, kSpecMix,
                            45, 7, 126));
    return profiles;
}

std::vector<BenchmarkProfile>
interactiveProfiles()
{
    // Table 1 of the paper: name, seconds, description. Cache-size
    // targets reproduce Figure 1b (average ~16 MB, word 34.2 MB);
    // unmap fractions reproduce Figure 4 (average ~15%).
    std::vector<BenchmarkProfile> profiles;
    profiles.push_back(interactive("access", "Database App", 202, 16.0,
                                   520, 0.14, 6, kInteractiveMix, 9,
                                   201));
    profiles.push_back(interactive("acroread", "PDF Viewer", 376, 26.0,
                                   560, 0.17, 8, kInteractiveMix, 9,
                                   202));
    profiles.push_back(interactive("defrag", "System Util", 46, 3.5,
                                   430, 0.12, 3, kInteractiveMix, 11,
                                   203));
    profiles.push_back(interactive("excel", "Spreadsheet App", 208,
                                   21.0, 540, 0.15, 7, kInteractiveMix,
                                   9, 204));
    profiles.push_back(interactive("iexplore", "Web Browser", 247,
                                   23.0, 580, 0.18, 8, kInteractiveMix,
                                   9, 205));
    profiles.push_back(interactive("mpeg", "Media Player", 257, 10.0,
                                   460, 0.10, 4, kInteractiveMix, 11,
                                   206));
    profiles.push_back(interactive("outlook", "E-Mail App", 196, 18.0,
                                   530, 0.16, 7, kInteractiveMix, 9,
                                   207));
    profiles.push_back(interactive("pinball", "3D Game Demo", 372,
                                   14.0, 470, 0.12, 5, kInteractiveMix,
                                   10, 208));
    profiles.push_back(interactive("powerpoint", "Presentation", 173,
                                   19.0, 550, 0.15, 6, kInteractiveMix,
                                   9, 209));
    profiles.push_back(interactive("solitaire", "Game", 335, 1.5, 400,
                                   0.08, 2, kInteractiveMix, 15, 210));
    profiles.push_back(interactive("winzip", "Compression", 92, 6.0,
                                   450, 0.13, 4, kInteractiveMix, 11,
                                   211));
    profiles.push_back(interactive("word", "Word Processor", 212, 34.2,
                                   590, 0.19, 9, kInteractiveMix, 9,
                                   212));
    return profiles;
}

std::vector<BenchmarkProfile>
allProfiles()
{
    std::vector<BenchmarkProfile> profiles = spec2000Profiles();
    std::vector<BenchmarkProfile> interactives = interactiveProfiles();
    profiles.insert(profiles.end(), interactives.begin(),
                    interactives.end());
    return profiles;
}

BenchmarkProfile
findProfile(const std::string &name)
{
    for (const BenchmarkProfile &profile : allProfiles()) {
        if (profile.name == name) {
            return profile;
        }
    }
    fatal("unknown benchmark profile '{}'", name);
}

} // namespace gencache::workload
