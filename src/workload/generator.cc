#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"
#include "support/units.h"

namespace gencache::workload {

namespace {

using tracelog::Event;
using tracelog::EventType;

/** Sort rank so simultaneous events land in a legal order. */
int
eventRank(EventType type)
{
    switch (type) {
      case EventType::ModuleLoad: return 0;
      case EventType::TraceCreate: return 1;
      case EventType::TraceExec: return 2;
      case EventType::Pin: return 3;
      case EventType::Unpin: return 4;
      case EventType::ModuleUnload: return 5;
    }
    return 6;
}

/** Lifetime classes drawn from the profile's mixture. */
enum class LifeClass { Short, Mid, Long };

LifeClass
sampleLifeClass(Rng &rng, const LifetimeMix &mix)
{
    double draw = rng.uniform01();
    if (draw < mix.shortFrac) {
        return LifeClass::Short;
    }
    if (draw < mix.shortFrac + mix.midFrac) {
        return LifeClass::Mid;
    }
    return LifeClass::Long;
}

/** Emission context shared by the helpers below. */
struct GenContext
{
    const BenchmarkProfile &profile;
    Rng &rng;
    std::vector<Event> &events;
    TimeUs total;              ///< duration in virtual microseconds
    /** Per-module uid and next code offset: trace ids are canonical
     *  (module uid, offset) keys, offsets laid out cumulatively like
     *  code in the image. Indexed by local ModuleId. */
    std::vector<cache::ModuleUid> uids;
    std::vector<std::uint32_t> nextOffset;
};

/**
 * Emit one trace: creation, clustered executions across its activity
 * window, and (rarely) a pin/unpin pair.
 */
void
emitTrace(GenContext &ctx, std::uint32_t size, cache::ModuleId module,
          TimeUs create, TimeUs last, LifeClass cls)
{
    const BenchmarkProfile &p = ctx.profile;
    bool is_long = cls == LifeClass::Long;
    // Canonical identity: the module's uid plus the trace's offset in
    // the image, advancing by trace size like laid-out code.
    std::uint32_t offset = ctx.nextOffset[module];
    ctx.nextOffset[module] += size;
    cache::TraceId id =
        cache::canonicalTraceId(ctx.uids[module], offset);
    ctx.events.push_back(Event::traceCreate(create, id, size, module));

    double execs =
        p.execsPerTraceMean * std::exp(ctx.rng.normal(0.0, 0.9));
    if (is_long) {
        execs *= p.hotMultiplier;
    }
    auto count = static_cast<std::uint64_t>(std::llround(
        std::clamp(execs, 1.0, 100000.0)));

    if (last > create && count > 1) {
        TimeUs window = last - create;
        // Working-set clustering: executions gather around a handful
        // of centers inside the window. Long-lived traces are the
        // program's core loops, so their executions must recur
        // *steadily* across the whole window (at least several
        // centers), not in one burst — this steady re-reference is
        // exactly what a unified FIFO keeps evicting (§5.1).
        std::size_t centers = 1 + static_cast<std::size_t>(count / 40);
        if (is_long) {
            // Dense enough that re-reference gaps stay well below a
            // probation-cache transit, so a hot trace always earns
            // its promotion hit on the first pass.
            centers = std::max<std::size_t>(centers, 24);
        }
        std::vector<double> centerTimes;
        if (cls == LifeClass::Mid && p.pollutingMid) {
            // Phase-structured reuse (a solver time step, a renderer
            // scene): two sustained plateaus at the window ends. Each
            // plateau outlasts a nursery+probation transit, so the
            // trace re-earns a full promotion per phase; the gap
            // between phases exceeds a persistent-cache transit, so
            // the promotion buys nothing. Plateau lengths are
            // fractions of *total* time because cache transit times
            // scale with the run, not with a trace's window.
            double plateau_span = std::min(
                0.45 * static_cast<double>(window),
                0.20 * static_cast<double>(ctx.total));
            std::size_t per_plateau = std::max<std::size_t>(
                4, static_cast<std::size_t>(count / 16));
            centerTimes.reserve(2 * per_plateau);
            for (std::size_t k = 0; k < per_plateau; ++k) {
                double offset = (static_cast<double>(k) + 0.5) /
                                static_cast<double>(per_plateau) *
                                plateau_span;
                centerTimes.push_back(static_cast<double>(create) +
                                      offset);
                centerTimes.push_back(static_cast<double>(last) -
                                      plateau_span + offset);
            }
        } else {
            centerTimes.resize(centers);
            for (double &center : centerTimes) {
                center = ctx.rng.uniform(static_cast<double>(create),
                                         static_cast<double>(last));
            }
        }
        double spread =
            static_cast<double>(window) * p.clusterSpreadFrac;
        for (std::uint64_t k = 0; k + 2 <= count; ++k) {
            double center = centerTimes[static_cast<std::size_t>(
                ctx.rng.uniformInt(0,
                    static_cast<std::int64_t>(centerTimes.size()) -
                        1))];
            double t = std::clamp(ctx.rng.normal(center, spread),
                                  static_cast<double>(create),
                                  static_cast<double>(last));
            ctx.events.push_back(
                Event::traceExec(static_cast<TimeUs>(t), id));
        }
        // Guarantee the window endpoint so measured lifetimes match.
        ctx.events.push_back(Event::traceExec(last, id));
    }

    if (p.pinFrac > 0.0 && last > create + 4 &&
        ctx.rng.bernoulli(p.pinFrac)) {
        TimeUs pin_at = create + static_cast<TimeUs>(
            ctx.rng.uniform(0.0,
                static_cast<double>(last - create - 2)));
        TimeUs unpin_at = std::min<TimeUs>(
            last,
            pin_at + std::max<TimeUs>(1, (last - create) / 50));
        ctx.events.push_back(Event::pin(pin_at, id));
        ctx.events.push_back(Event::unpin(unpin_at, id));
    }
}

/** Window of a main-module trace for a lifetime class. */
void
mainWindow(GenContext &ctx, LifeClass cls, TimeUs &create, TimeUs &last)
{
    double total = static_cast<double>(ctx.total);
    Rng &rng = ctx.rng;
    double begin = 0.0;
    double frac = 0.0;
    switch (cls) {
      case LifeClass::Short:
        // Well under the 20% bucket edge: short-lived traces go cold
        // quickly (a dialog dismissed, a one-off code path), which is
        // what lets the probation cache filter them out (§5.3).
        begin = rng.uniform(0.0, 0.93);
        frac = rng.uniform(0.002, 0.08);
        break;
      case LifeClass::Mid:
        if (ctx.profile.pollutingMid) {
            // Wide window: the single post-plateau touch lands long
            // after the persistent cache has churned the trace out.
            begin = rng.uniform(0.0, 0.20);
            frac = rng.uniform(0.60, 0.78);
        } else {
            begin = rng.uniform(0.0, 0.45);
            frac = rng.uniform(0.22, 0.72);
        }
        break;
      case LifeClass::Long:
        begin = rng.uniform(0.0, 0.10);
        frac = rng.uniform(0.82, 0.99);
        break;
    }
    create = static_cast<TimeUs>(begin * total);
    last = static_cast<TimeUs>(
        std::min(1.0, begin + frac) * total);
    if (last <= create) {
        last = create + 1;
    }
    if (last > ctx.total) {
        last = ctx.total;
    }
}

} // namespace

std::uint32_t
sampleTraceSize(Rng &rng, const TraceSizeModel &model)
{
    double size = rng.lognormal(std::log(model.medianBytes),
                                model.sigma);
    return static_cast<std::uint32_t>(
        std::clamp(size, static_cast<double>(model.minBytes),
                   static_cast<double>(model.maxBytes)));
}

tracelog::AccessLog
generateWorkload(const BenchmarkProfile &profile)
{
    if (profile.durationSec <= 0.0 || profile.finalCacheKb <= 0.0) {
        fatal("profile '{}' has a non-positive duration or size",
              profile.name);
    }
    if (profile.unmapFrac < 0.0 || profile.unmapFrac >= 0.9) {
        fatal("profile '{}' unmapFrac {} out of range", profile.name,
              profile.unmapFrac);
    }

    Rng rng(profile.seed);
    std::vector<Event> events;
    TimeUs total = secondsToUs(profile.durationSec);
    GenContext ctx{profile, rng, events, total, {}, {}};

    // Module identities: the exe plus one entry per transient DLL.
    // Names are salted with the benchmark so uids differ across
    // profiles (each models a different application's private code).
    ctx.uids.push_back(
        cache::moduleUidOfName(profile.name + ":exe"));
    for (unsigned d = 0; d < profile.dllCount; ++d) {
        ctx.uids.push_back(cache::moduleUidOfName(
            profile.name + ":dll" + std::to_string(d + 1)));
    }
    for (std::size_t i = 0; i < ctx.uids.size(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            if (ctx.uids[i] == ctx.uids[j]) {
                fatal("profile '{}': module uid collision ({} vs {})",
                      profile.name, i, j);
            }
        }
    }
    ctx.nextOffset.assign(ctx.uids.size(), 0);

    double created_target = profile.finalCacheKb * 1024.0 /
                            (1.0 - profile.unmapFrac);
    TraceSizeModel size_model;

    // Main executable is module 0, mapped for the entire run.
    events.push_back(Event::moduleLoad(0, 0));

    // Transient DLL modules with load/unload windows (Fig 4).
    struct Dll
    {
        cache::ModuleId id;
        TimeUs load;
        TimeUs unload;
    };
    std::vector<Dll> dlls;
    double dll_bytes_total = profile.unmapFrac * created_target;
    for (unsigned d = 0; d < profile.dllCount; ++d) {
        Dll dll;
        dll.id = d + 1;
        double begin = rng.uniform(0.03, 0.55);
        double length = rng.uniform(0.12, 0.33);
        dll.load = static_cast<TimeUs>(
            begin * static_cast<double>(total));
        dll.unload = static_cast<TimeUs>(
            std::min(0.96, begin + length) *
            static_cast<double>(total));
        dlls.push_back(dll);
        events.push_back(Event::moduleLoad(dll.load, dll.id));
        events.push_back(Event::moduleUnload(dll.unload, dll.id));
    }

    // DLL-hosted traces: windows inside their module's mapping, so
    // their code dies by unmapping (program-forced eviction).
    double dll_bytes_emitted = 0.0;
    if (!dlls.empty()) {
        double budget_per_dll =
            dll_bytes_total / static_cast<double>(dlls.size());
        for (const Dll &dll : dlls) {
            double used = 0.0;
            TimeUs margin = std::max<TimeUs>(1, total / 1000);
            TimeUs window_begin = dll.load + margin;
            TimeUs window_end =
                dll.unload > margin ? dll.unload - margin : dll.load;
            if (window_end <= window_begin) {
                continue;
            }
            while (used < budget_per_dll) {
                std::uint32_t size = sampleTraceSize(rng, size_model);
                TimeUs create = static_cast<TimeUs>(rng.uniform(
                    static_cast<double>(window_begin),
                    static_cast<double>(window_end)));
                TimeUs last = create + static_cast<TimeUs>(
                    rng.uniform(0.05, 0.95) *
                    static_cast<double>(window_end - create));
                emitTrace(ctx, size, dll.id, create,
                          std::max(last, create + 1),
                          LifeClass::Short);
                used += size;
                dll_bytes_emitted += size;
            }
        }
    }

    // Main-module traces, with the lifetime mixture adjusted so the
    // *overall* population (DLL traces are short-lived by
    // construction) matches the profile's mix.
    double dll_frac = created_target > 0.0
                          ? dll_bytes_emitted / created_target
                          : 0.0;
    LifetimeMix main_mix;
    double remaining = std::max(0.05, 1.0 - dll_frac);
    main_mix.shortFrac = std::max(
        0.02, (profile.mix.shortFrac - dll_frac) / remaining);
    main_mix.midFrac =
        std::max(0.02, profile.mix.midFrac / remaining);
    main_mix.longFrac =
        std::max(0.02, profile.mix.longFrac / remaining);
    double norm = main_mix.shortFrac + main_mix.midFrac +
                  main_mix.longFrac;
    main_mix.shortFrac /= norm;
    main_mix.midFrac /= norm;
    main_mix.longFrac /= norm;

    double main_target = created_target - dll_bytes_emitted;
    double main_emitted = 0.0;
    while (main_emitted < main_target) {
        std::uint32_t size = sampleTraceSize(rng, size_model);
        LifeClass cls = sampleLifeClass(rng, main_mix);
        TimeUs create = 0;
        TimeUs last = 0;
        mainWindow(ctx, cls, create, last);
        emitTrace(ctx, size, 0, create, last, cls);
        main_emitted += size;
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         if (a.time != b.time) {
                             return a.time < b.time;
                         }
                         return eventRank(a.type) < eventRank(b.type);
                     });

    tracelog::AccessLog log;
    log.setBenchmark(profile.name);
    log.setDuration(total);
    log.setFootprintBytes(static_cast<std::uint64_t>(
        profile.finalCacheKb * 1024.0 * 100.0 /
        profile.codeExpansionPct));
    for (cache::ModuleId m = 0; m < ctx.uids.size(); ++m) {
        log.setModuleUid(m, ctx.uids[m]);
    }
    for (const Event &event : events) {
        log.append(event);
    }
    return log;
}

namespace {

/** One shared library's fleet-invariant trace layout. */
struct SharedLibTrace
{
    cache::TraceId id = cache::kInvalidTrace;
    std::uint32_t sizeBytes = 0;
};

/**
 * The trace library of shared DLL @p name: derived from an Rng seeded
 * by the library's uid alone, so every process (and every run) lays
 * out the identical traces at the identical image offsets.
 */
std::vector<SharedLibTrace>
sharedLibraryLayout(cache::ModuleUid uid, double lib_bytes)
{
    Rng rng(0x5eedc0de ^ static_cast<std::uint64_t>(uid));
    TraceSizeModel size_model;
    std::vector<SharedLibTrace> layout;
    std::uint32_t offset = 0;
    double emitted = 0.0;
    while (emitted < lib_bytes) {
        SharedLibTrace trace;
        trace.sizeBytes = sampleTraceSize(rng, size_model);
        trace.id = cache::canonicalTraceId(uid, offset);
        offset += trace.sizeBytes;
        emitted += trace.sizeBytes;
        layout.push_back(trace);
    }
    return layout;
}

} // namespace

std::vector<tracelog::AccessLog>
generateFleetWorkload(const FleetWorkloadConfig &config)
{
    if (config.processes == 0 || config.processes > 64) {
        fatal("fleet size {} outside 1..64", config.processes);
    }
    if (config.sharedDlls == 0) {
        fatal("a fleet workload needs at least one shared DLL");
    }
    if (config.adoptFrac <= 0.0 || config.adoptFrac > 1.0) {
        fatal("fleet adoptFrac {} outside (0, 1]", config.adoptFrac);
    }
    if (config.durationSec <= 0.0) {
        fatal("fleet duration must be positive");
    }

    const TimeUs total = secondsToUs(config.durationSec);

    // Shared module identities and layouts: functions of the fleet's
    // library *names* only, never of the process.
    std::vector<cache::ModuleUid> sharedUids;
    std::vector<std::vector<SharedLibTrace>> libraries;
    for (unsigned d = 0; d < config.sharedDlls; ++d) {
        cache::ModuleUid uid = cache::moduleUidOfName(
            config.namePrefix + ":shared" + std::to_string(d + 1) +
            ".dll");
        sharedUids.push_back(uid);
        libraries.push_back(
            sharedLibraryLayout(uid, config.sharedLibKb * 1024.0));
    }

    // Fleet-wide storm schedule: every process unloads and remaps the
    // storm's DLL at the same virtual times (round-robin over DLLs).
    // The last storm stays clear of the log's tail so post-storm
    // executions can regenerate the shared working set.
    struct Storm
    {
        unsigned dll = 0;
        TimeUs unload = 0;
        TimeUs reload = 0;
    };
    std::vector<Storm> storms;
    const TimeUs remapGap = std::max<TimeUs>(1, total / 200);
    for (unsigned s = 0; s < config.unmapStorms; ++s) {
        Storm storm;
        storm.dll = s % config.sharedDlls;
        double frac = 0.25 + 0.55 * (static_cast<double>(s) + 1.0) /
                                 (static_cast<double>(
                                      config.unmapStorms) + 1.0);
        storm.unload = static_cast<TimeUs>(
            frac * static_cast<double>(total));
        storm.reload = storm.unload + remapGap;
        storms.push_back(storm);
    }
    TimeUs firstStorm = total;
    for (const Storm &storm : storms) {
        firstStorm = std::min(firstStorm, storm.unload);
    }

    std::vector<tracelog::AccessLog> logs;
    logs.reserve(config.processes);
    for (unsigned p = 0; p < config.processes; ++p) {
        Rng rng(config.seed * 7919 + p + 1);
        std::vector<Event> events;

        // Private executable: salted per process, so its traces can
        // never deduplicate across the fleet.
        std::string exeName = config.namePrefix + ":proc" +
                              std::to_string(p) + ":exe";
        cache::ModuleUid exeUid = cache::moduleUidOfName(exeName);
        for (cache::ModuleUid uid : sharedUids) {
            if (uid == exeUid) {
                fatal("fleet module uid collision for '{}'", exeName);
            }
        }
        events.push_back(Event::moduleLoad(0, 0));

        // Shared DLLs are modules 1..D, mapped from the start, with
        // the fleet storm schedule appended.
        for (unsigned d = 0; d < config.sharedDlls; ++d) {
            events.push_back(Event::moduleLoad(0, d + 1));
        }
        for (const Storm &storm : storms) {
            events.push_back(
                Event::moduleUnload(storm.unload, storm.dll + 1));
            events.push_back(
                Event::moduleLoad(storm.reload, storm.dll + 1));
        }

        // Shared-library traces: each process adopts its own subset
        // and execution schedule, but the (id, size) pairs are the
        // library's. Creates sit before the first storm (a trace is
        // created once; post-storm execs regenerate via the replay
        // miss path).
        const TimeUs createEnd = std::max<TimeUs>(
            2, static_cast<TimeUs>(0.8 * static_cast<double>(
                                             firstStorm)));
        for (unsigned d = 0; d < config.sharedDlls; ++d) {
            for (const SharedLibTrace &trace : libraries[d]) {
                if (!rng.bernoulli(config.adoptFrac)) {
                    continue;
                }
                TimeUs create = static_cast<TimeUs>(rng.uniform(
                    1.0, static_cast<double>(createEnd)));
                events.push_back(Event::traceCreate(
                    create, trace.id, trace.sizeBytes, d + 1));
                double execs = config.execsPerTraceMean *
                               std::exp(rng.normal(0.0, 0.8));
                auto count = static_cast<std::uint64_t>(std::llround(
                    std::clamp(execs, 1.0, 50000.0)));
                // A few working-set centers spanning the whole run,
                // so executions keep arriving after every storm.
                std::size_t centers = 3 + static_cast<std::size_t>(
                                              count / 64);
                std::vector<double> centerTimes(centers);
                for (double &center : centerTimes) {
                    center = rng.uniform(static_cast<double>(create),
                                         static_cast<double>(total));
                }
                double spread = 0.02 * static_cast<double>(total);
                for (std::uint64_t k = 0; k < count; ++k) {
                    double center =
                        centerTimes[static_cast<std::size_t>(
                            rng.uniformInt(
                                0, static_cast<std::int64_t>(
                                       centers) - 1))];
                    double t = std::clamp(
                        rng.normal(center, spread),
                        static_cast<double>(create),
                        static_cast<double>(total));
                    events.push_back(Event::traceExec(
                        static_cast<TimeUs>(t), trace.id));
                }
            }
        }

        // Private working set through the regular emitter (module 0).
        BenchmarkProfile priv;
        priv.name = exeName;
        priv.execsPerTraceMean = config.execsPerTraceMean;
        priv.pinFrac = 0.0;
        GenContext ctx{priv, rng, events, total, {}, {}};
        ctx.uids.assign(1, exeUid);
        ctx.nextOffset.assign(1, 0);
        TraceSizeModel size_model;
        double priv_emitted = 0.0;
        const double priv_target = config.privateKb * 1024.0;
        while (priv_emitted < priv_target) {
            std::uint32_t size = sampleTraceSize(rng, size_model);
            LifeClass cls = sampleLifeClass(rng, priv.mix);
            TimeUs create = 0;
            TimeUs last = 0;
            mainWindow(ctx, cls, create, last);
            emitTrace(ctx, size, 0, create, last, cls);
            priv_emitted += size;
        }

        std::stable_sort(events.begin(), events.end(),
                         [](const Event &a, const Event &b) {
                             if (a.time != b.time) {
                                 return a.time < b.time;
                             }
                             return eventRank(a.type) <
                                    eventRank(b.type);
                         });

        tracelog::AccessLog log;
        log.setBenchmark(config.namePrefix + ":proc" +
                         std::to_string(p));
        log.setDuration(total);
        log.setFootprintBytes(static_cast<std::uint64_t>(
            priv_target + config.sharedDlls *
                              config.sharedLibKb * 1024.0));
        log.setModuleUid(0, exeUid);
        for (unsigned d = 0; d < config.sharedDlls; ++d) {
            log.setModuleUid(d + 1, sharedUids[d]);
        }
        for (const Event &event : events) {
            log.append(event);
        }
        logs.push_back(std::move(log));
    }
    return logs;
}

} // namespace gencache::workload
