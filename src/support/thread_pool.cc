#include "support/thread_pool.h"

#include <cerrno>
#include <cstdlib>

#include "support/logging.h"

namespace gencache {

std::size_t
ThreadPool::defaultThreadCount()
{
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) {
        hw = 1;
    }
    const char *env = std::getenv("GENCACHE_THREADS");
    if (env == nullptr) {
        return hw;
    }
    // Accept only a complete decimal number: an empty value, trailing
    // junk ("8x"), a non-numeric string, or an out-of-range value is
    // rejected in favour of the hardware default. Silently treating
    // those as 0 -> 1 thread used to serialize every experiment.
    char *end = nullptr;
    errno = 0;
    long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE) {
        warn("ignoring invalid GENCACHE_THREADS='{}' (not a number); "
             "using {} threads",
             env, hw);
        return hw;
    }
    if (value < 1) {
        return 1;
    }
    if (value > 256) {
        return 256;
    }
    return static_cast<std::size_t>(value);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0) {
        threads = defaultThreadCount();
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this]() { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    available_.notify_all();
    for (std::thread &worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            // wait() releases and reacquires mutex_ itself; the
            // predicate always runs with the lock held.
            available_.wait(mutex_, [this]() GENCACHE_REQUIRES(mutex_) {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                // stopping_ with a drained queue: shut down. Pending
                // tasks always run even when the pool is stopping.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace gencache
