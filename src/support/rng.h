/**
 * @file
 * Deterministic random number generation for gencache.
 *
 * Every stochastic component in the library draws from an explicitly
 * seeded Rng so that a (profile, seed) pair always reproduces the exact
 * same workload, simulation, and benchmark output. The core generator is
 * xoshiro256** seeded through splitmix64, which is both fast and has no
 * hidden global state.
 */

#ifndef GENCACHE_SUPPORT_RNG_H
#define GENCACHE_SUPPORT_RNG_H

#include <array>
#include <cstdint>
#include <vector>

namespace gencache {

/** splitmix64 step: used for seeding and for cheap hash mixing. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * xoshiro256** pseudo random generator with explicit state.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also be
 * plugged into <random> distributions if ever needed.
 */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Xoshiro256(std::uint64_t seed);

    /** @return the next 64 random bits. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

  private:
    std::array<std::uint64_t, 4> state_;
};

/**
 * Convenience facade bundling the generator with the distributions the
 * library needs. All methods are deterministic functions of the seed and
 * the call sequence.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return a fresh Rng whose seed is derived from this one. */
    Rng fork();

    /** @return uniformly distributed double in [0, 1). */
    double uniform01();

    /** @return uniformly distributed double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return uniformly distributed integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return true with probability @p p. */
    bool bernoulli(double p);

    /** @return a standard-normal sample (Box-Muller, cached pair). */
    double normal();

    /** @return a normal sample with the given mean and stddev. */
    double normal(double mean, double stddev);

    /** @return a lognormal sample: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** @return an exponential sample with the given mean. */
    double exponential(double mean);

    /** @return raw 64 random bits. */
    std::uint64_t bits();

  private:
    Xoshiro256 gen_;
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

/**
 * O(1) sampling from an arbitrary discrete distribution using Walker's
 * alias method. Construction is O(n).
 */
class DiscreteSampler
{
  public:
    /** @param weights non-negative, not all zero. */
    explicit DiscreteSampler(const std::vector<double> &weights);

    /** @return an index in [0, size()) drawn per the weights. */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return prob_.size(); }

    /** @return the normalized probability of index @p i. */
    double probability(std::size_t i) const { return normalized_[i]; }

  private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
    std::vector<double> normalized_;
};

/**
 * Zipf-distributed ranks 1..n with exponent s: P(r) proportional to
 * 1 / r^s. Backed by a DiscreteSampler, so sampling is O(1).
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double s);

    /** @return a rank in [1, n]. */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return sampler_.size(); }

    /** @return the probability mass of rank @p r (1-based). */
    double probability(std::size_t r) const
    {
        return sampler_.probability(r - 1);
    }

  private:
    DiscreteSampler sampler_;
};

} // namespace gencache

#endif // GENCACHE_SUPPORT_RNG_H
