/**
 * @file
 * Status and error reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a gencache bug); aborts.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with status 1.
 * warn()   — something works but may not behave as the user expects.
 * inform() — purely informational status output.
 *
 * All functions accept a brace-style format string (see support/format.h).
 */

#ifndef GENCACHE_SUPPORT_LOGGING_H
#define GENCACHE_SUPPORT_LOGGING_H

#include <string_view>

#include "support/format.h"

namespace gencache {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Silent,   ///< Suppress warn() and inform() output.
    Warn,     ///< Emit warn() only.
    Inform,   ///< Emit warn() and inform().
};

/** Set the global logging verbosity. Thread-unsafe by design (set once). */
void setLogLevel(LogLevel level);

/** @return the current global logging verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

} // namespace detail

/** Abort with a message: an internal invariant was violated. */
#define GENCACHE_PANIC(...)                                                 \
    ::gencache::detail::panicImpl(__FILE__, __LINE__,                       \
                                  ::gencache::format(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view spec, const Args &...args)
{
    detail::fatalImpl(format(spec, args...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(std::string_view spec, const Args &...args)
{
    detail::warnImpl(format(spec, args...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(std::string_view spec, const Args &...args)
{
    detail::informImpl(format(spec, args...));
}

} // namespace gencache

#endif // GENCACHE_SUPPORT_LOGGING_H
