#include "support/simd.h"

#if defined(GENCACHE_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace gencache::simd {

namespace {

std::uint8_t
byteOccurrenceMaskScalar(const std::uint8_t *data, std::size_t n)
{
    std::uint8_t mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
        mask |= static_cast<std::uint8_t>(1u << (data[i] & 7u));
    }
    return mask;
}

std::uint64_t
byteEqMaskScalar(const std::uint8_t *data, std::size_t n,
                 std::uint8_t value)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
        mask |= static_cast<std::uint64_t>(data[i] == value) << i;
    }
    return mask;
}

#if defined(GENCACHE_SIMD_AVX2)

__attribute__((target("avx2"))) std::uint8_t
byteOccurrenceMaskAvx2(const std::uint8_t *data, std::size_t n)
{
    // Map each byte b (< 16) to 1 << (b & 7) with an in-register
    // nibble LUT, then OR-reduce the whole stream.
    const __m256i lut = _mm256_setr_epi8(
        1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,
        1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128);
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(data + i));
        acc = _mm256_or_si256(acc, _mm256_shuffle_epi8(lut, v));
    }
    __m128i half = _mm_or_si128(_mm256_castsi256_si128(acc),
                                _mm256_extracti128_si256(acc, 1));
    half = _mm_or_si128(half, _mm_srli_si128(half, 8));
    std::uint64_t lanes =
        static_cast<std::uint64_t>(_mm_cvtsi128_si64(half));
    lanes |= lanes >> 32;
    lanes |= lanes >> 16;
    lanes |= lanes >> 8;
    std::uint8_t mask = static_cast<std::uint8_t>(lanes);
    return mask | byteOccurrenceMaskScalar(data + i, n - i);
}

__attribute__((target("avx2"))) std::uint64_t
byteEqMaskAvx2(const std::uint8_t *data, std::size_t n,
               std::uint8_t value)
{
    const __m256i needle =
        _mm256_set1_epi8(static_cast<char>(value));
    std::uint64_t mask = 0;
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(data + i));
        std::uint32_t bits = static_cast<std::uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)));
        mask |= static_cast<std::uint64_t>(bits) << i;
    }
    if (i < n) {
        mask |= byteEqMaskScalar(data + i, n - i, value) << i;
    }
    return mask;
}

bool
haveAvx2()
{
    static const bool have = __builtin_cpu_supports("avx2") != 0;
    return have;
}

#endif // GENCACHE_SIMD_AVX2

} // namespace

std::uint8_t
byteOccurrenceMask(const std::uint8_t *data, std::size_t n)
{
#if defined(GENCACHE_SIMD_AVX2)
    if (haveAvx2()) {
        return byteOccurrenceMaskAvx2(data, n);
    }
#endif
    return byteOccurrenceMaskScalar(data, n);
}

std::uint64_t
byteEqMask(const std::uint8_t *data, std::size_t n,
           std::uint8_t value)
{
#if defined(GENCACHE_SIMD_AVX2)
    if (haveAvx2()) {
        return byteEqMaskAvx2(data, n, value);
    }
#endif
    return byteEqMaskScalar(data, n, value);
}

const char *
activeSimdMode()
{
#if defined(GENCACHE_SIMD_AVX2)
    return haveAvx2() ? "avx2" : "scalar";
#else
    return "scalar (simd disabled)";
#endif
}

} // namespace gencache::simd
