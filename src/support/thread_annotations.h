/**
 * @file
 * Clang thread-safety analysis annotations and an annotated mutex.
 *
 * The GENCACHE_* macros expand to clang's `__attribute__((...))` thread
 * safety attributes when compiling with a compiler that understands
 * them (clang with -Wthread-safety) and to nothing elsewhere, so the
 * annotations are free documentation under gcc and machine-checked
 * proof obligations under clang.
 *
 * `Mutex` wraps std::mutex as a CAPABILITY so GUARDED_BY/REQUIRES
 * clauses can name it; `MutexLock` is the matching SCOPED_CAPABILITY
 * RAII guard. Condition waits go through std::condition_variable_any,
 * which accepts any lockable (std::condition_variable demands a bare
 * std::unique_lock<std::mutex> and cannot see through the wrapper).
 *
 * Annotate every piece of state shared by parallel sweep / tournament
 * workers: the analysis is only as good as its coverage, and the CI
 * thread-safety stage (scripts/ci.sh) builds with
 * -Wthread-safety -Werror=thread-safety whenever clang is available.
 */

#ifndef GENCACHE_SUPPORT_THREAD_ANNOTATIONS_H
#define GENCACHE_SUPPORT_THREAD_ANNOTATIONS_H

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define GENCACHE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GENCACHE_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#define GENCACHE_CAPABILITY(x) GENCACHE_THREAD_ANNOTATION(capability(x))

#define GENCACHE_SCOPED_CAPABILITY GENCACHE_THREAD_ANNOTATION(scoped_lockable)

#define GENCACHE_GUARDED_BY(x) GENCACHE_THREAD_ANNOTATION(guarded_by(x))

#define GENCACHE_PT_GUARDED_BY(x) GENCACHE_THREAD_ANNOTATION(pt_guarded_by(x))

#define GENCACHE_REQUIRES(...) \
    GENCACHE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define GENCACHE_ACQUIRE(...) \
    GENCACHE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define GENCACHE_RELEASE(...) \
    GENCACHE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define GENCACHE_TRY_ACQUIRE(...) \
    GENCACHE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define GENCACHE_EXCLUDES(...) \
    GENCACHE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define GENCACHE_RETURN_CAPABILITY(x) \
    GENCACHE_THREAD_ANNOTATION(lock_returned(x))

#define GENCACHE_NO_THREAD_SAFETY_ANALYSIS \
    GENCACHE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gencache {

/** std::mutex annotated as a thread-safety capability. */
class GENCACHE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() GENCACHE_ACQUIRE() { impl_.lock(); }
    void unlock() GENCACHE_RELEASE() { impl_.unlock(); }
    bool try_lock() GENCACHE_TRY_ACQUIRE(true) { return impl_.try_lock(); }

  private:
    std::mutex impl_;
};

/** RAII guard for Mutex, visible to the thread-safety analysis. */
class GENCACHE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) GENCACHE_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() GENCACHE_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

} // namespace gencache

#endif // GENCACHE_SUPPORT_THREAD_ANNOTATIONS_H
