/**
 * @file
 * Runtime-dispatched SIMD helpers with mandatory scalar fallbacks.
 *
 * The replay hot paths only need a few data-parallel primitives; each
 * one here has a portable scalar implementation and, when the build
 * enables GENCACHE_SIMD and the CPU reports AVX2, an AVX2 kernel
 * selected once at first use via __builtin_cpu_supports. Results are
 * bit-identical between the two implementations — callers never see
 * which one ran (except through activeSimdMode(), which benches embed
 * in their run metadata).
 *
 * Building with -DGENCACHE_SIMD=OFF compiles the scalar paths only;
 * no AVX2 instructions are emitted anywhere in the binary then.
 */

#ifndef GENCACHE_SUPPORT_SIMD_H
#define GENCACHE_SUPPORT_SIMD_H

#include <cstddef>
#include <cstdint>

namespace gencache::simd {

/**
 * OR together (1u << data[i]) over @p n bytes. Byte values must be
 * < 8 (event-type bytes are); the result is the occurrence bitmask
 * used to classify replay chunks.
 */
std::uint8_t byteOccurrenceMask(const std::uint8_t *data,
                                std::size_t n);

/**
 * @return the bit-position mask of bytes equal to @p value within
 * data[0..n), n <= 64: bit i set iff data[i] == value. Used to find
 * the rare non-exec events inside a mixed chunk.
 */
std::uint64_t byteEqMask(const std::uint8_t *data, std::size_t n,
                         std::uint8_t value);

/** Kernel set the dispatcher resolved to: "avx2", "scalar", or
 *  "scalar (simd disabled)" when built with GENCACHE_SIMD=OFF. */
const char *activeSimdMode();

} // namespace gencache::simd

#endif // GENCACHE_SUPPORT_SIMD_H
