/**
 * @file
 * Common unit constants and virtual-time typedefs.
 *
 * gencache has no dependence on wall-clock time: all timestamps are
 * virtual microseconds carried by workload logs and simulator events.
 */

#ifndef GENCACHE_SUPPORT_UNITS_H
#define GENCACHE_SUPPORT_UNITS_H

#include <cstdint>

namespace gencache {

/** Virtual time in microseconds since workload start. */
using TimeUs = std::uint64_t;

/** Instruction counts used by the cost model. */
using InstrCount = std::uint64_t;

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;

constexpr TimeUs kUsPerMs = 1000;
constexpr TimeUs kUsPerSec = 1000 * 1000;

/** Convert seconds (double) to virtual microseconds. */
constexpr TimeUs
secondsToUs(double seconds)
{
    return static_cast<TimeUs>(seconds * static_cast<double>(kUsPerSec));
}

/** Convert virtual microseconds to seconds. */
constexpr double
usToSeconds(TimeUs us)
{
    return static_cast<double>(us) / static_cast<double>(kUsPerSec);
}

} // namespace gencache

#endif // GENCACHE_SUPPORT_UNITS_H
