/**
 * @file
 * A fixed-size worker pool with futures-based task submission.
 *
 * The experiment engine fans independent simulation cells (sweep grid
 * cells, per-layout comparison runs) out across a ThreadPool. Tasks
 * are arbitrary callables; submit() returns a std::future carrying the
 * callable's result, and exceptions thrown inside a task propagate to
 * whoever calls future.get().
 *
 * The worker count is chosen once at construction: an explicit count,
 * or (for count 0) the GENCACHE_THREADS environment variable, falling
 * back to std::thread::hardware_concurrency(). GENCACHE_THREADS=1
 * forces fully serial execution everywhere the pool is consulted.
 */

#ifndef GENCACHE_SUPPORT_THREAD_POOL_H
#define GENCACHE_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/thread_annotations.h"

namespace gencache {

/** Fixed-size task pool. Threads start in the constructor and join in
 *  the destructor after draining the queue. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 picks defaultThreadCount().
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Waits for queued tasks to finish, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue @p fn for execution on a worker thread.
     *
     * Tasks are dispatched in FIFO order. The returned future carries
     * the callable's result; an exception thrown by @p fn is captured
     * and rethrown from future.get().
     */
    template <typename Fn>
    auto submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        {
            MutexLock lock(mutex_);
            queue_.emplace_back([task]() { (*task)(); });
        }
        available_.notify_one();
        return future;
    }

    /**
     * Worker count implied by the environment: GENCACHE_THREADS when
     * set to a complete decimal number (clamped to [1, 256]),
     * otherwise hardware_concurrency(), never less than 1. A
     * malformed GENCACHE_THREADS (empty, non-numeric, trailing junk,
     * or out of range) is rejected with a logged warning and the
     * hardware default is used.
     */
    static std::size_t defaultThreadCount();

  private:
    void workerLoop();

    Mutex mutex_;
    // condition_variable_any: the annotated Mutex is a BasicLockable
    // that std::condition_variable (unique_lock<std::mutex> only)
    // cannot wait on.
    std::condition_variable_any available_;
    std::deque<std::function<void()>> queue_ GENCACHE_GUARDED_BY(mutex_);
    std::vector<std::thread> workers_;
    bool stopping_ GENCACHE_GUARDED_BY(mutex_) = false;
};

} // namespace gencache

#endif // GENCACHE_SUPPORT_THREAD_POOL_H
