#include "support/rng.h"

#include <cmath>

#include "support/logging.h"

namespace gencache {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_) {
        word = splitmix64(sm);
    }
}

std::uint64_t
Xoshiro256::next()
{
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

Rng::Rng(std::uint64_t seed)
    : gen_(seed)
{
}

Rng
Rng::fork()
{
    return Rng(gen_.next());
}

double
Rng::uniform01()
{
    // 53-bit mantissa: uniform in [0, 1).
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform01();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi) {
        GENCACHE_PANIC("uniformInt: empty range [{}, {}]", lo, hi);
    }
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) { // full 64-bit range
        return static_cast<std::int64_t>(gen_.next());
    }
    // Rejection sampling to avoid modulo bias.
    std::uint64_t limit = ~0ULL - (~0ULL % span);
    std::uint64_t draw;
    do {
        draw = gen_.next();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

bool
Rng::bernoulli(double p)
{
    return uniform01() < p;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform01();
    } while (u1 <= 0.0);
    u2 = uniform01();
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double mean)
{
    double u;
    do {
        u = uniform01();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

std::uint64_t
Rng::bits()
{
    return gen_.next();
}

DiscreteSampler::DiscreteSampler(const std::vector<double> &weights)
{
    std::size_t n = weights.size();
    if (n == 0) {
        GENCACHE_PANIC("DiscreteSampler: empty weight vector");
    }
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0 || !std::isfinite(w)) {
            GENCACHE_PANIC("DiscreteSampler: invalid weight {}", w);
        }
        total += w;
    }
    if (total <= 0.0) {
        GENCACHE_PANIC("DiscreteSampler: all weights are zero");
    }

    normalized_.resize(n);
    prob_.resize(n);
    alias_.assign(n, 0);

    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
        normalized_[i] = weights[i] / total;
        scaled[i] = normalized_[i] * static_cast<double>(n);
    }

    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (scaled[i] < 1.0) {
            small.push_back(static_cast<std::uint32_t>(i));
        } else {
            large.push_back(static_cast<std::uint32_t>(i));
        }
    }

    while (!small.empty() && !large.empty()) {
        std::uint32_t s = small.back();
        small.pop_back();
        std::uint32_t l = large.back();
        large.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if (scaled[l] < 1.0) {
            small.push_back(l);
        } else {
            large.push_back(l);
        }
    }
    for (std::uint32_t i : large) {
        prob_[i] = 1.0;
    }
    for (std::uint32_t i : small) {
        prob_[i] = 1.0; // numerical leftovers
    }
}

std::size_t
DiscreteSampler::sample(Rng &rng) const
{
    std::size_t column =
        static_cast<std::size_t>(rng.uniformInt(0,
            static_cast<std::int64_t>(prob_.size()) - 1));
    if (rng.uniform01() < prob_[column]) {
        return column;
    }
    return alias_[column];
}

namespace {

std::vector<double>
zipfWeights(std::size_t n, double s)
{
    if (n == 0) {
        GENCACHE_PANIC("ZipfSampler: n must be positive");
    }
    std::vector<double> weights(n);
    for (std::size_t r = 1; r <= n; ++r) {
        weights[r - 1] = 1.0 / std::pow(static_cast<double>(r), s);
    }
    return weights;
}

} // namespace

ZipfSampler::ZipfSampler(std::size_t n, double s)
    : sampler_(zipfWeights(n, s))
{
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    return sampler_.sample(rng) + 1;
}

} // namespace gencache
