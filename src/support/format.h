/**
 * @file
 * Minimal brace-style string formatting used throughout gencache.
 *
 * GCC 12 ships C++20 without <format>, so we provide a small, dependency
 * free substitute: each "{}" in the format string is replaced, in order,
 * with the ostream rendering of the corresponding argument. Unmatched
 * placeholders are kept verbatim; extra arguments are appended.
 */

#ifndef GENCACHE_SUPPORT_FORMAT_H
#define GENCACHE_SUPPORT_FORMAT_H

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace gencache {

namespace detail {

/** Append the literal text of @p spec up to the next "{}" placeholder.
 *  @return the offset just past the placeholder, or npos when none left. */
std::size_t appendUntilPlaceholder(std::string &out, std::string_view spec,
                                   std::size_t pos);

inline void
formatRec(std::string &out, std::string_view spec, std::size_t pos)
{
    out.append(spec.substr(pos));
}

template <typename T, typename... Rest>
void
formatRec(std::string &out, std::string_view spec, std::size_t pos,
          const T &value, const Rest &...rest)
{
    std::size_t next = appendUntilPlaceholder(out, spec, pos);
    std::ostringstream oss;
    oss << value;
    out += oss.str();
    if (next == std::string_view::npos) {
        return;
    }
    formatRec(out, spec, next, rest...);
}

} // namespace detail

/**
 * Render @p spec, substituting successive "{}" placeholders with @p args.
 *
 * @param spec Format string containing zero or more "{}" placeholders.
 * @param args Values substituted in order of appearance.
 * @return The formatted string.
 */
template <typename... Args>
std::string
format(std::string_view spec, const Args &...args)
{
    std::string out;
    out.reserve(spec.size() + sizeof...(args) * 8);
    detail::formatRec(out, spec, 0, args...);
    return out;
}

/** Render an integer with thousands separators, e.g. 1234567 -> 1,234,567. */
std::string withCommas(std::int64_t value);

/** Render @p value with @p digits digits after the decimal point. */
std::string fixed(double value, int digits);

/** Render @p fraction (0..1) as a percentage string, e.g. 0.182 -> 18.2%. */
std::string percent(double fraction, int digits = 1);

/** Render a byte count using a human unit (B, KB, MB, GB), base 1024. */
std::string humanBytes(std::uint64_t bytes);

/** Left-pad @p text with spaces to at least @p width characters. */
std::string padLeft(std::string_view text, std::size_t width);

/** Right-pad @p text with spaces to at least @p width characters. */
std::string padRight(std::string_view text, std::size_t width);

} // namespace gencache

#endif // GENCACHE_SUPPORT_FORMAT_H
