#include "support/format.h"

#include <cmath>
#include <cstdio>

namespace gencache {

namespace detail {

std::size_t
appendUntilPlaceholder(std::string &out, std::string_view spec,
                       std::size_t pos)
{
    while (pos < spec.size()) {
        std::size_t brace = spec.find("{}", pos);
        if (brace == std::string_view::npos) {
            out.append(spec.substr(pos));
            return std::string_view::npos;
        }
        out.append(spec.substr(pos, brace - pos));
        return brace + 2;
    }
    return std::string_view::npos;
}

} // namespace detail

std::string
withCommas(std::int64_t value)
{
    bool negative = value < 0;
    std::string digits = std::to_string(negative ? -value : value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3 + 1);
    std::size_t leading = digits.size() % 3;
    if (leading == 0) {
        leading = 3;
    }
    out.append(digits.substr(0, leading));
    for (std::size_t i = leading; i < digits.size(); i += 3) {
        out.push_back(',');
        out.append(digits.substr(i, 3));
    }
    if (negative) {
        out.insert(out.begin(), '-');
    }
    return out;
}

std::string
fixed(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
percent(double fraction, int digits)
{
    return fixed(fraction * 100.0, digits) + "%";
}

std::string
humanBytes(std::uint64_t bytes)
{
    static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double value = static_cast<double>(bytes);
    int unit = 0;
    while (value >= 1024.0 && unit < 4) {
        value /= 1024.0;
        ++unit;
    }
    if (unit == 0) {
        return std::to_string(bytes) + " B";
    }
    return fixed(value, value < 10.0 ? 2 : 1) + " " + units[unit];
}

std::string
padLeft(std::string_view text, std::size_t width)
{
    std::string out;
    if (text.size() < width) {
        out.append(width - text.size(), ' ');
    }
    out.append(text);
    return out;
}

std::string
padRight(std::string_view text, std::size_t width)
{
    std::string out(text);
    if (out.size() < width) {
        out.append(width - out.size(), ' ');
    }
    return out;
}

} // namespace gencache
