#include "support/logging.h"

#include <cstdio>
#include <cstdlib>

namespace gencache {

namespace {

LogLevel globalLevel = LogLevel::Inform;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &message)
{
    if (globalLevel >= LogLevel::Warn) {
        std::fprintf(stderr, "warn: %s\n", message.c_str());
    }
}

void
informImpl(const std::string &message)
{
    if (globalLevel >= LogLevel::Inform) {
        std::fprintf(stderr, "info: %s\n", message.c_str());
    }
}

} // namespace detail

} // namespace gencache
