#include "stats/table.h"

#include <algorithm>

#include "support/format.h"
#include "support/logging.h"

namespace gencache {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty()) {
        GENCACHE_PANIC("TextTable needs at least one column");
    }
    aligns_.assign(headers_.size(), Align::Right);
    aligns_[0] = Align::Left;
}

void
TextTable::setAlign(std::size_t col, Align align)
{
    if (col >= aligns_.size()) {
        GENCACHE_PANIC("TextTable::setAlign: column {} out of range", col);
    }
    aligns_[col] = align;
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        GENCACHE_PANIC("TextTable::addRow: {} cells, expected {}",
                       cells.size(), headers_.size());
    }
    rows_.push_back(Row{false, std::move(cells)});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{true, {}});
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const Row &row : rows_) {
        if (row.separator) {
            continue;
        }
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            widths[c] = std::max(widths[c], row.cells[c].size());
        }
    }

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c > 0) {
                line += "  ";
            }
            line += aligns_[c] == Align::Left
                        ? padRight(cells[c], widths[c])
                        : padLeft(cells[c], widths[c]);
        }
        // Trim trailing spaces for diff-friendliness.
        while (!line.empty() && line.back() == ' ') {
            line.pop_back();
        }
        return line + "\n";
    };

    std::size_t totalWidth = 0;
    for (std::size_t w : widths) {
        totalWidth += w;
    }
    totalWidth += 2 * (widths.size() - 1);
    std::string separator(totalWidth, '-');
    separator += "\n";

    std::string out = renderRow(headers_);
    out += separator;
    for (const Row &row : rows_) {
        out += row.separator ? separator : renderRow(row.cells);
    }
    return out;
}

} // namespace gencache
