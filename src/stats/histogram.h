/**
 * @file
 * Fixed-bin histograms, including the five-bucket lifetime histogram the
 * paper uses in Figure 6.
 */

#ifndef GENCACHE_STATS_HISTOGRAM_H
#define GENCACHE_STATS_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace gencache {

/**
 * Histogram over explicit, sorted bin edges. A sample v falls into bin i
 * when edges[i] <= v < edges[i+1]; samples below the first edge clamp
 * into bin 0 and samples at/above the last edge clamp into the last bin.
 */
class Histogram
{
  public:
    /** @param edges strictly increasing, at least two entries. */
    explicit Histogram(std::vector<double> edges);

    /** Record one sample. */
    void add(double value);

    /** Record @p weight samples' worth at @p value. */
    void addWeighted(double value, std::uint64_t weight);

    std::size_t binCount() const { return counts_.size(); }

    std::uint64_t binTotal(std::size_t bin) const { return counts_[bin]; }

    std::uint64_t total() const { return total_; }

    /** @return fraction of all samples in @p bin (0 when empty). */
    double binFraction(std::size_t bin) const;

    /** @return human-readable label, e.g. "[0.2, 0.4)". */
    std::string binLabel(std::size_t bin) const;

    const std::vector<double> &edges() const { return edges_; }

  private:
    std::size_t binIndex(double value) const;

    std::vector<double> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * The paper's Figure 6 lifetime buckets: [0,20%), [20,40%), [40,60%),
 * [60,80%), [80,100%]. Lifetimes are fractions of total execution time.
 */
Histogram makeLifetimeHistogram();

/** Bucket labels matching Figure 6 ("<20%", "20-40%", ... ">80%"). */
std::vector<std::string> lifetimeBucketLabels();

} // namespace gencache

#endif // GENCACHE_STATS_HISTOGRAM_H
