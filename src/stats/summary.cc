#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace gencache {

void
SummaryStats::add(double value)
{
    samples_.push_back(value);
}

double
SummaryStats::sum() const
{
    double total = 0.0;
    for (double v : samples_) {
        total += v;
    }
    return total;
}

double
SummaryStats::mean() const
{
    if (samples_.empty()) {
        GENCACHE_PANIC("SummaryStats::mean on empty sample set");
    }
    return sum() / static_cast<double>(samples_.size());
}

double
SummaryStats::geomean() const
{
    if (samples_.empty()) {
        GENCACHE_PANIC("SummaryStats::geomean on empty sample set");
    }
    double logSum = 0.0;
    for (double v : samples_) {
        if (v <= 0.0) {
            GENCACHE_PANIC("SummaryStats::geomean with non-positive "
                           "sample {}", v);
        }
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(samples_.size()));
}

double
SummaryStats::stddev() const
{
    if (samples_.size() < 2) {
        return 0.0;
    }
    double m = mean();
    double accum = 0.0;
    for (double v : samples_) {
        accum += (v - m) * (v - m);
    }
    return std::sqrt(accum / static_cast<double>(samples_.size() - 1));
}

double
SummaryStats::median() const
{
    return percentile(50.0);
}

double
SummaryStats::percentile(double p) const
{
    if (samples_.empty()) {
        GENCACHE_PANIC("SummaryStats::percentile on empty sample set");
    }
    if (p < 0.0 || p > 100.0) {
        GENCACHE_PANIC("SummaryStats::percentile out of range: {}", p);
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (p == 50.0 && sorted.size() % 2 == 0) {
        std::size_t hi = sorted.size() / 2;
        return 0.5 * (sorted[hi - 1] + sorted[hi]);
    }
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
SummaryStats::min() const
{
    if (samples_.empty()) {
        GENCACHE_PANIC("SummaryStats::min on empty sample set");
    }
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SummaryStats::max() const
{
    if (samples_.empty()) {
        GENCACHE_PANIC("SummaryStats::max on empty sample set");
    }
    return *std::max_element(samples_.begin(), samples_.end());
}

} // namespace gencache
