#include "stats/histogram.h"

#include <algorithm>

#include "support/format.h"
#include "support/logging.h"

namespace gencache {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges))
{
    if (edges_.size() < 2) {
        GENCACHE_PANIC("Histogram needs at least two edges");
    }
    for (std::size_t i = 1; i < edges_.size(); ++i) {
        if (edges_[i] <= edges_[i - 1]) {
            GENCACHE_PANIC("Histogram edges must be strictly increasing");
        }
    }
    counts_.assign(edges_.size() - 1, 0);
}

std::size_t
Histogram::binIndex(double value) const
{
    if (value < edges_.front()) {
        return 0;
    }
    if (value >= edges_.back()) {
        return counts_.size() - 1;
    }
    auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
    return static_cast<std::size_t>(it - edges_.begin()) - 1;
}

void
Histogram::add(double value)
{
    addWeighted(value, 1);
}

void
Histogram::addWeighted(double value, std::uint64_t weight)
{
    counts_[binIndex(value)] += weight;
    total_ += weight;
}

double
Histogram::binFraction(std::size_t bin) const
{
    if (total_ == 0) {
        return 0.0;
    }
    return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::string
Histogram::binLabel(std::size_t bin) const
{
    bool last = (bin == counts_.size() - 1);
    return format("[{}, {}{}", edges_[bin], edges_[bin + 1],
                  last ? "]" : ")");
}

Histogram
makeLifetimeHistogram()
{
    return Histogram({0.0, 0.2, 0.4, 0.6, 0.8, 1.0 + 1e-12});
}

std::vector<std::string>
lifetimeBucketLabels()
{
    return {"<20%", "20-40%", "40-60%", "60-80%", ">80%"};
}

} // namespace gencache
