/**
 * @file
 * Streaming summary statistics used to aggregate benchmark results.
 */

#ifndef GENCACHE_STATS_SUMMARY_H
#define GENCACHE_STATS_SUMMARY_H

#include <cstddef>
#include <vector>

namespace gencache {

/**
 * Accumulates a set of samples and reports the aggregate measures the
 * paper uses: unweighted arithmetic mean (Figure 9), geometric mean
 * (Figure 11), standard deviation (Figure 2), median, min, and max.
 *
 * Samples are retained, so median and percentiles are exact.
 */
class SummaryStats
{
  public:
    /** Add one sample. */
    void add(double value);

    std::size_t count() const { return samples_.size(); }

    /** @return sum of all samples (0 when empty). */
    double sum() const;

    /** @return arithmetic mean; panics when empty. */
    double mean() const;

    /**
     * @return geometric mean of the samples; panics when empty or when
     * any sample is non-positive (the geomean is undefined there).
     */
    double geomean() const;

    /** @return sample standard deviation (n-1); 0 for fewer than 2. */
    double stddev() const;

    /** @return exact median (average of middle two when even). */
    double median() const;

    /** @return p-th percentile via nearest-rank, p in [0, 100]. */
    double percentile(double p) const;

    double min() const;
    double max() const;

    /** @return all samples in insertion order. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

} // namespace gencache

#endif // GENCACHE_STATS_SUMMARY_H
