/**
 * @file
 * Plain-text table rendering shared by all benchmark binaries, so every
 * reproduced table and figure prints in a uniform, diff-friendly format.
 */

#ifndef GENCACHE_STATS_TABLE_H
#define GENCACHE_STATS_TABLE_H

#include <string>
#include <vector>

namespace gencache {

/** Per-column alignment for TextTable. */
enum class Align { Left, Right };

/**
 * A simple monospace table: header row, alignment per column, optional
 * separator rows, rendered with per-column width computation.
 */
class TextTable
{
  public:
    /** Define the columns. Defaults to right alignment for all but the
     *  first column, which is left aligned (typical benchmark layout). */
    explicit TextTable(std::vector<std::string> headers);

    /** Override the alignment of column @p col. */
    void setAlign(std::size_t col, Align align);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator at the current position. */
    void addSeparator();

    /** @return the rendered table, trailing newline included. */
    std::string toString() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

} // namespace gencache

#endif // GENCACHE_STATS_TABLE_H
