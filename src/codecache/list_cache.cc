#include "codecache/list_cache.h"

#include "support/logging.h"

namespace gencache::cache {

Fragment *
ListCache::find(TraceId id)
{
    const std::uint32_t *slot = index_.find(id);
    return slot == nullptr ? nullptr : &nodes_[*slot].frag;
}

bool
ListCache::contains(TraceId id) const
{
    return index_.contains(id);
}

std::uint32_t
ListCache::pushBack(const Fragment &frag)
{
    std::uint32_t n;
    if (freeHead_ != kNil) {
        n = freeHead_;
        freeHead_ = nodes_[n].next;
        nodes_[n].frag = frag;
    } else {
        n = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(Node{frag, kNil, kNil});
    }
    linkBack(n);
    ++count_;
    return n;
}

void
ListCache::unlink(std::uint32_t n)
{
    Node &node = nodes_[n];
    if (node.prev != kNil) {
        nodes_[node.prev].next = node.next;
    } else {
        head_ = node.next;
    }
    if (node.next != kNil) {
        nodes_[node.next].prev = node.prev;
    } else {
        tail_ = node.prev;
    }
    node.prev = kNil;
    node.next = kNil;
}

void
ListCache::linkBack(std::uint32_t n)
{
    Node &node = nodes_[n];
    node.prev = tail_;
    node.next = kNil;
    if (tail_ != kNil) {
        nodes_[tail_].next = n;
    } else {
        head_ = n;
    }
    tail_ = n;
}

void
ListCache::eraseNode(std::uint32_t n)
{
    unlink(n);
    index_.erase(nodes_[n].frag.id);
    nodes_[n].next = freeHead_;
    freeHead_ = n;
    --count_;
}

bool
ListCache::remove(TraceId id, Fragment *out)
{
    const std::uint32_t *slot = index_.find(id);
    if (slot == nullptr) {
        return false;
    }
    std::uint32_t n = *slot;
    const Fragment &frag = nodes_[n].frag;
    if (out != nullptr) {
        *out = frag;
    }
    used_ -= frag.sizeBytes;
    ++stats_.removals;
    stats_.removedBytes += frag.sizeBytes;
    eraseNode(n);
    return true;
}

bool
ListCache::setPinned(TraceId id, bool pinned)
{
    Fragment *frag = find(id);
    if (frag == nullptr) {
        return false;
    }
    frag->pinned = pinned;
    return true;
}

void
ListCache::flush(std::vector<Fragment> &evicted)
{
    ++stats_.flushes;
    for (std::uint32_t n = head_; n != kNil;) {
        std::uint32_t next = nodes_[n].next;
        const Fragment &frag = nodes_[n].frag;
        if (!frag.pinned) {
            evicted.push_back(frag);
            used_ -= frag.sizeBytes;
            eraseNode(n);
        }
        n = next;
    }
}

void
ListCache::forEach(
    const std::function<void(const Fragment &)> &fn) const
{
    for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next) {
        fn(nodes_[n].frag);
    }
}

bool
ListCache::insertWithEviction(const Fragment &frag,
                              std::vector<Fragment> &evicted)
{
    if (index_.contains(frag.id)) {
        GENCACHE_PANIC("fragment {} already resident", frag.id);
    }
    if (capacity_ != 0 && frag.sizeBytes > capacity_) {
        ++stats_.placementFailures;
        return false;
    }

    // Plan: how many front victims must go?
    std::uint64_t reclaimed = 0;
    victimScratch_.clear();
    if (capacity_ != 0) {
        std::uint32_t n = head_;
        while (used_ - reclaimed + frag.sizeBytes > capacity_ &&
               n != kNil) {
            if (!nodes_[n].frag.pinned) {
                reclaimed += nodes_[n].frag.sizeBytes;
                victimScratch_.push_back(n);
            }
            n = nodes_[n].next;
        }
        if (used_ - reclaimed + frag.sizeBytes > capacity_) {
            ++stats_.placementFailures;
            return false;
        }
    }

    for (std::uint32_t victim : victimScratch_) {
        const Fragment &gone = nodes_[victim].frag;
        evicted.push_back(gone);
        used_ -= gone.sizeBytes;
        ++stats_.capacityEvictions;
        stats_.capacityEvictedBytes += gone.sizeBytes;
        eraseNode(victim);
    }

    std::uint32_t n = pushBack(frag);
    index_.insert(frag.id, n);
    used_ += frag.sizeBytes;
    ++stats_.inserts;
    stats_.insertedBytes += frag.sizeBytes;
    return true;
}

FifoCache::FifoCache(std::uint64_t capacity)
    : ListCache(capacity)
{
    if (capacity == 0) {
        GENCACHE_PANIC("FifoCache requires a positive capacity");
    }
}

bool
FifoCache::insert(const Fragment &frag, std::vector<Fragment> &evicted)
{
    return insertWithEviction(frag, evicted);
}

LruCache::LruCache(std::uint64_t capacity)
    : ListCache(capacity, /*observes_touch=*/true)
{
    if (capacity == 0) {
        GENCACHE_PANIC("LruCache requires a positive capacity");
    }
}

bool
LruCache::insert(const Fragment &frag, std::vector<Fragment> &evicted)
{
    return insertWithEviction(frag, evicted);
}

void
LruCache::touch(TraceId id, TimeUs now)
{
    (void)now;
    const std::uint32_t *slot = index_.find(id);
    if (slot == nullptr) {
        return;
    }
    // Most recently used moves to the tail; the fragment stays in its
    // slot, so the index entry remains valid.
    if (*slot != tail_) {
        std::uint32_t n = *slot;
        unlink(n);
        linkBack(n);
    }
}

FlushCache::FlushCache(std::uint64_t capacity)
    : ListCache(capacity)
{
    if (capacity == 0) {
        GENCACHE_PANIC("FlushCache requires a positive capacity");
    }
}

bool
FlushCache::insert(const Fragment &frag, std::vector<Fragment> &evicted)
{
    if (index_.contains(frag.id)) {
        GENCACHE_PANIC("fragment {} already resident", frag.id);
    }
    if (frag.sizeBytes > capacity_) {
        ++stats_.placementFailures;
        return false;
    }
    if (used_ + frag.sizeBytes > capacity_) {
        std::size_t before = evicted.size();
        flush(evicted);
        for (std::size_t i = before; i < evicted.size(); ++i) {
            ++stats_.capacityEvictions;
            stats_.capacityEvictedBytes += evicted[i].sizeBytes;
        }
        if (used_ + frag.sizeBytes > capacity_) {
            // Pinned fragments alone exceed the budget.
            ++stats_.placementFailures;
            return false;
        }
    }
    std::uint32_t n = pushBack(frag);
    index_.insert(frag.id, n);
    used_ += frag.sizeBytes;
    ++stats_.inserts;
    stats_.insertedBytes += frag.sizeBytes;
    return true;
}

RripCache::RripCache(std::uint64_t capacity, bool bimodal)
    : ListCache(capacity, /*observes_touch=*/true), bimodal_(bimodal)
{
    if (capacity == 0) {
        GENCACHE_PANIC("RripCache requires a positive capacity");
    }
}

bool
RripCache::insert(const Fragment &frag, std::vector<Fragment> &evicted)
{
    if (index_.contains(frag.id)) {
        GENCACHE_PANIC("fragment {} already resident", frag.id);
    }
    if (frag.sizeBytes > capacity_) {
        ++stats_.placementFailures;
        return false;
    }

    // Plan: evict distant-predicted fragments first, aging the whole
    // cache one RRPV step whenever no unchosen victim is distant yet.
    // `ages` is the number of global increments this insert performs;
    // a node's effective prediction during planning is rrpv + ages.
    std::uint64_t reclaimed = 0;
    std::uint8_t ages = 0;
    planScratch_.clear();
    while (used_ - reclaimed + frag.sizeBytes > capacity_) {
        std::uint32_t choice = kNil;
        for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next) {
            const Fragment &cand = nodes_[n].frag;
            if (cand.pinned || cand.rrpv + ages < kMaxRrpv) {
                continue;
            }
            bool chosen = false;
            for (std::uint32_t v : planScratch_) {
                if (v == n) {
                    chosen = true;
                    break;
                }
            }
            if (!chosen) {
                choice = n;
                break;
            }
        }
        if (choice != kNil) {
            reclaimed += nodes_[choice].frag.sizeBytes;
            planScratch_.push_back(choice);
            continue;
        }
        if (ages >= kMaxRrpv) {
            // Every unchosen fragment is pinned: no plan fits.
            ++stats_.placementFailures;
            return false;
        }
        ++ages;
    }

    for (std::uint32_t victim : planScratch_) {
        const Fragment &gone = nodes_[victim].frag;
        evicted.push_back(gone);
        used_ -= gone.sizeBytes;
        ++stats_.capacityEvictions;
        stats_.capacityEvictedBytes += gone.sizeBytes;
        eraseNode(victim);
    }
    if (ages != 0) {
        for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next) {
            Fragment &survivor = nodes_[n].frag;
            survivor.rrpv = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(kMaxRrpv,
                                        survivor.rrpv + ages));
        }
    }

    Fragment placed = frag;
    placed.rrpv = kMaxRrpv - 1;
    if (bimodal_) {
        // Deterministic bimodal throttle: only every kBimodalPeriod-th
        // insert predicts long; the rest predict distant.
        placed.rrpv = insertTick_ == 0
                          ? static_cast<std::uint8_t>(kMaxRrpv - 1)
                          : kMaxRrpv;
        insertTick_ = (insertTick_ + 1) % kBimodalPeriod;
    }
    std::uint32_t n = pushBack(placed);
    index_.insert(placed.id, n);
    used_ += placed.sizeBytes;
    ++stats_.inserts;
    stats_.insertedBytes += placed.sizeBytes;
    return true;
}

void
RripCache::touch(TraceId id, TimeUs now)
{
    (void)now;
    Fragment *frag = find(id);
    if (frag != nullptr) {
        frag->rrpv = 0;
    }
}

UnboundedCache::UnboundedCache()
    : ListCache(0)
{
}

bool
UnboundedCache::insert(const Fragment &frag,
                       std::vector<Fragment> &evicted)
{
    bool ok = insertWithEviction(frag, evicted);
    if (ok && used_ > peak_) {
        peak_ = used_;
    }
    return ok;
}

const char *
localPolicyName(LocalPolicy policy)
{
    switch (policy) {
      case LocalPolicy::PseudoCircular: return "pseudo-circular";
      case LocalPolicy::Fifo: return "fifo";
      case LocalPolicy::Lru: return "lru";
      case LocalPolicy::PreemptiveFlush: return "preemptive-flush";
      case LocalPolicy::Unbounded: return "unbounded";
      case LocalPolicy::Srrip: return "srrip";
      case LocalPolicy::Brrip: return "brrip";
    }
    GENCACHE_PANIC("unknown local policy {}", static_cast<int>(policy));
}

} // namespace gencache::cache
