#include "codecache/list_cache.h"

#include "support/logging.h"

namespace gencache::cache {

Fragment *
ListCache::find(TraceId id)
{
    auto it = index_.find(id);
    return it == index_.end() ? nullptr : &*it->second;
}

bool
ListCache::contains(TraceId id) const
{
    return index_.count(id) != 0;
}

bool
ListCache::remove(TraceId id, Fragment *out)
{
    auto it = index_.find(id);
    if (it == index_.end()) {
        return false;
    }
    if (out != nullptr) {
        *out = *it->second;
    }
    used_ -= it->second->sizeBytes;
    ++stats_.removals;
    stats_.removedBytes += it->second->sizeBytes;
    order_.erase(it->second);
    index_.erase(it);
    return true;
}

bool
ListCache::setPinned(TraceId id, bool pinned)
{
    Fragment *frag = find(id);
    if (frag == nullptr) {
        return false;
    }
    frag->pinned = pinned;
    return true;
}

void
ListCache::flush(std::vector<Fragment> &evicted)
{
    ++stats_.flushes;
    for (auto it = order_.begin(); it != order_.end();) {
        if (it->pinned) {
            ++it;
            continue;
        }
        evicted.push_back(*it);
        used_ -= it->sizeBytes;
        index_.erase(it->id);
        it = order_.erase(it);
    }
}

void
ListCache::forEach(
    const std::function<void(const Fragment &)> &fn) const
{
    for (const Fragment &frag : order_) {
        fn(frag);
    }
}

bool
ListCache::insertWithEviction(const Fragment &frag,
                              std::vector<Fragment> &evicted)
{
    if (index_.count(frag.id) != 0) {
        GENCACHE_PANIC("fragment {} already resident", frag.id);
    }
    if (capacity_ != 0 && frag.sizeBytes > capacity_) {
        ++stats_.placementFailures;
        return false;
    }

    // Plan: how many front victims must go?
    std::uint64_t reclaimed = 0;
    std::vector<std::list<Fragment>::iterator> victims;
    if (capacity_ != 0) {
        auto it = order_.begin();
        while (used_ - reclaimed + frag.sizeBytes > capacity_ &&
               it != order_.end()) {
            if (!it->pinned) {
                reclaimed += it->sizeBytes;
                victims.push_back(it);
            }
            ++it;
        }
        if (used_ - reclaimed + frag.sizeBytes > capacity_) {
            ++stats_.placementFailures;
            return false;
        }
    }

    for (auto victim : victims) {
        evicted.push_back(*victim);
        used_ -= victim->sizeBytes;
        ++stats_.capacityEvictions;
        stats_.capacityEvictedBytes += victim->sizeBytes;
        index_.erase(victim->id);
        order_.erase(victim);
    }

    order_.push_back(frag);
    index_.emplace(frag.id, std::prev(order_.end()));
    used_ += frag.sizeBytes;
    ++stats_.inserts;
    stats_.insertedBytes += frag.sizeBytes;
    return true;
}

FifoCache::FifoCache(std::uint64_t capacity)
    : ListCache(capacity)
{
    if (capacity == 0) {
        GENCACHE_PANIC("FifoCache requires a positive capacity");
    }
}

bool
FifoCache::insert(const Fragment &frag, std::vector<Fragment> &evicted)
{
    return insertWithEviction(frag, evicted);
}

LruCache::LruCache(std::uint64_t capacity)
    : ListCache(capacity)
{
    if (capacity == 0) {
        GENCACHE_PANIC("LruCache requires a positive capacity");
    }
}

bool
LruCache::insert(const Fragment &frag, std::vector<Fragment> &evicted)
{
    return insertWithEviction(frag, evicted);
}

void
LruCache::touch(TraceId id, TimeUs now)
{
    (void)now;
    auto it = index_.find(id);
    if (it == index_.end()) {
        return;
    }
    order_.splice(order_.end(), order_, it->second);
    it->second = std::prev(order_.end());
}

FlushCache::FlushCache(std::uint64_t capacity)
    : ListCache(capacity)
{
    if (capacity == 0) {
        GENCACHE_PANIC("FlushCache requires a positive capacity");
    }
}

bool
FlushCache::insert(const Fragment &frag, std::vector<Fragment> &evicted)
{
    if (index_.count(frag.id) != 0) {
        GENCACHE_PANIC("fragment {} already resident", frag.id);
    }
    if (frag.sizeBytes > capacity_) {
        ++stats_.placementFailures;
        return false;
    }
    if (used_ + frag.sizeBytes > capacity_) {
        std::size_t before = evicted.size();
        flush(evicted);
        for (std::size_t i = before; i < evicted.size(); ++i) {
            ++stats_.capacityEvictions;
            stats_.capacityEvictedBytes += evicted[i].sizeBytes;
        }
        if (used_ + frag.sizeBytes > capacity_) {
            // Pinned fragments alone exceed the budget.
            ++stats_.placementFailures;
            return false;
        }
    }
    order_.push_back(frag);
    index_.emplace(frag.id, std::prev(order_.end()));
    used_ += frag.sizeBytes;
    ++stats_.inserts;
    stats_.insertedBytes += frag.sizeBytes;
    return true;
}

UnboundedCache::UnboundedCache()
    : ListCache(0)
{
}

bool
UnboundedCache::insert(const Fragment &frag,
                       std::vector<Fragment> &evicted)
{
    bool ok = insertWithEviction(frag, evicted);
    if (ok && used_ > peak_) {
        peak_ = used_;
    }
    return ok;
}

const char *
localPolicyName(LocalPolicy policy)
{
    switch (policy) {
      case LocalPolicy::PseudoCircular: return "pseudo-circular";
      case LocalPolicy::Fifo: return "fifo";
      case LocalPolicy::Lru: return "lru";
      case LocalPolicy::PreemptiveFlush: return "preemptive-flush";
      case LocalPolicy::Unbounded: return "unbounded";
    }
    GENCACHE_PANIC("unknown local policy {}", static_cast<int>(policy));
}

} // namespace gencache::cache
